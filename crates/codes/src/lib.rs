//! Error-correcting and list-recoverable codes.
//!
//! The heart of the paper's upper bound (Theorem 3.6 / Appendix B) is a
//! *unique-list-recoverable code*: an encoder that interleaves an outer
//! error-correcting code with per-coordinate hash fingerprints of an
//! expander graph's neighborhoods, and a decoder that recovers every
//! codeword hit by most of the received lists via graph clustering.
//!
//! * [`gf`] — runtime-parameterized `GF(2^m)` table arithmetic
//!   (`m ∈ 3..=8` covers every configuration in the workspace).
//! * [`rs`] — Reed–Solomon (evaluation form) with Berlekamp–Welch
//!   errors-and-erasures decoding. This substitutes for the linear-time
//!   Spielman codes the paper cites; see DESIGN.md §5 — at block lengths
//!   `M ≤ 2^m − 1` the rate/distance trade-off is strictly better and
//!   decode cost is negligible.
//! * [`ulrc`] — the `(α, ℓ, L)`-unique-list-recoverable code of
//!   Theorem 3.6, generic over the expander and hash substrates.

pub mod gf;
pub mod rs;
pub mod ulrc;

pub use gf::Gf;
pub use rs::ReedSolomon;
pub use ulrc::{UlrcParams, UniqueListCode};
