//! `GF(2^m)` arithmetic via exp/log tables, parameterized at runtime.
//!
//! The unique-list-recoverable code wants small symbol alphabets (the
//! paper's `Z` is polylogarithmic), so the field width is a tuning knob:
//! `GF(2^4)` keeps the inner-oracle domain tiny, `GF(2^8)` offers longer
//! blocks. Tables are built once per field (at most 256 entries).

/// Primitive (irreducible) polynomials for `GF(2^m)`, `m = 3..=8`,
/// written with the implicit leading bit (e.g. `0b1011` = x³+x+1).
const PRIMITIVE_POLYS: [(u32, u32); 6] = [
    (3, 0b1011),
    (4, 0b1_0011),
    (5, 0b10_0101),
    (6, 0b100_0011),
    (7, 0b1000_1001),
    (8, 0b1_0001_1101),
];

/// A binary extension field `GF(2^m)` with table-based arithmetic.
///
/// Elements are `u16` values in `[0, 2^m)`. The generator is `x` (value 2),
/// which is primitive for all the polynomials above.
#[derive(Debug, Clone)]
pub struct Gf {
    m: u32,
    size: u16,
    exp: Vec<u16>,
    log: Vec<u16>,
}

impl Gf {
    /// Construct `GF(2^m)` for `3 <= m <= 8`.
    pub fn new(m: u32) -> Self {
        let &(_, poly) = PRIMITIVE_POLYS
            .iter()
            .find(|&&(mm, _)| mm == m)
            .unwrap_or_else(|| panic!("unsupported field width m = {m} (need 3..=8)"));
        let size = 1u16 << m;
        let order = size - 1;
        let mut exp = vec![0u16; 2 * order as usize];
        let mut log = vec![0u16; size as usize];
        let mut v: u32 = 1;
        for i in 0..order {
            exp[i as usize] = v as u16;
            log[v as usize] = i;
            v <<= 1;
            if v & u32::from(size) != 0 {
                v ^= poly;
            }
        }
        // Duplicate for index-overflow-free multiplication.
        for i in 0..order {
            exp[(order + i) as usize] = exp[i as usize];
        }
        Self { m, size, exp, log }
    }

    /// Field width `m` (symbols are `m` bits).
    pub fn bits(&self) -> u32 {
        self.m
    }

    /// Number of field elements `2^m`.
    pub fn size(&self) -> u16 {
        self.size
    }

    /// Multiplicative order `2^m − 1` (max Reed–Solomon block length).
    pub fn order(&self) -> u16 {
        self.size - 1
    }

    /// The primitive element `α = x`.
    pub fn alpha(&self) -> u16 {
        2
    }

    /// `α^i` for `0 <= i < order`.
    pub fn alpha_pow(&self, i: u16) -> u16 {
        self.exp[(i % self.order()) as usize]
    }

    /// Addition = XOR (characteristic 2).
    #[inline]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        debug_assert!(a < self.size && b < self.size);
        a ^ b
    }

    /// Subtraction = addition in characteristic 2.
    #[inline]
    pub fn sub(&self, a: u16, b: u16) -> u16 {
        self.add(a, b)
    }

    /// Multiplication via log/exp tables.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        debug_assert!(a < self.size && b < self.size);
        if a == 0 || b == 0 {
            return 0;
        }
        let idx = u32::from(self.log[a as usize]) + u32::from(self.log[b as usize]);
        self.exp[idx as usize]
    }

    /// Multiplicative inverse; panics on zero.
    #[inline]
    pub fn inv(&self, a: u16) -> u16 {
        assert!(a != 0, "zero has no inverse in GF(2^{})", self.m);
        let order = u32::from(self.order());
        self.exp[(order - u32::from(self.log[a as usize])) as usize]
    }

    /// Division `a / b`; panics when `b = 0`.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> u16 {
        self.mul(a, self.inv(b))
    }

    /// Exponentiation `a^e`.
    pub fn pow(&self, a: u16, e: u32) -> u16 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let order = u32::from(self.order());
        let idx = (u64::from(self.log[a as usize]) * u64::from(e) % u64::from(order)) as usize;
        self.exp[idx]
    }

    /// Evaluate polynomial `coeffs` (constant term first) at `x` (Horner).
    pub fn poly_eval(&self, coeffs: &[u16], x: u16) -> u16 {
        let mut acc = 0u16;
        for &c in coeffs.iter().rev() {
            acc = self.add(self.mul(acc, x), c);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_supported_widths_construct() {
        for m in 3..=8u32 {
            let f = Gf::new(m);
            assert_eq!(f.size(), 1 << m);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported field width")]
    fn rejects_m_2() {
        let _ = Gf::new(2);
    }

    #[test]
    fn generator_has_full_order() {
        for m in 3..=8u32 {
            let f = Gf::new(m);
            let mut seen = std::collections::HashSet::new();
            let mut v = 1u16;
            for _ in 0..f.order() {
                assert!(seen.insert(v), "generator order too small in GF(2^{m})");
                v = f.mul(v, f.alpha());
            }
            assert_eq!(v, 1, "generator order wrong");
        }
    }

    #[test]
    fn inverse_roundtrip_exhaustive() {
        for m in [4u32, 8] {
            let f = Gf::new(m);
            for a in 1..f.size() {
                assert_eq!(f.mul(a, f.inv(a)), 1, "GF(2^{m}): {a}");
            }
        }
    }

    #[test]
    fn gf256_known_products() {
        // Classic AES-field (0x11D variant) sanity values.
        let f = Gf::new(8);
        assert_eq!(f.mul(0x02, 0x80), 0x1D); // x * x^7 = x^8 = poly tail
        assert_eq!(f.mul(3, 1), 3);
        assert_eq!(f.mul(0, 200), 0);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = Gf::new(5);
        for a in 0..f.size() {
            let mut acc = 1u16;
            for e in 0..10u32 {
                assert_eq!(f.pow(a, e), acc, "a={a} e={e}");
                acc = f.mul(acc, a);
            }
        }
    }

    #[test]
    fn poly_eval_horner() {
        let f = Gf::new(4);
        // p(x) = 3 + 5x + 7x² at x = 2: compute manually.
        let want = f.add(3, f.add(f.mul(5, 2), f.mul(7, f.mul(2, 2))));
        assert_eq!(f.poly_eval(&[3, 5, 7], 2), want);
        assert_eq!(f.poly_eval(&[], 9), 0);
    }

    proptest! {
        #[test]
        fn field_axioms(m in 3u32..=8, a in 0u16..256, b in 0u16..256, c in 0u16..256) {
            let f = Gf::new(m);
            let mask = f.size() - 1;
            let (a, b, c) = (a & mask, b & mask, c & mask);
            // Commutativity, associativity, distributivity.
            prop_assert_eq!(f.mul(a, b), f.mul(b, a));
            prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
            prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
            // Identities.
            prop_assert_eq!(f.add(a, 0), a);
            prop_assert_eq!(f.mul(a, 1), a);
            prop_assert_eq!(f.add(a, a), 0);
            if b != 0 {
                prop_assert_eq!(f.mul(f.div(a, b), b), a);
            }
        }
    }
}
