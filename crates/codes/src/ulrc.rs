//! The `(α, ℓ, L)`-unique-list-recoverable code of Theorem 3.6.
//!
//! Encoding (Appendix B): fix pairwise-independent hashes
//! `h_1, …, h_M : X → [Y]` and a d-regular expander `F` on `[M]`. Then
//!
//! ```text
//! Enc(x)_m   = ( h_m(x), E~nc(x)_m )
//! E~nc(x)_m  = ( rs(x)_m, h_{Γ(m)_1}(x), …, h_{Γ(m)_d}(x) )
//! ```
//!
//! where `rs(x)` is an outer Reed–Solomon codeword over the bits of `x`
//! and `Γ(m)_k` is the k-th expander neighbor of coordinate `m`. The
//! second component is packed into a single integer `z < Z` so protocol
//! layers can treat coordinates as elements of `[Y]×[Z]`.
//!
//! Decoding: lists `L_1, …, L_M` of `(y, z)` pairs (unique `y` per list)
//! induce a layered graph on `[M]×[Y]` — an edge is kept only when *both*
//! endpoints claim it, which is what defeats adversarial junk entries.
//! Every codeword present in `(1−α)M` lists forms an `O(α)`-spectral
//! cluster; spectral clustering plus low-degree pruning recovers the
//! clusters, and the Reed–Solomon decoder (missing coordinates = erasures)
//! recovers each codeword.

use crate::rs::ReedSolomon;
use hh_graph::cluster::{prune_low_degree, spectral_clusters, ClusterParams};
use hh_graph::expander::{expander, ExpanderGraph};
use hh_graph::Graph;
use hh_hash::family::labels;
use hh_hash::{HashFamily, PairwiseHash};

/// Parameters of a [`UniqueListCode`].
#[derive(Debug, Clone)]
pub struct UlrcParams {
    /// Number of coordinates `M` (outer-code block length).
    pub num_coords: usize,
    /// Range `Y` of the per-coordinate hashes.
    pub y_range: u64,
    /// Expander degree `d`.
    pub degree: usize,
    /// Outer-code symbol width in bits (`GF(2^gf_bits)` symbols).
    pub gf_bits: u32,
    /// Bits of the message domain `X` (codewords encode `x < 2^domain_bits`).
    pub domain_bits: u32,
    /// Advertised corruption tolerance `α`: every `x` whose encoding
    /// appears in at least `(1−α)M` lists must be recovered.
    pub alpha: f64,
    /// Clustering configuration for the decoder.
    pub cluster: ClusterParams,
}

impl UlrcParams {
    /// A practical default profile for a given message-domain width.
    ///
    /// `M` is chosen so the Reed–Solomon code has rate ≤ 1/2 (pure-erasure
    /// tolerance ≥ M/2, error-form tolerance ≥ M/4), mirroring the paper's
    /// constant-rate constant-distance outer code.
    pub fn for_domain_bits(domain_bits: u32) -> Self {
        let gf_bits = 4u32;
        let k = domain_bits.div_ceil(gf_bits) as usize;
        // Rate <= 1/2 and even M (expander needs d*M even for odd d; we
        // use even d, but keep M even anyway for symmetry with sweeps).
        let num_coords = (2 * k).clamp(8, 14).max(k + 4);
        assert!(
            num_coords <= 15,
            "domain of {domain_bits} bits needs block length > 15; use gf_bits = 5+"
        );
        Self {
            num_coords,
            y_range: 16,
            degree: 4,
            gf_bits,
            domain_bits,
            alpha: 0.25,
            cluster: ClusterParams::default(),
        }
    }

    /// Cardinality of the packed `z` component: `Z = 2^gf_bits · Y^d`.
    pub fn z_cardinality(&self) -> u64 {
        (1u64 << self.gf_bits) * self.y_range.pow(self.degree as u32)
    }
}

/// An instantiated unique-list-recoverable code (Theorem 3.6).
#[derive(Debug, Clone)]
pub struct UniqueListCode {
    params: UlrcParams,
    rs: ReedSolomon,
    graph: ExpanderGraph,
    hashes: Vec<PairwiseHash>,
    /// `neighbor_slot[m]` maps each neighbor `m'` of `m` to the slot index
    /// of `m` in `neighbors(m')` — the back-pointer used for mutual edge
    /// verification.
    neighbor_slot: Vec<Vec<usize>>,
}

impl UniqueListCode {
    /// Build the code from parameters and a public-randomness seed (which
    /// fixes the hashes `h_m` and the expander).
    pub fn new(params: UlrcParams, seed: u64) -> Self {
        let k = params.domain_bits.div_ceil(params.gf_bits) as usize;
        assert!(
            k <= params.num_coords,
            "domain ({} bits) does not fit: k = {k} > M = {}",
            params.domain_bits,
            params.num_coords
        );
        assert!(
            (params.num_coords * params.degree).is_multiple_of(2),
            "M*d must be even"
        );
        let max_alpha_erasures = (params.num_coords - k) as f64 / params.num_coords as f64;
        assert!(
            params.alpha <= max_alpha_erasures,
            "alpha = {} exceeds the outer code's erasure budget {max_alpha_erasures}",
            params.alpha
        );
        let rs = ReedSolomon::new(params.gf_bits, params.num_coords, k);
        let family = HashFamily::new(seed);
        let d = params.degree;
        let lambda0 = (2.3 * ((d - 1) as f64).sqrt()).min(d as f64 * 0.98);
        let graph = expander(
            params.num_coords,
            d,
            lambda0,
            family.component_seed(labels::EXPANDER, 0),
        );
        let hashes: Vec<PairwiseHash> = (0..params.num_coords as u64)
            .map(|m| family.pairwise(labels::SKETCH_COORD_HASH, m, params.y_range))
            .collect();
        let neighbor_slot = (0..params.num_coords)
            .map(|m| {
                graph
                    .neighbors(m)
                    .iter()
                    .map(|&mp| {
                        graph
                            .neighbors(mp as usize)
                            .iter()
                            .position(|&back| back as usize == m)
                            .expect("expander adjacency must be symmetric")
                    })
                    .collect()
            })
            .collect();
        Self {
            params,
            rs,
            graph,
            hashes,
            neighbor_slot,
        }
    }

    /// Code parameters.
    pub fn params(&self) -> &UlrcParams {
        &self.params
    }

    /// The underlying verified expander.
    pub fn expander(&self) -> &ExpanderGraph {
        &self.graph
    }

    /// `h_m(x)` — the coordinate hash (the `y` component of `Enc(x)_m`).
    pub fn coord_hash(&self, m: usize, x: u64) -> u64 {
        self.hashes[m].hash(x)
    }

    /// Message symbols of `x` (little-endian `gf_bits` chunks).
    fn message_symbols(&self, x: u64) -> Vec<u16> {
        assert!(
            self.params.domain_bits == 64 || x < (1u64 << self.params.domain_bits),
            "x = {x} outside the {}-bit domain",
            self.params.domain_bits
        );
        let mask = (1u64 << self.params.gf_bits) - 1;
        (0..self.rs.message_len())
            .map(|i| ((x >> (i as u32 * self.params.gf_bits)) & mask) as u16)
            .collect()
    }

    fn symbols_to_message(&self, syms: &[u16]) -> u64 {
        syms.iter().enumerate().fold(0u64, |acc, (i, &s)| {
            acc | (u64::from(s) << (i as u32 * self.params.gf_bits))
        })
    }

    /// Pack `(rs symbol, neighbor hash values)` into `z < Z`.
    pub fn pack_z(&self, sym: u16, neighbor_ys: &[u64]) -> u64 {
        debug_assert_eq!(neighbor_ys.len(), self.params.degree);
        let mut acc = 0u64;
        for &y in neighbor_ys.iter().rev() {
            debug_assert!(y < self.params.y_range);
            acc = acc * self.params.y_range + y;
        }
        (acc << self.params.gf_bits) | u64::from(sym)
    }

    /// Inverse of [`UniqueListCode::pack_z`].
    pub fn unpack_z(&self, z: u64) -> (u16, Vec<u64>) {
        let sym = (z & ((1u64 << self.params.gf_bits) - 1)) as u16;
        let mut acc = z >> self.params.gf_bits;
        let ys = (0..self.params.degree)
            .map(|_| {
                let y = acc % self.params.y_range;
                acc /= self.params.y_range;
                y
            })
            .collect();
        (sym, ys)
    }

    /// `E~nc(x)_m` packed as `z` (everything except the leading `h_m(x)`).
    pub fn enc_tilde(&self, x: u64, m: usize) -> u64 {
        let cw = self.rs.encode(&self.message_symbols(x));
        self.enc_tilde_with_codeword(&cw, x, m)
    }

    fn enc_tilde_with_codeword(&self, cw: &[u16], x: u64, m: usize) -> u64 {
        let neighbor_ys: Vec<u64> = self
            .graph
            .neighbors(m)
            .iter()
            .map(|&mp| self.coord_hash(mp as usize, x))
            .collect();
        self.pack_z(cw[m], &neighbor_ys)
    }

    /// Full encoding `Enc(x) = ((h_1(x), z_1), …, (h_M(x), z_M))`.
    pub fn encode(&self, x: u64) -> Vec<(u64, u64)> {
        let cw = self.rs.encode(&self.message_symbols(x));
        (0..self.params.num_coords)
            .map(|m| {
                (
                    self.coord_hash(m, x),
                    self.enc_tilde_with_codeword(&cw, x, m),
                )
            })
            .collect()
    }

    /// Decode lists `L_1, …, L_M` of `(y, z)` pairs.
    ///
    /// Entries with duplicate `y` within a list are dropped beyond the
    /// first (Definition 3.5 presumes `y`-uniqueness; the protocol's
    /// argmax step guarantees it). Returns the recovered messages, deduped,
    /// each verified to agree with its lists on `≥ (1−α)M` coordinates.
    pub fn decode(&self, lists: &[Vec<(u64, u64)>]) -> Vec<u64> {
        let m_coords = self.params.num_coords;
        assert_eq!(lists.len(), m_coords, "need one list per coordinate");
        let y_range = self.params.y_range;
        // Per-coordinate maps y -> z with first-entry-wins dedup.
        let mut entry: Vec<std::collections::HashMap<u64, u64>> =
            vec![std::collections::HashMap::new(); m_coords];
        for (m, list) in lists.iter().enumerate() {
            for &(y, z) in list {
                assert!(y < y_range, "list entry y = {y} out of range");
                assert!(z < self.params.z_cardinality(), "list entry z out of range");
                entry[m].entry(y).or_insert(z);
            }
        }
        // Layered graph on [M]×[Y]; edge kept iff both endpoints claim it.
        let vertex = |m: usize, y: u64| -> u32 { (m as u64 * y_range + y) as u32 };
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for m in 0..m_coords {
            for (&y, &z) in &entry[m] {
                let (_, neighbor_ys) = self.unpack_z(z);
                for (k, &yp) in neighbor_ys.iter().enumerate() {
                    let mp = self.graph.neighbor(m, k) as usize;
                    // Only add each undirected edge from the lower side.
                    if mp < m {
                        continue;
                    }
                    if let Some(&zp) = entry[mp].get(&yp) {
                        let (_, back_ys) = self.unpack_z(zp);
                        let back_slot = self.neighbor_slot[m][k];
                        if back_ys[back_slot] == y {
                            edges.push((vertex(m, y), vertex(mp, yp)));
                        }
                    }
                }
            }
        }
        let g = Graph::from_edges(m_coords * y_range as usize, edges);
        let clusters = spectral_clusters(&g, &self.params.cluster);
        let mut out: Vec<u64> = Vec::new();
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for cluster in clusters {
            let pruned = prune_low_degree(&g, &cluster, self.params.degree / 2);
            if pruned.is_empty() {
                continue;
            }
            // Assemble the received word: one symbol per coordinate, with
            // ambiguous/missing coordinates as erasures.
            let mut received: Vec<Option<u16>> = vec![None; m_coords];
            let mut ambiguous = vec![false; m_coords];
            for &v in &pruned {
                let m = (u64::from(v) / y_range) as usize;
                let y = u64::from(v) % y_range;
                if received[m].is_some() || ambiguous[m] {
                    received[m] = None;
                    ambiguous[m] = true;
                    continue;
                }
                if let Some(&z) = entry[m].get(&y) {
                    let (sym, _) = self.unpack_z(z);
                    received[m] = Some(sym);
                }
            }
            let Some(msg_syms) = self.rs.decode(&received) else {
                continue;
            };
            let x = self.symbols_to_message(&msg_syms);
            if self.params.domain_bits < 64 && x >= (1u64 << self.params.domain_bits) {
                continue;
            }
            if !seen.insert(x) {
                continue;
            }
            // Final Definition 3.5 filter: x must actually be present in
            // enough lists.
            let enc = self.encode(x);
            let hits = enc
                .iter()
                .enumerate()
                .filter(|(m, (y, z))| entry[*m].get(y) == Some(z))
                .count();
            if hits as f64 >= (1.0 - self.params.alpha) * m_coords as f64 {
                out.push(x);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn code(domain_bits: u32, seed: u64) -> UniqueListCode {
        UniqueListCode::new(UlrcParams::for_domain_bits(domain_bits), seed)
    }

    /// A wide-Y profile for tests that decode many messages at once: the
    /// protocol's group hash `g` keeps messages-per-decode small (paper
    /// events E1/E5 need `Y ≳ |H^b|²`), so multi-message tests must widen
    /// `Y` accordingly to keep coordinate collisions within `α`.
    fn wide_code(domain_bits: u32, seed: u64) -> UniqueListCode {
        let mut params = UlrcParams::for_domain_bits(domain_bits);
        params.y_range = 128;
        UniqueListCode::new(params, seed)
    }

    /// Build honest lists for a set of messages, dropping coordinates where
    /// two messages collide on `y` (those are "bad" coordinates for both, as
    /// in the paper's analysis) and then corrupting `corrupt_per_x`
    /// coordinates of each message (removal). Returns the lists and the
    /// total number of dropped coordinates per message, so tests can check
    /// the Definition 3.5 contract against the *actual* corruption level.
    fn build_lists_with_drops(
        c: &UniqueListCode,
        xs: &[u64],
        corrupt_per_x: usize,
        rng: &mut SmallRng,
    ) -> (Vec<Vec<(u64, u64)>>, Vec<usize>) {
        let m_coords = c.params().num_coords;
        let mut drops: Vec<std::collections::HashSet<usize>> = xs
            .iter()
            .map(|_| {
                let mut s = std::collections::HashSet::new();
                while s.len() < corrupt_per_x {
                    s.insert(rng.gen_range(0..m_coords));
                }
                s
            })
            .collect();
        let mut lists: Vec<Vec<(u64, u64)>> = vec![Vec::new(); m_coords];
        for (m, list) in lists.iter_mut().enumerate() {
            let mut used: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
            for (i, &x) in xs.iter().enumerate() {
                if drops[i].contains(&m) {
                    continue;
                }
                let y = c.coord_hash(m, x);
                if let Some(&other) = used.get(&y) {
                    // y-collision: coordinate becomes bad for both messages.
                    list.retain(|&(yy, _)| yy != y);
                    drops[other].insert(m);
                    drops[i].insert(m);
                    continue;
                }
                used.insert(y, i);
                list.push((y, c.enc_tilde(x, m)));
            }
        }
        let drop_counts = drops.iter().map(|s| s.len()).collect();
        (lists, drop_counts)
    }

    fn build_lists(
        c: &UniqueListCode,
        xs: &[u64],
        corrupt_per_x: usize,
        rng: &mut SmallRng,
    ) -> Vec<Vec<(u64, u64)>> {
        build_lists_with_drops(c, xs, corrupt_per_x, rng).0
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let c = code(24, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let sym = rng.gen_range(0..16u16);
            let ys: Vec<u64> = (0..c.params().degree)
                .map(|_| rng.gen_range(0..c.params().y_range))
                .collect();
            let z = c.pack_z(sym, &ys);
            assert!(z < c.params().z_cardinality());
            let (s2, ys2) = c.unpack_z(z);
            assert_eq!((sym, ys), (s2, ys2));
        }
    }

    #[test]
    fn encode_shape() {
        let c = code(24, 3);
        let enc = c.encode(0xABCDEF);
        assert_eq!(enc.len(), c.params().num_coords);
        for (m, &(y, z)) in enc.iter().enumerate() {
            assert!(y < c.params().y_range);
            assert!(z < c.params().z_cardinality());
            assert_eq!(y, c.coord_hash(m, 0xABCDEF));
        }
    }

    #[test]
    fn decodes_single_clean_message() {
        let c = code(24, 4);
        let mut rng = SmallRng::seed_from_u64(5);
        let xs = [0x00F00Du64];
        let lists = build_lists(&c, &xs, 0, &mut rng);
        let got = c.decode(&lists);
        assert_eq!(got, vec![0x00F00D]);
    }

    #[test]
    fn decodes_many_clean_messages() {
        let c = wide_code(24, 6);
        let mut rng = SmallRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| rng.gen_range(0..1 << 24)).collect();
        let lists = build_lists(&c, &xs, 0, &mut rng);
        let mut got = c.decode(&lists);
        got.sort_unstable();
        let mut want = xs.clone();
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
    }

    #[test]
    fn narrow_y_handles_few_messages() {
        // The protocol-facing profile (Y = 16) is only asked to separate a
        // handful of messages per decode; verify that contract directly.
        let c = code(24, 61);
        // Seed-sensitive: with Y = 16, y-collisions can stack a message
        // past the α budget; the seed must leave margin.
        let mut rng = SmallRng::seed_from_u64(63);
        let xs: Vec<u64> = (0..3).map(|_| rng.gen_range(0..1 << 24)).collect();
        let lists = build_lists(&c, &xs, 0, &mut rng);
        let got = c.decode(&lists);
        for &x in &xs {
            assert!(got.contains(&x), "lost {x:#x} with narrow Y");
        }
    }

    #[test]
    fn recovers_despite_alpha_fraction_corruption() {
        let c = wide_code(24, 8);
        let m_coords = c.params().num_coords;
        let alpha_budget = (c.params().alpha * m_coords as f64).floor() as usize;
        let corrupt = (alpha_budget - 1).max(1);
        // Seed-sensitive: collisions on top of the injected corruption can
        // land a message exactly on the α boundary, where cluster assembly
        // has no slack; the seed must leave margin.
        let mut rng = SmallRng::seed_from_u64(10);
        let xs: Vec<u64> = (0..6).map(|_| rng.gen_range(0..1 << 24)).collect();
        let (lists, drops) = build_lists_with_drops(&c, &xs, corrupt, &mut rng);
        let got = c.decode(&lists);
        let mut in_contract = 0;
        for (i, &x) in xs.iter().enumerate() {
            // Definition 3.5 only promises recovery of messages present in
            // at least (1−α)M lists; collisions may push some past that.
            if drops[i] <= alpha_budget {
                in_contract += 1;
                assert!(
                    got.contains(&x),
                    "lost {x:#x} with {} <= {alpha_budget} drops",
                    drops[i]
                );
            }
        }
        assert!(
            in_contract >= 4,
            "test degenerated: only {in_contract} in contract"
        );
    }

    #[test]
    fn adversarial_junk_entries_do_not_create_codewords() {
        // Fill the lists with random junk that no honest encoder produced;
        // mutual-edge verification must reject it.
        let c = code(24, 10);
        let mut rng = SmallRng::seed_from_u64(11);
        let m_coords = c.params().num_coords;
        let mut lists: Vec<Vec<(u64, u64)>> = vec![Vec::new(); m_coords];
        for list in lists.iter_mut() {
            let mut ys: std::collections::HashSet<u64> = std::collections::HashSet::new();
            while ys.len() < 8 {
                ys.insert(rng.gen_range(0..c.params().y_range));
            }
            for y in ys {
                list.push((y, rng.gen_range(0..c.params().z_cardinality())));
            }
        }
        let got = c.decode(&lists);
        assert!(got.is_empty(), "junk produced outputs: {got:?}");
    }

    #[test]
    fn honest_message_survives_surrounding_junk() {
        let c = code(24, 12);
        let mut rng = SmallRng::seed_from_u64(13);
        let x = 0x5A5A5Au64;
        let mut lists = build_lists(&c, &[x], 0, &mut rng);
        // Sprinkle junk entries with fresh y values.
        for (m, list) in lists.iter_mut().enumerate() {
            let honest_y = c.coord_hash(m, x);
            for _ in 0..6 {
                let y = rng.gen_range(0..c.params().y_range);
                if y != honest_y && !list.iter().any(|&(yy, _)| yy == y) {
                    list.push((y, rng.gen_range(0..c.params().z_cardinality())));
                }
            }
        }
        let got = c.decode(&lists);
        assert!(got.contains(&x), "honest message lost among junk");
    }

    #[test]
    fn duplicate_y_entries_are_deduped_not_fatal() {
        let c = code(24, 14);
        let mut rng = SmallRng::seed_from_u64(15);
        let x = 0x123456u64;
        let mut lists = build_lists(&c, &[x], 0, &mut rng);
        // Duplicate the honest entries with junk z under the same y: the
        // decoder keeps the first occurrence.
        for list in lists.iter_mut() {
            let dup: Vec<(u64, u64)> = list
                .iter()
                .map(|&(y, _)| (y, rng.gen_range(0..c.params().z_cardinality())))
                .collect();
            list.extend(dup);
        }
        let got = c.decode(&lists);
        assert!(got.contains(&x));
    }

    #[test]
    fn domain_bound_respected() {
        let c = code(16, 16);
        let enc = c.encode(0xFFFF);
        assert_eq!(enc.len(), c.params().num_coords);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn rejects_out_of_domain_message() {
        let c = code(16, 17);
        let _ = c.encode(0x1_0000);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = code(24, 99);
        let b = code(24, 99);
        assert_eq!(a.encode(12345), b.encode(12345));
    }
}
