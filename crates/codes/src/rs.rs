//! Reed–Solomon codes in evaluation form with Berlekamp–Welch
//! errors-and-erasures decoding.
//!
//! The unique-list-recoverable code needs a constant-rate outer code
//! correcting an `Ω(1)` fraction of coordinate faults, where a fault is
//! either a wrong symbol (error) or a missing one (erasure — a coordinate
//! whose cluster vertex was lost). A `[n, k]` Reed–Solomon code corrects
//! any pattern with `2·errors + erasures <= n − k`.
//!
//! The paper cites linear-time Spielman codes here; at the block lengths
//! this workspace uses (`n ≤ 2^m − 1 ≤ 255`) Reed–Solomon decoding is a
//! trivial cost and the distance is strictly better (see DESIGN.md §5).

use crate::gf::Gf;

/// A Reed–Solomon code over `GF(2^m)`: messages are `k` symbols
/// (polynomial coefficients), codewords are evaluations at
/// `α^0, …, α^{n−1}`.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    gf: Gf,
    n: usize,
    k: usize,
    points: Vec<u16>,
}

impl ReedSolomon {
    /// Construct an `[n, k]` code over `GF(2^m)`.
    ///
    /// Requires `k >= 1`, `k <= n`, and `n <= 2^m − 1` (distinct
    /// evaluation points).
    pub fn new(gf_bits: u32, n: usize, k: usize) -> Self {
        let gf = Gf::new(gf_bits);
        assert!(k >= 1, "message length must be positive");
        assert!(k <= n, "k = {k} exceeds block length n = {n}");
        assert!(
            n <= gf.order() as usize,
            "block length {n} exceeds GF(2^{gf_bits}) order {}",
            gf.order()
        );
        let points = (0..n as u16).map(|i| gf.alpha_pow(i)).collect();
        Self { gf, n, k, points }
    }

    /// Block length `n`.
    pub fn block_len(&self) -> usize {
        self.n
    }

    /// Message length `k`.
    pub fn message_len(&self) -> usize {
        self.k
    }

    /// Bits per symbol.
    pub fn symbol_bits(&self) -> u32 {
        self.gf.bits()
    }

    /// Maximum correctable errors given `erasures` missing symbols:
    /// `floor((n − k − erasures) / 2)`, or `None` if erasures alone exceed
    /// the distance budget.
    pub fn max_errors(&self, erasures: usize) -> Option<usize> {
        (self.n - self.k)
            .checked_sub(erasures)
            .map(|slack| slack / 2)
    }

    /// Encode `k` message symbols (each `< 2^m`) into `n` codeword symbols.
    pub fn encode(&self, msg: &[u16]) -> Vec<u16> {
        assert_eq!(
            msg.len(),
            self.k,
            "message must have k = {} symbols",
            self.k
        );
        for &s in msg {
            assert!(
                s < self.gf.size(),
                "symbol {s} outside GF(2^{})",
                self.gf.bits()
            );
        }
        self.points
            .iter()
            .map(|&x| self.gf.poly_eval(msg, x))
            .collect()
    }

    /// Decode a received word with `None` marking erasures.
    ///
    /// Returns the message if some codeword lies within the guaranteed
    /// radius (`2e + s <= n − k`) of the received word, `None` otherwise.
    /// The result is verified by re-encoding, so miscorrections beyond the
    /// radius are rejected rather than returned silently.
    pub fn decode(&self, received: &[Option<u16>]) -> Option<Vec<u16>> {
        assert_eq!(received.len(), self.n);
        let present: Vec<(u16, u16)> = received
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| r.map(|v| (self.points[i], v)))
            .collect();
        let t = present.len();
        if t < self.k {
            return None; // too many erasures
        }
        let e_max = (t - self.k) / 2;
        for e in (0..=e_max).rev() {
            if let Some(msg) = self.try_berlekamp_welch(&present, e) {
                // Verify agreement on the non-erased coordinates.
                let cw = self.encode(&msg);
                let disagreements = received
                    .iter()
                    .zip(&cw)
                    .filter(|(r, c)| r.is_some_and(|v| v != **c))
                    .count();
                if disagreements <= e {
                    return Some(msg);
                }
            }
        }
        None
    }

    /// One Berlekamp–Welch attempt at error parameter `e`: find polynomials
    /// `Q` (deg < k+e) and `E` (deg <= e, `E ≠ 0`) with
    /// `Q(x_j) = r_j · E(x_j)` on all present points, then return `Q / E`.
    fn try_berlekamp_welch(&self, present: &[(u16, u16)], e: usize) -> Option<Vec<u16>> {
        let gf = &self.gf;
        let t = present.len();
        let nq = self.k + e; // Q coefficients
        let ne = e + 1; // E coefficients
        let cols = nq + ne;
        // Homogeneous system rows: Σ Q_i x^i − r·Σ E_i x^i = 0.
        let mut mat: Vec<Vec<u16>> = Vec::with_capacity(t);
        for &(x, r) in present {
            let mut row = vec![0u16; cols];
            let mut xp = 1u16;
            for cell in row.iter_mut().take(nq) {
                *cell = xp;
                xp = gf.mul(xp, x);
            }
            let mut xp = 1u16;
            for cell in row.iter_mut().skip(nq) {
                *cell = gf.mul(r, xp); // subtraction = addition in char 2
                xp = gf.mul(xp, x);
            }
            mat.push(row);
        }
        // Gaussian elimination to row echelon form; track pivot columns.
        let mut pivot_of_col = vec![usize::MAX; cols];
        let mut rank = 0usize;
        for col in 0..cols {
            let Some(pr) = (rank..t).find(|&r| mat[r][col] != 0) else {
                continue;
            };
            mat.swap(rank, pr);
            let inv = gf.inv(mat[rank][col]);
            for cell in mat[rank].iter_mut().skip(col) {
                *cell = gf.mul(*cell, inv);
            }
            let pivot_row = mat[rank].clone();
            for (r, row) in mat.iter_mut().enumerate().take(t) {
                if r != rank && row[col] != 0 {
                    let f = row[col];
                    for (cell, &pv) in row.iter_mut().zip(&pivot_row).skip(col) {
                        *cell = gf.add(*cell, gf.mul(f, pv));
                    }
                }
            }
            pivot_of_col[col] = rank;
            rank += 1;
            if rank == t {
                break;
            }
        }
        // Kernel basis: one vector per free column. Scan for a vector whose
        // E-part is nonzero; any such vector yields Q/E = message.
        for free in 0..cols {
            if pivot_of_col[free] != usize::MAX {
                continue;
            }
            let mut v = vec![0u16; cols];
            v[free] = 1;
            for col in 0..cols {
                let pr = pivot_of_col[col];
                if pr != usize::MAX {
                    // x_col = −(row coefficient at free) = coefficient (char 2).
                    v[col] = mat[pr][free];
                }
            }
            let q = &v[..nq];
            let epoly = &v[nq..];
            if epoly.iter().all(|&c| c == 0) {
                continue;
            }
            if let Some(p) = self.poly_div_exact(q, epoly) {
                if p.len() <= self.k {
                    let mut msg = p;
                    msg.resize(self.k, 0);
                    return Some(msg);
                }
            }
        }
        None
    }

    /// Exact polynomial division `q / e`; `None` if the remainder is
    /// nonzero. Coefficients constant-first.
    fn poly_div_exact(&self, q: &[u16], e: &[u16]) -> Option<Vec<u16>> {
        let gf = &self.gf;
        let deg = |p: &[u16]| p.iter().rposition(|&c| c != 0);
        let Some(de) = deg(e) else {
            return None; // dividing by zero polynomial
        };
        let mut rem: Vec<u16> = q.to_vec();
        let dq = match deg(&rem) {
            Some(d) => d,
            None => return Some(vec![0]), // 0 / e = 0
        };
        if dq < de {
            return None; // nonzero q of smaller degree: remainder = q != 0
        }
        let mut quot = vec![0u16; dq - de + 1];
        let lead_inv = gf.inv(e[de]);
        for d in (de..=dq).rev() {
            let c = rem[d];
            if c == 0 {
                continue;
            }
            let f = gf.mul(c, lead_inv);
            quot[d - de] = f;
            for (i, &ec) in e.iter().enumerate().take(de + 1) {
                let sub = gf.mul(f, ec);
                rem[d - de + i] = gf.add(rem[d - de + i], sub);
            }
        }
        if rem.iter().any(|&c| c != 0) {
            return None;
        }
        Some(quot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn corrupt(
        rs: &ReedSolomon,
        cw: &[u16],
        errors: usize,
        erasures: usize,
        rng: &mut SmallRng,
    ) -> Vec<Option<u16>> {
        let n = cw.len();
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let mut out: Vec<Option<u16>> = cw.iter().map(|&c| Some(c)).collect();
        for &i in idx.iter().take(errors) {
            let old = cw[i];
            let mut new = old;
            while new == old {
                new = rng.gen_range(0..rs.gf.size());
            }
            out[i] = Some(new);
        }
        for &i in idx.iter().skip(errors).take(erasures) {
            out[i] = None;
        }
        out
    }

    #[test]
    fn roundtrip_clean() {
        let rs = ReedSolomon::new(4, 14, 6);
        let msg = vec![1, 5, 9, 0, 15, 7];
        let cw = rs.encode(&msg);
        let received: Vec<Option<u16>> = cw.iter().map(|&c| Some(c)).collect();
        assert_eq!(rs.decode(&received), Some(msg));
    }

    #[test]
    fn corrects_up_to_half_distance() {
        let mut rng = SmallRng::seed_from_u64(5);
        let rs = ReedSolomon::new(4, 15, 7);
        // distance budget n-k = 8: up to 4 errors.
        for trial in 0..50 {
            let msg: Vec<u16> = (0..7).map(|_| rng.gen_range(0..16)).collect();
            let cw = rs.encode(&msg);
            let errors = trial % 5;
            let received = corrupt(&rs, &cw, errors, 0, &mut rng);
            assert_eq!(rs.decode(&received), Some(msg), "errors={errors}");
        }
    }

    #[test]
    fn corrects_erasures_and_mixtures() {
        let mut rng = SmallRng::seed_from_u64(6);
        let rs = ReedSolomon::new(5, 20, 8);
        // budget 12: e.g. 3 errors + 6 erasures (2*3+6=12).
        for _ in 0..50 {
            let msg: Vec<u16> = (0..8).map(|_| rng.gen_range(0..32)).collect();
            let cw = rs.encode(&msg);
            let received = corrupt(&rs, &cw, 3, 6, &mut rng);
            assert_eq!(rs.decode(&received), Some(msg));
        }
    }

    #[test]
    fn pure_erasures_up_to_distance() {
        let mut rng = SmallRng::seed_from_u64(7);
        let rs = ReedSolomon::new(4, 15, 5);
        let msg: Vec<u16> = (0..5).map(|_| rng.gen_range(0..16)).collect();
        let cw = rs.encode(&msg);
        let received = corrupt(&rs, &cw, 0, 10, &mut rng);
        assert_eq!(rs.decode(&received), Some(msg));
        // 11 erasures: t = 4 < k = 5 -> fail cleanly.
        let received = corrupt(&rs, &cw, 0, 11, &mut rng);
        assert_eq!(rs.decode(&received), None);
    }

    #[test]
    fn no_miscorrection_beyond_radius() {
        // With gross corruption the decoder must return None or the true
        // message, never silently return junk that fails verification.
        let mut rng = SmallRng::seed_from_u64(8);
        let rs = ReedSolomon::new(4, 12, 4);
        let msg: Vec<u16> = vec![1, 2, 3, 4];
        let cw = rs.encode(&msg);
        let mut junk_accepted = 0;
        for _ in 0..100 {
            let received = corrupt(&rs, &cw, 8, 0, &mut rng);
            if let Some(decoded) = rs.decode(&received) {
                let recw = rs.encode(&decoded);
                let dis = received
                    .iter()
                    .zip(&recw)
                    .filter(|(r, c)| r.is_some_and(|v| v != **c))
                    .count();
                assert!(dis <= 4, "returned word outside claimed radius");
                junk_accepted += 1;
            }
        }
        // Some decodes may land on *other* valid codewords (expected when
        // corruption exceeds half distance); they must still be codewords
        // within radius of the received word — asserted above.
        let _ = junk_accepted;
    }

    #[test]
    fn max_errors_accounting() {
        let rs = ReedSolomon::new(4, 15, 5);
        assert_eq!(rs.max_errors(0), Some(5));
        assert_eq!(rs.max_errors(4), Some(3));
        assert_eq!(rs.max_errors(10), Some(0));
        assert_eq!(rs.max_errors(11), None);
    }

    #[test]
    #[should_panic(expected = "exceeds GF")]
    fn rejects_overlong_block() {
        let _ = ReedSolomon::new(4, 16, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn decodes_any_pattern_within_radius(
            seed in 0u64..10_000,
            k in 3usize..8,
            errors in 0usize..4,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 15usize;
            let rs = ReedSolomon::new(4, n, k);
            let budget = n - k;
            let errors = errors.min(budget / 2);
            let erasures = (budget - 2 * errors).min(3);
            let msg: Vec<u16> = (0..k).map(|_| rng.gen_range(0..16)).collect();
            let cw = rs.encode(&msg);
            let received = corrupt(&rs, &cw, errors, erasures, &mut rng);
            prop_assert_eq!(rs.decode(&received), Some(msg));
        }
    }
}
