//! Las Vegas construction of d-regular spectral expanders.
//!
//! Theorem 3.6 needs, for every code length `M`, a d-regular graph `F` on
//! `M` vertices with second eigenvalue `λ ≤ λ₀ = α·d`. The paper's
//! footnote 7: *"the construction only needs a spectral expander … a
//! random graph is a spectral expander with high probability, so we can
//! construct an expander for every M in efficient Las Vegas time."*
//! Random d-regular graphs are near-Ramanujan (`λ ≈ 2√(d−1)`) w.h.p.
//! (Friedman's theorem), so for `λ₀/d ≥ 2.1/√d` a handful of attempts
//! suffices; we verify each candidate exactly by power iteration.

use crate::graph::Graph;
use crate::spectral::second_eigenvalue_regular;
use hh_math::rng::{derive_seed, seeded_rng};
use rand::seq::SliceRandom;

/// A verified d-regular expander with its certified eigenvalue bound.
#[derive(Debug, Clone)]
pub struct ExpanderGraph {
    graph: Graph,
    degree: usize,
    lambda: f64,
    /// Neighbor table: `neighbors[m][k]` = k-th neighbor of vertex m, the
    /// `Γ(m)_k` of the paper's encoding.
    neighbors: Vec<Vec<u32>>,
}

impl ExpanderGraph {
    /// Number of vertices `M`.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Regular degree `d`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The verified second-eigenvalue magnitude.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// `Γ(m)_k`: the k-th neighbor of vertex `m` (fixed order).
    pub fn neighbor(&self, m: usize, k: usize) -> u32 {
        self.neighbors[m][k]
    }

    /// All neighbors of `m` in fixed order.
    pub fn neighbors(&self, m: usize) -> &[u32] {
        &self.neighbors[m]
    }

    /// Underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Lemma B.1 (expander mixing / Alon–Chung): lower bound on the edge
    /// boundary of a set of size `s`: `|∂S| ≥ (d − λ)(1 − s/M)·s`.
    pub fn mixing_boundary_bound(&self, s: usize) -> f64 {
        let m = self.num_vertices() as f64;
        let s = s as f64;
        (self.degree as f64 - self.lambda) * (1.0 - s / m) * s
    }
}

/// Sample one candidate d-regular simple graph (permutation model):
/// union of `d` random perfect matchings on vertex copies, resampled until
/// simple. `M·d` must be even and `d < M`.
fn random_regular(m: usize, d: usize, seed: u64) -> Option<Graph> {
    let mut rng = seeded_rng(seed);
    // Pairing model with up to a few repair attempts per matching.
    'outer: for _attempt in 0..200 {
        let mut adj: Vec<Vec<u32>> = vec![Vec::with_capacity(d); m];
        let mut stubs: Vec<u32> = (0..m as u32)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        stubs.shuffle(&mut rng);
        let mut used: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let mut ok = true;
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            let key = (u.min(v), u.max(v));
            if u == v || !used.insert(key) {
                ok = false;
                break;
            }
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        if !ok {
            continue 'outer;
        }
        let mut g = Graph::new(m);
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                if (u as u32) < v {
                    g.add_edge(u as u32, v);
                }
            }
        }
        return Some(g);
    }
    None
}

/// Las Vegas expander construction: sample candidates until the verified
/// second eigenvalue is at most `lambda0`.
///
/// Panics if `m·d` is odd, `d >= m`, or if `lambda0 < 2.2·sqrt(d−1)`
/// (below the Ramanujan floor no random graph will ever pass — a caller
/// bug, not bad luck).
pub fn expander(m: usize, d: usize, lambda0: f64, seed: u64) -> ExpanderGraph {
    assert!(m >= 3, "need at least 3 vertices, got {m}");
    assert!(d >= 3, "degree must be >= 3 for expansion, got {d}");
    assert!(d < m, "degree {d} must be below vertex count {m}");
    assert!((m * d).is_multiple_of(2), "M*d must be even (M={m}, d={d})");
    let ramanujan = 2.0 * ((d - 1) as f64).sqrt();
    assert!(
        lambda0 >= ramanujan.min(d as f64 * 0.99),
        "lambda0 = {lambda0} below the Ramanujan bound {ramanujan}; unreachable"
    );
    for attempt in 0..10_000u64 {
        let cand_seed = derive_seed(seed, attempt);
        let Some(g) = random_regular(m, d, cand_seed) else {
            continue;
        };
        // Require connectivity (disconnected graphs have λ = d).
        if g.connected_components().len() != 1 {
            continue;
        }
        let lambda = second_eigenvalue_regular(&g, derive_seed(cand_seed, 1));
        if lambda <= lambda0 {
            let neighbors: Vec<Vec<u32>> = (0..m as u32)
                .map(|v| {
                    let mut ns = g.neighbors(v).to_vec();
                    ns.sort_unstable();
                    ns
                })
                .collect();
            return ExpanderGraph {
                graph: g,
                degree: d,
                lambda,
                neighbors,
            };
        }
    }
    panic!("no (M={m}, d={d}, λ₀={lambda0}) expander found in 10000 attempts");
}

/// Sample a *uniformly random* d-regular graph for use as a non-verified
/// test subject (may be disconnected or a poor expander).
pub fn random_regular_graph(m: usize, d: usize, seed: u64) -> Graph {
    for attempt in 0..10_000u64 {
        if let Some(g) = random_regular(m, d, derive_seed(seed, attempt)) {
            return g;
        }
    }
    panic!("failed to sample a simple {d}-regular graph on {m} vertices");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_regular_verified_expander() {
        for &(m, d) in &[(16usize, 4usize), (31, 6), (64, 6)] {
            let lambda0 = 2.2 * ((d - 1) as f64).sqrt();
            let e = expander(m, d, lambda0, 42);
            assert_eq!(e.num_vertices(), m);
            assert_eq!(e.degree(), d);
            assert!(e.lambda() <= lambda0);
            for v in 0..m as u32 {
                assert_eq!(e.graph().degree(v), d, "vertex {v} degree");
                assert_eq!(e.neighbors(v as usize).len(), d);
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = expander(20, 4, 2.2 * 3f64.sqrt(), 7);
        let b = expander(20, 4, 2.2 * 3f64.sqrt(), 7);
        for m in 0..20 {
            assert_eq!(a.neighbors(m), b.neighbors(m));
        }
    }

    #[test]
    fn mixing_lemma_holds_on_all_small_sets() {
        // Exhaustively check Lemma B.1 on every subset of a small expander.
        let e = expander(12, 4, 2.2 * 3f64.sqrt(), 3);
        let m = e.num_vertices();
        for mask in 1u32..(1 << m) {
            let set: Vec<u32> = (0..m as u32).filter(|&v| mask >> v & 1 == 1).collect();
            if set.len() == m {
                continue;
            }
            let bound = e.mixing_boundary_bound(set.len());
            let actual = e.graph().boundary(&set) as f64;
            assert!(
                actual >= bound - 1e-9,
                "mixing violated on |S|={}: {actual} < {bound}",
                set.len()
            );
        }
    }

    #[test]
    fn neighbor_table_matches_graph() {
        let e = expander(16, 4, 2.2 * 3f64.sqrt(), 9);
        for m in 0..16usize {
            let mut from_graph = e.graph().neighbors(m as u32).to_vec();
            from_graph.sort_unstable();
            assert_eq!(e.neighbors(m), from_graph.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn rejects_odd_total_degree() {
        let _ = expander(15, 3, 3.0, 1);
    }

    #[test]
    #[should_panic(expected = "below the Ramanujan bound")]
    fn rejects_unreachable_lambda() {
        let _ = expander(16, 4, 0.5, 1);
    }
}
