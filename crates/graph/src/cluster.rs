//! Cluster-preserving clustering (the Theorem B.3 substrate).
//!
//! Appendix B reduces decoding of the unique-list-recoverable code to the
//! following task: the layered graph `G` contains, for every heavy hitter,
//! an *η-spectral cluster* (Definition B.2) — a vertex set that is an
//! expander copy internally, with at most an η-fraction of its edge volume
//! leaving it — plus `O(α d M)` adversarial noise edges. Recover every such
//! cluster up to `O(η)` volume.
//!
//! We implement recursive spectral partitioning: split connected
//! components along Fiedler sweep cuts while a cut of conductance below a
//! threshold `φ` exists. Inside an honest cluster every cut has
//! conductance `≳ 1/2 − λ₀/d` (expander mixing lemma), while cuts along
//! cluster boundaries have conductance `O(η)`; any `φ` strictly between
//! separates, and the defaults leave a wide margin. This matches the
//! guarantee consumed by the decoder (see DESIGN.md §5 for the
//! substitution note vs. \[22\]'s algorithm).

use crate::graph::Graph;
use crate::spectral::fiedler_embedding;
use hh_math::rng::derive_seed;

/// Tuning for [`spectral_clusters`].
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Split a component while it has a sweep cut of conductance below
    /// this threshold. Must separate intra-cluster conductance (≈ 0.3–0.5
    /// for the expanders used here) from inter-cluster conductance (O(η)).
    pub conductance_threshold: f64,
    /// Components smaller than this are emitted without further splitting.
    pub min_cluster_size: usize,
    /// Maximum recursion depth (safety valve; never reached on honest
    /// inputs).
    pub max_depth: usize,
    /// Seed for the power-iteration start vectors.
    pub seed: u64,
}

impl Default for ClusterParams {
    fn default() -> Self {
        Self {
            // Measured internal sweep-cut conductance of the random
            // regular expanders used here: >= 0.13 at d = 4, >= 0.21 at
            // d = 6 (see exp_ablations AB.2). Boundary cuts in the
            // decoder's graphs sit at O(alpha) << 0.1.
            conductance_threshold: 0.1,
            min_cluster_size: 3,
            max_depth: 40,
            seed: 0x5EED_C1B5,
        }
    }
}

/// Find the minimum-conductance Fiedler sweep cut of `g`.
///
/// Returns `(set, conductance)` where `set` is the smaller-volume side; or
/// `None` for graphs with fewer than 2 vertices or no edges.
pub fn best_sweep_cut(g: &Graph, seed: u64) -> Option<(Vec<u32>, f64)> {
    let n = g.num_vertices();
    if n < 2 || g.num_edges() == 0 {
        return None;
    }
    let emb = fiedler_embedding(g, seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        emb[a as usize]
            .partial_cmp(&emb[b as usize])
            .expect("NaN in Fiedler embedding")
    });
    let total_vol = 2 * g.num_edges();
    let mut in_set = vec![false; n];
    let mut vol = 0usize;
    let mut boundary = 0usize;
    let mut best: Option<(usize, f64)> = None;
    for (idx, &v) in order.iter().enumerate().take(n - 1) {
        let deg = g.degree(v);
        let to_set = g
            .neighbors(v)
            .iter()
            .filter(|&&u| in_set[u as usize])
            .count();
        in_set[v as usize] = true;
        vol += deg;
        boundary = boundary + deg - 2 * to_set;
        let denom = vol.min(total_vol - vol);
        if denom == 0 {
            continue;
        }
        let phi = boundary as f64 / denom as f64;
        if best.is_none_or(|(_, b)| phi < b) {
            best = Some((idx, phi));
        }
    }
    let (cut_idx, phi) = best?;
    let side: Vec<u32> = order[..=cut_idx].to_vec();
    // Return the smaller-volume side for symmetry with conductance.
    let vol_side = g.volume(&side);
    if 2 * vol_side <= total_vol {
        Some((side, phi))
    } else {
        let comp: Vec<u32> = order[cut_idx + 1..].to_vec();
        Some((comp, phi))
    }
}

/// Recursive spectral partitioning into clusters (Theorem B.3 interface).
///
/// Output sets are disjoint, sorted internally, and cover every non-isolated
/// vertex. Isolated vertices are dropped (they carry no code information).
pub fn spectral_clusters(g: &Graph, params: &ClusterParams) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for comp in g.connected_components() {
        if comp.len() == 1 && g.degree(comp[0]) == 0 {
            continue; // isolated vertex
        }
        split_recursive(g, comp, params, 0, &mut out);
    }
    out
}

fn split_recursive(
    g: &Graph,
    vertices: Vec<u32>,
    params: &ClusterParams,
    depth: usize,
    out: &mut Vec<Vec<u32>>,
) {
    if vertices.len() <= params.min_cluster_size || depth >= params.max_depth {
        out.push(vertices);
        return;
    }
    let (sub, label_map) = g.induced(&vertices);
    let cut = best_sweep_cut(&sub, derive_seed(params.seed, depth as u64));
    match cut {
        Some((side, phi)) if phi < params.conductance_threshold && !side.is_empty() => {
            let in_side: std::collections::HashSet<u32> = side.iter().copied().collect();
            let (mut a, mut b): (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
            for (local, &orig) in label_map.iter().enumerate() {
                if in_side.contains(&(local as u32)) {
                    a.push(orig);
                } else {
                    b.push(orig);
                }
            }
            if a.is_empty() || b.is_empty() {
                out.push(vertices);
                return;
            }
            // The two sides may themselves be disconnected after the cut;
            // recurse through component discovery again.
            for part in [a, b] {
                let (part_sub, part_map) = g.induced(&part);
                for comp in part_sub.connected_components() {
                    let orig: Vec<u32> = comp.iter().map(|&v| part_map[v as usize]).collect();
                    split_recursive(g, orig, params, depth + 1, out);
                }
            }
        }
        _ => out.push(vertices),
    }
}

/// Single-pass low-degree pruning: drop vertices of `set` whose degree
/// *within `set`* is at most `min_degree`. This is exactly the cleanup
/// step of Appendix B ("we remove any vertex from W′ of degree ≤ d/2");
/// a single pass is deliberate — iterating can cascade through an honest
/// cluster that has already lost a few coordinates to erasures.
pub fn prune_low_degree(g: &Graph, set: &[u32], min_degree: usize) -> Vec<u32> {
    let inside: std::collections::HashSet<u32> = set.iter().copied().collect();
    set.iter()
        .copied()
        .filter(|&v| {
            g.neighbors(v)
                .iter()
                .filter(|&&u| inside.contains(&u))
                .count()
                > min_degree
        })
        .collect()
}

/// Iterative variant of [`prune_low_degree`]: repeat until fixpoint.
/// Stronger junk removal, but can cascade through damaged honest clusters
/// — use only when erasure rates are known to be tiny.
pub fn prune_low_degree_iterative(g: &Graph, set: &[u32], min_degree: usize) -> Vec<u32> {
    let mut current: Vec<u32> = set.to_vec();
    loop {
        let kept = prune_low_degree(g, &current, min_degree);
        if kept.len() == current.len() {
            return kept;
        }
        current = kept;
    }
}

/// Definition B.2 checker (sampled): verifies that `w` is an η-spectral
/// cluster of `g` against the boundary condition exactly and the subset
/// condition on `samples` random subsets plus all singletons.
///
/// A `false` answer is definitive for the tested subsets; `true` means "no
/// violation found" (the definition quantifies over all subsets).
pub fn is_eta_cluster_sampled(g: &Graph, w: &[u32], eta: f64, samples: usize, seed: u64) -> bool {
    use rand::Rng;
    let vol_w = g.volume(w) as f64;
    if vol_w == 0.0 {
        return false;
    }
    if g.boundary(w) as f64 > eta * vol_w {
        return false;
    }
    let mut rng = hh_math::rng::seeded_rng(seed);
    let check = |a: &[u32]| -> bool {
        let in_a: std::collections::HashSet<u32> = a.iter().copied().collect();
        let b: Vec<u32> = w.iter().copied().filter(|v| !in_a.contains(v)).collect();
        let r = g.volume(a) as f64 / vol_w;
        let cut = g.cut_edges(a, &b) as f64;
        cut >= (r * (1.0 - r) - eta) * vol_w - 1e-9
    };
    for &v in w {
        if !check(&[v]) {
            return false;
        }
    }
    // Fiedler sweep cuts of the induced subgraph. Subset-condition
    // violations are witnessed by sparse cuts of W, and uniform subset
    // sampling essentially never finds one (a planted half/half split is
    // hit with probability 2^-|W|); the sweep family contains a
    // near-minimum-conductance cut whenever one exists (Cheeger), so it
    // catches exactly the witnesses sampling misses.
    let (induced, verts) = g.induced(w);
    if verts.len() >= 3 && induced.num_edges() > 0 {
        let emb = fiedler_embedding(&induced, derive_seed(seed, 0xF1ED));
        let mut order: Vec<usize> = (0..verts.len()).collect();
        order.sort_by(|&a, &b| emb[a].total_cmp(&emb[b]));
        for cut in 1..order.len() {
            let a: Vec<u32> = order[..cut].iter().map(|&i| verts[i]).collect();
            if !check(&a) {
                return false;
            }
        }
    }
    for _ in 0..samples {
        let a: Vec<u32> = w.iter().copied().filter(|_| rng.gen::<bool>()).collect();
        if a.is_empty() || a.len() == w.len() {
            continue;
        }
        if !check(&a) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expander::expander;

    /// Disjoint union of `k` expander copies with `noise` random cross
    /// edges — the shape App. B's decoder feeds the clustering algorithm.
    fn planted_clusters(
        k: usize,
        m: usize,
        d: usize,
        noise: usize,
        seed: u64,
    ) -> (Graph, Vec<Vec<u32>>) {
        use rand::Rng;
        let base = expander(m, d, 2.3 * ((d - 1) as f64).sqrt(), seed);
        let mut g = Graph::new(k * m);
        let mut truth = Vec::new();
        for c in 0..k {
            let off = (c * m) as u32;
            for v in 0..m as u32 {
                for &u in base.neighbors(v as usize) {
                    if v < u {
                        g.add_edge(off + v, off + u);
                    }
                }
            }
            truth.push((off..off + m as u32).collect::<Vec<_>>());
        }
        let mut rng = hh_math::rng::seeded_rng(derive_seed(seed, 999));
        let mut added = 0usize;
        while added < noise {
            let a = rng.gen_range(0..(k * m) as u32);
            let b = rng.gen_range(0..(k * m) as u32);
            if a / m as u32 != b / m as u32 {
                g.add_edge(a, b);
                added += 1;
            }
        }
        (g, truth)
    }

    fn jaccard(a: &[u32], b: &[u32]) -> f64 {
        let sa: std::collections::HashSet<_> = a.iter().collect();
        let sb: std::collections::HashSet<_> = b.iter().collect();
        let inter = sa.intersection(&sb).count();
        inter as f64 / (sa.len() + sb.len() - inter) as f64
    }

    #[test]
    fn sweep_cut_finds_bottleneck() {
        // Two triangles joined by one edge.
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            g.add_edge(a, b);
        }
        let (side, phi) = best_sweep_cut(&g, 1).expect("cut exists");
        assert!(phi <= 1.0 / 7.0 + 1e-9, "conductance {phi}");
        let mut s = side.clone();
        s.sort_unstable();
        assert!(s == vec![0, 1, 2] || s == vec![3, 4, 5], "side {s:?}");
    }

    #[test]
    fn clusters_isolated_expanders_exactly() {
        let (g, truth) = planted_clusters(4, 24, 4, 0, 11);
        let found = spectral_clusters(&g, &ClusterParams::default());
        assert_eq!(found.len(), 4, "found {} clusters", found.len());
        for t in &truth {
            let best = found.iter().map(|f| jaccard(f, t)).fold(0.0f64, f64::max);
            assert!(best > 0.999, "cluster missed: jaccard {best}");
        }
    }

    #[test]
    fn clusters_survive_noise_edges() {
        // αdM-style noise: 10 cross edges against 4 copies of a 24-vertex
        // 4-regular expander (48 internal edges each).
        let (g, truth) = planted_clusters(4, 24, 4, 10, 13);
        let found = spectral_clusters(&g, &ClusterParams::default());
        for t in &truth {
            let best = found.iter().map(|f| jaccard(f, t)).fold(0.0f64, f64::max);
            assert!(best > 0.8, "cluster degraded: best jaccard {best}");
        }
    }

    #[test]
    fn expander_is_not_split() {
        // A single expander must come back as one cluster: all its cuts
        // have conductance far above the threshold.
        let e = expander(40, 6, 2.3 * 5f64.sqrt(), 17);
        let found = spectral_clusters(e.graph(), &ClusterParams::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].len(), 40);
    }

    #[test]
    fn prune_removes_dangling_vertices() {
        let mut g = Graph::new(5);
        // Triangle 0-1-2 plus pendant path 2-3-4.
        for (a, b) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)] {
            g.add_edge(a, b);
        }
        // Single pass removes only vertex 4 (in-set degree 1).
        let kept = prune_low_degree(&g, &[0, 1, 2, 3, 4], 1);
        assert_eq!(kept, vec![0, 1, 2, 3]);
        // The iterative variant cascades: 4 drops, then 3.
        let kept_it = prune_low_degree_iterative(&g, &[0, 1, 2, 3, 4], 1);
        assert_eq!(kept_it, vec![0, 1, 2]);
        // min_degree 0 keeps everything with at least one in-set edge.
        let kept0 = prune_low_degree(&g, &[0, 1, 2, 3, 4], 0);
        assert_eq!(kept0.len(), 5);
    }

    #[test]
    fn eta_cluster_checker_accepts_expander_rejects_split() {
        let (g, truth) = planted_clusters(2, 24, 4, 4, 29);
        // An honest cluster passes with generous eta.
        assert!(is_eta_cluster_sampled(&g, &truth[0], 0.3, 200, 5));
        // The union of both clusters fails the subset condition: cutting
        // along the planted boundary gives far fewer than r(1-r)·vol edges.
        let both: Vec<u32> = (0..48).collect();
        assert!(!is_eta_cluster_sampled(&g, &both, 0.05, 200, 5));
    }

    #[test]
    fn covers_all_non_isolated_vertices() {
        let (g, _) = planted_clusters(3, 16, 4, 6, 31);
        let found = spectral_clusters(&g, &ClusterParams::default());
        let mut all: Vec<u32> = found.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 48, "clusters must partition the vertices");
    }
}
