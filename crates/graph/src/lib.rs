//! Expander graphs and cluster-preserving spectral clustering.
//!
//! Two substrates of the paper live here:
//!
//! 1. The **d-regular spectral expander** `F` on `M` vertices used by the
//!    unique-list-recoverable code of Theorem 3.6. The paper's footnote 7
//!    licenses a Las Vegas construction ("a random graph is a spectral
//!    expander with high probability, and spectral expansion can be
//!    verified efficiently"), which is what [`expander::expander`]
//!    implements: sample random regular graphs and verify the second
//!    eigenvalue by power iteration until one passes.
//!
//! 2. The **clustering algorithm of Theorem B.3** (from Larsen–Nelson–
//!    Nguyen–Thorup \[22\]): given a graph whose η-spectral clusters
//!    (Definition B.2) are near-disjoint expander copies plus noise edges,
//!    recover each cluster up to O(η) volume. We implement recursive
//!    spectral partitioning with conductance sweep cuts
//!    ([`cluster::spectral_clusters`]) — see DESIGN.md §5 for why this
//!    substitution preserves the contract Appendix B consumes.

pub mod cluster;
pub mod expander;
pub mod graph;
pub mod spectral;

pub use expander::{expander, ExpanderGraph};
pub use graph::Graph;
