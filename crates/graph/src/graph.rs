//! Simple undirected graph with the primitives the clustering and mixing
//! analyses need: degrees, volumes, boundaries, conductance, components.

use std::collections::HashSet;

/// A simple undirected graph on vertices `0..n` (adjacency-list storage,
/// parallel edges and self-loops rejected at insertion).
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl Graph {
    /// Empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Build from an edge list, silently deduplicating repeats and
    /// dropping self-loops.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        let mut g = Self::new(n);
        for (u, v) in edges {
            let key = (u.min(v), u.max(v));
            if u != v && seen.insert(key) {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Insert edge `{u, v}`; panics on self-loops or out-of-range vertices.
    /// Duplicate insertion is the caller's responsibility (use
    /// [`Graph::from_edges`] to deduplicate).
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(u != v, "self-loop at {u}");
        assert!((u as usize) < self.adj.len() && (v as usize) < self.adj.len());
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.edges += 1;
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Volume of a vertex set: sum of degrees.
    pub fn volume(&self, set: &[u32]) -> usize {
        set.iter().map(|&v| self.degree(v)).sum()
    }

    /// Number of edges with exactly one endpoint in `set` (`|∂S|`).
    pub fn boundary(&self, set: &[u32]) -> usize {
        let inside: HashSet<u32> = set.iter().copied().collect();
        set.iter()
            .map(|&v| {
                self.adj[v as usize]
                    .iter()
                    .filter(|&&u| !inside.contains(&u))
                    .count()
            })
            .sum()
    }

    /// Edges with both endpoints inside `set` (each counted once).
    pub fn internal_edges(&self, set: &[u32]) -> usize {
        let inside: HashSet<u32> = set.iter().copied().collect();
        let twice: usize = set
            .iter()
            .map(|&v| {
                self.adj[v as usize]
                    .iter()
                    .filter(|&&u| inside.contains(&u))
                    .count()
            })
            .sum();
        twice / 2
    }

    /// Edges between disjoint sets `a` and `b`.
    pub fn cut_edges(&self, a: &[u32], b: &[u32]) -> usize {
        let in_b: HashSet<u32> = b.iter().copied().collect();
        a.iter()
            .map(|&v| {
                self.adj[v as usize]
                    .iter()
                    .filter(|&&u| in_b.contains(&u))
                    .count()
            })
            .sum()
    }

    /// Conductance of the cut `(set, V∖set)`:
    /// `|∂S| / min(vol(S), vol(V∖S))`; `1.0` when either side has zero
    /// volume (a degenerate cut nobody should prefer).
    pub fn conductance(&self, set: &[u32]) -> f64 {
        let vol_s = self.volume(set);
        let vol_total = 2 * self.edges;
        let vol_rest = vol_total.saturating_sub(vol_s);
        let denom = vol_s.min(vol_rest);
        if denom == 0 {
            return 1.0;
        }
        self.boundary(set) as f64 / denom as f64
    }

    /// Connected components (vertices with degree 0 form singleton
    /// components).
    pub fn connected_components(&self) -> Vec<Vec<u32>> {
        let n = self.adj.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            stack.push(s as u32);
            let mut comp = Vec::new();
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &u in &self.adj[v as usize] {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        stack.push(u);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// Subgraph induced on `set`, with a map back to original labels.
    pub fn induced(&self, set: &[u32]) -> (Graph, Vec<u32>) {
        let mut index = std::collections::HashMap::new();
        for (i, &v) in set.iter().enumerate() {
            index.insert(v, i as u32);
        }
        let mut g = Graph::new(set.len());
        for (i, &v) in set.iter().enumerate() {
            for &u in &self.adj[v as usize] {
                if let Some(&j) = index.get(&u) {
                    if (i as u32) < j {
                        g.add_edge(i as u32, j);
                    }
                }
            }
        }
        (g, set.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i as u32, i as u32 + 1);
        }
        g
    }

    #[test]
    fn degrees_and_edges() {
        let g = path(4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn from_edges_dedups() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (1, 2), (2, 2)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn boundary_and_internal() {
        let g = path(4); // 0-1-2-3
        assert_eq!(g.boundary(&[0, 1]), 1);
        assert_eq!(g.internal_edges(&[0, 1]), 1);
        assert_eq!(g.boundary(&[1, 2]), 2);
        assert_eq!(g.cut_edges(&[0, 1], &[2, 3]), 1);
    }

    #[test]
    fn conductance_path_middle_cut() {
        let g = path(4);
        // Cut {0,1}: boundary 1, vol 3, rest vol 3 -> 1/3.
        assert!((g.conductance(&[0, 1]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.conductance(&[]), 1.0);
    }

    #[test]
    fn components_found() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let mut comps = g.connected_components();
        comps.sort_by_key(|c| c[0]);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn induced_subgraph_preserves_edges() {
        let g = path(5);
        let (sub, map) = g.induced(&[1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    fn volume_is_degree_sum() {
        let g = path(4);
        assert_eq!(g.volume(&[0, 1, 2, 3]), 6);
        assert_eq!(g.volume(&[1, 2]), 4);
    }
}
