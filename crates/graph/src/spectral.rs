//! Spectral primitives: second eigenvalue of regular graphs (expander
//! verification) and Fiedler vectors of general graphs (sweep cuts).

use crate::graph::Graph;
use hh_math::rng::seeded_rng;
use rand::Rng;

/// Number of power-iteration rounds; graphs in this workspace have at most
/// a few thousand vertices, where this is plenty for 1e-6 accuracy on the
/// dominant eigenvalue.
const POWER_ITERS: usize = 300;

/// Largest-magnitude eigenvalue of the adjacency matrix *after deflating
/// the all-ones direction* — for a connected d-regular graph this is
/// `λ(G) = max(λ_2, |λ_min|)`, the quantity expander constructions bound.
///
/// Power iteration on `B·x = A·x − (1ᵀx/n)·deg-weighted projection`; for
/// regular graphs the all-ones vector is exactly the top eigenvector so
/// simple mean-removal is an exact deflation.
pub fn second_eigenvalue_regular(g: &Graph, seed: u64) -> f64 {
    let n = g.num_vertices();
    assert!(n >= 2, "need at least two vertices");
    let d = g.degree(0);
    debug_assert!(
        (0..n as u32).all(|v| g.degree(v) == d),
        "graph must be regular"
    );
    let mut rng = seeded_rng(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    remove_mean(&mut x);
    normalize(&mut x);
    let mut lambda = 0.0;
    for _ in 0..POWER_ITERS {
        let mut y = apply_adjacency(g, &x);
        remove_mean(&mut y);
        lambda = norm(&y);
        if lambda < 1e-300 {
            return 0.0;
        }
        for v in y.iter_mut() {
            *v /= lambda;
        }
        x = y;
    }
    lambda
}

/// The Fiedler-style embedding: the second eigenvector of the normalized
/// adjacency `D^{-1/2} A D^{-1/2}`, computed by power iteration with
/// deflation of the known top eigenvector `D^{1/2}·1`.
///
/// Isolated vertices receive embedding value 0. Used by sweep cuts; the
/// *ordering* of the entries is what matters, so modest eigen-accuracy
/// suffices.
pub fn fiedler_embedding(g: &Graph, seed: u64) -> Vec<f64> {
    let n = g.num_vertices();
    let deg: Vec<f64> = (0..n as u32).map(|v| g.degree(v) as f64).collect();
    let sqrt_deg: Vec<f64> = deg.iter().map(|&d| d.sqrt()).collect();
    // Top eigenvector of the normalized adjacency, normalized.
    let mut top = sqrt_deg.clone();
    normalize(&mut top);
    let mut rng = seeded_rng(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    deflate(&mut x, &top);
    normalize(&mut x);
    for _ in 0..POWER_ITERS {
        // y = (I + D^{-1/2} A D^{-1/2}) x / 2 — the lazy-walk shift keeps
        // the operator PSD so power iteration finds the largest remaining
        // eigenvalue (i.e. the second eigenvector of the walk, the Fiedler
        // direction of the normalized Laplacian).
        let mut y = vec![0.0; n];
        for v in 0..n {
            if deg[v] == 0.0 {
                continue;
            }
            let xv = x[v] / sqrt_deg[v];
            for &u in g.neighbors(v as u32) {
                y[u as usize] += xv / sqrt_deg[u as usize];
            }
        }
        for v in 0..n {
            y[v] = 0.5 * (y[v] + x[v]);
        }
        deflate(&mut y, &top);
        let nrm = norm(&y);
        if nrm < 1e-300 {
            return vec![0.0; n];
        }
        for v in y.iter_mut() {
            *v /= nrm;
        }
        x = y;
    }
    // Return in vertex space (divide by sqrt degree) for sweep ordering.
    x.iter()
        .zip(&sqrt_deg)
        .map(|(&v, &s)| if s > 0.0 { v / s } else { 0.0 })
        .collect()
}

fn apply_adjacency(g: &Graph, x: &[f64]) -> Vec<f64> {
    let n = g.num_vertices();
    let mut y = vec![0.0; n];
    for (v, &xv) in x.iter().enumerate() {
        for &u in g.neighbors(v as u32) {
            y[u as usize] += xv;
        }
    }
    y
}

fn remove_mean(x: &mut [f64]) {
    let m = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= m;
    }
}

fn deflate(x: &mut [f64], unit: &[f64]) {
    let dot: f64 = x.iter().zip(unit).map(|(a, b)| a * b).sum();
    for (v, &u) in x.iter_mut().zip(unit) {
        *v -= dot * u;
    }
}

fn norm(x: &[f64]) -> f64 {
    x.iter().map(|&v| v * v).sum::<f64>().sqrt()
}

fn normalize(x: &mut [f64]) {
    let n = norm(x);
    if n > 0.0 {
        for v in x.iter_mut() {
            *v /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i as u32, ((i + 1) % n) as u32);
        }
        g
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i as u32, j as u32);
            }
        }
        g
    }

    #[test]
    fn cycle_second_eigenvalue() {
        // C_n has eigenvalues 2cos(2πk/n); the second largest magnitude is
        // 2cos(2π/n) for even n... (|λ_min| = 2 for even n via k = n/2).
        let g = cycle(8);
        let lam = second_eigenvalue_regular(&g, 1);
        // Eigenvalues of C_8: 2, ±√2, 0, −2 ⇒ deflated max magnitude = 2.
        assert!((lam - 2.0).abs() < 1e-6, "got {lam}");
        let g = cycle(9);
        let lam = second_eigenvalue_regular(&g, 1);
        // C_9 spectrum: 2cos(2πk/9); largest non-trivial magnitude at k=4.
        let want = (1..=4)
            .map(|k| (2.0 * (2.0 * std::f64::consts::PI * k as f64 / 9.0).cos()).abs())
            .fold(0.0f64, f64::max);
        assert!((lam - want).abs() < 1e-5, "got {lam}, want {want}");
    }

    #[test]
    fn complete_graph_second_eigenvalue() {
        // K_n has spectrum {n−1, −1, …, −1}: deflated magnitude 1.
        let g = complete(10);
        let lam = second_eigenvalue_regular(&g, 2);
        assert!((lam - 1.0).abs() < 1e-6, "got {lam}");
    }

    #[test]
    fn fiedler_separates_two_cliques() {
        // Two K_5s joined by a single edge: the Fiedler embedding must give
        // opposite signs to the two cliques.
        let mut g = Graph::new(10);
        for i in 0..5u32 {
            for j in i + 1..5 {
                g.add_edge(i, j);
            }
        }
        for i in 5..10u32 {
            for j in i + 1..10 {
                g.add_edge(i, j);
            }
        }
        g.add_edge(0, 5);
        let emb = fiedler_embedding(&g, 3);
        let side_a: Vec<f64> = (0..5).map(|i| emb[i]).collect();
        let side_b: Vec<f64> = (5..10).map(|i| emb[i]).collect();
        let mean_a = side_a.iter().sum::<f64>() / 5.0;
        let mean_b = side_b.iter().sum::<f64>() / 5.0;
        assert!(
            mean_a * mean_b < 0.0,
            "cliques not separated: {mean_a} vs {mean_b}"
        );
    }

    #[test]
    fn fiedler_handles_isolated_vertices() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        // Vertices 2, 3 isolated.
        let emb = fiedler_embedding(&g, 4);
        assert_eq!(emb.len(), 4);
        assert_eq!(emb[2], 0.0);
        assert_eq!(emb[3], 0.0);
    }
}
