//! Checkers for the Definition 3.1 heavy-hitters contract.
//!
//! Given the true dataset and a protocol's output list, measure exactly
//! what the definition demands: (1) every estimate within `Δ` of the
//! truth, (2) every `Δ`-heavy element present, and the list length
//! `O(n/Δ)`. Used by integration tests and by the experiment harness to
//! report *measured* failure rates next to the theorems' `β`.

use std::collections::HashMap;

/// The outcome of checking one protocol output against Definition 3.1.
#[derive(Debug, Clone)]
pub struct ContractReport {
    /// `Δ`-heavy elements absent from the output (item 2 violations).
    pub missed_heavy: Vec<u64>,
    /// Worst `|f̂_S(x) − f_S(x)|` over the output list (item 1).
    pub max_estimation_error: f64,
    /// Number of entries in the output list.
    pub list_len: usize,
    /// The `n/Δ` budget the list length is compared against.
    pub list_budget: f64,
    /// True count of each output element (for inspection).
    pub output_truths: Vec<(u64, f64, f64)>,
}

impl ContractReport {
    /// Definition 3.1 satisfied at error `Δ` with list constant `c`.
    pub fn satisfied(&self, delta: f64, list_constant: f64) -> bool {
        self.missed_heavy.is_empty()
            && self.max_estimation_error <= delta
            && (self.list_len as f64) <= list_constant * self.list_budget.max(1.0)
    }
}

/// Exact histogram of a dataset.
pub fn histogram(data: &[u64]) -> HashMap<u64, u64> {
    let mut h = HashMap::new();
    for &x in data {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}

/// Check a protocol output against Definition 3.1 at error `Δ`.
pub fn check_contract(data: &[u64], estimates: &[(u64, f64)], delta: f64) -> ContractReport {
    let hist = histogram(data);
    let est_map: HashMap<u64, f64> = estimates.iter().copied().collect();
    let missed_heavy: Vec<u64> = hist
        .iter()
        .filter(|&(_, &c)| c as f64 >= delta)
        .filter(|&(x, _)| !est_map.contains_key(x))
        .map(|(&x, _)| x)
        .collect();
    let mut max_err = 0.0f64;
    let mut output_truths = Vec::with_capacity(estimates.len());
    for &(x, f_hat) in estimates {
        let truth = *hist.get(&x).unwrap_or(&0) as f64;
        max_err = max_err.max((f_hat - truth).abs());
        output_truths.push((x, truth, f_hat));
    }
    ContractReport {
        missed_heavy,
        max_estimation_error: max_err,
        list_len: estimates.len(),
        list_budget: data.len() as f64 / delta.max(1.0),
        output_truths,
    }
}

/// Recall of `Δ`-heavy elements: fraction present in the output.
pub fn heavy_recall(data: &[u64], estimates: &[(u64, f64)], delta: f64) -> f64 {
    let hist = histogram(data);
    let heavy: Vec<u64> = hist
        .iter()
        .filter(|&(_, &c)| c as f64 >= delta)
        .map(|(&x, _)| x)
        .collect();
    if heavy.is_empty() {
        return 1.0;
    }
    let est_set: std::collections::HashSet<u64> = estimates.iter().map(|&(x, _)| x).collect();
    heavy.iter().filter(|x| est_set.contains(x)).count() as f64 / heavy.len() as f64
}

/// Precision of the output at level `Δ/2`: fraction of reported elements
/// that are genuinely `Δ/2`-frequent (the keep-threshold contract).
pub fn precision_at_half(data: &[u64], estimates: &[(u64, f64)], delta: f64) -> f64 {
    if estimates.is_empty() {
        return 1.0;
    }
    let hist = histogram(data);
    let hits = estimates
        .iter()
        .filter(|&&(x, _)| *hist.get(&x).unwrap_or(&0) as f64 >= delta / 4.0)
        .count();
    hits as f64 / estimates.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_detects_missed_heavy() {
        let data = vec![1, 1, 1, 1, 2, 3];
        let est = vec![(2u64, 1.0)];
        let rep = check_contract(&data, &est, 3.0);
        assert_eq!(rep.missed_heavy, vec![1]);
        assert!(!rep.satisfied(3.0, 4.0));
    }

    #[test]
    fn contract_checks_estimation_error() {
        let data = vec![1, 1, 1, 1];
        let est = vec![(1u64, 10.0)];
        let rep = check_contract(&data, &est, 2.0);
        assert!(rep.missed_heavy.is_empty());
        assert_eq!(rep.max_estimation_error, 6.0);
        assert!(!rep.satisfied(2.0, 4.0));
        assert!(rep.satisfied(6.0, 4.0));
    }

    #[test]
    fn recall_and_precision() {
        let data = vec![1, 1, 1, 2, 2, 2, 3];
        let est = vec![(1u64, 3.0), (9u64, 3.0)];
        assert_eq!(heavy_recall(&data, &est, 3.0), 0.5);
        assert_eq!(precision_at_half(&data, &est, 3.0), 0.5);
        assert_eq!(heavy_recall(&data, &est, 100.0), 1.0);
    }

    #[test]
    fn histogram_counts() {
        let h = histogram(&[5, 5, 7]);
        assert_eq!(h[&5], 2);
        assert_eq!(h[&7], 1);
    }
}
