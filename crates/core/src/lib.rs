//! `PrivateExpanderSketch` — locally differentially private heavy hitters
//! with optimal worst-case error (Bun–Nelson–Stemmer, PODS 2018, §3).
//!
//! The protocol solves Definition 3.1: report every `Δ`-heavy domain
//! element (with an estimate within `Δ` of its true count) using a single
//! `ε`-LDP message per user, with
//!
//! ```text
//! Δ* = O( (1/ε) · sqrt( n · log(|X|/β) ) )
//! ```
//!
//! — optimal in `n`, `|X|`, `ε` **and** the failure probability `β`
//! (Theorem 3.13), improving the `sqrt(log(1/β))` overhead of prior work.
//!
//! Crate layout:
//!
//! * [`params`] — [`SketchParams`]: the paper's `M, Y, B, ℓ, Z` with
//!   practical constants and honest threshold calibration.
//! * [`sketch`] — the algorithm itself (client and server halves).
//! * [`baselines`] — the prior state of the art it is measured against:
//!   [`baselines::bitstogram`] (\[3\]'s single-hash reduction with
//!   repetition, Theorem 3.3) and [`baselines::scan`] (frequency-oracle
//!   domain scan — exact but `Ω(|X|)` server time; also the `n > |X|`
//!   path mentioned under Theorem 3.13).
//! * [`verify`] — checkers for the Definition 3.1 contract.
//! * [`traits`] — the [`traits::HeavyHitterProtocol`] interface shared by
//!   all of the above (and by the sim/bench harness).

pub mod baselines;
pub mod params;
pub mod reduction;
pub mod sketch;
pub mod traits;
pub mod verify;

pub use params::SketchParams;
pub use sketch::{ExpanderSketch, SketchReport, SketchShard};
pub use traits::{HeavyHitterProtocol, WireError, WireReport, WireShard};
