//! The reductions between heavy hitters and frequency oracles that §3 of
//! the paper opens with.
//!
//! *"Observe that constructing a frequency oracle is an easier task than
//! solving the heavy-hitters problem, as every heavy-hitters algorithm is
//! in particular a frequency oracle. Specifically, given a solution `Est`
//! to the heavy-hitters problem, we can estimate the frequency of every
//! `x ∈ X` as `f̂_S(x) = a` if `(x, a) ∈ Est`, or `f̂_S(x) = 0`
//! otherwise."*
//!
//! [`EstimateOracle`] is exactly that reduction: it turns any finished
//! heavy-hitter output into a frequency oracle with worst-case error `Δ`
//! (entries are `Δ`-accurate; absent elements have true count `< Δ`).
//! The reverse reduction (oracle → heavy hitters by scanning) lives in
//! [`crate::baselines::scan`].

use std::collections::HashMap;

/// A frequency oracle derived from a heavy-hitters output list
/// (Definition 3.1 → Definition 3.2).
#[derive(Debug, Clone)]
pub struct EstimateOracle {
    estimates: HashMap<u64, f64>,
    /// The error level `Δ` the underlying protocol was run at.
    delta: f64,
}

impl EstimateOracle {
    /// Wrap a finished heavy-hitters list run at error `Δ`.
    pub fn new(est: &[(u64, f64)], delta: f64) -> Self {
        assert!(delta > 0.0);
        Self {
            estimates: est.iter().copied().collect(),
            delta,
        }
    }

    /// `f̂_S(x)`: the listed estimate, or 0 for unlisted elements.
    pub fn estimate(&self, x: u64) -> f64 {
        self.estimates.get(&x).copied().unwrap_or(0.0)
    }

    /// The worst-case error this oracle guarantees: `Δ` (listed entries
    /// are `Δ`-accurate by item 1 of Definition 3.1; unlisted elements
    /// have `f_S(x) < Δ` by item 2, so answering 0 errs by `< Δ`).
    pub fn error(&self) -> f64 {
        self.delta
    }

    /// Number of stored entries (`O(n/Δ)` by Definition 3.1).
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// Whether the underlying list was empty.
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn listed_and_unlisted_queries() {
        let oracle = EstimateOracle::new(&[(7, 120.0), (9, 80.0)], 50.0);
        assert_eq!(oracle.estimate(7), 120.0);
        assert_eq!(oracle.estimate(9), 80.0);
        assert_eq!(oracle.estimate(1000), 0.0);
        assert_eq!(oracle.error(), 50.0);
        assert_eq!(oracle.len(), 2);
    }

    #[test]
    fn reduction_error_guarantee_holds_on_real_output() {
        // Build an exact "protocol output" satisfying Definition 3.1 and
        // check the induced oracle errs by < delta everywhere.
        let data: Vec<u64> = (0..1000u64)
            .map(|i| if i % 3 == 0 { 5 } else { i % 50 })
            .collect();
        let hist = verify::histogram(&data);
        let delta = 100.0;
        let est: Vec<(u64, f64)> = hist
            .iter()
            .filter(|&(_, &c)| c as f64 >= delta / 2.0)
            .map(|(&x, &c)| (x, c as f64))
            .collect();
        let oracle = EstimateOracle::new(&est, delta);
        for x in 0..60u64 {
            let truth = *hist.get(&x).unwrap_or(&0) as f64;
            assert!(
                (oracle.estimate(x) - truth).abs() < delta,
                "x={x}: {} vs {truth}",
                oracle.estimate(x)
            );
        }
    }

    #[test]
    fn empty_list_is_the_zero_oracle() {
        let oracle = EstimateOracle::new(&[], 10.0);
        assert!(oracle.is_empty());
        assert_eq!(oracle.estimate(3), 0.0);
    }
}
