//! The protocol interface shared by `PrivateExpanderSketch` and its
//! baselines.
//!
//! The interface is **batch-first**: drivers hand protocols whole slices
//! of users at once ([`HeavyHitterProtocol::respond_batch`] /
//! [`HeavyHitterProtocol::collect_batch`]), and protocols are free to
//! ingest them with sharded parallel accumulators. The per-user methods
//! remain the semantic ground truth — the batch methods have default
//! implementations that delegate to them, and every override must be
//! observationally identical (the `batch_equivalence` integration tests
//! enforce this bit-for-bit).
//!
//! Reproducibility contract: user `i`'s client coins are always the
//! stream [`hh_math::rng::client_rng`]`(client_seed, i)` — a pure
//! function of the run seed and the user index — so the reports (and
//! therefore the output of `finish`) do not depend on chunk boundaries,
//! thread count, or processing order.

use hh_math::rng::client_rng;
use rand::Rng;

/// A one-round LDP heavy-hitters protocol (Definition 3.1).
///
/// The object carries the public randomness and server state;
/// [`HeavyHitterProtocol::respond`] is the client algorithm and reads only
/// public state plus the user's own input.
pub trait HeavyHitterProtocol {
    /// The single message a user sends.
    type Report;

    /// Client: user `user_index` holding `x` produces her message.
    fn respond<R: Rng + ?Sized>(&self, user_index: u64, x: u64, rng: &mut R) -> Self::Report;

    /// Client, batched: produce the messages of the contiguous user range
    /// `start_index .. start_index + xs.len()` holding inputs `xs`.
    ///
    /// User `start_index + k` must receive exactly the coins
    /// [`client_rng`]`(client_seed, start_index + k)` — the default does —
    /// so any chunking of the population produces identical reports.
    /// Overrides may hoist per-call work but must preserve this contract.
    fn respond_batch(&self, start_index: u64, xs: &[u64], client_seed: u64) -> Vec<Self::Report> {
        xs.iter()
            .enumerate()
            .map(|(k, &x)| {
                let i = start_index + k as u64;
                self.respond(i, x, &mut client_rng(client_seed, i))
            })
            .collect()
    }

    /// Server: ingest one message.
    fn collect(&mut self, user_index: u64, report: Self::Report);

    /// Server, batched: ingest the messages of the contiguous user range
    /// `start_index .. start_index + reports.len()`.
    ///
    /// Must leave the server in a state observationally identical to
    /// per-user [`HeavyHitterProtocol::collect`] calls (the default).
    /// Overrides may ingest through sharded accumulators in parallel as
    /// long as the merge is order-exact (integer tallies, not floats).
    fn collect_batch(&mut self, start_index: u64, reports: Vec<Self::Report>) {
        for (k, report) in reports.into_iter().enumerate() {
            self.collect(start_index + k as u64, report);
        }
    }

    /// Server: run the aggregation/decoding pipeline; returns the
    /// estimated heavy-hitter list `Est = {(x, f̂_S(x))}`, sorted by
    /// decreasing estimate.
    fn finish(&mut self) -> Vec<(u64, f64)>;

    /// Communication per user in bits.
    fn report_bits(&self) -> usize;

    /// Server working-memory estimate in bytes.
    fn memory_bytes(&self) -> usize;

    /// Total per-user privacy budget consumed.
    fn epsilon(&self) -> f64;

    /// The protocol's detection threshold `Δ`: every element with
    /// `f_S(x) >= Δ` should appear in the output (the quantity the
    /// theorems bound).
    fn detection_threshold(&self) -> f64;
}
