//! The protocol interface shared by `PrivateExpanderSketch` and its
//! baselines: an explicit encoder/aggregator split.
//!
//! # Encoder / aggregator architecture
//!
//! A [`HeavyHitterProtocol`] is two machines connected by a wire:
//!
//! * the **encoder** (client side): [`HeavyHitterProtocol::respond`] /
//!   [`HeavyHitterProtocol::respond_batch`] turn a user's input into a
//!   `Report`, and every `Report` implements [`WireReport`] — an exact
//!   byte encoding — so the paper's logarithmic-message claim is a
//!   measured property (`report_bits()` bounds the encoding up to byte
//!   alignment; pinned by the `wire_conformance` integration tests).
//!   [`HeavyHitterProtocol::respond_encode_batch`] fuses the two steps,
//!   sampling straight into a wire buffer with no intermediate report
//!   vec;
//! * the **aggregator** (server side): ingestion state is first-class
//!   and *mergeable*. A [`HeavyHitterProtocol::Shard`] is the
//!   self-contained partial aggregate one collector node holds;
//!   [`HeavyHitterProtocol::new_shard`] makes an empty one,
//!   [`HeavyHitterProtocol::absorb`] folds a contiguous user range of
//!   reports into it, [`HeavyHitterProtocol::merge`] combines two
//!   shards, and [`HeavyHitterProtocol::finish_shard`] folds a shard
//!   into the server. Shards hold exact integer state, so `merge` is
//!   associative and commutative (observationally) with `new_shard()`
//!   as identity: any shard tree over any partition of the reports
//!   leaves the server bit-for-bit identical to serial per-user
//!   [`HeavyHitterProtocol::collect`] calls. The zero-copy entry point
//!   [`HeavyHitterProtocol::absorb_wire`] folds borrowed wire frames
//!   ([`WireFrames`]) into a shard without constructing `Report`
//!   values — bit-for-bit equal to decode-then-absorb.
//!
//! [`HeavyHitterProtocol::collect_batch`]'s default is the one shared
//! sharding path — absorb chunks on worker threads, merge tree-wise,
//! fold in — replacing the per-protocol parallel accumulators that each
//! implementation used to carry. The distributed driver
//! (`hh_sim::run_heavy_hitter_distributed`) runs the same primitives
//! across simulated collector fleets, with every report round-tripped
//! through its wire encoding.
//!
//! Reproducibility contract: user `i`'s client coins are always the
//! stream [`hh_math::rng::client_rng`]`(client_seed, i)` — a pure
//! function of the run seed and the user index — so the reports (and
//! therefore the output of `finish`) do not depend on chunk boundaries,
//! thread count, collector assignment, or merge order. The
//! `batch_equivalence` and `distributed_merge` integration tests enforce
//! this bit-for-bit.

pub use hh_freq::wire::{FrameError, WireError, WireFrames, WireReport, WireShard};

pub use hh_math::par::FinishScratch;

use hh_freq::wire::encode_reports;
use hh_math::par::{merge_tree, par_chunk_map, shard_chunk_size};
use hh_math::rng::client_rng;
use rand::Rng;

/// A one-round LDP heavy-hitters protocol (Definition 3.1), split into a
/// wire-format encoder and a mergeable aggregator (see the module docs).
///
/// The object carries the public randomness and server state;
/// [`HeavyHitterProtocol::respond`] is the client algorithm and reads only
/// public state plus the user's own input.
pub trait HeavyHitterProtocol {
    /// The single message a user sends, as it crosses the wire.
    type Report: WireReport;

    /// Self-contained, mergeable partial aggregation state: what one
    /// collector node holds after ingesting a subset of the reports.
    ///
    /// Shards are *durable artifacts*: every shard implements
    /// [`WireShard`], an exact byte codec, so a collector's partial
    /// aggregate can be checkpointed to stable storage and a crashed
    /// node recovered by decoding its last snapshot and replaying the
    /// reports since (see `hh_sim::stream`).
    ///
    /// Shards own their state outright (`'static`), so they can cross
    /// type-erasure boundaries — `hh_sim`'s object-safe protocol layer
    /// moves them as `Box<dyn Any>` behind byte-level wire interfaces.
    type Shard: Send + WireShard + 'static;

    /// Client: user `user_index` holding `x` produces her message.
    fn respond<R: Rng + ?Sized>(&self, user_index: u64, x: u64, rng: &mut R) -> Self::Report;

    /// Client, batched: produce the messages of the contiguous user range
    /// `start_index .. start_index + xs.len()` holding inputs `xs`.
    ///
    /// User `start_index + k` must receive exactly the coins
    /// [`client_rng`]`(client_seed, start_index + k)` — the default does —
    /// so any chunking of the population produces identical reports.
    /// Overrides may hoist per-call work but must preserve this contract.
    fn respond_batch(&self, start_index: u64, xs: &[u64], client_seed: u64) -> Vec<Self::Report> {
        xs.iter()
            .enumerate()
            .map(|(k, &x)| {
                let i = start_index + k as u64;
                self.respond(i, x, &mut client_rng(client_seed, i))
            })
            .collect()
    }

    /// Client, fused respond + encode: append the wire frames of the
    /// contiguous user range `start_index .. start_index + xs.len()` to
    /// `out`, returning each frame's length.
    ///
    /// Byte-for-byte identical to
    /// [`HeavyHitterProtocol::respond_batch`] followed by per-report
    /// `encode_into` (the default does exactly that); fused overrides
    /// sample straight into the wire buffer with no intermediate report
    /// vec — `out` is typically a pooled buffer reused across batches,
    /// making the steady-state client phase allocation-free.
    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        encode_reports(&self.respond_batch(start_index, xs, client_seed), out)
    }

    /// Server: ingest one message. The semantic ground truth every shard
    /// path must match observationally.
    fn collect(&mut self, user_index: u64, report: Self::Report);

    /// An empty partial aggregate (the identity of
    /// [`HeavyHitterProtocol::merge`]).
    fn new_shard(&self) -> Self::Shard;

    /// Fold the reports of the contiguous user range
    /// `start_index .. start_index + reports.len()` into `shard`.
    ///
    /// Must be observationally identical to per-user
    /// [`HeavyHitterProtocol::collect`] calls over the same range
    /// (absorbed state is exact — integer tallies, never floats — so
    /// ranges may be absorbed in any order across any number of shards).
    fn absorb(&self, shard: &mut Self::Shard, start_index: u64, reports: &[Self::Report]);

    /// Server, zero-copy: fold borrowed wire frames into `shard` without
    /// constructing `Report` values — frame `k` is user
    /// `start_index + k`'s report.
    ///
    /// Must leave `shard` bit-for-bit identical to decoding every frame
    /// and calling [`HeavyHitterProtocol::absorb`] (the default does
    /// exactly that; the `wire_conformance` proptests pin every override
    /// against it). A corrupt frame — undecodable bytes, or a decoded
    /// value outside the protocol's domain — returns a [`FrameError`]
    /// naming the frame and its byte offset; on `Err` the shard may hold
    /// a partial absorption and must be discarded.
    fn absorb_wire(
        &self,
        shard: &mut Self::Shard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        let mut reports = Vec::with_capacity(frames.len());
        for (k, frame) in frames.iter().enumerate() {
            reports.push(Self::Report::decode(frame).map_err(|e| frames.frame_error(k, e))?);
        }
        self.absorb(shard, start_index, &reports);
        Ok(())
    }

    /// Combine two partial aggregates. Associative and commutative
    /// (observationally), with [`HeavyHitterProtocol::new_shard`] as
    /// identity.
    fn merge(&self, a: Self::Shard, b: Self::Shard) -> Self::Shard;

    /// Fold a partial aggregate into the server state (before
    /// [`HeavyHitterProtocol::finish`]).
    fn finish_shard(&mut self, shard: Self::Shard);

    /// Server, batched: ingest the messages of the contiguous user range
    /// `start_index .. start_index + reports.len()` through the shared
    /// sharding path — absorb chunks into per-thread shards in parallel,
    /// merge tree-wise, fold the result in. Must be (and, with the
    /// default, is) observationally identical to per-user
    /// [`HeavyHitterProtocol::collect`] calls.
    fn collect_batch(&mut self, start_index: u64, reports: Vec<Self::Report>)
    where
        Self: Sync,
        Self::Report: Sync,
    {
        if reports.is_empty() {
            return;
        }
        let chunk = shard_chunk_size(reports.len());
        let shards = {
            let this: &Self = self;
            par_chunk_map(&reports, chunk, 0, |c, reps| {
                let mut shard = this.new_shard();
                this.absorb(&mut shard, start_index + (c * chunk) as u64, reps);
                shard
            })
        };
        if let Some(shard) = merge_tree(shards, |a, b| self.merge(a, b)) {
            self.finish_shard(shard);
        }
    }

    /// Server: run the aggregation/decoding pipeline; returns the
    /// estimated heavy-hitter list `Est = {(x, f̂_S(x))}`, sorted by
    /// `(estimate desc, value asc)` — the tie-break keeps the order
    /// stable across runs and thread counts.
    fn finish(&mut self) -> Vec<(u64, f64)>;

    /// Server: [`HeavyHitterProtocol::finish`] with an explicit
    /// [`FinishScratch`] — the parallel, allocation-recycling entry
    /// point of the finish path.
    ///
    /// The scratch carries the worker-thread knob the decode sweeps run
    /// under and pooled buffers reused across calls; neither may change
    /// the result: `finish_with` is **bit-for-bit equal** to
    /// [`HeavyHitterProtocol::finish`] for every scratch state and
    /// thread count (the `finish_equivalence` proptests pin every
    /// override). The default ignores the scratch and runs the plain
    /// serial `finish`.
    fn finish_with(&mut self, _scratch: &mut FinishScratch) -> Vec<(u64, f64)> {
        self.finish()
    }

    /// Communication per user in bits. The wire encoding satisfies
    /// `encoded_len() <= report_bits().div_ceil(8)` — pinned by the
    /// `wire_conformance` integration tests.
    fn report_bits(&self) -> usize;

    /// Server working-memory estimate in bytes.
    fn memory_bytes(&self) -> usize;

    /// Total per-user privacy budget consumed.
    fn epsilon(&self) -> f64;

    /// The protocol's detection threshold `Δ`: every element with
    /// `f_S(x) >= Δ` should appear in the output (the quantity the
    /// theorems bound).
    fn detection_threshold(&self) -> f64;
}
