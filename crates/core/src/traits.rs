//! The protocol interface shared by `PrivateExpanderSketch` and its
//! baselines.

use rand::Rng;

/// A one-round LDP heavy-hitters protocol (Definition 3.1).
///
/// The object carries the public randomness and server state;
/// [`HeavyHitterProtocol::respond`] is the client algorithm and reads only
/// public state plus the user's own input.
pub trait HeavyHitterProtocol {
    /// The single message a user sends.
    type Report;

    /// Client: user `user_index` holding `x` produces her message.
    fn respond<R: Rng + ?Sized>(&self, user_index: u64, x: u64, rng: &mut R) -> Self::Report;

    /// Server: ingest one message.
    fn collect(&mut self, user_index: u64, report: Self::Report);

    /// Server: run the aggregation/decoding pipeline; returns the
    /// estimated heavy-hitter list `Est = {(x, f̂_S(x))}`, sorted by
    /// decreasing estimate.
    fn finish(&mut self) -> Vec<(u64, f64)>;

    /// Communication per user in bits.
    fn report_bits(&self) -> usize;

    /// Server working-memory estimate in bytes.
    fn memory_bytes(&self) -> usize;

    /// Total per-user privacy budget consumed.
    fn epsilon(&self) -> f64;

    /// The protocol's detection threshold `Δ`: every element with
    /// `f_S(x) >= Δ` should appear in the output (the quantity the
    /// theorems bound).
    fn detection_threshold(&self) -> f64;
}
