//! Parameterization of `PrivateExpanderSketch`.
//!
//! The paper's constants (`C_M, C_Y, C_ℓ, C_g, C_f, C_H`) are existential;
//! [`SketchParams::optimal`] keeps the *functional forms* of §3.3 —
//! `M ≈ log|X|/loglog|X|`, `Y` polylogarithmic, `B ≈ ε√n/polylog(|X|)`,
//! `ℓ ≈ log|X|` — with constants sized for real hardware, and derives the
//! stand-out threshold from the oracle's actual Hoeffding noise scale
//! instead of an unspecified `C_f` (both forms are exposed; the benches
//! compare them).
//!
//! A note on absolute magnitudes: this is an asymptotic-theory protocol,
//! and its honest constants are substantial — the detection threshold is
//! `Θ(c_{ε/2}·sqrt(n·M·log(cells/β)))`, roughly `100·sqrt(n)` at ε = 1.
//! The workloads in tests and benches are therefore sized against
//! [`SketchParams::detection_threshold`], and the *shape* claims (growth
//! in `n`, `ε`, `β`, `|X|`; the `sqrt(log(1/β))` separation from prior
//! work) are what EXPERIMENTS.md reproduces, exactly as for the paper.

use hh_codes::ulrc::UlrcParams;
use hh_freq::calibrate;
use hh_freq::hashtogram::HashtogramParams;

/// Full configuration of one `PrivateExpanderSketch` instance.
#[derive(Debug, Clone)]
pub struct SketchParams {
    /// Expected number of users `n` (drives bucket counts/thresholds).
    pub n: u64,
    /// Domain is `{0, …, 2^domain_bits − 1}`.
    pub domain_bits: u32,
    /// Total per-user privacy budget ε.
    pub eps: f64,
    /// Fraction of ε spent on the per-coordinate report (the rest goes to
    /// the final frequency-oracle report). The paper uses 1/2; the
    /// ablation bench sweeps it.
    pub inner_eps_fraction: f64,
    /// Target failure probability β.
    pub beta: f64,
    /// Number of coordinates / user partitions `M`.
    pub num_coords: usize,
    /// Hash range `Y` per coordinate.
    pub y_range: u64,
    /// Group-hash range `B` (buckets of heavy hitters).
    pub num_buckets: u64,
    /// Stand-out list capacity `ℓ` per `(m, b)`.
    pub list_cap: usize,
    /// Expander degree `d`.
    pub degree: usize,
    /// Outer-code symbol width (GF(2^gf_bits)).
    pub gf_bits: u32,
    /// Independence of the group hash `g` (paper: `C_g·log|X|`-wise).
    pub g_independence: usize,
    /// Corruption tolerance `α` the decoder is run at.
    pub alpha: f64,
}

impl SketchParams {
    /// The paper's parameterization with practical constants.
    ///
    /// Supports domains up to 44 bits with the default GF(2^4) symbols
    /// (the Reed–Solomon block must fit `M <= 15`); larger domains need a
    /// wider field via the manual constructor.
    pub fn optimal(n: u64, domain_bits: u32, eps: f64, beta: f64) -> Self {
        assert!(n >= 16, "need at least a handful of users");
        assert!(
            (1..=44).contains(&domain_bits),
            "domain_bits in 1..=44 for the default profile (got {domain_bits})"
        );
        assert!(eps > 0.0 && eps <= 8.0, "eps in (0, 8]");
        assert!(beta > 0.0 && beta < 1.0);
        let gf_bits = 4u32;
        let k = domain_bits.div_ceil(gf_bits) as usize;
        // M ≈ max(rate-1/2 RS length, log|X|/loglog|X|), capped by the
        // field's block-length limit (15 for GF(2^4)).
        let log_x = f64::from(domain_bits).max(4.0);
        let m_paper = (log_x / log_x.log2().max(1.0)).ceil() as usize;
        let num_coords = (2 * k).max(m_paper).clamp((k + 4).min(15), 15);
        assert!(
            k + 2 <= num_coords,
            "domain_bits = {domain_bits} leaves no error-correction slack at gf_bits = 4"
        );
        // B ≈ ε√n / log^{3/2}|X|; Y = 8 keeps the inner-oracle domain
        // B·Y·Z = B·2^19 laptop-sized while still separating the O(1)
        // heavy elements per bucket that this B induces.
        let y_range = 8u64;
        let degree = 4usize;
        let b_raw = (eps * (n as f64).sqrt() / log_x.powf(1.5)).ceil() as u64;
        let num_buckets = b_raw.clamp(2, 16).next_power_of_two();
        let list_cap = (2.0 * log_x).ceil() as usize;
        // α: the decoder tolerates up to the RS erasure budget; run at a
        // comfortable margin below it.
        let alpha = (((num_coords - k) as f64 / num_coords as f64) * 0.75).min(0.34);
        Self {
            n,
            domain_bits,
            eps,
            inner_eps_fraction: 0.5,
            beta,
            num_coords,
            y_range,
            num_buckets,
            list_cap,
            degree,
            gf_bits,
            g_independence: (2 * domain_bits as usize).clamp(8, 64),
            alpha,
        }
    }

    /// ε spent on the per-coordinate (inner) report.
    pub fn inner_eps(&self) -> f64 {
        self.eps * self.inner_eps_fraction
    }

    /// ε spent on the final frequency-oracle (outer) report.
    pub fn outer_eps(&self) -> f64 {
        self.eps * (1.0 - self.inner_eps_fraction)
    }

    /// Cardinality of the packed `E~nc` component:
    /// `Z = 2^gf_bits · Y^d`.
    pub fn z_cardinality(&self) -> u64 {
        (1u64 << self.gf_bits) * self.y_range.pow(self.degree as u32)
    }

    /// The inner-oracle domain size `B·Y·Z` (cells per coordinate).
    pub fn inner_cells(&self) -> u64 {
        self.num_buckets * self.y_range * self.z_cardinality()
    }

    /// Pack a `(b, y, z)` triple into an inner-oracle cell id. The layout
    /// keeps `z` contiguous for a fixed `(b, y)`, which is what the
    /// server's argmax scan (step 3a) walks.
    pub fn cell_id(&self, b: u64, y: u64, z: u64) -> u64 {
        debug_assert!(b < self.num_buckets && y < self.y_range && z < self.z_cardinality());
        (b * self.y_range + y) * self.z_cardinality() + z
    }

    /// ULRC parameters induced by this configuration.
    pub fn ulrc_params(&self) -> UlrcParams {
        UlrcParams {
            num_coords: self.num_coords,
            y_range: self.y_range,
            degree: self.degree,
            gf_bits: self.gf_bits,
            domain_bits: self.domain_bits,
            alpha: self.alpha,
            cluster: Default::default(),
        }
    }

    /// Inner (per-coordinate) oracle configuration: the Theorem 3.8 direct
    /// variant over the `[B]×[Y]×[Z]` triple domain. A single group (no
    /// median) is used because the per-cell confidence comes from a union
    /// bound over the (small) cell space rather than median amplification.
    pub fn inner_oracle_params(&self) -> HashtogramParams {
        HashtogramParams {
            domain: self.inner_cells(),
            eps: self.inner_eps(),
            groups: 1,
            buckets: self.inner_cells().next_power_of_two(),
            hashed: false,
        }
    }

    /// Outer (final estimate) oracle configuration: the Theorem 3.7 hashed
    /// variant over the full domain.
    pub fn outer_oracle_params(&self) -> HashtogramParams {
        HashtogramParams::hashed(
            self.n,
            if self.domain_bits == 64 {
                u64::MAX
            } else {
                1u64 << self.domain_bits
            },
            self.outer_eps(),
            self.beta / 2.0,
        )
    }

    /// Expected users per coordinate `n/M`.
    pub fn users_per_coord(&self) -> f64 {
        self.n as f64 / self.num_coords as f64
    }

    /// One inner-oracle cell's noise width: the Hoeffding deviation with a
    /// union bound over all `M·B·Y·Z` cells at confidence `β/4`.
    pub fn cell_noise(&self) -> f64 {
        let cells = self.inner_cells() * self.num_coords as u64;
        calibrate::union_threshold(
            self.users_per_coord(),
            self.inner_eps(),
            self.beta / 4.0,
            cells,
        )
    }

    /// Oracle-calibrated stand-out threshold τ (step 3b): `1.25×` the cell
    /// noise — junk cells stay below it w.h.p., and a heavy element's cell
    /// clears it with one extra noise width of margin. The honest analogue
    /// of the paper's `C_f · loglog|X|/ε · sqrt(n/log|X|)`.
    pub fn standout_threshold(&self) -> f64 {
        1.25 * self.cell_noise()
    }

    /// The paper-form stand-out threshold for comparison benches.
    pub fn standout_threshold_paper_form(&self, c_f: f64) -> f64 {
        calibrate::threshold_paper_form(self.n, self.domain_bits, self.eps, c_f)
    }

    /// The detection threshold Δ (Theorem 3.13 item 2): elements at least
    /// this frequent are recovered.
    ///
    /// A `Δ`-heavy element contributes `≈ Δ/M` users to its cell in most
    /// coordinates (event E3 keeps a `0.65` fraction at these scales);
    /// that must clear `τ + cell_noise = 2.25·cell_noise`:
    /// `Δ = M · 2.25 · cell_noise / 0.65 ≈ 3.5·M·cell_noise`
    /// `  = Θ((1/ε)·sqrt(n·M·log(cells·M/β)))` — the Theorem 3.13 form
    /// with `M·log(cells) = O~(log|X|)`.
    pub fn detection_threshold(&self) -> f64 {
        3.5 * self.num_coords as f64 * self.cell_noise()
    }

    /// The estimation error bound (Theorem 3.13 item 1): the outer
    /// oracle's per-query error across the candidate list.
    pub fn estimation_error_bound(&self) -> f64 {
        let outer = self.outer_oracle_params();
        let queries = (self.num_buckets as usize * self.list_cap * 4).max(16) as u64;
        outer.error_bound(self.n, self.beta / (2.0 * queries as f64))
    }

    /// Keep-list cutoff: output candidates whose outer estimate exceeds
    /// this (half the detection threshold, so no Δ-heavy element is ever
    /// filtered while the list stays `O(n/Δ)`-sized).
    pub fn keep_threshold(&self) -> f64 {
        self.detection_threshold() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_profile_is_feasible() {
        for &(n, bits) in &[
            (1u64 << 12, 16u32),
            (1 << 16, 24),
            (1 << 20, 32),
            (1 << 16, 40),
        ] {
            let p = SketchParams::optimal(n, bits, 1.0, 0.05);
            assert!(p.num_coords <= 15);
            assert!(
                p.inner_cells() <= 1 << 24,
                "inner domain too big: {}",
                p.inner_cells()
            );
            assert!(p.z_cardinality() >= 16);
            assert!(p.alpha > 0.05, "no corruption slack: {}", p.alpha);
            let k = bits.div_ceil(p.gf_bits) as usize;
            assert!(k + 2 <= p.num_coords);
            assert!((p.inner_eps() + p.outer_eps() - p.eps).abs() < 1e-12);
        }
    }

    #[test]
    fn cell_id_is_bijective() {
        let p = SketchParams::optimal(1 << 14, 24, 1.0, 0.1);
        let mut seen = std::collections::HashSet::new();
        for b in 0..p.num_buckets.min(4) {
            for y in 0..p.y_range {
                for z in (0..p.z_cardinality()).step_by(97) {
                    let id = p.cell_id(b, y, z);
                    assert!(id < p.inner_cells());
                    assert!(seen.insert(id));
                }
            }
        }
    }

    #[test]
    fn thresholds_scale_with_sqrt_n() {
        let a = SketchParams::optimal(1 << 14, 32, 1.0, 0.05);
        let b = SketchParams::optimal(1 << 18, 32, 1.0, 0.05);
        let ratio = b.detection_threshold() / a.detection_threshold();
        assert!(
            (3.0..6.0).contains(&ratio),
            "expected ~4 (sqrt of 16x n, same B regime): {ratio}"
        );
    }

    #[test]
    fn threshold_grows_mildly_in_beta() {
        let a = SketchParams::optimal(1 << 16, 32, 1.0, 0.1);
        let b = SketchParams::optimal(1 << 16, 32, 1.0, 1e-9);
        let ratio = b.detection_threshold() / a.detection_threshold();
        // sqrt(log) growth: a 10^8 drop in beta costs well under 2x here.
        assert!(ratio > 1.0 && ratio < 2.0, "beta scaling ratio {ratio}");
    }

    #[test]
    fn estimation_error_below_detection_threshold() {
        let p = SketchParams::optimal(1 << 16, 32, 1.0, 0.05);
        assert!(p.estimation_error_bound() < p.detection_threshold());
    }

    #[test]
    fn detection_threshold_is_usable_at_scale() {
        // The honest constants must leave room for actual experiments:
        // at bench scale (n = 2^18, eps = 2) the threshold should be a
        // strict minority of n, and it keeps improving with n.
        let p = SketchParams::optimal(1 << 18, 24, 2.0, 0.05);
        let frac = p.detection_threshold() / p.n as f64;
        assert!(frac < 0.5, "detection needs {frac} of all users");
        let q = SketchParams::optimal(1 << 22, 24, 2.0, 0.05);
        assert!(q.detection_threshold() / (q.n as f64) < frac);
    }

    #[test]
    #[should_panic(expected = "domain_bits in 1..=44")]
    fn rejects_oversized_domain() {
        let _ = SketchParams::optimal(1 << 16, 60, 1.0, 0.05);
    }
}
