//! Algorithm `PrivateExpanderSketch` (paper §3.3).
//!
//! Public randomness (one seed): a random partition of users into
//! `I_1, …, I_M`, pairwise hashes `h_m : X → [Y]` and the expander (owned
//! by the [`UniqueListCode`]), and a `(C_g log|X|)`-wise hash
//! `g : X → [B]`.
//!
//! Client (user `i ∈ I_m` holding `x`): one message carrying
//!
//! 1. an `ε/2` Hashtogram report of the cell
//!    `(g(x), h_m(x), E~nc(x)_m) ∈ [B]×[Y]×[Z]` for the coordinate oracle
//!    (step 1 of the algorithm), and
//! 2. an `ε/2` Hashtogram report of `x` itself for the final estimates
//!    (step 5).
//!
//! Both components are ε-LDP in total by basic composition, and the
//! protocol is one-round and non-interactive.
//!
//! Server: per coordinate, reconstruct all cell estimates (one fast WHT),
//! take the per-`(b, y)` argmax over `z` against the stand-out threshold
//! (steps 2–3), decode each bucket's lists through the
//! unique-list-recoverable code (step 4), and return the outer-oracle
//! estimates of the decoded candidates (steps 5–6).

use crate::params::SketchParams;
use crate::traits::{
    FinishScratch, FrameError, HeavyHitterProtocol, WireError, WireFrames, WireReport, WireShard,
};
use hh_codes::ulrc::UniqueListCode;
use hh_freq::hashtogram::{
    read_report_run, report_run_len, write_report_run, Hashtogram, HashtogramReport,
    HashtogramShard,
};
use hh_freq::traits::FrequencyOracle;
use hh_freq::wire;
use hh_freq::wire::{varint_len, write_varint, ShardReader};
use hh_hash::family::labels;
use hh_hash::{HashFamily, KWiseHash};
use hh_math::par::{par_chunk_zip_map, par_map_indexed, planned_threads};
use hh_math::rng::derive_seed;
use hh_math::sampler::ClientCoins;
use rand::Rng;

/// The single message a user sends: her coordinate report and her final
/// frequency-oracle report. The user's coordinate `m` is a public
/// function of her index and is recomputed server-side, not transported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchReport {
    /// Hashtogram report of the `(g(x), h_m(x), E~nc(x)_m)` cell.
    pub inner: HashtogramReport,
    /// Hashtogram report of `x` for the outer oracle.
    pub outer: HashtogramReport,
}

/// Wire format: the shared [`wire::encode_pair`] composite frame — the
/// two Hadamard payloads in their own minimal encodings behind a
/// one-byte split marker, so the decoder needs no protocol parameters.
/// `report_bits()` counts exactly this layout.
impl WireReport for SketchReport {
    fn encoded_len(&self) -> usize {
        wire::pair_encoded_len(&self.inner, &self.outer)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::encode_pair(&self.inner, &self.outer, out);
    }

    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let (inner, outer) = wire::decode_pair(bytes)?;
        Ok(SketchReport { inner, outer })
    }
}

/// Mergeable partial aggregate of an [`ExpanderSketch`]: buffered inner
/// reports per coordinate (the coordinate oracles materialize lazily at
/// finish) plus the outer oracle's integer-tally shard.
pub struct SketchShard {
    inner: Vec<Vec<(u64, HashtogramReport)>>,
    outer: HashtogramShard,
    users: u64,
}

/// Snapshot codec — a composite frame of the two aggregation halves:
/// `[users][outer_len][outer shard frame][coords]` followed by one
/// buffered-report run per coordinate (each report the same
/// `ℓ·2 + bit` scalar as its wire format). All integers canonical
/// varints, so the frame is self-describing.
impl WireShard for SketchShard {
    fn shard_encoded_len(&self) -> usize {
        let outer = self.outer.shard_encoded_len();
        varint_len(self.users)
            + varint_len(outer as u64)
            + outer
            + varint_len(self.inner.len() as u64)
            + self
                .inner
                .iter()
                .map(|run| report_run_len(run))
                .sum::<usize>()
    }

    fn encode_shard_into(&self, out: &mut Vec<u8>) {
        write_varint(out, self.users);
        write_varint(out, self.outer.shard_encoded_len() as u64);
        self.outer.encode_shard_into(out);
        write_varint(out, self.inner.len() as u64);
        for run in &self.inner {
            write_report_run(out, run);
        }
    }

    fn decode_shard(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ShardReader::new(bytes);
        let users = r.u64()?;
        let outer_len = r.count()?;
        let outer = HashtogramShard::decode_shard(r.raw(outer_len)?)?;
        let coords = r.count()?;
        let mut inner = Vec::with_capacity(coords);
        for _ in 0..coords {
            inner.push(read_report_run(&mut r)?);
        }
        r.finish()?;
        Ok(SketchShard {
            inner,
            outer,
            users,
        })
    }
}

/// `PrivateExpanderSketch`: public randomness + server state.
pub struct ExpanderSketch {
    params: SketchParams,
    seed: u64,
    ulrc: UniqueListCode,
    group_hash: KWiseHash,
    /// Prototype inner oracle (shared public randomness for all
    /// coordinates; the per-coordinate accumulation happens at finish).
    inner_proto: Hashtogram,
    /// Buffered inner reports per coordinate (the coordinate oracles are
    /// materialized one at a time at finish, so peak memory is one
    /// `W_in`-sized accumulator plus these tiny reports).
    inner_reports: Vec<Vec<(u64, HashtogramReport)>>,
    outer: Hashtogram,
    users_seen: u64,
    finished: bool,
}

impl ExpanderSketch {
    /// Instantiate from parameters and a public-randomness seed.
    pub fn new(params: SketchParams, seed: u64) -> Self {
        let ulrc = UniqueListCode::new(params.ulrc_params(), derive_seed(seed, 0xC0DE));
        let family = HashFamily::new(seed);
        let group_hash = family.kwise(
            labels::SKETCH_GROUP_HASH,
            0,
            params.g_independence,
            params.num_buckets,
        );
        let inner_proto = Hashtogram::new(params.inner_oracle_params(), derive_seed(seed, 0x1222));
        let outer = Hashtogram::new(params.outer_oracle_params(), derive_seed(seed, 0x0173));
        let inner_reports = vec![Vec::new(); params.num_coords];
        Self {
            params,
            seed,
            ulrc,
            group_hash,
            inner_proto,
            inner_reports,
            outer,
            users_seen: 0,
            finished: false,
        }
    }

    /// Protocol parameters.
    pub fn params(&self) -> &SketchParams {
        &self.params
    }

    /// The prototype inner oracle (shared public randomness for all
    /// coordinates) — exposed for audits and client-path benchmarks.
    pub fn inner_oracle(&self) -> &Hashtogram {
        &self.inner_proto
    }

    /// The outer (full-domain) oracle — exposed for audits and
    /// client-path benchmarks.
    pub fn outer_oracle(&self) -> &Hashtogram {
        &self.outer
    }

    /// The derivation seed of the public partition (hoistable by batch
    /// paths; one value per sketch instance).
    fn partition_seed(&self) -> u64 {
        derive_seed(self.seed, labels::SKETCH_PARTITION)
    }

    /// The coordinate of `user_index` under a hoisted partition seed —
    /// the single definition both [`ExpanderSketch::coord_of`] and the
    /// batch path go through, so they cannot diverge.
    fn coord_at(partition_seed: u64, user_index: u64, num_coords: u64) -> usize {
        (derive_seed(partition_seed, user_index) % num_coords) as usize
    }

    /// The public coordinate assignment `i ↦ m` (the random partition
    /// `I_1, …, I_M`).
    pub fn coord_of(&self, user_index: u64) -> usize {
        Self::coord_at(
            self.partition_seed(),
            user_index,
            self.params.num_coords as u64,
        )
    }

    /// The group hash `g(x) ∈ [B]`.
    pub fn bucket_of(&self, x: u64) -> u64 {
        self.group_hash.hash(x)
    }

    /// The inner-oracle cell a user holding `x` in coordinate `m` reports.
    pub fn cell_of(&self, m: usize, x: u64) -> u64 {
        let b = self.bucket_of(x);
        let y = self.ulrc.coord_hash(m, x);
        let z = self.ulrc.enc_tilde(x, m);
        self.params.cell_id(b, y, z)
    }

    /// The one batched client loop `respond_batch` and the fused encode
    /// path drive: per-user derived coin streams with the partition
    /// component seed hoisted out of the loop, each composite report
    /// (inner, then outer — the same draw order as `respond`) handed to
    /// `emit` in user order.
    fn respond_each(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        mut emit: impl FnMut(SketchReport),
    ) {
        let part_seed = self.partition_seed();
        let num_coords = self.params.num_coords as u64;
        let coins = ClientCoins::new(client_seed);
        for (k, &x) in xs.iter().enumerate() {
            let i = start_index + k as u64;
            let mut rng = coins.user(i);
            let m = Self::coord_at(part_seed, i, num_coords);
            let cell = self.cell_of(m, x);
            let inner = self.inner_proto.respond(i, cell, &mut rng);
            let outer = self.outer.respond(i, x, &mut rng);
            emit(SketchReport { inner, outer });
        }
    }

    /// The stand-out lists (step 3), exposed for inspection/ablation:
    /// `lists[b][m]` = the `(y, z)` pairs whose estimate cleared τ.
    ///
    /// Coordinates are independent — each materializes, finalizes and
    /// scans its own inner oracle — so they decode on `threads` workers
    /// (`0` = hardware, `1` = serial), with the per-coordinate results
    /// reassembled in coordinate order: the lists are identical for
    /// every thread count.
    fn build_standout_lists(&self, threads: usize) -> Vec<Vec<Vec<(u64, u64)>>> {
        let p = &self.params;
        let tau = p.standout_threshold();
        let z_card = p.z_cardinality();
        let per_coord = par_map_indexed(p.num_coords, threads, |m| {
            // Materialize coordinate m's oracle, ingest its reports, scan.
            let reports_m = &self.inner_reports[m];
            let mut out = vec![Vec::new(); p.num_buckets as usize];
            if reports_m.is_empty() {
                return out;
            }
            let mut oracle = self.inner_proto.clone();
            for &(user, rep) in reports_m {
                oracle.collect(user, rep);
            }
            oracle.finalize();
            let mut buf = Vec::new();
            for (b, list) in out.iter_mut().enumerate() {
                for y in 0..p.y_range {
                    let base = p.cell_id(b as u64, y, 0);
                    let mut best_z = 0u64;
                    let mut best_v = f64::NEG_INFINITY;
                    for z in 0..z_card {
                        let v = oracle.estimate_into(base + z, &mut buf);
                        if v > best_v {
                            best_v = v;
                            best_z = z;
                        }
                    }
                    if best_v >= tau && list.len() < p.list_cap {
                        list.push((y, best_z));
                    }
                }
            }
            out
        });
        // Transpose coordinate-major results into `lists[b][m]`.
        let mut lists = vec![vec![Vec::new(); p.num_coords]; p.num_buckets as usize];
        for (m, per_b) in per_coord.into_iter().enumerate() {
            for (b, list) in per_b.into_iter().enumerate() {
                lists[b][m] = list;
            }
        }
        lists
    }
}

impl HeavyHitterProtocol for ExpanderSketch {
    type Report = SketchReport;
    type Shard = SketchShard;

    fn respond<R: Rng + ?Sized>(&self, user_index: u64, x: u64, rng: &mut R) -> SketchReport {
        let m = self.coord_of(user_index);
        let cell = self.cell_of(m, x);
        let inner = self.inner_proto.respond(user_index, cell, rng);
        let outer = self.outer.respond(user_index, x, rng);
        SketchReport { inner, outer }
    }

    fn respond_batch(&self, start_index: u64, xs: &[u64], client_seed: u64) -> Vec<SketchReport> {
        let mut out = Vec::with_capacity(xs.len());
        self.respond_each(start_index, xs, client_seed, |rep| out.push(rep));
        out
    }

    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        // Fused: write each composite pair frame straight to the wire —
        // no intermediate report vec.
        let mut lens = Vec::with_capacity(xs.len());
        self.respond_each(start_index, xs, client_seed, |rep| {
            let before = out.len();
            rep.encode_into(out);
            lens.push((out.len() - before) as u32);
        });
        lens
    }

    fn collect(&mut self, user_index: u64, report: SketchReport) {
        assert!(!self.finished, "collect after finish");
        let m = self.coord_of(user_index);
        self.inner_reports[m].push((user_index, report.inner));
        self.outer.collect(user_index, report.outer);
        self.users_seen += 1;
    }

    fn new_shard(&self) -> SketchShard {
        SketchShard {
            inner: vec![Vec::new(); self.params.num_coords],
            outer: self.outer.new_shard(),
            users: 0,
        }
    }

    fn absorb(&self, shard: &mut SketchShard, start_index: u64, reports: &[SketchReport]) {
        // Inner reports buffer per (recomputed) coordinate — the
        // coordinate oracles ingest them at finish through order-exact
        // integer tallies, so buffer order across shards is immaterial.
        let part_seed = self.partition_seed();
        let num_coords = self.params.num_coords as u64;
        for (k, rep) in reports.iter().enumerate() {
            let i = start_index + k as u64;
            let m = Self::coord_at(part_seed, i, num_coords);
            shard.inner[m].push((i, rep.inner));
        }
        let outer: Vec<HashtogramReport> = reports.iter().map(|r| r.outer).collect();
        self.outer.absorb(&mut shard.outer, start_index, &outer);
        shard.users += reports.len() as u64;
    }

    fn absorb_wire(
        &self,
        shard: &mut SketchShard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        // Zero-copy: split each composite frame in place — the inner
        // report buffers into its (recomputed) coordinate, the outer
        // report tallies straight into the outer shard through the
        // hoisted absorber. No `Vec<SketchReport>`, no per-chunk outer
        // report vec.
        let part_seed = self.partition_seed();
        let num_coords = self.params.num_coords as u64;
        let outer_absorber = self.outer.absorber();
        for (k, frame) in frames.iter().enumerate() {
            let (inner, outer) = wire::decode_pair::<HashtogramReport, HashtogramReport>(frame)
                .map_err(|e| frames.frame_error(k, e))?;
            let i = start_index + k as u64;
            let m = Self::coord_at(part_seed, i, num_coords);
            shard.inner[m].push((i, inner));
            outer_absorber
                .absorb_one(&mut shard.outer, i, outer)
                .map_err(|e| frames.frame_error(k, e))?;
        }
        shard.users += frames.len() as u64;
        Ok(())
    }

    fn merge(&self, mut a: SketchShard, b: SketchShard) -> SketchShard {
        // Hard check — decoded snapshots are parameter-free, so a shard
        // with a different coordinate count must not zip-truncate.
        assert_eq!(a.inner.len(), b.inner.len(), "shard shape mismatch");
        for (acc, mut add) in a.inner.iter_mut().zip(b.inner) {
            acc.append(&mut add);
        }
        a.outer = self.outer.merge(a.outer, b.outer);
        a.users += b.users;
        a
    }

    fn finish_shard(&mut self, shard: SketchShard) {
        assert!(!self.finished, "collect after finish");
        assert_eq!(
            shard.inner.len(),
            self.params.num_coords,
            "shard shape mismatch"
        );
        for (acc, mut add) in self.inner_reports.iter_mut().zip(shard.inner) {
            acc.append(&mut add);
        }
        self.outer.finish_shard(shard.outer);
        self.users_seen += shard.users;
    }

    fn finish(&mut self) -> Vec<(u64, f64)> {
        self.finish_with(&mut FinishScratch::default())
    }

    fn finish_with(&mut self, scratch: &mut FinishScratch) -> Vec<(u64, f64)> {
        assert!(!self.finished, "double finish");
        self.finished = true;
        let threads = scratch.threads;
        // Steps 2–3: stand-out lists per (bucket, coordinate) —
        // coordinates decode on parallel workers.
        let lists = self.build_standout_lists(threads);
        // Step 4: decode each bucket; keep candidates that land in their
        // own bucket under g. Buckets decode independently (results in
        // bucket order); the cross-bucket dedup stays serial so the
        // candidate order — bucket-ascending, decode order within — is
        // the serial loop's exactly.
        let decoded = par_map_indexed(lists.len(), threads, |b| {
            self.ulrc
                .decode(&lists[b])
                .into_iter()
                .filter(|&x| self.bucket_of(x) == b as u64)
                .collect::<Vec<u64>>()
        });
        let mut candidates: Vec<u64> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for bucket_candidates in decoded {
            for x in bucket_candidates {
                if seen.insert(x) {
                    candidates.push(x);
                }
            }
        }
        // Steps 5–6: final estimates from the outer oracle, swept over
        // candidate chunks in parallel (chunk order preserved; each
        // chunk's median workspace is a pooled scratch buffer).
        self.outer.finalize_with(scratch);
        let keep = self.params.keep_threshold();
        let mut est: Vec<(u64, f64)> = Vec::with_capacity(candidates.len());
        if !candidates.is_empty() {
            let workers = planned_threads(threads, candidates.len(), 1);
            let chunk = candidates.len().div_ceil(workers).max(1);
            let num_chunks = candidates.len().div_ceil(chunk);
            let bufs: Vec<Vec<f64>> = (0..num_chunks).map(|_| scratch.take_f64()).collect();
            let parts = par_chunk_zip_map(&candidates, chunk, threads, bufs, |_, xs, mut buf| {
                let part: Vec<(u64, f64)> = xs
                    .iter()
                    .map(|&x| (x, self.outer.estimate_into(x, &mut buf)))
                    .filter(|&(_, f)| f >= keep)
                    .collect();
                (part, buf)
            });
            for (part, buf) in parts {
                est.extend_from_slice(&part);
                scratch.put_f64(buf);
            }
        }
        est.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite estimates")
                .then_with(|| a.0.cmp(&b.0))
        });
        est
    }

    fn report_bits(&self) -> usize {
        // Exact worst-case wire size of the composite message (still
        // Θ(log) — the components claim 1 + log₂W bits each).
        wire::pair_wire_bits(self.inner_proto.report_bits(), self.outer.report_bits())
    }

    fn memory_bytes(&self) -> usize {
        // One materialized coordinate accumulator (a parallel finish
        // holds one per worker; this is the serial floor) + the outer
        // oracle sketch + stand-out lists.
        self.inner_proto.memory_bytes()
            + self.outer.memory_bytes()
            + self.params.num_buckets as usize
                * self.params.num_coords
                * self.params.list_cap
                * std::mem::size_of::<(u64, u64)>()
    }

    fn epsilon(&self) -> f64 {
        self.params.eps
    }

    fn detection_threshold(&self) -> f64 {
        self.params.detection_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_math::rng::seeded_rng;

    /// Build a dataset with planted heavy elements (given as (value,
    /// fraction)) over a light uniform tail.
    fn planted(n: usize, domain_bits: u32, heavy: &[(u64, f64)], seed: u64) -> Vec<u64> {
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        let domain = 1u64 << domain_bits;
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                for &(x, frac) in heavy {
                    acc += frac;
                    if u < acc {
                        return x;
                    }
                }
                rng.gen_range(0..domain)
            })
            .collect()
    }

    fn run_protocol(params: SketchParams, data: &[u64], seed: u64) -> Vec<(u64, f64)> {
        let mut server = ExpanderSketch::new(params, seed);
        let mut rng = seeded_rng(derive_seed(seed, 0xFACE));
        for (i, &x) in data.iter().enumerate() {
            let rep = server.respond(i as u64, x, &mut rng);
            server.collect(i as u64, rep);
        }
        server.finish()
    }

    #[test]
    fn partition_is_balanced() {
        let p = SketchParams::optimal(1 << 12, 16, 1.0, 0.1);
        let server = ExpanderSketch::new(p.clone(), 7);
        let mut counts = vec![0u64; p.num_coords];
        for i in 0..(1u64 << 12) {
            counts[server.coord_of(i)] += 1;
        }
        let expect = (1u64 << 12) as f64 / p.num_coords as f64;
        for (m, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "coordinate {m}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn cells_are_consistent_with_code() {
        let p = SketchParams::optimal(1 << 12, 16, 1.0, 0.1);
        let server = ExpanderSketch::new(p.clone(), 9);
        for x in [0u64, 1, 12345, (1 << 16) - 1] {
            for m in 0..p.num_coords {
                let cell = server.cell_of(m, x);
                assert!(cell < p.inner_cells());
            }
        }
    }

    #[test]
    fn recovers_planted_heavy_hitters_end_to_end() {
        // Sized against the protocol's own detection threshold (see the
        // params module docs on absolute constants).
        let n = 1usize << 17;
        let eps = 4.0;
        let params = SketchParams::optimal(n as u64, 16, eps, 0.1);
        let delta = params.detection_threshold();
        assert!(
            delta < 0.4 * n as f64,
            "test sizing broken: delta = {delta} vs n = {n}"
        );
        let heavy_frac = (delta / n as f64) * 1.6;
        let h1 = 0xBEEFu64 & 0xFFFF;
        let h2 = 0x1234u64;
        let data = planted(n, 16, &[(h1, heavy_frac), (h2, heavy_frac)], 21);
        let est = run_protocol(params.clone(), &data, 22);
        let found: Vec<u64> = est.iter().map(|&(x, _)| x).collect();
        assert!(found.contains(&h1), "missed {h1:#x}: found {found:#x?}");
        assert!(found.contains(&h2), "missed {h2:#x}: found {found:#x?}");
        // Estimates within the advertised error of the truth.
        let err_bound = params.estimation_error_bound();
        for &(x, f) in &est {
            let truth = data.iter().filter(|&&v| v == x).count() as f64;
            assert!(
                (f - truth).abs() <= err_bound,
                "estimate for {x:#x}: {f} vs {truth} (bound {err_bound})"
            );
        }
        // List stays small.
        assert!(est.len() <= 2 + params.num_buckets as usize * params.list_cap);
    }

    #[test]
    fn no_false_heavies_on_uniform_data() {
        // Uniform data has no Δ/2-heavy elements; the output should be
        // empty (or nearly so — the keep threshold guards this).
        let n = 1usize << 15;
        let params = SketchParams::optimal(n as u64, 16, 4.0, 0.1);
        let data = planted(n, 16, &[], 31);
        let est = run_protocol(params, &data, 32);
        assert!(
            est.len() <= 1,
            "uniform data produced {} 'heavy hitters'",
            est.len()
        );
    }

    #[test]
    fn deterministic_public_randomness() {
        let p = SketchParams::optimal(1 << 12, 16, 1.0, 0.1);
        let a = ExpanderSketch::new(p.clone(), 5);
        let b = ExpanderSketch::new(p, 5);
        for x in [3u64, 999, 65535] {
            assert_eq!(a.bucket_of(x), b.bucket_of(x));
            for m in 0..a.params().num_coords {
                assert_eq!(a.cell_of(m, x), b.cell_of(m, x));
            }
        }
    }

    #[test]
    fn report_bits_are_logarithmic() {
        let p = SketchParams::optimal(1 << 16, 24, 1.0, 0.05);
        let server = ExpanderSketch::new(p, 3);
        // Two Hadamard reports: well under 64 bits total payload.
        assert!(
            server.report_bits() <= 64,
            "bits = {}",
            server.report_bits()
        );
    }

    #[test]
    #[should_panic(expected = "double finish")]
    fn double_finish_panics() {
        let p = SketchParams::optimal(1 << 10, 16, 1.0, 0.1);
        let mut server = ExpanderSketch::new(p, 4);
        let _ = server.finish();
        let _ = server.finish();
    }
}
