//! Frequency-oracle domain scan: the trivial reduction from heavy hitters
//! to a frequency oracle.
//!
//! Query the oracle on *every* domain element and return everything above
//! threshold. Exact recall, but `Ω(|X|)` server time — the impracticality
//! the paper's introduction highlights ("X may be the space of all
//! reasonable-length URL domains"). It is also the right algorithm when
//! `n > |X|` (the complementary regime noted under Theorem 3.13), and the
//! small-domain reference the benches use for ground truth.

use crate::traits::{FinishScratch, FrameError, HeavyHitterProtocol, WireFrames};
use hh_freq::hashtogram::{Hashtogram, HashtogramParams, HashtogramReport, HashtogramShard};
use hh_freq::traits::FrequencyOracle;
use hh_math::par::{par_map_owned, planned_threads};
use rand::Rng;

/// Configuration of [`ScanHeavyHitters`].
#[derive(Debug, Clone)]
pub struct ScanParams {
    /// Expected number of users.
    pub n: u64,
    /// Domain size `|X|` (scanned exhaustively; capped at 2^22).
    pub domain: u64,
    /// Privacy budget ε (single report; no split needed).
    pub eps: f64,
    /// Failure probability β.
    pub beta: f64,
}

impl ScanParams {
    /// Standard profile.
    pub fn new(n: u64, domain: u64, eps: f64, beta: f64) -> Self {
        assert!(domain <= 1 << 22, "domain scan beyond 2^22 is impractical");
        Self {
            n,
            domain,
            eps,
            beta,
        }
    }

    fn oracle_params(&self) -> HashtogramParams {
        if self.domain <= 4 * (self.n as f64).sqrt() as u64 {
            HashtogramParams::direct(self.domain, self.eps, self.beta / 2.0)
        } else {
            HashtogramParams::hashed(self.n, self.domain, self.eps, self.beta / 2.0)
        }
    }

    /// Detection threshold: the oracle's per-query error with a union
    /// bound over the whole domain, times a stand-out factor.
    pub fn detection_threshold(&self) -> f64 {
        let p = self.oracle_params();
        3.0 * p.error_bound(self.n, self.beta / (2.0 * self.domain as f64))
    }
}

/// Scan-based heavy hitters over a small domain.
pub struct ScanHeavyHitters {
    params: ScanParams,
    oracle: Hashtogram,
    finished: bool,
}

impl ScanHeavyHitters {
    /// Instantiate from parameters and a public-randomness seed.
    pub fn new(params: ScanParams, seed: u64) -> Self {
        let oracle = Hashtogram::new(params.oracle_params(), seed);
        Self {
            params,
            oracle,
            finished: false,
        }
    }

    /// Protocol parameters.
    pub fn params(&self) -> &ScanParams {
        &self.params
    }

    /// The underlying frequency oracle — exposed for audits and
    /// client-path benchmarks.
    pub fn oracle(&self) -> &Hashtogram {
        &self.oracle
    }
}

impl HeavyHitterProtocol for ScanHeavyHitters {
    type Report = HashtogramReport;
    type Shard = HashtogramShard;

    fn respond<R: Rng + ?Sized>(&self, user_index: u64, x: u64, rng: &mut R) -> HashtogramReport {
        self.oracle.respond(user_index, x, rng)
    }

    fn respond_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
    ) -> Vec<HashtogramReport> {
        self.oracle.respond_batch(start_index, xs, client_seed)
    }

    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        self.oracle
            .respond_encode_batch(start_index, xs, client_seed, out)
    }

    fn collect(&mut self, user_index: u64, report: HashtogramReport) {
        assert!(!self.finished, "collect after finish");
        self.oracle.collect(user_index, report);
    }

    fn new_shard(&self) -> HashtogramShard {
        self.oracle.new_shard()
    }

    fn absorb(&self, shard: &mut HashtogramShard, start_index: u64, reports: &[HashtogramReport]) {
        self.oracle.absorb(shard, start_index, reports);
    }

    fn absorb_wire(
        &self,
        shard: &mut HashtogramShard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        self.oracle.absorb_wire(shard, start_index, frames)
    }

    fn merge(&self, a: HashtogramShard, b: HashtogramShard) -> HashtogramShard {
        self.oracle.merge(a, b)
    }

    fn finish_shard(&mut self, shard: HashtogramShard) {
        assert!(!self.finished, "collect after finish");
        self.oracle.finish_shard(shard);
    }

    fn finish(&mut self) -> Vec<(u64, f64)> {
        self.finish_with(&mut FinishScratch::default())
    }

    fn finish_with(&mut self, scratch: &mut FinishScratch) -> Vec<(u64, f64)> {
        assert!(!self.finished, "double finish");
        self.finished = true;
        let threads = scratch.threads;
        self.oracle.finalize_with(scratch);
        let keep = self.params.detection_threshold() / 2.0;
        let domain = self.params.domain;
        // Split the exhaustive domain scan into one contiguous span per
        // worker; spans are reassembled in domain order, so the output is
        // identical to the serial scan.
        let workers = planned_threads(threads, domain as usize, 1);
        let span = (domain as usize).div_ceil(workers).max(1) as u64;
        let spans: Vec<(u64, Vec<f64>)> = (0..workers as u64)
            .map(|w| (w * span, scratch.take_f64()))
            .collect();
        let oracle = &self.oracle;
        let parts = par_map_owned(spans, threads, |_, (start, mut buf)| {
            let part: Vec<(u64, f64)> = (start..(start + span).min(domain))
                .filter_map(|x| {
                    let f = oracle.estimate_into(x, &mut buf);
                    (f >= keep).then_some((x, f))
                })
                .collect();
            (part, buf)
        });
        let mut est = Vec::new();
        for (part, buf) in parts {
            est.extend_from_slice(&part);
            scratch.put_f64(buf);
        }
        est.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite estimates")
                .then_with(|| a.0.cmp(&b.0))
        });
        est
    }

    fn report_bits(&self) -> usize {
        self.oracle.report_bits()
    }

    fn memory_bytes(&self) -> usize {
        self.oracle.memory_bytes()
    }

    fn epsilon(&self) -> f64 {
        self.params.eps
    }

    fn detection_threshold(&self) -> f64 {
        self.params.detection_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_math::rng::seeded_rng;

    #[test]
    fn finds_all_heavies_in_small_domain() {
        let n = 40_000usize;
        let domain = 128u64;
        let params = ScanParams::new(n as u64, domain, 2.0, 0.05);
        let delta = params.detection_threshold();
        assert!(delta < 0.3 * n as f64, "sizing: {delta}");
        let mut server = ScanHeavyHitters::new(params, 1);
        let mut rng = seeded_rng(2);
        use rand::Rng;
        let data: Vec<u64> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    7
                } else if i % 5 == 0 {
                    99
                } else {
                    rng.gen_range(0..domain)
                }
            })
            .collect();
        for (i, &x) in data.iter().enumerate() {
            let rep = server.respond(i as u64, x, &mut rng);
            server.collect(i as u64, rep);
        }
        let est = server.finish();
        let found: Vec<u64> = est.iter().map(|&(x, _)| x).collect();
        assert!(found.contains(&7), "missed 7: {found:?}");
        assert!(found.contains(&99), "missed 99: {found:?}");
        // Estimates are sorted descending.
        for w in est.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn n_bigger_than_domain_regime() {
        // The regime the paper notes under Theorem 3.13: when n > |X|,
        // just scan. Each element holds n/8 = 6250 users, above the
        // threshold at eps = 2.
        let n = 50_000usize;
        let domain = 8u64;
        let params = ScanParams::new(n as u64, domain, 2.0, 0.05);
        assert!(
            params.detection_threshold() < n as f64 / domain as f64 * 2.0,
            "sizing: {}",
            params.detection_threshold()
        );
        let mut server = ScanHeavyHitters::new(params, 3);
        let mut rng = seeded_rng(4);
        for i in 0..n {
            let x = (i % domain as usize) as u64; // uniform over the domain
            let rep = server.respond(i as u64, x, &mut rng);
            server.collect(i as u64, rep);
        }
        let est = server.finish();
        // Every element is n/8-heavy and should be reported.
        assert_eq!(est.len(), domain as usize, "got {est:?}");
    }

    #[test]
    #[should_panic(expected = "impractical")]
    fn rejects_huge_domain() {
        let _ = ScanParams::new(1 << 20, 1 << 30, 1.0, 0.05);
    }
}
