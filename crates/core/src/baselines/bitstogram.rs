//! The prior state of the art: Bassily–Nissim–Stemmer–Thakurta's
//! single-hash reduction with repetition (paper §3.1.1, Theorem 3.3).
//!
//! One repetition: a single public hash `h_t : X → [Y']` and a partition
//! of the repetition's users across the `M' = log|X|` *bit positions* of
//! the input. A user in bit-group `m` reports the pair
//! `(h_t(x), x[m]) ∈ [Y']×{0,1}` through a frequency oracle. For every
//! hash value `y`, the server reconstructs a candidate bit-by-bit:
//! `x̂(y)[m] = argmax_b f̂(y, b)` in group `m`.
//!
//! One repetition fails for a heavy hitter when other input mass collides
//! with it under `h_t`, which happens with constant probability at
//! `Y' = O(√n)`; driving the failure to `β` takes `T = Θ(log(1/β))`
//! independent repetitions, **splitting the users** `T` ways — which is
//! exactly where the sub-optimal `sqrt(log(1/β))` factor of Theorem 3.3
//! enters the error. `PrivateExpanderSketch` removes it; the
//! `exp_error_vs_beta` bench measures the two side by side.

use crate::traits::{
    FinishScratch, FrameError, HeavyHitterProtocol, WireError, WireFrames, WireReport, WireShard,
};
use hh_freq::calibrate;
use hh_freq::hashtogram::{
    read_report_run, report_run_len, write_report_run, Hashtogram, HashtogramParams,
    HashtogramReport, HashtogramShard,
};
use hh_freq::traits::FrequencyOracle;
use hh_freq::wire;
use hh_freq::wire::{varint_len, write_varint, ShardReader};
use hh_hash::family::labels;
use hh_hash::{HashFamily, PairwiseHash};
use hh_math::par::{par_chunk_zip_map, par_map_indexed, planned_threads};
use hh_math::rng::derive_seed;
use hh_math::sampler::ClientCoins;
use rand::Rng;

/// Configuration of the [`Bitstogram`] baseline.
#[derive(Debug, Clone)]
pub struct BitstogramParams {
    /// Expected number of users.
    pub n: u64,
    /// Domain is `{0, …, 2^domain_bits − 1}`; also the bit-coordinate
    /// count `M'`.
    pub domain_bits: u32,
    /// Total per-user privacy budget ε (split ε/2 inner + ε/2 outer).
    pub eps: f64,
    /// Target failure probability β (drives the repetition count).
    pub beta: f64,
    /// Repetitions `T = Θ(log(1/β))`.
    pub repetitions: usize,
    /// Hash range `Y'` per repetition.
    pub hash_range: u64,
}

impl BitstogramParams {
    /// The Theorem 3.3 profile: `T = ceil(log₂(1/β))`, `Y' = Θ(√n)`.
    pub fn optimal(n: u64, domain_bits: u32, eps: f64, beta: f64) -> Self {
        assert!((1..=56).contains(&domain_bits));
        assert!(beta > 0.0 && beta < 1.0);
        let repetitions = ((1.0 / beta).log2().ceil() as usize).max(1);
        let hash_range = ((2.0 * (n as f64).sqrt()) as u64)
            .next_power_of_two()
            .max(16);
        Self {
            n,
            domain_bits,
            eps,
            beta,
            repetitions,
            hash_range,
        }
    }

    /// Inner-oracle cells per `(t, m)` group: `(y, bit)` pairs.
    pub fn inner_cells(&self) -> u64 {
        2 * self.hash_range
    }

    /// Number of user groups `T · M'`.
    pub fn num_groups(&self) -> usize {
        self.repetitions * self.domain_bits as usize
    }

    fn inner_oracle_params(&self) -> HashtogramParams {
        HashtogramParams {
            domain: self.inner_cells(),
            eps: self.eps / 2.0,
            groups: 1,
            buckets: self.inner_cells().next_power_of_two(),
            hashed: false,
        }
    }

    fn outer_oracle_params(&self) -> HashtogramParams {
        HashtogramParams::hashed(
            self.n,
            1u64 << self.domain_bits.min(63),
            self.eps / 2.0,
            self.beta / 2.0,
        )
    }

    /// Per-cell noise width with the union bound over all groups' cells.
    pub fn cell_noise(&self) -> f64 {
        let cells = self.inner_cells() * self.num_groups() as u64;
        calibrate::union_threshold(
            self.n as f64 / self.num_groups() as f64,
            self.eps / 2.0,
            self.beta / 4.0,
            cells,
        )
    }

    /// Detection threshold: the Theorem 3.3 item 2 analogue
    /// `Θ((1/ε)·sqrt(n·log(|X|/β)·log(1/β)))` — the per-group signal
    /// `f/(T·M')` must clear the stand-out margin, so the user split
    /// across `T` repetitions inflates the threshold by `sqrt(T)` relative
    /// to `PrivateExpanderSketch`.
    pub fn detection_threshold(&self) -> f64 {
        3.5 * self.num_groups() as f64 * self.cell_noise()
    }
}

/// A user's message: the inner pair report and the outer
/// frequency-oracle report. Her `(repetition, bit-coordinate)` group is
/// a public function of her index, recomputed server-side rather than
/// transported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitstogramReport {
    /// Report of the `(h_t(x), x[m])` pair.
    pub inner: HashtogramReport,
    /// Report of `x` for the final estimates.
    pub outer: HashtogramReport,
}

/// Wire format: the shared [`wire::encode_pair`] composite frame, the
/// same layout as `SketchReport` (one split byte, then each Hadamard
/// payload in its own minimal encoding).
impl WireReport for BitstogramReport {
    fn encoded_len(&self) -> usize {
        wire::pair_encoded_len(&self.inner, &self.outer)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::encode_pair(&self.inner, &self.outer, out);
    }

    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let (inner, outer) = wire::decode_pair(bytes)?;
        Ok(BitstogramReport { inner, outer })
    }
}

/// Mergeable partial aggregate of a [`Bitstogram`]: buffered inner
/// reports per `(t, m)` group plus the outer oracle's integer-tally
/// shard.
pub struct BitstogramShard {
    inner: Vec<Vec<(u64, HashtogramReport)>>,
    outer: HashtogramShard,
}

/// Snapshot codec — the same composite layout as `SketchShard` minus
/// the user count (this shard tracks none):
/// `[outer_len][outer shard frame][groups]` followed by one
/// buffered-report run per `(t, m)` group.
impl WireShard for BitstogramShard {
    fn shard_encoded_len(&self) -> usize {
        let outer = self.outer.shard_encoded_len();
        varint_len(outer as u64)
            + outer
            + varint_len(self.inner.len() as u64)
            + self
                .inner
                .iter()
                .map(|run| report_run_len(run))
                .sum::<usize>()
    }

    fn encode_shard_into(&self, out: &mut Vec<u8>) {
        write_varint(out, self.outer.shard_encoded_len() as u64);
        self.outer.encode_shard_into(out);
        write_varint(out, self.inner.len() as u64);
        for run in &self.inner {
            write_report_run(out, run);
        }
    }

    fn decode_shard(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ShardReader::new(bytes);
        let outer_len = r.count()?;
        let outer = HashtogramShard::decode_shard(r.raw(outer_len)?)?;
        let groups = r.count()?;
        let mut inner = Vec::with_capacity(groups);
        for _ in 0..groups {
            inner.push(read_report_run(&mut r)?);
        }
        r.finish()?;
        Ok(BitstogramShard { inner, outer })
    }
}

/// The Bitstogram protocol object.
pub struct Bitstogram {
    params: BitstogramParams,
    seed: u64,
    hashes: Vec<PairwiseHash>,
    inner_proto: Hashtogram,
    inner_reports: Vec<Vec<(u64, HashtogramReport)>>,
    outer: Hashtogram,
    finished: bool,
}

impl Bitstogram {
    /// Instantiate from parameters and a public-randomness seed.
    pub fn new(params: BitstogramParams, seed: u64) -> Self {
        let family = HashFamily::new(seed);
        let hashes = (0..params.repetitions as u64)
            .map(|t| family.pairwise(labels::BITSTOGRAM_REP, t, params.hash_range))
            .collect();
        let inner_proto = Hashtogram::new(params.inner_oracle_params(), derive_seed(seed, 0xB175));
        let outer = Hashtogram::new(params.outer_oracle_params(), derive_seed(seed, 0x0074));
        let inner_reports = vec![Vec::new(); params.num_groups()];
        Self {
            params,
            seed,
            hashes,
            inner_proto,
            inner_reports,
            outer,
            finished: false,
        }
    }

    /// Protocol parameters.
    pub fn params(&self) -> &BitstogramParams {
        &self.params
    }

    /// The derivation seed of the public group assignment (hoistable by
    /// batch paths; one value per protocol instance).
    fn assignment_seed(&self) -> u64 {
        derive_seed(self.seed, 0x617)
    }

    /// The group of `user_index` under a hoisted assignment seed — the
    /// single definition both [`Bitstogram::group_of`] and the batch path
    /// go through, so they cannot diverge.
    fn group_at(assignment_seed: u64, user_index: u64, num_groups: u64) -> usize {
        (derive_seed(assignment_seed, user_index) % num_groups) as usize
    }

    /// Public group assignment `i ↦ (t, m)` flattened.
    pub fn group_of(&self, user_index: u64) -> usize {
        Self::group_at(
            self.assignment_seed(),
            user_index,
            self.params.num_groups() as u64,
        )
    }

    /// The inner cell reported by a user holding `x` in group `(t, m)`.
    pub fn cell_of(&self, group: usize, x: u64) -> u64 {
        let t = group / self.params.domain_bits as usize;
        let m = (group % self.params.domain_bits as usize) as u32;
        let y = self.hashes[t].hash(x);
        let bit = (x >> m) & 1;
        2 * y + bit
    }

    /// The one batched client loop `respond_batch` and the fused encode
    /// path drive: per-user derived coin streams with the
    /// group-assignment seed hoisted, each composite report (inner, then
    /// outer — the same draw order as `respond`) handed to `emit` in
    /// user order.
    fn respond_each(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        mut emit: impl FnMut(BitstogramReport),
    ) {
        let group_seed = self.assignment_seed();
        let num_groups = self.params.num_groups() as u64;
        let coins = ClientCoins::new(client_seed);
        for (k, &x) in xs.iter().enumerate() {
            let i = start_index + k as u64;
            let mut rng = coins.user(i);
            let group = Self::group_at(group_seed, i, num_groups);
            let cell = self.cell_of(group, x);
            emit(BitstogramReport {
                inner: self.inner_proto.respond(i, cell, &mut rng),
                outer: self.outer.respond(i, x, &mut rng),
            });
        }
    }
}

impl HeavyHitterProtocol for Bitstogram {
    type Report = BitstogramReport;
    type Shard = BitstogramShard;

    fn respond<R: Rng + ?Sized>(&self, user_index: u64, x: u64, rng: &mut R) -> BitstogramReport {
        let group = self.group_of(user_index);
        let cell = self.cell_of(group, x);
        BitstogramReport {
            inner: self.inner_proto.respond(user_index, cell, rng),
            outer: self.outer.respond(user_index, x, rng),
        }
    }

    fn respond_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
    ) -> Vec<BitstogramReport> {
        let mut out = Vec::with_capacity(xs.len());
        self.respond_each(start_index, xs, client_seed, |rep| out.push(rep));
        out
    }

    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        // Fused: write each composite pair frame straight to the wire —
        // no intermediate report vec.
        let mut lens = Vec::with_capacity(xs.len());
        self.respond_each(start_index, xs, client_seed, |rep| {
            let before = out.len();
            rep.encode_into(out);
            lens.push((out.len() - before) as u32);
        });
        lens
    }

    fn collect(&mut self, user_index: u64, report: BitstogramReport) {
        assert!(!self.finished, "collect after finish");
        let group = self.group_of(user_index);
        self.inner_reports[group].push((user_index, report.inner));
        self.outer.collect(user_index, report.outer);
    }

    fn new_shard(&self) -> BitstogramShard {
        BitstogramShard {
            inner: vec![Vec::new(); self.params.num_groups()],
            outer: self.outer.new_shard(),
        }
    }

    fn absorb(&self, shard: &mut BitstogramShard, start_index: u64, reports: &[BitstogramReport]) {
        let group_seed = self.assignment_seed();
        let num_groups = self.params.num_groups() as u64;
        for (k, rep) in reports.iter().enumerate() {
            let i = start_index + k as u64;
            let group = Self::group_at(group_seed, i, num_groups);
            shard.inner[group].push((i, rep.inner));
        }
        let outer: Vec<HashtogramReport> = reports.iter().map(|r| r.outer).collect();
        self.outer.absorb(&mut shard.outer, start_index, &outer);
    }

    fn absorb_wire(
        &self,
        shard: &mut BitstogramShard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        // Zero-copy: split each composite frame in place — the inner
        // report buffers into its (recomputed) group, the outer report
        // tallies straight into the outer shard through the hoisted
        // absorber.
        let group_seed = self.assignment_seed();
        let num_groups = self.params.num_groups() as u64;
        let outer_absorber = self.outer.absorber();
        for (k, frame) in frames.iter().enumerate() {
            let (inner, outer) = wire::decode_pair::<HashtogramReport, HashtogramReport>(frame)
                .map_err(|e| frames.frame_error(k, e))?;
            let i = start_index + k as u64;
            let group = Self::group_at(group_seed, i, num_groups);
            shard.inner[group].push((i, inner));
            outer_absorber
                .absorb_one(&mut shard.outer, i, outer)
                .map_err(|e| frames.frame_error(k, e))?;
        }
        Ok(())
    }

    fn merge(&self, mut a: BitstogramShard, b: BitstogramShard) -> BitstogramShard {
        // Hard check — decoded snapshots are parameter-free, so a shard
        // with a different group count must not zip-truncate.
        assert_eq!(a.inner.len(), b.inner.len(), "shard shape mismatch");
        for (acc, mut add) in a.inner.iter_mut().zip(b.inner) {
            acc.append(&mut add);
        }
        a.outer = self.outer.merge(a.outer, b.outer);
        a
    }

    fn finish_shard(&mut self, shard: BitstogramShard) {
        assert!(!self.finished, "collect after finish");
        assert_eq!(
            shard.inner.len(),
            self.params.num_groups(),
            "shard shape mismatch"
        );
        for (acc, mut add) in self.inner_reports.iter_mut().zip(shard.inner) {
            acc.append(&mut add);
        }
        self.outer.finish_shard(shard.outer);
    }

    fn finish(&mut self) -> Vec<(u64, f64)> {
        self.finish_with(&mut FinishScratch::default())
    }

    fn finish_with(&mut self, scratch: &mut FinishScratch) -> Vec<(u64, f64)> {
        assert!(!self.finished, "double finish");
        self.finished = true;
        let threads = scratch.threads;
        let p = self.params.clone();
        let m_bits = p.domain_bits as usize;
        let tau = 1.25 * p.cell_noise();
        // Inner decode: every (repetition, bit) group is an independent
        // oracle — materialize, finalize and sweep all of them on
        // parallel workers (results in group order, bit-for-bit the
        // serial loop's tables).
        let estimates = par_map_indexed(p.repetitions * m_bits, threads, |group| {
            let mut oracle = self.inner_proto.clone();
            for &(user, rep) in &self.inner_reports[group] {
                oracle.collect(user, rep);
            }
            oracle.finalize();
            let mut buf = Vec::new();
            (0..p.inner_cells())
                .map(|c| oracle.estimate_into(c, &mut buf))
                .collect::<Vec<f64>>()
        });
        // Reconstruct candidates repetition by repetition — the bit-wise
        // vote over the estimate tables is cheap and order-sensitive
        // (candidate order feeds the output), so it stays serial.
        let mut candidates: Vec<u64> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for t in 0..p.repetitions {
            let estimates = &estimates[t * m_bits..(t + 1) * m_bits];
            for y in 0..p.hash_range {
                let mut x = 0u64;
                let mut support = 0usize;
                for (m, est) in estimates.iter().enumerate() {
                    let f0 = est[(2 * y) as usize];
                    let f1 = est[(2 * y + 1) as usize];
                    if f1 > f0 {
                        x |= 1 << m;
                    }
                    if f0.max(f1) >= tau {
                        support += 1;
                    }
                }
                // A real heavy hitter stands out in (essentially) every
                // bit coordinate of the repetition.
                if support * 2 >= m_bits && seen.insert(x) {
                    candidates.push(x);
                }
            }
        }
        // Final estimates from the outer oracle, swept over candidate
        // chunks in parallel with pooled median workspaces.
        self.outer.finalize_with(scratch);
        let keep = p.detection_threshold() / 2.0;
        let mut est: Vec<(u64, f64)> = Vec::with_capacity(candidates.len());
        if !candidates.is_empty() {
            let workers = planned_threads(threads, candidates.len(), 1);
            let chunk = candidates.len().div_ceil(workers).max(1);
            let num_chunks = candidates.len().div_ceil(chunk);
            let bufs: Vec<Vec<f64>> = (0..num_chunks).map(|_| scratch.take_f64()).collect();
            let parts = par_chunk_zip_map(&candidates, chunk, threads, bufs, |_, xs, mut buf| {
                let part: Vec<(u64, f64)> = xs
                    .iter()
                    .map(|&x| (x, self.outer.estimate_into(x, &mut buf)))
                    .filter(|&(_, f)| f >= keep)
                    .collect();
                (part, buf)
            });
            for (part, buf) in parts {
                est.extend_from_slice(&part);
                scratch.put_f64(buf);
            }
        }
        est.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite estimates")
                .then_with(|| a.0.cmp(&b.0))
        });
        est
    }

    fn report_bits(&self) -> usize {
        // Exact worst-case wire size of the composite message, as for
        // `SketchReport`.
        wire::pair_wire_bits(self.inner_proto.report_bits(), self.outer.report_bits())
    }

    fn memory_bytes(&self) -> usize {
        self.inner_proto.memory_bytes() * self.params.domain_bits as usize
            + self.outer.memory_bytes()
    }

    fn epsilon(&self) -> f64 {
        self.params.eps
    }

    fn detection_threshold(&self) -> f64 {
        self.params.detection_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_math::rng::seeded_rng;

    fn planted(n: usize, domain_bits: u32, heavy: &[(u64, f64)], seed: u64) -> Vec<u64> {
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        let domain = 1u64 << domain_bits;
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                for &(x, frac) in heavy {
                    acc += frac;
                    if u < acc {
                        return x;
                    }
                }
                rng.gen_range(0..domain)
            })
            .collect()
    }

    #[test]
    fn threshold_carries_the_sqrt_log_beta_factor() {
        // The headline comparison: as beta shrinks, Bitstogram's threshold
        // grows ~sqrt(log(1/beta)) faster than PrivateExpanderSketch's.
        let n = 1u64 << 16;
        let ours_01 = crate::SketchParams::optimal(n, 24, 1.0, 0.1).detection_threshold();
        let ours_tiny = crate::SketchParams::optimal(n, 24, 1.0, 1e-8).detection_threshold();
        let theirs_01 = BitstogramParams::optimal(n, 24, 1.0, 0.1).detection_threshold();
        let theirs_tiny = BitstogramParams::optimal(n, 24, 1.0, 1e-8).detection_threshold();
        let ours_growth = ours_tiny / ours_01;
        let theirs_growth = theirs_tiny / theirs_01;
        assert!(
            theirs_growth > 1.8 * ours_growth,
            "expected clear separation: ours x{ours_growth:.2}, theirs x{theirs_growth:.2}"
        );
    }

    #[test]
    fn recovers_a_dominant_heavy_hitter() {
        // Bitstogram's constants are worse than the sketch's (that is the
        // point); size the test accordingly with a high-eps profile.
        let n = 1usize << 17;
        let mut params = BitstogramParams::optimal(n as u64, 12, 4.0, 0.5);
        params.repetitions = 1;
        let delta = params.detection_threshold();
        assert!(delta < 0.5 * n as f64, "sizing: delta = {delta}");
        let hx = 0xABCu64;
        let frac = (delta / n as f64) * 1.5;
        let data = planted(n, 12, &[(hx, frac)], 41);
        let mut server = Bitstogram::new(params, 42);
        let mut rng = seeded_rng(43);
        for (i, &x) in data.iter().enumerate() {
            let rep = server.respond(i as u64, x, &mut rng);
            server.collect(i as u64, rep);
        }
        let est = server.finish();
        assert!(
            est.iter().any(|&(x, _)| x == hx),
            "missed the planted element: {est:?}"
        );
    }

    #[test]
    fn group_assignment_covers_all_groups() {
        let params = BitstogramParams::optimal(1 << 14, 16, 1.0, 0.25);
        let server = Bitstogram::new(params.clone(), 5);
        let mut counts = vec![0u64; params.num_groups()];
        for i in 0..(1u64 << 14) {
            counts[server.group_of(i)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "empty group");
    }

    #[test]
    fn repetitions_grow_with_beta() {
        let a = BitstogramParams::optimal(1 << 16, 24, 1.0, 0.1);
        let b = BitstogramParams::optimal(1 << 16, 24, 1.0, 1e-6);
        assert!(b.repetitions > a.repetitions);
        assert_eq!(b.repetitions, 20);
    }
}
