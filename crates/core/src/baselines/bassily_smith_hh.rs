//! The Bassily–Smith \[4\] column of Table 1 as a runnable heavy-hitters
//! protocol: their JL-projection frequency oracle with the heavy-hitter
//! search realized as a full domain scan.
//!
//! This is the "impractical baseline" the paper's introduction targets:
//! the oracle itself is fine (1-bit-ish reports, optimal error in n and
//! |X| at constant β), but *finding* the heavy hitters costs
//! `Θ(w·|X|) = Θ(n·|X|)` server work because every domain element must
//! be queried — versus `O~(n)` for `PrivateExpanderSketch`. The domain is
//! capped accordingly; the `exp_table1_resources` bench extrapolates the
//! full-domain cost.

use crate::traits::{FinishScratch, FrameError, HeavyHitterProtocol, WireFrames};
use hh_freq::bassily_smith::{BassilySmithOracle, BsReport, BsShard};
use hh_freq::calibrate;
use hh_freq::traits::FrequencyOracle;
use hh_math::par::{par_map_indexed, planned_threads};
use rand::Rng;

/// Configuration of [`BassilySmithHeavyHitters`].
#[derive(Debug, Clone)]
pub struct BsHhParams {
    /// Expected number of users.
    pub n: u64,
    /// Domain size (scanned exhaustively; capped at 2^18 — the point).
    pub domain: u64,
    /// Privacy budget ε.
    pub eps: f64,
    /// Failure probability β.
    pub beta: f64,
    /// Projection dimension `w` (their `Θ(n)`).
    pub projection_dim: u64,
}

impl BsHhParams {
    /// The faithful profile: `w = n`.
    pub fn optimal(n: u64, domain: u64, eps: f64, beta: f64) -> Self {
        assert!(
            domain <= 1 << 18,
            "the [4]-style scan beyond 2^18 is the impracticality this baseline exhibits"
        );
        Self {
            n,
            domain,
            eps,
            beta,
            projection_dim: n.max(64),
        }
    }

    /// Detection threshold: the oracle's per-query deviation with a union
    /// bound over the scanned domain. The projection's cross-term noise
    /// adds a `sqrt(1 + n/w)` factor (≈ √2 at `w = n`).
    pub fn detection_threshold(&self) -> f64 {
        let cross = (1.0 + self.n as f64 / self.projection_dim as f64).sqrt();
        3.0 * cross
            * calibrate::union_threshold(self.n as f64, self.eps, self.beta / 2.0, self.domain)
    }
}

/// Bassily–Smith-style heavy hitters: projection oracle + domain scan.
pub struct BassilySmithHeavyHitters {
    params: BsHhParams,
    oracle: BassilySmithOracle,
    finished: bool,
}

impl BassilySmithHeavyHitters {
    /// Instantiate from parameters and a public-randomness seed.
    pub fn new(params: BsHhParams, seed: u64) -> Self {
        let oracle =
            BassilySmithOracle::new(params.domain, params.eps, params.projection_dim, seed);
        Self {
            params,
            oracle,
            finished: false,
        }
    }

    /// Protocol parameters.
    pub fn params(&self) -> &BsHhParams {
        &self.params
    }
}

impl HeavyHitterProtocol for BassilySmithHeavyHitters {
    type Report = BsReport;
    type Shard = BsShard;

    fn respond<R: Rng + ?Sized>(&self, user_index: u64, x: u64, rng: &mut R) -> BsReport {
        self.oracle.respond(user_index, x, rng)
    }

    fn respond_batch(&self, start_index: u64, xs: &[u64], client_seed: u64) -> Vec<BsReport> {
        self.oracle.respond_batch(start_index, xs, client_seed)
    }

    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        self.oracle
            .respond_encode_batch(start_index, xs, client_seed, out)
    }

    fn collect(&mut self, user_index: u64, report: BsReport) {
        assert!(!self.finished, "collect after finish");
        self.oracle.collect(user_index, report);
    }

    fn new_shard(&self) -> BsShard {
        self.oracle.new_shard()
    }

    fn absorb(&self, shard: &mut BsShard, start_index: u64, reports: &[BsReport]) {
        self.oracle.absorb(shard, start_index, reports);
    }

    fn absorb_wire(
        &self,
        shard: &mut BsShard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        self.oracle.absorb_wire(shard, start_index, frames)
    }

    fn merge(&self, a: BsShard, b: BsShard) -> BsShard {
        self.oracle.merge(a, b)
    }

    fn finish_shard(&mut self, shard: BsShard) {
        assert!(!self.finished, "collect after finish");
        self.oracle.finish_shard(shard);
    }

    fn finish(&mut self) -> Vec<(u64, f64)> {
        self.finish_with(&mut FinishScratch::default())
    }

    fn finish_with(&mut self, scratch: &mut FinishScratch) -> Vec<(u64, f64)> {
        assert!(!self.finished, "double finish");
        self.finished = true;
        let threads = scratch.threads;
        self.oracle.finalize_with(scratch);
        let keep = self.params.detection_threshold() / 2.0;
        let domain = self.params.domain;
        // The Θ(n·|X|) scan — the cost Table 1 indicts. Parallelism
        // spreads it over one contiguous span per worker (each query is an
        // allocation-free serial dot product, so the results are exactly
        // the serial scan's, reassembled in domain order).
        let workers = planned_threads(threads, domain as usize, 1);
        let span = (domain as usize).div_ceil(workers).max(1) as u64;
        let oracle = &self.oracle;
        let parts = par_map_indexed(workers, threads, |w| {
            let start = w as u64 * span;
            (start..(start + span).min(domain))
                .filter_map(|x| {
                    let f = oracle.estimate(x);
                    (f >= keep).then_some((x, f))
                })
                .collect::<Vec<(u64, f64)>>()
        });
        let mut est = Vec::new();
        for part in parts {
            est.extend_from_slice(&part);
        }
        est.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite estimates")
                .then_with(|| a.0.cmp(&b.0))
        });
        est
    }

    fn report_bits(&self) -> usize {
        self.oracle.report_bits()
    }

    fn memory_bytes(&self) -> usize {
        self.oracle.memory_bytes()
    }

    fn epsilon(&self) -> f64 {
        self.params.eps
    }

    fn detection_threshold(&self) -> f64 {
        self.params.detection_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_math::rng::seeded_rng;

    #[test]
    fn finds_a_dominant_heavy_hitter_on_a_small_domain() {
        let n = 30_000u64;
        let domain = 1u64 << 10;
        let params = BsHhParams::optimal(n, domain, 2.0, 0.2);
        let delta = params.detection_threshold();
        assert!(delta < 0.5 * n as f64, "sizing: {delta}");
        let mut server = BassilySmithHeavyHitters::new(params, 1);
        let mut rng = seeded_rng(2);
        use rand::Rng;
        let heavy = 321u64;
        for i in 0..n {
            let x = if i % 2 == 0 {
                heavy
            } else {
                rng.gen_range(0..domain)
            };
            let rep = server.respond(i, x, &mut rng);
            server.collect(i, rep);
        }
        let est = server.finish();
        assert!(
            est.iter().any(|&(x, _)| x == heavy),
            "missed planted element: {:?}",
            est.iter().take(5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn memory_is_linear_in_n_unlike_hashtogram() {
        let a = BassilySmithHeavyHitters::new(BsHhParams::optimal(1 << 12, 256, 1.0, 0.1), 3);
        let b = BassilySmithHeavyHitters::new(BsHhParams::optimal(1 << 16, 256, 1.0, 0.1), 3);
        // 16x users -> 16x memory: the Table 1 contrast with O~(sqrt n).
        assert_eq!(b.memory_bytes(), 16 * a.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "impracticality")]
    fn refuses_large_domains() {
        let _ = BsHhParams::optimal(1 << 16, 1 << 30, 1.0, 0.1);
    }
}
