//! Prior-work baselines `PrivateExpanderSketch` is measured against.

pub mod bassily_smith_hh;
pub mod bitstogram;
pub mod scan;

pub use bassily_smith_hh::{BassilySmithHeavyHitters, BsHhParams};
pub use bitstogram::{Bitstogram, BitstogramParams};
pub use scan::{ScanHeavyHitters, ScanParams};
