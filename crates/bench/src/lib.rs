//! Shared utilities for the experiment harness.
//!
//! The binaries in `src/bin/exp_*.rs` regenerate every quantitative claim
//! of the paper (see EXPERIMENTS.md for the index); this library holds
//! the table-printing, JSON-emission and sweep plumbing they share.

use std::fmt::Write as _;

/// A fixed-width text table writer for experiment output.
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            widths: headers.iter().map(|h| h.len().max(8)).collect(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        for (w, c) in self.widths.iter_mut().zip(cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells.to_vec());
    }

    /// Render to stdout.
    pub fn print(&self) {
        let line: Vec<String> = self
            .headers
            .iter()
            .zip(&self.widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        println!("{}", line.join("  "));
        let rule: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", rule.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", cells.join("  "));
        }
    }
}

/// Format a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.2e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Format a duration in adaptive units.
pub fn fmt_dur(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2}us", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

/// A minimal JSON object builder for machine-readable bench output
/// (`BENCH_*.json` files tracked across PRs for the perf trajectory).
/// Hand-rolled on purpose: the build environment has no registry access,
/// and the experiment output is flat key/value data.
#[derive(Debug, Default)]
pub struct JsonObject {
    parts: Vec<String>,
}

impl JsonObject {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        let mut escaped = String::with_capacity(value.len());
        for c in value.chars() {
            match c {
                '"' => escaped.push_str("\\\""),
                '\\' => escaped.push_str("\\\\"),
                '\n' => escaped.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(escaped, "\\u{:04x}", c as u32);
                }
                c => escaped.push(c),
            }
        }
        self.parts.push(format!("\"{key}\": \"{escaped}\""));
        self
    }

    /// Add an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.parts.push(format!("\"{key}\": {value}"));
        self
    }

    /// Add a float field (finite; NaN/inf are serialized as null).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        if value.is_finite() {
            self.parts.push(format!("\"{key}\": {value}"));
        } else {
            self.parts.push(format!("\"{key}\": null"));
        }
        self
    }

    /// Add a pre-serialized JSON value (nested object or array).
    pub fn raw(mut self, key: &str, value: String) -> Self {
        self.parts.push(format!("\"{key}\": {value}"));
        self
    }

    /// Serialize.
    pub fn build(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&self.parts.join(",\n"));
        out.push_str("\n}");
        out
    }
}

/// Serialize a sequence of pre-built JSON values as an array.
pub fn json_array<I: IntoIterator<Item = String>>(items: I) -> String {
    let items: Vec<String> = items.into_iter().collect();
    if items.is_empty() {
        "[]".into()
    } else {
        format!("[\n{}\n]", items.join(",\n"))
    }
}

/// Print an experiment banner with provenance info.
pub fn banner(id: &str, claim: &str) {
    println!("==================================================================");
    println!("experiment {id}");
    println!("  claim: {claim}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panicking() {
        let mut t = Table::new(&["a", "beta"]);
        t.row(&["1".into(), fmt(0.25)]);
        t.row(&["200".into(), fmt(1e-9)]);
        t.print();
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.25), "0.250");
        assert_eq!(fmt(12345.0), "12345");
        assert_eq!(fmt(1e9), "1.00e9");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn json_object_serializes() {
        let j = JsonObject::new()
            .str("name", "table1 \"resources\"")
            .int("n", 1_000_000)
            .num("speedup", 2.5)
            .num("bad", f64::NAN)
            .raw("runs", json_array(vec!["{\n\"a\": 1\n}".into()]))
            .build();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"name\": \"table1 \\\"resources\\\"\""));
        assert!(j.contains("\"n\": 1000000"));
        assert!(j.contains("\"speedup\": 2.5"));
        assert!(j.contains("\"bad\": null"));
        assert!(j.contains("\"runs\": [\n{\n\"a\": 1\n}\n]"));
    }

    #[test]
    fn json_array_empty() {
        assert_eq!(json_array(Vec::<String>::new()), "[]");
    }
}
