//! Shared utilities for the experiment harness.
//!
//! The binaries in `src/bin/exp_*.rs` regenerate every quantitative claim
//! of the paper (see EXPERIMENTS.md for the index); this library holds
//! the table-printing and sweep plumbing they share.

/// A fixed-width text table writer for experiment output.
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            widths: headers.iter().map(|h| h.len().max(8)).collect(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        for (w, c) in self.widths.iter_mut().zip(cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells.to_vec());
    }

    /// Render to stdout.
    pub fn print(&self) {
        let line: Vec<String> = self
            .headers
            .iter()
            .zip(&self.widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        println!("{}", line.join("  "));
        let rule: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", rule.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", cells.join("  "));
        }
    }
}

/// Format a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.2e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Format a duration in adaptive units.
pub fn fmt_dur(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2}us", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

/// Print an experiment banner with provenance info.
pub fn banner(id: &str, claim: &str) {
    println!("==================================================================");
    println!("experiment {id}");
    println!("  claim: {claim}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panicking() {
        let mut t = Table::new(&["a", "beta"]);
        t.row(&["1".into(), fmt(0.25)]);
        t.row(&["200".into(), fmt(1e-9)]);
        t.print();
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.25), "0.250");
        assert_eq!(fmt(12345.0), "12345");
        assert_eq!(fmt(1e9), "1.00e9");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
