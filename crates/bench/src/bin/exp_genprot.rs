//! Experiment F6.1 — GenProt (Theorem 6.1): approximate → pure LDP.
//!
//! Wraps a genuinely `(ε, δ)`-only randomizer and prints, across T: the
//! exact (certified) pure-DP level of the transformed report vs the 10ε
//! bound, the TV bound to the original protocol, and the report size in
//! bits (`O(log log n)`).

use hh_bench::{banner, fmt, Table};
use hh_freq::randomizers::{DiscreteGaussianRandomizer, RevealingRandomizer};
use hh_structure::audit;
use hh_structure::GenProt;

fn main() {
    banner(
        "F6.1 — GenProt (Theorem 6.1)",
        "any (eps,delta)-LDP randomizer -> pure 10*eps-LDP with O(log log n)-bit reports",
    );
    let (eps, delta) = (0.25, 1e-9);
    let k = 8u64;
    let inputs: Vec<u64> = (0..k).collect();
    let base = RevealingRandomizer::new(k, eps, delta);
    println!(
        "\nbase: RevealingRandomizer, exact pure eps = {:?}, exact delta at eps: {:.1e}\n",
        audit::exact_pure_epsilon(&base, &inputs),
        audit::exact_delta(&base, eps, &inputs)
    );

    println!("— certified privacy and utility vs T (n = 2^14 users) —\n");
    let n = 1u64 << 14;
    let mut t = Table::new(&[
        "T",
        "report bits",
        "certified eps (worst of 30 users)",
        "10*eps",
        "TV bound",
    ]);
    for &tt in &[8usize, 16, 32, 64, 128] {
        let gp = GenProt::new(base.clone(), eps, tt, 1234);
        let mut worst: f64 = 0.0;
        for user in 0..30u64 {
            worst = worst.max(gp.exact_epsilon(user, &inputs));
        }
        t.row(&[
            tt.to_string(),
            gp.report_bits().to_string(),
            fmt(worst),
            fmt(10.0 * eps),
            fmt(gp.tv_bound(n, delta)),
        ]);
    }
    t.print();
    println!("\nexpected: certified eps well below 10*eps for every fixing;");
    println!("TV bound decays geometrically in T until the delta term floors it.");

    println!("\n— report size vs population (the O(log log n) row of Table 1) —\n");
    let mut t = Table::new(&["n", "T = 2 ln(2n/beta)", "report bits"]);
    for &logn in &[10u32, 20, 30, 40] {
        let n = 1u64 << logn;
        let tt = GenProt::<RevealingRandomizer>::recommended_t(n, 0.01);
        let gp = GenProt::new(base.clone(), eps, tt, 1);
        t.row(&[
            format!("2^{logn}"),
            tt.to_string(),
            gp.report_bits().to_string(),
        ]);
    }
    t.print();

    println!("\n— a second base: discretized Gaussian (the textbook (eps,delta) mechanism) —\n");
    let gauss = DiscreteGaussianRandomizer::new(3.0, 1, 24);
    println!(
        "base exact delta at eps = 0.3: {:.2e}",
        gauss.exact_delta(0.3)
    );
    let gp = GenProt::new(gauss, 0.3, 24, 77);
    let mut worst: f64 = 0.0;
    for user in 0..20u64 {
        worst = worst.max(gp.exact_epsilon(user, &[0, 1]));
    }
    println!(
        "wrapped: certified eps = {} <= 10*eps = {} — pure privacy from a Gaussian.",
        fmt(worst),
        fmt(3.0)
    );
}
