//! Experiment F4.2 — advanced grouposition (Theorem 4.2).
//!
//! Group privacy in the local model degrades like
//! `ε′(k) = kε²/2 + ε√(2k ln(1/δ))` ≈ √k·ε — not kε as in the central
//! model. Prints the bound, the central comparator, the *exact* group
//! loss of randomized response, and Monte-Carlo tails for a non-binary
//! randomizer.

use hh_bench::{banner, fmt, Table};
use hh_freq::randomizers::GeneralizedRandomizedResponse;
use hh_math::rng::seeded_rng;
use hh_math::stats::loglog_slope;
use hh_structure::grouposition::{
    central_model_epsilon, group_loss_tail_monte_carlo, grouposition_epsilon,
    rr_group_epsilon_exact, rr_group_loss_tail_exact,
};

fn main() {
    banner(
        "F4.2 — advanced grouposition (Theorem 4.2)",
        "local-model group privacy ~ sqrt(k)*eps, central-model ~ k*eps",
    );
    let eps = 0.1;
    let delta = 1e-6;
    println!("\nper-user eps = {eps}, delta = {delta}:\n");
    let mut t = Table::new(&[
        "k",
        "central k*eps",
        "Thm 4.2",
        "exact RR",
        "exact tail at Thm 4.2 eps'",
    ]);
    let mut ks = Vec::new();
    let mut exacts = Vec::new();
    for &k in &[1u64, 4, 16, 64, 256, 1024, 4096, 16384, 65536] {
        let bound = grouposition_epsilon(k, eps, delta);
        let exact = rr_group_epsilon_exact(k, eps, delta);
        let tail = rr_group_loss_tail_exact(k, eps, bound);
        ks.push(k as f64);
        exacts.push(exact.max(1e-9));
        t.row(&[
            k.to_string(),
            fmt(central_model_epsilon(k, eps)),
            fmt(bound),
            fmt(exact),
            format!("{tail:.1e}"),
        ]);
    }
    t.print();
    println!(
        "\nlog-log slope of exact eps'(k) over the last decade: {:.3} (theory: 0.5; \
         the k*eps^2/2 term bends it up at huge k)",
        loglog_slope(&ks[3..], &exacts[3..])
    );

    println!("\n— Monte-Carlo check on a non-binary randomizer (GRR over [5]) —\n");
    let mut t = Table::new(&["k", "Thm 4.2 eps'", "MC tail (<= delta?)"]);
    let grr = GeneralizedRandomizedResponse::new(5, eps);
    let mut rng = seeded_rng(88);
    for &k in &[64u64, 256, 1024] {
        let d = 0.01;
        let bound = grouposition_epsilon(k, eps, d);
        let pairs: Vec<(u64, u64)> = (0..k).map(|i| (i % 5, (i + 3) % 5)).collect();
        let tail = group_loss_tail_monte_carlo(&grr, &pairs, bound, 40_000, &mut rng);
        t.row(&[
            k.to_string(),
            fmt(bound),
            format!("{tail:.4} (delta = {d})"),
        ]);
    }
    t.print();
}
