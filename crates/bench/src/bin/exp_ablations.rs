//! Ablations AB.1–AB.3 — the design choices DESIGN.md calls out.
//!
//! * AB.1: per-coordinate independent hashes (the §3.1.2 idea) vs a
//!   single shared hash (the \[3\] design): per-message failure
//!   concentration vs all-or-nothing collisions.
//! * AB.2: spectral clustering vs naive connected components in the
//!   ULRC decoder's graph as cross-cluster noise grows.
//! * AB.3: the ε split between the coordinate report and the final
//!   oracle report.

use hh_bench::{banner, fmt, Table};
use hh_core::SketchParams;
use hh_graph::cluster::{spectral_clusters, ClusterParams};
use hh_graph::expander::expander;
use hh_graph::Graph;
use hh_hash::PairwiseHash;
use hh_math::rng::{derive_seed, seeded_rng};
use rand::Rng;

/// AB.1: probability that a heavy element becomes unrecoverable due to
/// hash collisions with other heavy mass — a single shared hash fails
/// with constant probability no matter how many coordinates exist, while
/// independent per-coordinate hashes drive the failure exponentially to
/// zero in M (the §3.1.2 insight that removes \[3\]'s repetitions).
fn ab1() {
    println!("\n— AB.1: single shared hash vs per-coordinate hashes —\n");
    let y_range = 64u64;
    let alpha = 0.25;
    let others = 4usize; // competing heavy elements in the same bucket
    let trials = 30_000u64;
    println!("Y = {y_range}, {others} competing heavies, alpha = {alpha}:\n");
    let mut t = Table::new(&["M", "single hash: Pr[fail]", "per-coordinate: Pr[fail]"]);
    for &m_coords in &[4usize, 8, 12, 16] {
        let budget = (alpha * m_coords as f64).floor() as usize;
        // Single shared hash: one collision kills every coordinate at
        // once — M is irrelevant.
        let mut fail_single = 0u64;
        for trial in 0..trials {
            let h = PairwiseHash::new(derive_seed(1, trial), y_range);
            let target = h.hash(0);
            if (1..=others as u64).any(|x| h.hash(x) == target) {
                fail_single += 1;
            }
        }
        // Per-coordinate hashes: failures are independent per coordinate;
        // the message dies only when more than alpha*M coordinates fail.
        let mut fail_multi = 0u64;
        for trial in 0..trials {
            let mut bad = 0usize;
            for m in 0..m_coords {
                let h = PairwiseHash::new(derive_seed(derive_seed(2, trial), m as u64), y_range);
                let target = h.hash(0);
                if (1..=others as u64).any(|x| h.hash(x) == target) {
                    bad += 1;
                }
            }
            if bad > budget {
                fail_multi += 1;
            }
        }
        t.row(&[
            m_coords.to_string(),
            fmt(fail_single as f64 / trials as f64),
            fmt(fail_multi as f64 / trials as f64),
        ]);
    }
    t.print();
    println!("\nsingle-hash failure is flat in M — [3] must amplify with sqrt(log 1/beta)");
    println!("independent repetitions; per-coordinate failure decays exponentially in M,");
    println!("which is exactly how PrivateExpanderSketch earns its optimal beta dependence.");
}

/// AB.2: clustering robustness as cross-cluster noise edges grow.
fn ab2() {
    println!("\n— AB.2: spectral clustering vs connected components under noise —\n");
    let (k, m, d) = (4usize, 24usize, 4usize);
    let base = expander(m, d, 2.3 * ((d - 1) as f64).sqrt(), 3);
    let mut t = Table::new(&[
        "noise edges",
        "spectral: clusters found",
        "spectral: exact recoveries",
        "conn-comp: clusters found",
    ]);
    for &noise in &[0usize, 4, 8, 16, 32] {
        let mut g = Graph::new(k * m);
        for c in 0..k {
            let off = (c * m) as u32;
            for v in 0..m as u32 {
                for &u in base.neighbors(v as usize) {
                    if v < u {
                        g.add_edge(off + v, off + u);
                    }
                }
            }
        }
        let mut rng = seeded_rng(derive_seed(4, noise as u64));
        let mut added = 0;
        while added < noise {
            let a = rng.gen_range(0..(k * m) as u32);
            let b = rng.gen_range(0..(k * m) as u32);
            if a / m as u32 != b / m as u32 {
                g.add_edge(a, b);
                added += 1;
            }
        }
        let spectral = spectral_clusters(&g, &ClusterParams::default());
        let exact = (0..k)
            .filter(|&c| {
                let truth: std::collections::HashSet<u32> =
                    ((c * m) as u32..((c + 1) * m) as u32).collect();
                spectral.iter().any(|f| {
                    let fs: std::collections::HashSet<u32> = f.iter().copied().collect();
                    fs.intersection(&truth).count() as f64 >= 0.9 * m as f64
                        && fs.len() <= (1.2 * m as f64) as usize
                })
            })
            .count();
        let cc = g.connected_components().len();
        t.row(&[
            noise.to_string(),
            spectral.len().to_string(),
            format!("{exact}/{k}"),
            cc.to_string(),
        ]);
    }
    t.print();
    println!("\nconnected components collapse to 1 once any noise bridges clusters;");
    println!("sweep-cut clustering keeps recovering them (the Theorem B.3 property).");
}

/// AB.3: the ε split between inner and outer reports.
fn ab3() {
    println!("\n— AB.3: privacy-budget split between coordinate and estimate reports —\n");
    let n = 1u64 << 18;
    let mut t = Table::new(&[
        "inner fraction",
        "detection Delta",
        "estimation error bound",
    ]);
    for &frac in &[0.25f64, 0.4, 0.5, 0.6, 0.75] {
        let mut p = SketchParams::optimal(n, 24, 2.0, 0.05);
        p.inner_eps_fraction = frac;
        t.row(&[
            fmt(frac),
            fmt(p.detection_threshold()),
            fmt(p.estimation_error_bound()),
        ]);
    }
    t.print();
    println!("\nthe paper's 1/2 split is near-balanced; detection favors larger");
    println!("inner budgets while estimate accuracy favors the outer oracle.");
}

fn main() {
    banner(
        "AB.1–AB.3 — ablations",
        "design choices called out in DESIGN.md",
    );
    ab1();
    ab2();
    ab3();
}
