//! Experiments T1.time / T1.mem / T1.comm — the resource rows of Table 1.
//!
//! Measures server time, per-user time, server memory, per-user
//! communication (claimed bits *and* measured wire bytes) and
//! public-randomness size for `PrivateExpanderSketch`, Bitstogram (\[3\])
//! and the Bassily–Smith-style projection oracle (\[4\], with its
//! heavy-hitter search realized as the domain scan the paper deems
//! impractical), across n. Expected shapes per Table 1: ours/\[3\]
//! near-linear server time and O~(1) user cost with O~(√n) memory;
//! \[4\] linear-in-n memory and a per-query cost that makes domain scans
//! explode.
//!
//! Every protocol in this binary is **registry-dispatched**: rows name
//! protocols by their `hh_sim::registry` names and run them through the
//! type-erased drivers, so adding a protocol to the registry adds it to
//! the harness with no per-binary plumbing.
//!
//! Flags:
//!
//! * `--serial` — drive the table rows through the serial reference
//!   runner instead of the batched parallel pipeline (the default), for
//!   before/after comparison.
//! * `--distributed` — drive the table rows through the distributed
//!   collector-fleet pipeline (8 nodes, tree merge): every report is
//!   round-tripped through its wire encoding on the way to a collector.
//! * `--stream` — additionally run the streaming epoch engine (drifting
//!   workload, per-epoch checkpoints, one collector crash + recovery)
//!   and report snapshot bytes/collector, checkpoint + recovery time,
//!   and epoch throughput next to the wire column, plus a cold + warm
//!   mid-stream query pair whose finish-phase counters (fold time,
//!   cache hits, scratch reuse) land in the record; with `--json` /
//!   `--json-out` the records land in the JSON document.
//! * `--ingest-bench` — measure steady-state ingest throughput
//!   (users/sec and MB/s) of the fused zero-copy path
//!   (`respond_encode_batch` + `absorb_wire`) against the legacy
//!   materializing path (respond → encode → decode → absorb), with the
//!   two shards checked bit-for-bit equal; with `--json` / `--json-out`
//!   the records land in the JSON document so the speedup is tracked,
//!   not asserted (without them nothing is written — the tracked
//!   baseline is never clobbered with a partial document).
//! * `--pipeline` — measure end-to-end streaming ingest throughput of
//!   the **pipelined collector runtime** (long-lived collector actors,
//!   bounded queues, no epoch barriers) against the lock-step
//!   `StreamEngine` over the same epochs/checkpoints, with the final
//!   shards checked bit-for-bit equal; with `--json` / `--json-out` the
//!   records (including backpressure stats) land in the JSON document.
//! * `--client-bench` — measure client-side sampling throughput
//!   (users/sec) of the word-kernel client path (`respond_encode_batch`
//!   riding the bit-parallel Bernoulli / one-draw GRR / divide-free
//!   Lemire kernels) against the pre-kernel per-coin client (one `f64`
//!   convert+compare per coin, modulo row picks, a full per-user RNG
//!   construction — emulated in this binary; the library path no longer
//!   exists), with the fused kernel bytes checked bit-for-bit against
//!   the scalar kernel path over the same users; with `--json` /
//!   `--json-out` the records land in the JSON document as `client`
//!   rows.
//! * `--finish-bench` — measure the server-side finish (decode)
//!   wall-clock: the parallel scratch-threaded `finish_with` against
//!   the forced-serial path over the four registry heavy-hitter
//!   protocols (outputs checked bit-for-bit equal), plus incremental
//!   mid-stream finalization on the streaming engine — `finish_at_epoch`
//!   cold (first query after a checkpoint, pays the fold once) and warm
//!   (memoized) against a from-scratch snapshot decode + finish; with
//!   `--json` / `--json-out` the records land in the JSON document as
//!   `finish` rows.
//! * `--quick` — small-n profile (CI smoke runs).
//! * `--json` — additionally run the serial-vs-batched comparison, the
//!   collector-count merge-scaling sweep, the ingest throughput
//!   comparison *and* the pipeline comparison (implied, so the document
//!   is always written whole), and write the machine-readable record
//!   (the perf-trajectory baseline tracked across PRs).
//! * `--json-out <path>` — where `--json` (and the implied comparisons)
//!   write (default `BENCH_table1.json`).

use hh_bench::{banner, fmt_dur, json_array, JsonObject, Table};
use hh_core::baselines::{ScanHeavyHitters, ScanParams};
use hh_core::traits::HeavyHitterProtocol;
use hh_core::{ExpanderSketch, SketchParams, SketchReport};
use hh_freq::hashtogram::{Hashtogram, HashtogramReport};
use hh_freq::krr::KrrOracle;
use hh_freq::rappor::Rappor;
use hh_freq::traits::FrequencyOracle;
use hh_freq::wire::{encode_reports, write_uint, WireFrames, WireReport};
use hh_math::rng::{client_rng, derive_seed, seeded_rng};
use hh_math::wht::hadamard_entry;
use hh_math::FinishScratch;
use hh_sim::registry::{build_hh, build_oracle, ProtocolSpec};
use hh_sim::{
    run_dyn_heavy_hitter, run_dyn_heavy_hitter_batched, run_dyn_heavy_hitter_distributed,
    run_dyn_oracle, run_dyn_oracle_batched, run_dyn_oracle_distributed, run_pipelined,
    run_pipelined_all, BatchPlan, DistPlan, DynHhProtocol, DynHhStream, DynOracleStream,
    FinishPhase, HhStream, MaterializingIngest, OracleStream, PipelineConfig, ProtocolRun,
    StreamEngine, StreamIngest, StreamPlan, StreamWorkload, Workload,
};
use rand::Rng;
use std::time::Instant;

/// Which pipeline drives the table rows.
#[derive(Clone, Copy, PartialEq)]
enum Driver {
    Serial,
    Batched,
    Distributed,
}

/// A table row's timing plus the measured wire accounting.
struct RowRun {
    run: ProtocolRun,
    /// Mean measured wire bytes per user (end-to-end in distributed
    /// mode, sampled from real reports otherwise).
    wire_bytes_per_user: f64,
}

/// How many leading users the non-distributed rows sample to measure
/// mean wire bytes (the distributed driver measures end-to-end instead).
const WIRE_SAMPLE_CAP: usize = 1 << 13;
/// Client seed of the wire-size sample (any fixed value works — report
/// sizes concentrate; fixed so reruns print identical columns).
const WIRE_SAMPLE_SEED: u64 = 0x317E;

/// Mean encoded report size over a leading sample of the population,
/// measured through the fused wire path.
fn sample_wire_bytes(server: &dyn DynHhProtocol, data: &[u64]) -> f64 {
    let sample = &data[..data.len().min(WIRE_SAMPLE_CAP)];
    let mut buf = Vec::new();
    server.respond_encode_batch(0, sample, WIRE_SAMPLE_SEED, &mut buf);
    buf.len() as f64 / sample.len().max(1) as f64
}

fn drive(server: &mut dyn DynHhProtocol, data: &[u64], seed: u64, driver: Driver) -> RowRun {
    match driver {
        Driver::Serial | Driver::Batched => {
            let wire_bytes_per_user = sample_wire_bytes(&*server, data);
            let run = if driver == Driver::Serial {
                run_dyn_heavy_hitter(server, data, seed)
            } else {
                run_dyn_heavy_hitter_batched(server, data, seed, &BatchPlan::default())
            };
            RowRun {
                run,
                wire_bytes_per_user,
            }
        }
        Driver::Distributed => {
            let d = run_dyn_heavy_hitter_distributed(server, data, seed, &DistPlan::default());
            RowRun {
                wire_bytes_per_user: d.wire_bytes_per_user(),
                run: ProtocolRun {
                    estimates: d.estimates,
                    n: d.n,
                    client_total: d.client_total,
                    server_ingest: d.server_ingest + d.server_merge,
                    server_finish: d.server_finish,
                    threads: d.threads,
                    report_bits: d.report_bits,
                    memory_bytes: d.memory_bytes,
                    detection_threshold: d.detection_threshold,
                },
            }
        }
    }
}

/// One serial-vs-batched wall-clock comparison of a registry protocol.
/// Returns the JSON record and the serial estimates (reused by
/// [`merge_scaling`] as the equality reference, so the serial run
/// happens once).
fn compare_at_scale(
    name: &str,
    spec: &ProtocolSpec,
    data: &[u64],
    seed: u64,
) -> (String, Vec<(u64, f64)>) {
    let serial = {
        let mut s = build_hh(name, spec).expect("registered protocol");
        run_dyn_heavy_hitter(s.as_mut(), data, seed)
    };
    let plan = BatchPlan::default();
    let batched = {
        let mut s = build_hh(name, spec).expect("registered protocol");
        run_dyn_heavy_hitter_batched(s.as_mut(), data, seed, &plan)
    };
    assert_eq!(
        serial.estimates, batched.estimates,
        "{name}: batched output diverged from serial"
    );
    let speedup = serial.total_time().as_secs_f64() / batched.total_time().as_secs_f64();
    println!(
        "  {name:>16}: serial {} | batched {} ({} threads, chunk {}) | speedup x{speedup:.2}",
        fmt_dur(serial.total_time()),
        fmt_dur(batched.total_time()),
        batched.threads,
        plan.chunk_size,
    );
    let json = JsonObject::new()
        .str("protocol", name)
        .int("n", data.len() as u64)
        .int("threads", batched.threads as u64)
        .int("chunk_size", plan.chunk_size as u64)
        .num("serial_total_secs", serial.total_time().as_secs_f64())
        .num("serial_client_secs", serial.client_total.as_secs_f64())
        .num("serial_ingest_secs", serial.server_ingest.as_secs_f64())
        .num("serial_finish_secs", serial.server_finish.as_secs_f64())
        .num("batched_total_secs", batched.total_time().as_secs_f64())
        .num("batched_client_secs", batched.client_total.as_secs_f64())
        .num("batched_ingest_secs", batched.server_ingest.as_secs_f64())
        .num("batched_finish_secs", batched.server_finish.as_secs_f64())
        .num("speedup_total", speedup)
        .build();
    (json, serial.estimates)
}

/// Collector-count scaling: distributed runs at k ∈ {1, 2, 8}, each
/// checked bit-for-bit against the caller's serial reference estimates,
/// returned as JSON records.
fn merge_scaling(
    name: &str,
    spec: &ProtocolSpec,
    data: &[u64],
    seed: u64,
    serial: &[(u64, f64)],
) -> Vec<String> {
    let mut out = Vec::new();
    for collectors in [1usize, 2, 8] {
        let mut s = build_hh(name, spec).expect("registered protocol");
        let run = run_dyn_heavy_hitter_distributed(
            s.as_mut(),
            data,
            seed,
            &DistPlan::with_collectors(collectors),
        );
        assert_eq!(
            run.estimates, serial,
            "{name}: distributed output diverged at k = {collectors}"
        );
        println!(
            "  {name:>16} @ k={collectors}: wire {:.2} B/user | ingest {} | merge {} | total {}",
            run.wire_bytes_per_user(),
            fmt_dur(run.server_ingest),
            fmt_dur(run.server_merge),
            fmt_dur(run.total_time()),
        );
        out.push(
            JsonObject::new()
                .str("protocol", name)
                .int("n", data.len() as u64)
                .int("collectors", collectors as u64)
                .int("wire_bytes_total", run.wire_bytes)
                .num("wire_bytes_per_user", run.wire_bytes_per_user())
                .num("client_secs", run.client_total.as_secs_f64())
                .num("ingest_secs", run.server_ingest.as_secs_f64())
                .num("merge_secs", run.server_merge.as_secs_f64())
                .num("finish_secs", run.server_finish.as_secs_f64())
                .num("total_secs", run.total_time().as_secs_f64())
                .build(),
        );
    }
    out
}

/// One streaming-engine measurement: `epochs` epochs of a drifting
/// (Zipf-ramp, jittered-arrival) workload over a `collectors`-node
/// fleet with per-epoch checkpoints, one collector crash after
/// `epochs/2` epochs and recovery one epoch later — verified bit-for-bit
/// against the serial one-shot run, reported as a JSON record.
fn stream_run(name: &str, spec: &ProtocolSpec, n_per_epoch: usize, seed: u64) -> String {
    let epochs = 6u64;
    let collectors = 4usize;
    let workload = StreamWorkload::zipf_ramp(spec.domain, 1.05, 1.4, epochs as usize, 0.15);
    let plan = StreamPlan {
        epoch_size: n_per_epoch,
        checkpoint_every: 1,
        dist: DistPlan {
            collectors,
            chunk_size: (n_per_epoch / 8).max(1),
            ..DistPlan::default()
        },
    };

    let server = build_hh(name, spec).expect("registered protocol");
    let mut engine = StreamEngine::new(DynHhStream(server.as_ref()), plan, seed);
    let mut all_data = Vec::new();
    let mut recovery_secs = 0.0;
    for epoch in 0..epochs {
        let batch = workload.generate_epoch(epoch, n_per_epoch, seed ^ 0x57);
        engine.ingest_epoch(&batch);
        all_data.extend_from_slice(&batch);
        if epoch == epochs / 2 {
            engine.kill_collector(1);
        }
        if epoch == epochs / 2 + 1 {
            recovery_secs = engine.recover_collector(1).elapsed.as_secs_f64();
        }
    }
    // A cold + warm mid-stream query pair: the cold query folds the
    // durable view at the current checkpoint stamp once, the warm
    // repeat answers from the memoized fold — their finish-phase
    // counters land in the record below.
    let mut probe = build_hh(name, spec).expect("registered protocol");
    let cold = engine.finish_at_epoch(probe.as_mut());
    let mut probe = build_hh(name, spec).expect("registered protocol");
    let warm = engine.finish_at_epoch(probe.as_mut());
    assert_eq!(cold, warm, "{name}: warm mid-stream query diverged");
    let snapshot_sizes = engine.snapshot_sizes();
    let snapshot_total: usize = snapshot_sizes.iter().flatten().sum();
    let (shard, stats) = engine.into_live_shard();
    let mut server = server;
    server.finish_shard(shard);
    let estimates = server.finish();

    let serial = {
        let mut s = build_hh(name, spec).expect("registered protocol");
        run_dyn_heavy_hitter(s.as_mut(), &all_data, seed).estimates
    };
    assert_eq!(estimates, serial, "{name}: streamed output diverged");

    let ingest_secs = (stats.client_total + stats.ingest_total).as_secs_f64();
    let throughput = stats.users as f64 / ingest_secs.max(1e-9);
    let checkpoint_mean = stats.checkpoint_total.as_secs_f64() / stats.checkpoints.max(1) as f64;
    println!(
        "  {name:>16}: {} users / {} epochs | {:.0} users/s | snapshot {:.1} KiB/collector \
         | checkpoint {} (mean) | recovery {} ({} reports replayed)",
        stats.users,
        stats.epochs,
        throughput,
        snapshot_total as f64 / collectors as f64 / 1024.0,
        fmt_dur(std::time::Duration::from_secs_f64(checkpoint_mean)),
        fmt_dur(std::time::Duration::from_secs_f64(recovery_secs)),
        stats.replayed_reports,
    );
    let phase = FinishPhase::from_stats(&stats);
    println!(
        "  {:>16}  finish phase: {} queries ({} cached) | fold {} | scratch reuse {:.0}%",
        "",
        phase.queries,
        phase.cache_hits,
        fmt_dur(std::time::Duration::from_secs_f64(phase.fold_secs)),
        100.0 * phase.scratch_reuse_rate(),
    );
    JsonObject::new()
        .str("protocol", name)
        .int("n", stats.users)
        .int("epochs", stats.epochs)
        .int("collectors", collectors as u64)
        .int("wire_bytes_total", stats.wire_bytes)
        .num(
            "wire_bytes_per_user",
            stats.wire_bytes as f64 / stats.users.max(1) as f64,
        )
        .int("snapshot_bytes_total", snapshot_total as u64)
        .num(
            "snapshot_bytes_per_collector",
            snapshot_total as f64 / collectors as f64,
        )
        .int("checkpoints", stats.checkpoints)
        .num(
            "checkpoint_secs_total",
            stats.checkpoint_total.as_secs_f64(),
        )
        .num("checkpoint_secs_mean", checkpoint_mean)
        .num("recovery_secs", recovery_secs)
        .int("replayed_reports", stats.replayed_reports)
        .num("epoch_ingest_secs", ingest_secs)
        .num("epoch_users_per_sec", throughput)
        .int("finish_queries", phase.queries)
        .num("finish_secs_total", phase.finish_secs)
        .num("fold_secs", phase.fold_secs)
        .int("finish_cache_hits", phase.cache_hits)
        .int("scratch_reused", phase.scratch_reused)
        .int("scratch_fresh", phase.scratch_fresh)
        .build()
}

/// One fused-vs-legacy ingest throughput measurement, single-threaded
/// (so the comparison is pure per-user work, not scheduling):
///
/// * **legacy** — `respond_batch` materializes the chunk's reports,
///   `encode_into` frames them, the collector decodes every frame back
///   into a report vec and `absorb`s it (the pre-zero-copy pipeline);
/// * **fused** — `respond_encode_batch` samples straight into one
///   reused wire buffer and the collector folds the borrowed frames via
///   `absorb_wire` — no report vec on either side, no steady-state
///   allocation.
///
/// The two shards are checked bit-for-bit equal through their snapshot
/// encoding; the throughput records (users/sec and MB/s) land in the
/// JSON document so the speedup is tracked across PRs, not asserted.
/// Necessarily typed (`MaterializingIngest`): the legacy path exists
/// only on the typed surface — a type-erased protocol has no reports to
/// materialize.
fn ingest_throughput<I: MaterializingIngest>(
    ingest: &I,
    name: &str,
    data: &[u64],
    chunk_size: usize,
    client_seed: u64,
) -> Vec<String> {
    // The two paths run interleaved (legacy, fused, legacy, fused, …)
    // for `REPS` rounds each after one unmeasured warmup pair, and the
    // min wall-clock per path is recorded — interleaving cancels slow
    // clock-frequency drift and the min strips scheduler noise, which
    // matters because the fastest paths finish a rep in milliseconds.
    const REPS: usize = 5;

    // Legacy path: respond → encode → decode → absorb.
    let run_legacy = || {
        let t0 = Instant::now();
        let mut shard = ingest.new_shard();
        let mut bytes_total = 0u64;
        for (c, xs) in data.chunks(chunk_size).enumerate() {
            let start = (c * chunk_size) as u64;
            let reports = ingest.respond_batch(start, xs, client_seed);
            let mut bytes = Vec::new();
            let lens = encode_reports(&reports, &mut bytes);
            bytes_total += bytes.len() as u64;
            let mut decoded = Vec::with_capacity(reports.len());
            let mut off = 0usize;
            for &len in &lens {
                decoded.push(
                    <I as MaterializingIngest>::Report::decode(&bytes[off..off + len as usize])
                        .expect("frame decodes"),
                );
                off += len as usize;
            }
            ingest.absorb(&mut shard, start, &decoded);
        }
        (t0.elapsed().as_secs_f64(), shard, bytes_total)
    };

    // Fused path: respond_encode_batch into one reused buffer →
    // absorb_wire over the borrowed frames.
    let run_fused = || {
        let t1 = Instant::now();
        let mut shard = ingest.new_shard();
        let mut bytes_total = 0u64;
        let mut buf: Vec<u8> = Vec::new();
        for (c, xs) in data.chunks(chunk_size).enumerate() {
            let start = (c * chunk_size) as u64;
            buf.clear();
            let lens = ingest.respond_encode_batch(start, xs, client_seed, &mut buf);
            bytes_total += buf.len() as u64;
            let frames = WireFrames::new(&buf, &lens).expect("well-framed chunk");
            ingest
                .absorb_wire(&mut shard, start, &frames)
                .expect("wire absorb");
        }
        (t1.elapsed().as_secs_f64(), shard, bytes_total)
    };

    let (_, mut legacy_shard, mut wire_bytes) = run_legacy();
    let (_, mut fused_shard, mut fused_bytes) = run_fused();
    let mut legacy_secs = f64::INFINITY;
    let mut fused_secs = f64::INFINITY;
    for _ in 0..REPS {
        let (secs, shard, bytes) = run_legacy();
        legacy_secs = legacy_secs.min(secs);
        legacy_shard = shard;
        wire_bytes = bytes;
        let (secs, shard, bytes) = run_fused();
        fused_secs = fused_secs.min(secs);
        fused_shard = shard;
        fused_bytes = bytes;
    }

    assert_eq!(fused_bytes, wire_bytes, "{name}: fused wire bytes diverged");
    assert_eq!(
        ingest.encode_shard(&fused_shard),
        ingest.encode_shard(&legacy_shard),
        "{name}: fused shard diverged from legacy"
    );

    let n = data.len() as f64;
    println!(
        "  {name:>16}: legacy {:>9.0} users/s ({:>6.1} MB/s) | fused {:>9.0} users/s ({:>6.1} MB/s) | x{:.2}",
        n / legacy_secs.max(1e-9),
        wire_bytes as f64 / 1e6 / legacy_secs.max(1e-9),
        n / fused_secs.max(1e-9),
        wire_bytes as f64 / 1e6 / fused_secs.max(1e-9),
        legacy_secs / fused_secs.max(1e-9),
    );
    let record = |path: &str, secs: f64| {
        JsonObject::new()
            .str("protocol", name)
            .str("path", path)
            .int("n", data.len() as u64)
            .int("chunk_size", chunk_size as u64)
            .int("wire_bytes", wire_bytes)
            .num("ingest_secs", secs)
            .num("users_per_sec", n / secs.max(1e-9))
            .num("mb_per_sec", wire_bytes as f64 / 1e6 / secs.max(1e-9))
            .build()
    };
    vec![record("legacy", legacy_secs), record("fused", fused_secs)]
}

/// One client-path throughput comparison: the word-kernel client
/// (`respond_encode_batch` riding the bit-parallel Bernoulli, one-draw
/// GRR and divide-free Lemire kernels over SplitMix per-user streams)
/// against the pre-kernel per-coin client it replaced — one `f64`
/// convert+compare per coin, a modulo per row pick, and a full RNG
/// construction per user, emulated by the caller's `legacy` closure
/// (the library path no longer exists).
///
/// The two paths run interleaved for `REPS` rounds each after one
/// unmeasured warmup pair and the min wall-clock per path is recorded
/// (see `ingest_throughput` for why). Correctness is pinned the only
/// way that is meaningful after a sanctioned coin-stream change: the
/// fused kernel bytes are checked bit-for-bit against the scalar kernel
/// path (`respond` with `client_rng`) over the same users — one kernel,
/// two entry points. The legacy emulation necessarily draws different
/// streams, so only its wall-clock is recorded. Records land in the
/// JSON document as `client` rows (users/sec).
fn client_throughput(
    name: &str,
    users: usize,
    legacy: impl Fn(&mut Vec<u8>),
    kernel: impl Fn(&mut Vec<u8>),
    kernel_serial: impl Fn(&mut Vec<u8>),
) -> Vec<String> {
    const REPS: usize = 5;
    let mut legacy_buf = Vec::new();
    let mut kernel_buf = Vec::new();
    let mut serial_buf = Vec::new();
    // Unmeasured warmup pair doubling as the bit-for-bit check.
    legacy(&mut legacy_buf);
    kernel(&mut kernel_buf);
    kernel_serial(&mut serial_buf);
    assert_eq!(
        kernel_buf, serial_buf,
        "{name}: fused kernel bytes diverged from the scalar kernel path"
    );
    let mut legacy_secs = f64::INFINITY;
    let mut kernel_secs = f64::INFINITY;
    for _ in 0..REPS {
        legacy_buf.clear();
        let t = Instant::now();
        legacy(&mut legacy_buf);
        legacy_secs = legacy_secs.min(t.elapsed().as_secs_f64());
        kernel_buf.clear();
        let t = Instant::now();
        kernel(&mut kernel_buf);
        kernel_secs = kernel_secs.min(t.elapsed().as_secs_f64());
    }
    let n = users as f64;
    println!(
        "  {name:>16}: legacy {:>10.0} users/s | kernel {:>10.0} users/s | x{:.2}",
        n / legacy_secs.max(1e-9),
        n / kernel_secs.max(1e-9),
        legacy_secs / kernel_secs.max(1e-9),
    );
    let record = |path: &str, secs: f64| {
        JsonObject::new()
            .str("protocol", name)
            .str("path", path)
            .int("n", users as u64)
            .num("client_secs", secs)
            .num("users_per_sec", n / secs.max(1e-9))
            .build()
    };
    vec![record("legacy", legacy_secs), record("kernel", kernel_secs)]
}

/// The binary randomized-response keep rate at budget ε.
fn rr_keep(eps: f64) -> f64 {
    eps.exp() / (eps.exp() + 1.0)
}

/// The pre-kernel per-user Hashtogram draw: a modulo row pick plus one
/// `f64` randomized-response coin — the cost model the word kernels
/// replaced (the hash/sign work is shared with the kernel path, so the
/// comparison isolates the coin cost).
fn legacy_hashtogram_respond(
    oracle: &Hashtogram,
    group: u32,
    x: u64,
    keep: f64,
    rng: &mut impl Rng,
) -> HashtogramReport {
    let ell = rng.gen::<u64>() % oracle.params().buckets;
    let true_pm = i64::from(hadamard_entry(ell, oracle.bucket(group, x))) * oracle.sign(group, x);
    let true_bit = true_pm > 0;
    let sent = if rng.gen::<f64>() < keep {
        true_bit
    } else {
        !true_bit
    };
    HashtogramReport {
        ell,
        bit: if sent { 1 } else { -1 },
    }
}

/// One pipelined-vs-lock-step streaming throughput measurement over a
/// registry-dispatched (type-erased) protocol: the same population,
/// epoch schedule and checkpoint cadence driven end-to-end through
///
/// * **lockstep** — the epoch-barrier `StreamEngine` (parallel respond →
///   barrier → absorb → barrier → checkpoint), and
/// * **pipelined** — the collector-actor runtime (bounded queues, chunks
///   absorbed and snapshots encoded concurrently with encoding).
///
/// Final shards are checked bit-for-bit equal through the snapshot
/// codec; the records (users/sec plus the pipelined runtime's
/// backpressure stats) land in the JSON document as `pipeline` rows.
fn pipeline_throughput<I: StreamIngest + Sync + Copy>(
    ingest: I,
    name: &str,
    data: &[u64],
    plan: &StreamPlan,
    config: &PipelineConfig,
    seed: u64,
) -> Vec<String> {
    const REPS: usize = 7;

    let run_lockstep = || {
        let t = Instant::now();
        let mut engine = StreamEngine::new(ingest, plan.clone(), seed);
        engine.ingest_all(data);
        let (shard, stats) = engine.into_live_shard();
        (t.elapsed().as_secs_f64(), shard, stats)
    };
    let run_pipe = || {
        let t = Instant::now();
        let (shard, stats) = run_pipelined_all(&ingest, plan, config, seed, data);
        (t.elapsed().as_secs_f64(), shard, stats)
    };

    // Interleaved best-of-REPS after one unmeasured warmup pair, as in
    // `ingest_throughput`.
    let (_, mut lock_shard, _) = run_lockstep();
    let (_, mut pipe_shard, mut pipe_stats) = run_pipe();
    let mut lock_secs = f64::INFINITY;
    let mut pipe_secs = f64::INFINITY;
    for _ in 0..REPS {
        let (secs, shard, _) = run_lockstep();
        lock_secs = lock_secs.min(secs);
        lock_shard = shard;
        let (secs, shard, stats) = run_pipe();
        pipe_secs = pipe_secs.min(secs);
        pipe_shard = shard;
        pipe_stats = stats;
    }

    assert_eq!(
        ingest.encode_shard(&pipe_shard),
        ingest.encode_shard(&lock_shard),
        "{name}: pipelined shard diverged from lock-step"
    );

    let n = data.len() as f64;
    println!(
        "  {name:>16}: lockstep {:>9.0} users/s | pipelined {:>9.0} users/s | x{:.2} \
         | peak queue {} | stall {}",
        n / lock_secs.max(1e-9),
        n / pipe_secs.max(1e-9),
        lock_secs / pipe_secs.max(1e-9),
        pipe_stats.max_queue_occupancy,
        fmt_dur(pipe_stats.producer_stall),
    );
    let record = |path: &str, secs: f64| {
        JsonObject::new()
            .str("protocol", name)
            .str("path", path)
            .int("n", data.len() as u64)
            .int("epoch_size", plan.epoch_size as u64)
            .int("checkpoint_every", plan.checkpoint_every as u64)
            .int("collectors", plan.dist.collectors as u64)
            .int("chunk_size", plan.dist.chunk_size as u64)
            .int("queue_depth", config.queue_depth as u64)
            .int("workers", config.workers as u64)
            .num("ingest_secs", secs)
            .num("users_per_sec", n / secs.max(1e-9))
    };
    vec![
        record("lockstep", lock_secs).build(),
        record("pipelined", pipe_secs)
            .int("max_queue_occupancy", pipe_stats.max_queue_occupancy as u64)
            .num(
                "producer_stall_secs",
                pipe_stats.producer_stall.as_secs_f64(),
            )
            .build(),
    ]
}

/// One serial-vs-parallel finish (server decode) measurement of a
/// registry heavy-hitter protocol: the population is ingested once
/// through the fused wire path and the merged shard snapshot-encoded
/// once; each rep then rebuilds the server, re-decodes that snapshot
/// and times `finish_with` alone — the forced-serial scratch against
/// the auto-threaded one — order-alternated, median-of-REPS leg times
/// with the speedup taken as the median of per-rep paired ratios, after
/// an unmeasured warmup pair, with the two outputs checked bit-for-bit
/// equal.
fn finish_throughput(name: &str, spec: &ProtocolSpec, data: &[u64], seed: u64) -> Vec<String> {
    // Rep count adapts to the protocol's finish cost: the two legs run
    // identical instructions when the box has one hardware thread, so
    // the signal is at the noise floor and the paired-ratio median
    // needs as many pairs as a ~10 s budget affords (odd, so both
    // orderings of the alternating pair appear equally often up to one).
    const MIN_REPS: usize = 9;
    const MAX_REPS: usize = 41;
    const TARGET_SECS: f64 = 10.0;

    // Ingest once; every timed rep re-hydrates from this snapshot
    // instead of re-running the client + ingest phases, so the clock
    // covers exactly the decode the tentpole parallelized.
    let shard_bytes = {
        let server = build_hh(name, spec).expect("registered protocol");
        let ingest = DynHhStream(server.as_ref());
        let chunk = 1usize << 12;
        let mut shard = ingest.new_shard();
        let mut buf = Vec::new();
        for (c, xs) in data.chunks(chunk).enumerate() {
            let start = (c * chunk) as u64;
            buf.clear();
            let lens = ingest.respond_encode_batch(start, xs, seed, &mut buf);
            let frames = WireFrames::new(&buf, &lens).expect("well-framed chunk");
            ingest
                .absorb_wire(&mut shard, start, &frames)
                .expect("wire absorb");
        }
        let mut bytes = Vec::new();
        ingest.encode_shard_into(&shard, &mut bytes);
        bytes
    };

    // Both legs share ONE scratch and differ only in its `threads`
    // knob: with two scratch objects the comparison also measures the
    // heap/page placement their pooled buffers happened to get, which
    // shows up as a persistent phantom percent-level edge for one
    // object (an A/B control with identical knobs reproduces it).
    // `FINISH_BENCH_AB_CONTROL` keeps the "parallel" leg's knob serial
    // too — a harness self-check that must center on x1.00.
    let par_threads = if std::env::var_os("FINISH_BENCH_AB_CONTROL").is_some() {
        1
    } else {
        0
    };
    let mut scratch = FinishScratch::serial();
    let mut run = |threads: usize| {
        let mut server = build_hh(name, spec).expect("registered protocol");
        let shard = server.decode_shard(&shard_bytes).expect("snapshot decodes");
        server.finish_shard(shard);
        scratch.threads = threads;
        let t = Instant::now();
        let estimates = server.finish_with(&mut scratch);
        (t.elapsed().as_secs_f64(), estimates)
    };

    let (warmup_secs, reference) = run(1);
    let (_, par_est) = run(par_threads);
    assert_eq!(
        par_est, reference,
        "{name}: parallel finish diverged from serial"
    );
    let reps =
        ((TARGET_SECS / (2.0 * warmup_secs.max(1e-9))) as usize).clamp(MIN_REPS, MAX_REPS) | 1;
    let mut serial_samples = Vec::with_capacity(reps);
    let mut par_samples = Vec::with_capacity(reps);
    let mut pair_ratios = Vec::with_capacity(reps);
    // Alternate which leg runs first each rep: whichever run executes
    // second in a pair inherits the first's cache/allocator state, so a
    // fixed order shows a phantom percent-level edge for one leg. The
    // speedup is then the median of the *per-rep* serial/parallel
    // ratios — each ratio compares two adjacent-in-time runs (immune to
    // slow machine drift across the section) and the alternation puts
    // both legs in both positions, so position bias cancels at the
    // median. `FINISH_BENCH_TRACE=1` dumps every raw sample.
    for rep in 0..reps {
        let mut secs_of = [0.0f64; 2]; // [serial, parallel] this rep
        let legs: [(usize, usize, &str); 2] = if rep % 2 == 0 {
            [(1, 0, "serial"), (par_threads, 1, "parallel")]
        } else {
            [(par_threads, 1, "parallel"), (1, 0, "serial")]
        };
        for (pos, (threads, slot, leg)) in legs.into_iter().enumerate() {
            let (secs, est) = run(threads);
            if std::env::var_os("FINISH_BENCH_TRACE").is_some() {
                eprintln!("TRACE {name} rep={rep} pos={pos} leg={leg} secs={secs:.6}");
            }
            secs_of[slot] = secs;
            assert_eq!(est, reference, "{name}: {leg} finish diverged");
        }
        serial_samples.push(secs_of[0]);
        par_samples.push(secs_of[1]);
        pair_ratios.push(secs_of[0] / secs_of[1].max(1e-9));
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        samples[samples.len() / 2]
    };
    let serial_secs = median(&mut serial_samples);
    let par_secs = median(&mut par_samples);
    let speedup = median(&mut pair_ratios);

    println!(
        "  {name:>16}: serial finish {} | parallel finish {} ({} threads) | x{:.2}",
        fmt_dur(std::time::Duration::from_secs_f64(serial_secs)),
        fmt_dur(std::time::Duration::from_secs_f64(par_secs)),
        rayon::current_num_threads(),
        speedup,
    );
    let record = |path: &str, secs: f64| {
        JsonObject::new()
            .str("protocol", name)
            .str("path", path)
            .int("n", data.len() as u64)
            .int("domain", spec.domain)
            .num("finish_secs", secs)
    };
    vec![
        record("serial", serial_secs).build(),
        record("parallel", par_secs)
            .int("threads", rayon::current_num_threads() as u64)
            .num("speedup_vs_serial", speedup)
            .build(),
    ]
}

/// Incremental vs from-scratch mid-stream finalization on the streaming
/// engine: ingest a checkpointed stream once, then time three ways of
/// answering the same query — (a) from scratch (decode every
/// collector's snapshot, merge, fresh finish: what every query cost
/// before the fold cache), (b) the first incremental `finish_at_epoch`
/// at a new checkpoint stamp (pays the fold once, into the warm
/// scratch), and (c) a warm repeat (memoized answer). Best-of-REPS
/// each, all three outputs checked bit-for-bit equal.
fn incremental_finish(
    name: &str,
    spec: &ProtocolSpec,
    n_per_epoch: usize,
    seed: u64,
) -> Vec<String> {
    const REPS: usize = 5;
    let collectors = 4usize;
    let server = build_hh(name, spec).expect("registered protocol");
    let plan = StreamPlan {
        epoch_size: n_per_epoch,
        checkpoint_every: 1,
        dist: DistPlan {
            collectors,
            chunk_size: (n_per_epoch / 8).max(1),
            ..DistPlan::default()
        },
    };
    let mut engine = StreamEngine::new(DynHhStream(server.as_ref()), plan, seed);
    let data = Workload::zipf(spec.domain, 1.2).generate(spec.n as usize, seed ^ 0x77);
    engine.ingest_all(&data);

    let fresh = || build_hh(name, spec).expect("registered protocol");
    let run_scratch = |engine: &StreamEngine<DynHhStream<'_>>| {
        let t = Instant::now();
        let mut s = fresh();
        let shard = engine.snapshot_shard().expect("cadence checkpointed");
        s.finish_shard(shard);
        let est = s.finish();
        (t.elapsed().as_secs_f64(), est)
    };

    let (_, reference) = run_scratch(&engine);
    let mut scratch_secs = f64::INFINITY;
    let mut cold_secs = f64::INFINITY;
    let mut warm_secs = f64::INFINITY;
    for _ in 0..REPS {
        let (secs, est) = run_scratch(&engine);
        scratch_secs = scratch_secs.min(secs);
        assert_eq!(
            est, reference,
            "{name}: from-scratch query not reproducible"
        );
        // A checkpoint with an unchanged stream re-stamps the durable
        // view, so the next query is genuinely cold (re-folds).
        let _ = engine.checkpoint();
        let mut s = fresh();
        let t = Instant::now();
        let est = engine.finish_at_epoch(s.as_mut());
        cold_secs = cold_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(est, reference, "{name}: cold incremental query diverged");
        let mut s = fresh();
        let t = Instant::now();
        let est = engine.finish_at_epoch(s.as_mut());
        warm_secs = warm_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(est, reference, "{name}: warm incremental query diverged");
    }

    println!(
        "  {name:>16}: from-scratch {} | incremental cold {} (x{:.2}) | warm {} (x{:.0})",
        fmt_dur(std::time::Duration::from_secs_f64(scratch_secs)),
        fmt_dur(std::time::Duration::from_secs_f64(cold_secs)),
        scratch_secs / cold_secs.max(1e-9),
        fmt_dur(std::time::Duration::from_secs_f64(warm_secs)),
        scratch_secs / warm_secs.max(1e-9),
    );
    let record = |path: &str, secs: f64| {
        JsonObject::new()
            .str("protocol", name)
            .str("path", path)
            .int("n", spec.n)
            .int("domain", spec.domain)
            .int("collectors", collectors as u64)
            .num("finish_secs", secs)
            .num("speedup_vs_from_scratch", scratch_secs / secs.max(1e-9))
            .build()
    };
    vec![
        record("from_scratch", scratch_secs),
        record("incremental_cold", cold_secs),
        record("incremental_warm", warm_secs),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let serial = args.iter().any(|a| a == "--serial");
    let distributed = args.iter().any(|a| a == "--distributed");
    let stream = args.iter().any(|a| a == "--stream");
    let ingest_bench = args.iter().any(|a| a == "--ingest-bench");
    let pipeline_bench = args.iter().any(|a| a == "--pipeline");
    let finish_bench = args.iter().any(|a| a == "--finish-bench");
    let client_bench = args.iter().any(|a| a == "--client-bench");
    let quick = args.iter().any(|a| a == "--quick");
    let json_out_value = args.iter().position(|a| a == "--json-out").map(|i| {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--json-out needs a path"));
        assert!(
            !path.starts_with("--"),
            "--json-out needs a path, got flag-like value {path:?}"
        );
        path.clone()
    });
    // --json-out implies --json: asking for an output path is asking for
    // the JSON phase.
    let emit_json = args.iter().any(|a| a == "--json") || json_out_value.is_some();
    // A baseline write always includes every throughput comparison: the
    // JSON document is written whole, so omitting rows would erase the
    // tracked history.
    let ingest_bench = ingest_bench || emit_json;
    let pipeline_bench = pipeline_bench || emit_json;
    let finish_bench = finish_bench || emit_json;
    let client_bench = client_bench || emit_json;
    let json_out = json_out_value.unwrap_or_else(|| "BENCH_table1.json".to_string());
    assert!(
        !(serial && distributed),
        "--serial and --distributed are mutually exclusive"
    );
    let driver = if serial {
        Driver::Serial
    } else if distributed {
        Driver::Distributed
    } else {
        Driver::Batched
    };

    banner(
        "T1.time / T1.mem / T1.comm — Table 1 resource rows",
        "ours,[3]: O~(n) server, O~(1) user, O~(sqrt n) memory, O(1) comm; [4]: O(n) memory, O(n) per query",
    );
    println!(
        "driver: {}\n",
        match driver {
            Driver::Serial => "serial (--serial)",
            Driver::Batched => "batched parallel pipeline (default)",
            Driver::Distributed =>
                "distributed collector fleet (--distributed; 8 nodes, wire round-trip, tree merge)",
        }
    );
    let bits = 20u32;
    let eps = 4.0;
    let beta = 0.1;
    let logns: &[u32] = if quick { &[12, 13] } else { &[14, 16, 18] };

    // The registry-dispatched heavy-hitter rows: display label, registry
    // name, construction seed, run seed, public-randomness note.
    let hh_rows: &[(&str, &str, u64, u64, &str)] = &[
        ("ours", "expander_sketch", 1, 2, "64 bits (one seed)"),
        ("bitstogram [3]", "bitstogram", 3, 4, "64 bits (one seed)"),
    ];

    let mut t = Table::new(&[
        "protocol",
        "n",
        "server",
        "user(mean)",
        "memory",
        "claim bits",
        "wire B/user",
        "pub rand",
    ]);
    for &logn in logns {
        let n = 1u64 << logn;
        let workload = Workload::zipf(1u64 << bits, 1.2);
        let data = workload.generate(n as usize, derive_seed(7, u64::from(logn)));
        let spec = |seed| ProtocolSpec {
            n,
            domain: 1u64 << bits,
            eps,
            beta,
            seed,
        };

        for &(display, name, build_seed, run_seed, pub_rand) in hh_rows {
            let mut s = build_hh(name, &spec(build_seed)).expect("registered protocol");
            let row = drive(s.as_mut(), &data, run_seed, driver);
            t.row(&[
                display.into(),
                format!("2^{logn}"),
                fmt_dur(row.run.server_time()),
                fmt_dur(row.run.user_time()),
                format!("{} KiB", row.run.memory_bytes / 1024),
                row.run.report_bits.to_string(),
                format!("{:.2}", row.wire_bytes_per_user),
                pub_rand.into(),
            ]);
        }

        // Bassily–Smith FO with w = n rows; query cost O(n) each. A
        // full heavy-hitter scan would be n·|X| — measure a 512-query
        // slice and extrapolate.
        let mut o = build_oracle("bassily_smith", &spec(5)).expect("registered oracle");
        let queries: Vec<u64> = (0..512u64).collect();
        // (server_build, client_total, query_total, wire B/user) under
        // the same driver as the other rows.
        let (server_build, client_total, query_total, wire, mem, bits_claim) = match driver {
            Driver::Serial | Driver::Batched => {
                let sample = &data[..data.len().min(WIRE_SAMPLE_CAP)];
                let mut buf = Vec::new();
                o.respond_encode_batch(0, sample, WIRE_SAMPLE_SEED, &mut buf);
                let wire = buf.len() as f64 / sample.len().max(1) as f64;
                let run = if serial {
                    run_dyn_oracle(o.as_mut(), &data, &queries, 6)
                } else {
                    run_dyn_oracle_batched(o.as_mut(), &data, &queries, 6, &BatchPlan::default())
                };
                (
                    run.server_build,
                    run.client_total,
                    run.query_total,
                    wire,
                    run.memory_bytes,
                    run.report_bits,
                )
            }
            Driver::Distributed => {
                let run = run_dyn_oracle_distributed(
                    o.as_mut(),
                    &data,
                    &queries,
                    6,
                    &DistPlan::default(),
                );
                (
                    run.server_build,
                    run.client_total,
                    run.query_total,
                    run.wire_bytes_per_user(),
                    run.memory_bytes,
                    run.report_bits,
                )
            }
        };
        let full_scan = query_total.as_secs_f64() / 512.0 * (1u64 << bits) as f64;
        t.row(&[
            "bassily-smith [4]".into(),
            format!("2^{logn}"),
            format!(
                "{} (+{} scan-extrapolated)",
                fmt_dur(server_build),
                fmt_dur(std::time::Duration::from_secs_f64(full_scan))
            ),
            fmt_dur(std::time::Duration::from_nanos(
                (client_total.as_nanos() as u64) / n,
            )),
            format!("{} KiB", mem / 1024),
            bits_claim.to_string(),
            format!("{wire:.2}"),
            "64 bits (hash-compressed Phi)".into(),
        ]);
    }
    t.print();
    println!("\nnotes:");
    if driver == Driver::Batched {
        println!("  - batched driver: user(mean) is the parallel respond phase's wall-clock / n,");
        println!("    a lower bound on per-user compute at >1 thread; use --serial for the");
        println!("    paper's per-user cost metric.");
    }
    println!("  - all rows dispatch through hh_sim::registry (type-erased protocols);");
    println!("    the serial driver ingests per-user through the same wire path.");
    println!("  - claim bits is report_bits() (the protocol's worst-case message claim);");
    println!("    wire B/user is the measured mean size of the actual encoded reports");
    println!("    (end-to-end through the collector fleet under --distributed). The");
    println!("    wire_conformance tests pin wire <= ceil(claim / 8) bytes per report.");
    println!("  - [4]'s Table-1 entries (n^1.5 user, n^2.5 server, n^1.5 public coins)");
    println!("    assume explicitly materialized public randomness; our implementation");
    println!("    hash-compresses Phi (the option their footnote 2 concedes), so the");
    println!("    measured gap shows in memory (linear in n) and the scan-extrapolated");
    println!("    heavy-hitter search time (linear in |X|), not in raw report cost.");
    println!("  - ours/[3]: user time flat in n, memory ~sqrt(n) — the Table 1 shapes.");

    let mut stream_records = Vec::new();
    if stream {
        let n_per_epoch = if quick { 1usize << 12 } else { 1 << 16 };
        let n_total = 6 * n_per_epoch;
        println!(
            "\n— streaming epoch engine (6 epochs x ~{n_per_epoch} users, 4 collectors, \
             Zipf-ramp drift, per-epoch checkpoints, 1 crash + recovery) —\n"
        );
        stream_records.push(stream_run(
            "expander_sketch",
            &ProtocolSpec {
                n: n_total as u64,
                domain: 1u64 << bits,
                eps,
                beta,
                seed: 21,
            },
            n_per_epoch,
            22,
        ));
        stream_records.push(stream_run(
            "scan",
            &ProtocolSpec {
                n: n_total as u64,
                domain: 1u64 << 16,
                eps,
                beta,
                seed: 23,
            },
            n_per_epoch,
            24,
        ));
    }

    let mut ingest_records = Vec::new();
    if ingest_bench {
        let n = if quick { 1usize << 14 } else { 1 << 20 };
        let chunk = 1usize << 13;
        println!(
            "\n— ingest throughput at n = {n}: fused (respond_encode_batch + absorb_wire) \
             vs legacy (respond → encode → decode → absorb), single-threaded —\n"
        );
        let data = Workload::zipf(1u64 << bits, 1.2).generate(n, 131);

        let p = SketchParams::optimal(n as u64, bits, eps, beta);
        let s = ExpanderSketch::new(p, 31);
        ingest_records.extend(ingest_throughput(
            &HhStream(&s),
            "expander_sketch",
            &data,
            chunk,
            0x1D1,
        ));

        let scan_domain = 1u64 << 16;
        let scan_data: Vec<u64> = data.iter().map(|&x| x & (scan_domain - 1)).collect();
        let sp = ScanParams::new(n as u64, scan_domain, eps, beta);
        let s = ScanHeavyHitters::new(sp, 32);
        ingest_records.extend(ingest_throughput(
            &HhStream(&s),
            "scan",
            &scan_data,
            chunk,
            0x1D2,
        ));

        // KRR's per-user work is one GRR draw and a one-byte frame, so a
        // single pass over n finishes in tens of milliseconds — too
        // short to resolve a few-percent delta. Give it 4x the
        // population so the row measures the path, not the timer.
        let krr_data: Vec<u64> = data.iter().cycle().take(4 * n).map(|&x| x % 64).collect();
        let o = KrrOracle::new(64, eps);
        ingest_records.extend(ingest_throughput(
            &OracleStream(&o),
            "krr",
            &krr_data,
            chunk,
            0x1D3,
        ));

        // RAPPOR's per-user cost is Θ(|X|) — the fused path's win here is
        // skipping one dense bitvector allocation per user. Smaller n
        // keeps the row affordable.
        let rappor_n = n / 16;
        let rappor_data: Vec<u64> = data[..rappor_n].iter().map(|&x| x % 256).collect();
        let o = Rappor::new(256, eps);
        ingest_records.extend(ingest_throughput(
            &OracleStream(&o),
            "rappor",
            &rappor_data,
            chunk,
            0x1D4,
        ));
    }

    let mut client_records = Vec::new();
    if client_bench {
        let n = if quick { 1usize << 14 } else { 1 << 20 };
        let chunk = 1usize << 13;
        println!(
            "\n— client-path throughput at n = {n}: word-kernel sampling \
             (bit-parallel RR / one-draw GRR / Lemire rows over SplitMix \
             streams) vs the per-coin f64 client it replaced —\n"
        );
        let data = Workload::zipf(1u64 << bits, 1.2).generate(n, 191);

        // RAPPOR is the headline: Θ(|X|) coins per user collapse to
        // |X|/64 word draws. Same sizing rationale as the ingest row.
        {
            let rappor_n = n / 16;
            let rappor_data: Vec<u64> = data[..rappor_n].iter().map(|&x| x % 256).collect();
            let o = Rappor::new(256, eps);
            let seed = 0x1E1u64;
            let keep = o.keep_probability();
            let bytes = 256usize / 8;
            client_records.extend(client_throughput(
                "rappor",
                rappor_n,
                |out| {
                    for (i, &x) in rappor_data.iter().enumerate() {
                        let mut rng = seeded_rng(derive_seed(seed, i as u64));
                        let base = out.len();
                        out.resize(base + bytes, 0);
                        for j in 0..256u64 {
                            let truth = j == x;
                            let sent = if rng.gen::<f64>() < keep {
                                truth
                            } else {
                                !truth
                            };
                            if sent {
                                out[base + (j / 8) as usize] |= 1 << (j % 8);
                            }
                        }
                    }
                },
                |out| {
                    for (c, xs) in rappor_data.chunks(chunk).enumerate() {
                        o.respond_encode_batch((c * chunk) as u64, xs, seed, out);
                    }
                },
                |out| {
                    for (i, &x) in rappor_data.iter().enumerate() {
                        let rep = o.respond(i as u64, x, &mut client_rng(seed, i as u64));
                        out.extend_from_slice(&rep);
                    }
                },
            ));
        }

        // KRR: one GRR draw per user — 4x the population, as in the
        // ingest rows, so the row measures the path and not the timer.
        {
            let k = 64u64;
            let krr_data: Vec<u64> = data.iter().cycle().take(4 * n).map(|&x| x % k).collect();
            let o = KrrOracle::new(k, eps);
            let seed = 0x1E2u64;
            let p_true = o.randomizer().kernel().p_keep();
            client_records.extend(client_throughput(
                "krr",
                krr_data.len(),
                |out| {
                    for (i, &x) in krr_data.iter().enumerate() {
                        let mut rng = seeded_rng(derive_seed(seed, i as u64));
                        let v = if rng.gen::<f64>() < p_true {
                            x
                        } else {
                            // Skip-truth lie draw, the pre-kernel idiom.
                            let lie = rng.gen_range(0..k - 1);
                            lie + u64::from(lie >= x)
                        };
                        write_uint(out, v);
                    }
                },
                |out| {
                    for (c, xs) in krr_data.chunks(chunk).enumerate() {
                        o.respond_encode_batch((c * chunk) as u64, xs, seed, out);
                    }
                },
                |out| {
                    for (i, &x) in krr_data.iter().enumerate() {
                        let v = o.respond(i as u64, x, &mut client_rng(seed, i as u64));
                        write_uint(out, v);
                    }
                },
            ));
        }

        // Scan delegates its client to one Hashtogram — row pick + one
        // RR bit, the report shape every composite protocol shares.
        {
            let scan_domain = 1u64 << 16;
            let scan_data: Vec<u64> = data.iter().map(|&x| x & (scan_domain - 1)).collect();
            let s = ScanHeavyHitters::new(ScanParams::new(n as u64, scan_domain, eps, beta), 32);
            let seed = 0x1E3u64;
            let keep = rr_keep(s.oracle().params().eps);
            client_records.extend(client_throughput(
                "scan",
                n,
                |out| {
                    let o = s.oracle();
                    for (i, &x) in scan_data.iter().enumerate() {
                        let mut rng = seeded_rng(derive_seed(seed, i as u64));
                        let g = o.group_of(i as u64);
                        legacy_hashtogram_respond(o, g, x, keep, &mut rng).encode_into(out);
                    }
                },
                |out| {
                    for (c, xs) in scan_data.chunks(chunk).enumerate() {
                        s.respond_encode_batch((c * chunk) as u64, xs, seed, out);
                    }
                },
                |out| {
                    for (i, &x) in scan_data.iter().enumerate() {
                        s.respond(i as u64, x, &mut client_rng(seed, i as u64))
                            .encode_into(out);
                    }
                },
            ));
        }

        // The expander sketch: two Hashtogram reports per user (inner
        // cell + outer identity), each oracle at its own budget split.
        {
            let s = ExpanderSketch::new(SketchParams::optimal(n as u64, bits, eps, beta), 31);
            let seed = 0x1E4u64;
            let keep_inner = rr_keep(s.inner_oracle().params().eps);
            let keep_outer = rr_keep(s.outer_oracle().params().eps);
            client_records.extend(client_throughput(
                "expander_sketch",
                n,
                |out| {
                    for (i, &x) in data.iter().enumerate() {
                        let mut rng = seeded_rng(derive_seed(seed, i as u64));
                        let i = i as u64;
                        let m = s.coord_of(i);
                        let cell = s.cell_of(m, x);
                        let inner = s.inner_oracle();
                        let outer = s.outer_oracle();
                        SketchReport {
                            inner: legacy_hashtogram_respond(
                                inner,
                                inner.group_of(i),
                                cell,
                                keep_inner,
                                &mut rng,
                            ),
                            outer: legacy_hashtogram_respond(
                                outer,
                                outer.group_of(i),
                                x,
                                keep_outer,
                                &mut rng,
                            ),
                        }
                        .encode_into(out);
                    }
                },
                |out| {
                    for (c, xs) in data.chunks(chunk).enumerate() {
                        s.respond_encode_batch((c * chunk) as u64, xs, seed, out);
                    }
                },
                |out| {
                    for (i, &x) in data.iter().enumerate() {
                        s.respond(i as u64, x, &mut client_rng(seed, i as u64))
                            .encode_into(out);
                    }
                },
            ));
        }
    }

    let mut pipeline_records = Vec::new();
    if pipeline_bench {
        println!(
            "\n— streaming ingest throughput: pipelined collector runtime (actors + \
             bounded queues) vs lock-step StreamEngine (epoch barriers), \
             registry-dispatched —\n"
        );
        // Both runtimes simulate the same fleet at the same thread
        // budget: k = 2 collector nodes, and the lock-step engine's
        // parallel phases get `threads = k` workers — the pipelined side
        // runs 1 encoder + k long-lived actors. What the comparison then
        // isolates is the coordination machinery itself: lock-step pays
        // a scoped spawn + join barrier per phase per epoch and buffers
        // each whole epoch before absorbing; the actor runtime keeps its
        // threads alive and absorbs/checkpoints behind the encoder. On a
        // multi-core host the pipelined side additionally overlaps the
        // stages in real time.
        let plan = |n: usize, epoch_div: usize, chunk: usize| StreamPlan {
            epoch_size: (n / epoch_div).max(1),
            checkpoint_every: 1,
            dist: DistPlan {
                collectors: 2,
                chunk_size: chunk.min(n.max(1)),
                threads: 2,
                ..DistPlan::default()
            },
        };
        let config = |queue_depth| PipelineConfig {
            queue_depth,
            workers: 1,
        };
        let spec = |n: usize, domain, seed| ProtocolSpec {
            n: n as u64,
            domain,
            eps,
            beta,
            seed,
        };

        let n = if quick { 1usize << 13 } else { 1 << 19 };
        let data = Workload::zipf(1u64 << bits, 1.2).generate(n, 151);
        let s = build_hh("expander_sketch", &spec(n, 1u64 << bits, 41)).expect("registered");
        pipeline_records.extend(pipeline_throughput(
            DynHhStream(s.as_ref()),
            "expander_sketch",
            &data,
            &plan(n, 16, 1 << 14),
            &config(2),
            42,
        ));

        let scan_n = if quick { 1usize << 13 } else { 1 << 20 };
        let scan_domain = 1u64 << 16;
        let scan_data: Vec<u64> = data
            .iter()
            .cycle()
            .take(scan_n)
            .map(|&x| x & (scan_domain - 1))
            .collect();
        let s = build_hh("scan", &spec(scan_n, scan_domain, 43)).expect("registered");
        pipeline_records.extend(pipeline_throughput(
            DynHhStream(s.as_ref()),
            "scan",
            &scan_data,
            &plan(scan_n, 16, 1 << 14),
            &config(4),
            44,
        ));

        // As in the ingest rows: KRR is so cheap per user it needs a
        // larger population to resolve the runtime delta.
        let krr_n = if quick { 1usize << 14 } else { 1 << 21 };
        let krr_data: Vec<u64> = data.iter().cycle().take(krr_n).map(|&x| x % 64).collect();
        let o = build_oracle("krr", &spec(krr_n, 64, 45)).expect("registered");
        pipeline_records.extend(pipeline_throughput(
            DynOracleStream(o.as_ref()),
            "krr",
            &krr_data,
            &plan(krr_n, 16, 1 << 15),
            &config(4),
            46,
        ));

        // RAPPOR reports are dense bitvectors (32 B/user at |X| = 256);
        // many short epochs is the shape a live telemetry stream has,
        // and each one costs the lock-step engine two spawn/join
        // barriers plus a fully buffered epoch.
        let rappor_n = if quick { 1usize << 11 } else { 1 << 17 };
        let rappor_data: Vec<u64> = data
            .iter()
            .cycle()
            .take(rappor_n)
            .map(|&x| x % 256)
            .collect();
        let o = build_oracle("rappor", &spec(rappor_n, 256, 47)).expect("registered");
        pipeline_records.extend(pipeline_throughput(
            DynOracleStream(o.as_ref()),
            "rappor",
            &rappor_data,
            &plan(rappor_n, 32, 1 << 12),
            &config(2),
            48,
        ));

        // Finish-phase counters through the pipelined runtime: one
        // session that answers a cold + warm mid-stream query pair
        // after ingesting, recorded as a `finish_phase` row next to the
        // throughput rows.
        let fp_n = if quick { 1usize << 12 } else { 1 << 16 };
        let fp_spec = spec(fp_n, 1u64 << bits, 49);
        let fp_data: Vec<u64> = data.iter().cycle().take(fp_n).copied().collect();
        let s = build_hh("expander_sketch", &fp_spec).expect("registered");
        let ingest = DynHhStream(s.as_ref());
        let fp_plan = plan(fp_n, 8, 1 << 12);
        let (_, stats, ()) = run_pipelined(&ingest, &fp_plan, &config(2), 50, |session| {
            session.ingest_all(&fp_data);
            let mut probe = build_hh("expander_sketch", &fp_spec).expect("registered");
            let cold = session.finish_at_epoch(probe.as_mut());
            let mut probe = build_hh("expander_sketch", &fp_spec).expect("registered");
            let warm = session.finish_at_epoch(probe.as_mut());
            assert_eq!(cold, warm, "pipelined warm mid-stream query diverged");
        });
        let phase = FinishPhase::from_stats(&stats);
        println!(
            "  {:>16}: finish phase: {} queries ({} cached) | fold {} | scratch reuse {:.0}%",
            "expander_sketch",
            phase.queries,
            phase.cache_hits,
            fmt_dur(std::time::Duration::from_secs_f64(phase.fold_secs)),
            100.0 * phase.scratch_reuse_rate(),
        );
        pipeline_records.push(
            JsonObject::new()
                .str("protocol", "expander_sketch")
                .str("path", "finish_phase")
                .int("n", fp_n as u64)
                .int("finish_queries", phase.queries)
                .num("finish_secs_total", phase.finish_secs)
                .num("fold_secs", phase.fold_secs)
                .int("finish_cache_hits", phase.cache_hits)
                .int("scratch_reused", phase.scratch_reused)
                .int("scratch_fresh", phase.scratch_fresh)
                .build(),
        );
    }

    let mut finish_records = Vec::new();
    if finish_bench {
        println!(
            "\n— finish (server decode) wall-clock: parallel `finish_with` vs forced-serial, \
             registry-dispatched; incremental mid-stream finalization vs from-scratch —\n"
        );
        let spec = |n: usize, domain, seed| ProtocolSpec {
            n: n as u64,
            domain,
            eps,
            beta,
            seed,
        };

        // 2^16 keeps the slowest row (the expander's list-recovery
        // decode, ~seconds per finish) stable without the whole sweep
        // taking minutes per rep.
        let n = if quick { 1usize << 13 } else { 1 << 16 };
        let data = Workload::zipf(1u64 << bits, 1.2).generate(n, 171);
        finish_records.extend(finish_throughput(
            "expander_sketch",
            &spec(n, 1u64 << bits, 61),
            &data,
            62,
        ));
        finish_records.extend(finish_throughput(
            "bitstogram",
            &spec(n, 1u64 << bits, 63),
            &data,
            64,
        ));
        let scan_domain = 1u64 << 16;
        let scan_data: Vec<u64> = data.iter().map(|&x| x & (scan_domain - 1)).collect();
        finish_records.extend(finish_throughput(
            "scan",
            &spec(n, scan_domain, 65),
            &scan_data,
            66,
        ));
        // Bassily–Smith's finish is the domain scan at O(w) = O(n) per
        // query — n·|X| total work; small n and domain keep the row
        // affordable while still timing the parallelized sweep.
        let bs_n = if quick { 1usize << 10 } else { 1 << 13 };
        let bs_domain = 1u64 << 10;
        let bs_data: Vec<u64> = data[..bs_n].iter().map(|&x| x & (bs_domain - 1)).collect();
        finish_records.extend(finish_throughput(
            "bassily_smith_hh",
            &spec(bs_n, bs_domain, 67),
            &bs_data,
            68,
        ));

        let inc_n = if quick { 1usize << 12 } else { 1 << 14 };
        finish_records.extend(incremental_finish(
            "expander_sketch",
            &spec(inc_n, 1u64 << bits, 69),
            inc_n / 4,
            70,
        ));
    }

    let mut runs = Vec::new();
    let mut scaling = Vec::new();
    if emit_json {
        let n = if quick { 100_000usize } else { 1_000_000 };
        println!("\n— serial vs batched pipeline at n = {n} (planted workload) —\n");
        let workload = Workload::planted(1u64 << bits, vec![(0xBEEF, 0.3)]);
        let data = workload.generate(n, 97);

        let sketch_spec = ProtocolSpec {
            n: n as u64,
            domain: 1u64 << bits,
            eps,
            beta,
            seed: 11,
        };
        let (json, sketch_serial) = compare_at_scale("expander_sketch", &sketch_spec, &data, 12);
        runs.push(json);

        let scan_domain = 1u64 << 16;
        let scan_data: Vec<u64> = data.iter().map(|&x| x & (scan_domain - 1)).collect();
        let scan_spec = ProtocolSpec {
            n: n as u64,
            domain: scan_domain,
            eps,
            beta,
            seed: 13,
        };
        let (json, scan_serial) = compare_at_scale("scan", &scan_spec, &scan_data, 14);
        runs.push(json);

        println!("\n— collector-count scaling (wire round-trip, tree merge) —\n");
        scaling.extend(merge_scaling(
            "expander_sketch",
            &sketch_spec,
            &data,
            12,
            &sketch_serial,
        ));
        scaling.extend(merge_scaling(
            "scan",
            &scan_spec,
            &scan_data,
            14,
            &scan_serial,
        ));

        let doc = JsonObject::new()
            .str("experiment", "table1_resources_serial_vs_batched")
            .int("n", n as u64)
            .int("hardware_threads", rayon::current_num_threads() as u64)
            .str("workload", "planted(0.3 heavy over 2^20 / 2^16 domains)")
            .raw("runs", json_array(runs))
            .raw("merge_scaling", json_array(scaling))
            .raw("stream", json_array(stream_records))
            .raw("ingest", json_array(ingest_records))
            .raw("client", json_array(client_records))
            .raw("pipeline", json_array(pipeline_records))
            .raw("finish", json_array(finish_records))
            .build();
        std::fs::write(&json_out, format!("{doc}\n"))
            .unwrap_or_else(|e| panic!("write {json_out}: {e}"));
        println!("\nwrote {json_out}");
    } else if ingest_bench || client_bench || pipeline_bench || finish_bench {
        // Without --json the tracked baseline document would be written
        // with its comparison arrays empty — never clobber it; the
        // measurements (and their bit-for-bit shard checks) above are
        // the smoke value.
        println!(
            "\n(pass --json / --json-out to record the throughput rows into the JSON baseline)"
        );
    }
}
