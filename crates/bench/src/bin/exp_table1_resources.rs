//! Experiments T1.time / T1.mem / T1.comm — the resource rows of Table 1.
//!
//! Measures server time, per-user time, server memory, per-user
//! communication and public-randomness size for `PrivateExpanderSketch`,
//! Bitstogram (\[3\]) and the Bassily–Smith-style projection oracle (\[4\],
//! with its heavy-hitter search realized as the domain scan the paper
//! deems impractical), across n. Expected shapes per Table 1: ours/\[3\]
//! near-linear server time and O~(1) user cost with O~(√n) memory;
//! \[4\] linear-in-n memory and a per-query cost that makes domain scans
//! explode.

use hh_bench::{banner, fmt_dur, Table};
use hh_core::baselines::{Bitstogram, BitstogramParams};
use hh_core::{ExpanderSketch, SketchParams};
use hh_freq::bassily_smith::BassilySmithOracle;
use hh_math::rng::derive_seed;
use hh_sim::{run_heavy_hitter, run_oracle, Workload};

fn main() {
    banner(
        "T1.time / T1.mem / T1.comm — Table 1 resource rows",
        "ours,[3]: O~(n) server, O~(1) user, O~(sqrt n) memory, O(1) comm; [4]: O(n) memory, O(n) per query",
    );
    let bits = 20u32;
    let eps = 4.0;
    let beta = 0.1;

    let mut t = Table::new(&[
        "protocol",
        "n",
        "server",
        "user(mean)",
        "memory",
        "report bits",
        "pub rand",
    ]);
    for &logn in &[14u32, 16, 18] {
        let n = 1u64 << logn;
        let workload = Workload::zipf(1u64 << bits, 1.2);
        let data = workload.generate(n as usize, derive_seed(7, u64::from(logn)));

        let p = SketchParams::optimal(n, bits, eps, beta);
        let mut s = ExpanderSketch::new(p, 1);
        let run = run_heavy_hitter(&mut s, &data, 2);
        t.row(&[
            "ours".into(),
            format!("2^{logn}"),
            fmt_dur(run.server_time()),
            fmt_dur(run.user_time()),
            format!("{} KiB", run.memory_bytes / 1024),
            run.report_bits.to_string(),
            "64 bits (one seed)".into(),
        ]);

        let p = BitstogramParams::optimal(n, bits, eps, beta);
        let mut s = Bitstogram::new(p, 3);
        let run = run_heavy_hitter(&mut s, &data, 4);
        t.row(&[
            "bitstogram [3]".into(),
            format!("2^{logn}"),
            fmt_dur(run.server_time()),
            fmt_dur(run.user_time()),
            format!("{} KiB", run.memory_bytes / 1024),
            run.report_bits.to_string(),
            "64 bits (one seed)".into(),
        ]);

        // Bassily–Smith FO with w = n rows; query cost O(n) each. A
        // full heavy-hitter scan would be n·|X| — measure a 512-query
        // slice and extrapolate.
        let mut o = BassilySmithOracle::new(1u64 << bits, eps, n, 5);
        let queries: Vec<u64> = (0..512u64).collect();
        let run = run_oracle(&mut o, &data, &queries, 6);
        let full_scan = run.query_total.as_secs_f64() / 512.0 * (1u64 << bits) as f64;
        t.row(&[
            "bassily-smith [4]".into(),
            format!("2^{logn}"),
            format!(
                "{} (+{} scan-extrapolated)",
                fmt_dur(run.server_build),
                fmt_dur(std::time::Duration::from_secs_f64(full_scan))
            ),
            fmt_dur(std::time::Duration::from_nanos(
                (run.client_total.as_nanos() as u64) / n,
            )),
            format!("{} KiB", run.memory_bytes / 1024),
            run.report_bits.to_string(),
            "64 bits (hash-compressed Phi)".into(),
        ]);
    }
    t.print();
    println!("\nnotes:");
    println!("  - [4]'s Table-1 entries (n^1.5 user, n^2.5 server, n^1.5 public coins)");
    println!("    assume explicitly materialized public randomness; our implementation");
    println!("    hash-compresses Phi (the option their footnote 2 concedes), so the");
    println!("    measured gap shows in memory (linear in n) and the scan-extrapolated");
    println!("    heavy-hitter search time (linear in |X|), not in raw report cost.");
    println!("  - ours/[3]: user time flat in n, memory ~sqrt(n) — the Table 1 shapes.");
}
