//! Experiments T1.time / T1.mem / T1.comm — the resource rows of Table 1.
//!
//! Measures server time, per-user time, server memory, per-user
//! communication and public-randomness size for `PrivateExpanderSketch`,
//! Bitstogram (\[3\]) and the Bassily–Smith-style projection oracle (\[4\],
//! with its heavy-hitter search realized as the domain scan the paper
//! deems impractical), across n. Expected shapes per Table 1: ours/\[3\]
//! near-linear server time and O~(1) user cost with O~(√n) memory;
//! \[4\] linear-in-n memory and a per-query cost that makes domain scans
//! explode.
//!
//! Flags:
//!
//! * `--serial` — drive the table rows through the serial reference
//!   runner instead of the batched parallel pipeline (the default), for
//!   before/after comparison.
//! * `--json` — additionally run the n = 10^6 planted-workload
//!   serial-vs-batched comparison and write `BENCH_table1.json` (the
//!   perf-trajectory baseline tracked across PRs).

use hh_bench::{banner, fmt_dur, json_array, JsonObject, Table};
use hh_core::baselines::{Bitstogram, BitstogramParams};
use hh_core::traits::HeavyHitterProtocol;
use hh_core::{ExpanderSketch, SketchParams};
use hh_freq::bassily_smith::BassilySmithOracle;
use hh_math::rng::derive_seed;
use hh_sim::{
    run_heavy_hitter, run_heavy_hitter_batched, run_oracle, run_oracle_batched, BatchPlan,
    ProtocolRun, Workload,
};

fn drive<P>(server: &mut P, data: &[u64], seed: u64, serial: bool) -> ProtocolRun
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send,
{
    if serial {
        run_heavy_hitter(server, data, seed)
    } else {
        run_heavy_hitter_batched(server, data, seed, &BatchPlan::default())
    }
}

/// One serial-vs-batched wall-clock comparison, returned as a JSON value.
fn compare_at_scale<P, F>(make: F, name: &str, data: &[u64], seed: u64) -> String
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send,
    F: Fn() -> P,
{
    let serial = {
        let mut s = make();
        run_heavy_hitter(&mut s, data, seed)
    };
    let plan = BatchPlan::default();
    let batched = {
        let mut s = make();
        run_heavy_hitter_batched(&mut s, data, seed, &plan)
    };
    assert_eq!(
        serial.estimates, batched.estimates,
        "{name}: batched output diverged from serial"
    );
    let speedup = serial.total_time().as_secs_f64() / batched.total_time().as_secs_f64();
    println!(
        "  {name:>16}: serial {} | batched {} ({} threads, chunk {}) | speedup x{speedup:.2}",
        fmt_dur(serial.total_time()),
        fmt_dur(batched.total_time()),
        batched.threads,
        plan.chunk_size,
    );
    JsonObject::new()
        .str("protocol", name)
        .int("n", data.len() as u64)
        .int("threads", batched.threads as u64)
        .int("chunk_size", plan.chunk_size as u64)
        .num("serial_total_secs", serial.total_time().as_secs_f64())
        .num("serial_client_secs", serial.client_total.as_secs_f64())
        .num("serial_ingest_secs", serial.server_ingest.as_secs_f64())
        .num("serial_finish_secs", serial.server_finish.as_secs_f64())
        .num("batched_total_secs", batched.total_time().as_secs_f64())
        .num("batched_client_secs", batched.client_total.as_secs_f64())
        .num("batched_ingest_secs", batched.server_ingest.as_secs_f64())
        .num("batched_finish_secs", batched.server_finish.as_secs_f64())
        .num("speedup_total", speedup)
        .build()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let serial = args.iter().any(|a| a == "--serial");
    let emit_json = args.iter().any(|a| a == "--json");

    banner(
        "T1.time / T1.mem / T1.comm — Table 1 resource rows",
        "ours,[3]: O~(n) server, O~(1) user, O~(sqrt n) memory, O(1) comm; [4]: O(n) memory, O(n) per query",
    );
    println!(
        "driver: {}\n",
        if serial {
            "serial (--serial)"
        } else {
            "batched parallel pipeline (default; pass --serial to compare)"
        }
    );
    let bits = 20u32;
    let eps = 4.0;
    let beta = 0.1;

    let mut t = Table::new(&[
        "protocol",
        "n",
        "server",
        "user(mean)",
        "memory",
        "report bits",
        "pub rand",
    ]);
    for &logn in &[14u32, 16, 18] {
        let n = 1u64 << logn;
        let workload = Workload::zipf(1u64 << bits, 1.2);
        let data = workload.generate(n as usize, derive_seed(7, u64::from(logn)));

        let p = SketchParams::optimal(n, bits, eps, beta);
        let mut s = ExpanderSketch::new(p, 1);
        let run = drive(&mut s, &data, 2, serial);
        t.row(&[
            "ours".into(),
            format!("2^{logn}"),
            fmt_dur(run.server_time()),
            fmt_dur(run.user_time()),
            format!("{} KiB", run.memory_bytes / 1024),
            run.report_bits.to_string(),
            "64 bits (one seed)".into(),
        ]);

        let p = BitstogramParams::optimal(n, bits, eps, beta);
        let mut s = Bitstogram::new(p, 3);
        let run = drive(&mut s, &data, 4, serial);
        t.row(&[
            "bitstogram [3]".into(),
            format!("2^{logn}"),
            fmt_dur(run.server_time()),
            fmt_dur(run.user_time()),
            format!("{} KiB", run.memory_bytes / 1024),
            run.report_bits.to_string(),
            "64 bits (one seed)".into(),
        ]);

        // Bassily–Smith FO with w = n rows; query cost O(n) each. A
        // full heavy-hitter scan would be n·|X| — measure a 512-query
        // slice and extrapolate.
        let mut o = BassilySmithOracle::new(1u64 << bits, eps, n, 5);
        let queries: Vec<u64> = (0..512u64).collect();
        let run = if serial {
            run_oracle(&mut o, &data, &queries, 6)
        } else {
            run_oracle_batched(&mut o, &data, &queries, 6, &BatchPlan::default())
        };
        let full_scan = run.query_total.as_secs_f64() / 512.0 * (1u64 << bits) as f64;
        t.row(&[
            "bassily-smith [4]".into(),
            format!("2^{logn}"),
            format!(
                "{} (+{} scan-extrapolated)",
                fmt_dur(run.server_build),
                fmt_dur(std::time::Duration::from_secs_f64(full_scan))
            ),
            fmt_dur(std::time::Duration::from_nanos(
                (run.client_total.as_nanos() as u64) / n,
            )),
            format!("{} KiB", run.memory_bytes / 1024),
            run.report_bits.to_string(),
            "64 bits (hash-compressed Phi)".into(),
        ]);
    }
    t.print();
    println!("\nnotes:");
    if !serial {
        println!("  - batched driver: user(mean) is the parallel respond phase's wall-clock / n,");
        println!("    a lower bound on per-user compute at >1 thread; use --serial for the");
        println!("    paper's per-user cost metric.");
    }
    println!("  - [4]'s Table-1 entries (n^1.5 user, n^2.5 server, n^1.5 public coins)");
    println!("    assume explicitly materialized public randomness; our implementation");
    println!("    hash-compresses Phi (the option their footnote 2 concedes), so the");
    println!("    measured gap shows in memory (linear in n) and the scan-extrapolated");
    println!("    heavy-hitter search time (linear in |X|), not in raw report cost.");
    println!("  - ours/[3]: user time flat in n, memory ~sqrt(n) — the Table 1 shapes.");

    if emit_json {
        println!("\n— serial vs batched pipeline at n = 10^6 (planted workload) —\n");
        let n = 1_000_000usize;
        let workload = Workload::planted(1u64 << bits, vec![(0xBEEF, 0.3)]);
        let data = workload.generate(n, 97);
        let mut runs = Vec::new();

        let p = SketchParams::optimal(n as u64, bits, eps, beta);
        runs.push(compare_at_scale(
            || ExpanderSketch::new(p.clone(), 11),
            "expander_sketch",
            &data,
            12,
        ));

        let scan_domain = 1u64 << 16;
        let scan_data: Vec<u64> = data.iter().map(|&x| x & (scan_domain - 1)).collect();
        let sp = hh_core::baselines::ScanParams::new(n as u64, scan_domain, eps, beta);
        runs.push(compare_at_scale(
            || hh_core::baselines::ScanHeavyHitters::new(sp.clone(), 13),
            "scan",
            &scan_data,
            14,
        ));

        let doc = JsonObject::new()
            .str("experiment", "table1_resources_serial_vs_batched")
            .int("n", n as u64)
            .int("hardware_threads", rayon::current_num_threads() as u64)
            .str("workload", "planted(0.3 heavy over 2^20 / 2^16 domains)")
            .raw("runs", json_array(runs))
            .build();
        std::fs::write("BENCH_table1.json", format!("{doc}\n")).expect("write BENCH_table1.json");
        println!("\nwrote BENCH_table1.json");
    }
}
