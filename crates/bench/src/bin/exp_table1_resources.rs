//! Experiments T1.time / T1.mem / T1.comm — the resource rows of Table 1.
//!
//! Measures server time, per-user time, server memory, per-user
//! communication (claimed bits *and* measured wire bytes) and
//! public-randomness size for `PrivateExpanderSketch`, Bitstogram (\[3\])
//! and the Bassily–Smith-style projection oracle (\[4\], with its
//! heavy-hitter search realized as the domain scan the paper deems
//! impractical), across n. Expected shapes per Table 1: ours/\[3\]
//! near-linear server time and O~(1) user cost with O~(√n) memory;
//! \[4\] linear-in-n memory and a per-query cost that makes domain scans
//! explode.
//!
//! Flags:
//!
//! * `--serial` — drive the table rows through the serial reference
//!   runner instead of the batched parallel pipeline (the default), for
//!   before/after comparison.
//! * `--distributed` — drive the table rows through the distributed
//!   collector-fleet pipeline (8 nodes, tree merge): every report is
//!   round-tripped through its wire encoding on the way to a collector.
//! * `--stream` — additionally run the streaming epoch engine (drifting
//!   workload, per-epoch checkpoints, one collector crash + recovery)
//!   and report snapshot bytes/collector, checkpoint + recovery time,
//!   and epoch throughput next to the wire column; with `--json` /
//!   `--json-out` the records land in the JSON document.
//! * `--ingest-bench` — measure steady-state ingest throughput
//!   (users/sec and MB/s) of the fused zero-copy path
//!   (`respond_encode_batch` + `absorb_wire`) against the legacy
//!   materializing path (respond → encode → decode → absorb), with the
//!   two shards checked bit-for-bit equal; with `--json` / `--json-out`
//!   the records land in the JSON document so the speedup is tracked,
//!   not asserted (without them nothing is written — the tracked
//!   baseline is never clobbered with a partial document).
//! * `--quick` — small-n profile (CI smoke runs).
//! * `--json` — additionally run the serial-vs-batched comparison, the
//!   collector-count merge-scaling sweep, *and* the ingest throughput
//!   comparison (implied, so the document is always written whole), and
//!   write the machine-readable record (the perf-trajectory baseline
//!   tracked across PRs).
//! * `--json-out <path>` — where `--json` (and `--ingest-bench`) write
//!   (default `BENCH_table1.json`).

use hh_bench::{banner, fmt_dur, json_array, JsonObject, Table};
use hh_core::baselines::{Bitstogram, BitstogramParams, ScanHeavyHitters, ScanParams};
use hh_core::traits::{HeavyHitterProtocol, WireReport, WireShard};
use hh_core::{ExpanderSketch, SketchParams};
use hh_freq::bassily_smith::BassilySmithOracle;
use hh_freq::krr::KrrOracle;
use hh_freq::rappor::Rappor;
use hh_freq::traits::FrequencyOracle;
use hh_freq::wire::{encode_reports, WireFrames};
use hh_math::rng::derive_seed;
use hh_sim::{
    run_heavy_hitter, run_heavy_hitter_batched, run_heavy_hitter_distributed, run_oracle,
    run_oracle_batched, run_oracle_distributed, BatchPlan, DistPlan, HhStream, OracleStream,
    ProtocolRun, StreamEngine, StreamIngest, StreamPlan, StreamWorkload, Workload,
};
use std::time::Instant;

/// Which pipeline drives the table rows.
#[derive(Clone, Copy, PartialEq)]
enum Driver {
    Serial,
    Batched,
    Distributed,
}

/// A table row's timing plus the measured wire accounting.
struct RowRun {
    run: ProtocolRun,
    /// Mean measured wire bytes per user (end-to-end in distributed
    /// mode, sampled from real reports otherwise).
    wire_bytes_per_user: f64,
}

/// How many leading users the non-distributed rows sample to measure
/// mean wire bytes (the distributed driver measures end-to-end instead).
const WIRE_SAMPLE_CAP: usize = 1 << 13;
/// Client seed of the wire-size sample (any fixed value works — report
/// sizes concentrate; fixed so reruns print identical columns).
const WIRE_SAMPLE_SEED: u64 = 0x317E;

/// Mean encoded size of a batch of reports.
fn mean_wire_bytes<R: WireReport>(reports: &[R]) -> f64 {
    let total: usize = reports.iter().map(|r| r.encoded_len()).sum();
    total as f64 / reports.len().max(1) as f64
}

fn drive<P>(server: &mut P, data: &[u64], seed: u64, driver: Driver) -> RowRun
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
{
    match driver {
        Driver::Serial | Driver::Batched => {
            let sample = &data[..data.len().min(WIRE_SAMPLE_CAP)];
            let wire_bytes_per_user =
                mean_wire_bytes(&server.respond_batch(0, sample, WIRE_SAMPLE_SEED));
            let run = if driver == Driver::Serial {
                run_heavy_hitter(server, data, seed)
            } else {
                run_heavy_hitter_batched(server, data, seed, &BatchPlan::default())
            };
            RowRun {
                run,
                wire_bytes_per_user,
            }
        }
        Driver::Distributed => {
            let d = run_heavy_hitter_distributed(server, data, seed, &DistPlan::default());
            RowRun {
                wire_bytes_per_user: d.wire_bytes_per_user(),
                run: ProtocolRun {
                    estimates: d.estimates,
                    n: d.n,
                    client_total: d.client_total,
                    server_ingest: d.server_ingest + d.server_merge,
                    server_finish: d.server_finish,
                    threads: d.threads,
                    report_bits: d.report_bits,
                    memory_bytes: d.memory_bytes,
                    detection_threshold: d.detection_threshold,
                },
            }
        }
    }
}

/// One serial-vs-batched wall-clock comparison. Returns the JSON record
/// and the serial estimates (reused by [`merge_scaling`] as the
/// equality reference, so the serial run happens once).
fn compare_at_scale<P, F>(make: F, name: &str, data: &[u64], seed: u64) -> (String, Vec<(u64, f64)>)
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
    F: Fn() -> P,
{
    let serial = {
        let mut s = make();
        run_heavy_hitter(&mut s, data, seed)
    };
    let plan = BatchPlan::default();
    let batched = {
        let mut s = make();
        run_heavy_hitter_batched(&mut s, data, seed, &plan)
    };
    assert_eq!(
        serial.estimates, batched.estimates,
        "{name}: batched output diverged from serial"
    );
    let speedup = serial.total_time().as_secs_f64() / batched.total_time().as_secs_f64();
    println!(
        "  {name:>16}: serial {} | batched {} ({} threads, chunk {}) | speedup x{speedup:.2}",
        fmt_dur(serial.total_time()),
        fmt_dur(batched.total_time()),
        batched.threads,
        plan.chunk_size,
    );
    let json = JsonObject::new()
        .str("protocol", name)
        .int("n", data.len() as u64)
        .int("threads", batched.threads as u64)
        .int("chunk_size", plan.chunk_size as u64)
        .num("serial_total_secs", serial.total_time().as_secs_f64())
        .num("serial_client_secs", serial.client_total.as_secs_f64())
        .num("serial_ingest_secs", serial.server_ingest.as_secs_f64())
        .num("serial_finish_secs", serial.server_finish.as_secs_f64())
        .num("batched_total_secs", batched.total_time().as_secs_f64())
        .num("batched_client_secs", batched.client_total.as_secs_f64())
        .num("batched_ingest_secs", batched.server_ingest.as_secs_f64())
        .num("batched_finish_secs", batched.server_finish.as_secs_f64())
        .num("speedup_total", speedup)
        .build();
    (json, serial.estimates)
}

/// Collector-count scaling: distributed runs at k ∈ {1, 2, 8}, each
/// checked bit-for-bit against the caller's serial reference estimates,
/// returned as JSON records.
fn merge_scaling<P, F>(
    make: F,
    name: &str,
    data: &[u64],
    seed: u64,
    serial: &[(u64, f64)],
) -> Vec<String>
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
    F: Fn() -> P,
{
    let mut out = Vec::new();
    for collectors in [1usize, 2, 8] {
        let mut s = make();
        let run = run_heavy_hitter_distributed(
            &mut s,
            data,
            seed,
            &DistPlan::with_collectors(collectors),
        );
        assert_eq!(
            run.estimates, serial,
            "{name}: distributed output diverged at k = {collectors}"
        );
        println!(
            "  {name:>16} @ k={collectors}: wire {:.2} B/user | ingest {} | merge {} | total {}",
            run.wire_bytes_per_user(),
            fmt_dur(run.server_ingest),
            fmt_dur(run.server_merge),
            fmt_dur(run.total_time()),
        );
        out.push(
            JsonObject::new()
                .str("protocol", name)
                .int("n", data.len() as u64)
                .int("collectors", collectors as u64)
                .int("wire_bytes_total", run.wire_bytes)
                .num("wire_bytes_per_user", run.wire_bytes_per_user())
                .num("client_secs", run.client_total.as_secs_f64())
                .num("ingest_secs", run.server_ingest.as_secs_f64())
                .num("merge_secs", run.server_merge.as_secs_f64())
                .num("finish_secs", run.server_finish.as_secs_f64())
                .num("total_secs", run.total_time().as_secs_f64())
                .build(),
        );
    }
    out
}

/// One streaming-engine measurement: `epochs` epochs of a drifting
/// (Zipf-ramp, jittered-arrival) workload over a `collectors`-node
/// fleet with per-epoch checkpoints, one collector crash after
/// `epochs/2` epochs and recovery one epoch later — verified bit-for-bit
/// against the serial one-shot run, reported as a JSON record.
fn stream_run<P, F>(make: F, name: &str, domain: u64, n_per_epoch: usize, seed: u64) -> String
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
    F: Fn() -> P,
{
    let epochs = 6u64;
    let collectors = 4usize;
    let workload = StreamWorkload::zipf_ramp(domain, 1.05, 1.4, epochs as usize, 0.15);
    let plan = StreamPlan {
        epoch_size: n_per_epoch,
        checkpoint_every: 1,
        dist: DistPlan {
            collectors,
            chunk_size: (n_per_epoch / 8).max(1),
            ..DistPlan::default()
        },
    };

    let server = make();
    let mut engine = StreamEngine::new(HhStream(&server), plan, seed);
    let mut all_data = Vec::new();
    let mut recovery_secs = 0.0;
    for epoch in 0..epochs {
        let batch = workload.generate_epoch(epoch, n_per_epoch, seed ^ 0x57);
        engine.ingest_epoch(&batch);
        all_data.extend_from_slice(&batch);
        if epoch == epochs / 2 {
            engine.kill_collector(1);
        }
        if epoch == epochs / 2 + 1 {
            recovery_secs = engine.recover_collector(1).elapsed.as_secs_f64();
        }
    }
    let snapshot_sizes = engine.snapshot_sizes();
    let snapshot_total: usize = snapshot_sizes.iter().flatten().sum();
    let (shard, stats) = engine.into_live_shard();
    let mut server = server;
    server.finish_shard(shard);
    let estimates = server.finish();

    let serial = {
        let mut s = make();
        run_heavy_hitter(&mut s, &all_data, seed).estimates
    };
    assert_eq!(estimates, serial, "{name}: streamed output diverged");

    let ingest_secs = (stats.client_total + stats.ingest_total).as_secs_f64();
    let throughput = stats.users as f64 / ingest_secs.max(1e-9);
    let checkpoint_mean = stats.checkpoint_total.as_secs_f64() / stats.checkpoints.max(1) as f64;
    println!(
        "  {name:>16}: {} users / {} epochs | {:.0} users/s | snapshot {:.1} KiB/collector \
         | checkpoint {} (mean) | recovery {} ({} reports replayed)",
        stats.users,
        stats.epochs,
        throughput,
        snapshot_total as f64 / collectors as f64 / 1024.0,
        fmt_dur(std::time::Duration::from_secs_f64(checkpoint_mean)),
        fmt_dur(std::time::Duration::from_secs_f64(recovery_secs)),
        stats.replayed_reports,
    );
    JsonObject::new()
        .str("protocol", name)
        .int("n", stats.users)
        .int("epochs", stats.epochs)
        .int("collectors", collectors as u64)
        .int("wire_bytes_total", stats.wire_bytes)
        .num(
            "wire_bytes_per_user",
            stats.wire_bytes as f64 / stats.users.max(1) as f64,
        )
        .int("snapshot_bytes_total", snapshot_total as u64)
        .num(
            "snapshot_bytes_per_collector",
            snapshot_total as f64 / collectors as f64,
        )
        .int("checkpoints", stats.checkpoints)
        .num(
            "checkpoint_secs_total",
            stats.checkpoint_total.as_secs_f64(),
        )
        .num("checkpoint_secs_mean", checkpoint_mean)
        .num("recovery_secs", recovery_secs)
        .int("replayed_reports", stats.replayed_reports)
        .num("epoch_ingest_secs", ingest_secs)
        .num("epoch_users_per_sec", throughput)
        .build()
}

/// One fused-vs-legacy ingest throughput measurement, single-threaded
/// (so the comparison is pure per-user work, not scheduling):
///
/// * **legacy** — `respond_batch` materializes the chunk's reports,
///   `encode_into` frames them, the collector decodes every frame back
///   into a report vec and `absorb`s it (the pre-zero-copy pipeline);
/// * **fused** — `respond_encode_batch` samples straight into one
///   reused wire buffer and the collector folds the borrowed frames via
///   `absorb_wire` — no report vec on either side, no steady-state
///   allocation.
///
/// The two shards are checked bit-for-bit equal through their snapshot
/// encoding; the throughput records (users/sec and MB/s) land in the
/// JSON document so the speedup is tracked across PRs, not asserted.
fn ingest_throughput<I: StreamIngest>(
    ingest: &I,
    name: &str,
    data: &[u64],
    chunk_size: usize,
    client_seed: u64,
) -> Vec<String> {
    // The two paths run interleaved (legacy, fused, legacy, fused, …)
    // for `REPS` rounds each after one unmeasured warmup pair, and the
    // min wall-clock per path is recorded — interleaving cancels slow
    // clock-frequency drift and the min strips scheduler noise, which
    // matters because the fastest paths finish a rep in milliseconds.
    const REPS: usize = 5;

    // Legacy path: respond → encode → decode → absorb.
    let run_legacy = || {
        let t0 = Instant::now();
        let mut shard = ingest.new_shard();
        let mut bytes_total = 0u64;
        for (c, xs) in data.chunks(chunk_size).enumerate() {
            let start = (c * chunk_size) as u64;
            let reports = ingest.respond_batch(start, xs, client_seed);
            let mut bytes = Vec::new();
            let lens = encode_reports(&reports, &mut bytes);
            bytes_total += bytes.len() as u64;
            let mut decoded = Vec::with_capacity(reports.len());
            let mut off = 0usize;
            for &len in &lens {
                decoded.push(
                    I::Report::decode(&bytes[off..off + len as usize]).expect("frame decodes"),
                );
                off += len as usize;
            }
            ingest.absorb(&mut shard, start, &decoded);
        }
        (t0.elapsed().as_secs_f64(), shard, bytes_total)
    };

    // Fused path: respond_encode_batch into one reused buffer →
    // absorb_wire over the borrowed frames.
    let run_fused = || {
        let t1 = Instant::now();
        let mut shard = ingest.new_shard();
        let mut bytes_total = 0u64;
        let mut buf: Vec<u8> = Vec::new();
        for (c, xs) in data.chunks(chunk_size).enumerate() {
            let start = (c * chunk_size) as u64;
            buf.clear();
            let lens = ingest.respond_encode_batch(start, xs, client_seed, &mut buf);
            bytes_total += buf.len() as u64;
            let frames = WireFrames::new(&buf, &lens).expect("well-framed chunk");
            ingest
                .absorb_wire(&mut shard, start, &frames)
                .expect("wire absorb");
        }
        (t1.elapsed().as_secs_f64(), shard, bytes_total)
    };

    let (_, mut legacy_shard, mut wire_bytes) = run_legacy();
    let (_, mut fused_shard, mut fused_bytes) = run_fused();
    let mut legacy_secs = f64::INFINITY;
    let mut fused_secs = f64::INFINITY;
    for _ in 0..REPS {
        let (secs, shard, bytes) = run_legacy();
        legacy_secs = legacy_secs.min(secs);
        legacy_shard = shard;
        wire_bytes = bytes;
        let (secs, shard, bytes) = run_fused();
        fused_secs = fused_secs.min(secs);
        fused_shard = shard;
        fused_bytes = bytes;
    }

    assert_eq!(fused_bytes, wire_bytes, "{name}: fused wire bytes diverged");
    assert_eq!(
        fused_shard.encode_shard(),
        legacy_shard.encode_shard(),
        "{name}: fused shard diverged from legacy"
    );

    let n = data.len() as f64;
    println!(
        "  {name:>16}: legacy {:>9.0} users/s ({:>6.1} MB/s) | fused {:>9.0} users/s ({:>6.1} MB/s) | x{:.2}",
        n / legacy_secs.max(1e-9),
        wire_bytes as f64 / 1e6 / legacy_secs.max(1e-9),
        n / fused_secs.max(1e-9),
        wire_bytes as f64 / 1e6 / fused_secs.max(1e-9),
        legacy_secs / fused_secs.max(1e-9),
    );
    let record = |path: &str, secs: f64| {
        JsonObject::new()
            .str("protocol", name)
            .str("path", path)
            .int("n", data.len() as u64)
            .int("chunk_size", chunk_size as u64)
            .int("wire_bytes", wire_bytes)
            .num("ingest_secs", secs)
            .num("users_per_sec", n / secs.max(1e-9))
            .num("mb_per_sec", wire_bytes as f64 / 1e6 / secs.max(1e-9))
            .build()
    };
    vec![record("legacy", legacy_secs), record("fused", fused_secs)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let serial = args.iter().any(|a| a == "--serial");
    let distributed = args.iter().any(|a| a == "--distributed");
    let stream = args.iter().any(|a| a == "--stream");
    let ingest_bench = args.iter().any(|a| a == "--ingest-bench");
    let quick = args.iter().any(|a| a == "--quick");
    let json_out_value = args.iter().position(|a| a == "--json-out").map(|i| {
        let path = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--json-out needs a path"));
        assert!(
            !path.starts_with("--"),
            "--json-out needs a path, got flag-like value {path:?}"
        );
        path.clone()
    });
    // --json-out implies --json: asking for an output path is asking for
    // the JSON phase.
    let emit_json = args.iter().any(|a| a == "--json") || json_out_value.is_some();
    // A baseline write always includes the ingest comparison: the JSON
    // document is written whole, so omitting the rows would erase the
    // tracked fused-vs-legacy history.
    let ingest_bench = ingest_bench || emit_json;
    let json_out = json_out_value.unwrap_or_else(|| "BENCH_table1.json".to_string());
    assert!(
        !(serial && distributed),
        "--serial and --distributed are mutually exclusive"
    );
    let driver = if serial {
        Driver::Serial
    } else if distributed {
        Driver::Distributed
    } else {
        Driver::Batched
    };

    banner(
        "T1.time / T1.mem / T1.comm — Table 1 resource rows",
        "ours,[3]: O~(n) server, O~(1) user, O~(sqrt n) memory, O(1) comm; [4]: O(n) memory, O(n) per query",
    );
    println!(
        "driver: {}\n",
        match driver {
            Driver::Serial => "serial (--serial)",
            Driver::Batched => "batched parallel pipeline (default)",
            Driver::Distributed =>
                "distributed collector fleet (--distributed; 8 nodes, wire round-trip, tree merge)",
        }
    );
    let bits = 20u32;
    let eps = 4.0;
    let beta = 0.1;
    let logns: &[u32] = if quick { &[12, 13] } else { &[14, 16, 18] };

    let mut t = Table::new(&[
        "protocol",
        "n",
        "server",
        "user(mean)",
        "memory",
        "claim bits",
        "wire B/user",
        "pub rand",
    ]);
    for &logn in logns {
        let n = 1u64 << logn;
        let workload = Workload::zipf(1u64 << bits, 1.2);
        let data = workload.generate(n as usize, derive_seed(7, u64::from(logn)));

        let p = SketchParams::optimal(n, bits, eps, beta);
        let mut s = ExpanderSketch::new(p, 1);
        let row = drive(&mut s, &data, 2, driver);
        t.row(&[
            "ours".into(),
            format!("2^{logn}"),
            fmt_dur(row.run.server_time()),
            fmt_dur(row.run.user_time()),
            format!("{} KiB", row.run.memory_bytes / 1024),
            row.run.report_bits.to_string(),
            format!("{:.2}", row.wire_bytes_per_user),
            "64 bits (one seed)".into(),
        ]);

        let p = BitstogramParams::optimal(n, bits, eps, beta);
        let mut s = Bitstogram::new(p, 3);
        let row = drive(&mut s, &data, 4, driver);
        t.row(&[
            "bitstogram [3]".into(),
            format!("2^{logn}"),
            fmt_dur(row.run.server_time()),
            fmt_dur(row.run.user_time()),
            format!("{} KiB", row.run.memory_bytes / 1024),
            row.run.report_bits.to_string(),
            format!("{:.2}", row.wire_bytes_per_user),
            "64 bits (one seed)".into(),
        ]);

        // Bassily–Smith FO with w = n rows; query cost O(n) each. A
        // full heavy-hitter scan would be n·|X| — measure a 512-query
        // slice and extrapolate.
        let mut o = BassilySmithOracle::new(1u64 << bits, eps, n, 5);
        let queries: Vec<u64> = (0..512u64).collect();
        // (server_build, client_total, query_total, wire B/user) under
        // the same driver as the other rows.
        let (server_build, client_total, query_total, wire, mem, bits_claim) = match driver {
            Driver::Serial | Driver::Batched => {
                let sample = &data[..data.len().min(WIRE_SAMPLE_CAP)];
                let wire = mean_wire_bytes(&o.respond_batch(0, sample, WIRE_SAMPLE_SEED));
                let run = if serial {
                    run_oracle(&mut o, &data, &queries, 6)
                } else {
                    run_oracle_batched(&mut o, &data, &queries, 6, &BatchPlan::default())
                };
                (
                    run.server_build,
                    run.client_total,
                    run.query_total,
                    wire,
                    run.memory_bytes,
                    run.report_bits,
                )
            }
            Driver::Distributed => {
                let run = run_oracle_distributed(&mut o, &data, &queries, 6, &DistPlan::default());
                (
                    run.server_build,
                    run.client_total,
                    run.query_total,
                    run.wire_bytes_per_user(),
                    run.memory_bytes,
                    run.report_bits,
                )
            }
        };
        let full_scan = query_total.as_secs_f64() / 512.0 * (1u64 << bits) as f64;
        t.row(&[
            "bassily-smith [4]".into(),
            format!("2^{logn}"),
            format!(
                "{} (+{} scan-extrapolated)",
                fmt_dur(server_build),
                fmt_dur(std::time::Duration::from_secs_f64(full_scan))
            ),
            fmt_dur(std::time::Duration::from_nanos(
                (client_total.as_nanos() as u64) / n,
            )),
            format!("{} KiB", mem / 1024),
            bits_claim.to_string(),
            format!("{wire:.2}"),
            "64 bits (hash-compressed Phi)".into(),
        ]);
    }
    t.print();
    println!("\nnotes:");
    if driver == Driver::Batched {
        println!("  - batched driver: user(mean) is the parallel respond phase's wall-clock / n,");
        println!("    a lower bound on per-user compute at >1 thread; use --serial for the");
        println!("    paper's per-user cost metric.");
    }
    println!("  - claim bits is report_bits() (the protocol's worst-case message claim);");
    println!("    wire B/user is the measured mean size of the actual encoded reports");
    println!("    (end-to-end through the collector fleet under --distributed). The");
    println!("    wire_conformance tests pin wire <= ceil(claim / 8) bytes per report.");
    println!("  - [4]'s Table-1 entries (n^1.5 user, n^2.5 server, n^1.5 public coins)");
    println!("    assume explicitly materialized public randomness; our implementation");
    println!("    hash-compresses Phi (the option their footnote 2 concedes), so the");
    println!("    measured gap shows in memory (linear in n) and the scan-extrapolated");
    println!("    heavy-hitter search time (linear in |X|), not in raw report cost.");
    println!("  - ours/[3]: user time flat in n, memory ~sqrt(n) — the Table 1 shapes.");

    let mut stream_records = Vec::new();
    if stream {
        let n_per_epoch = if quick { 1usize << 12 } else { 1 << 16 };
        let n_total = 6 * n_per_epoch;
        println!(
            "\n— streaming epoch engine (6 epochs x ~{n_per_epoch} users, 4 collectors, \
             Zipf-ramp drift, per-epoch checkpoints, 1 crash + recovery) —\n"
        );
        let p = SketchParams::optimal(n_total as u64, bits, eps, beta);
        stream_records.push(stream_run(
            || ExpanderSketch::new(p.clone(), 21),
            "expander_sketch",
            1u64 << bits,
            n_per_epoch,
            22,
        ));
        let scan_domain = 1u64 << 16;
        let sp = hh_core::baselines::ScanParams::new(n_total as u64, scan_domain, eps, beta);
        stream_records.push(stream_run(
            || hh_core::baselines::ScanHeavyHitters::new(sp.clone(), 23),
            "scan",
            scan_domain,
            n_per_epoch,
            24,
        ));
    }

    let mut ingest_records = Vec::new();
    if ingest_bench {
        let n = if quick { 1usize << 14 } else { 1 << 20 };
        let chunk = 1usize << 13;
        println!(
            "\n— ingest throughput at n = {n}: fused (respond_encode_batch + absorb_wire) \
             vs legacy (respond → encode → decode → absorb), single-threaded —\n"
        );
        let data = Workload::zipf(1u64 << bits, 1.2).generate(n, 131);

        let p = SketchParams::optimal(n as u64, bits, eps, beta);
        let s = ExpanderSketch::new(p, 31);
        ingest_records.extend(ingest_throughput(
            &HhStream(&s),
            "expander_sketch",
            &data,
            chunk,
            0x1D1,
        ));

        let scan_domain = 1u64 << 16;
        let scan_data: Vec<u64> = data.iter().map(|&x| x & (scan_domain - 1)).collect();
        let sp = ScanParams::new(n as u64, scan_domain, eps, beta);
        let s = ScanHeavyHitters::new(sp, 32);
        ingest_records.extend(ingest_throughput(
            &HhStream(&s),
            "scan",
            &scan_data,
            chunk,
            0x1D2,
        ));

        // KRR's per-user work is one GRR draw and a one-byte frame, so a
        // single pass over n finishes in tens of milliseconds — too
        // short to resolve a few-percent delta. Give it 4x the
        // population so the row measures the path, not the timer.
        let krr_data: Vec<u64> = data.iter().cycle().take(4 * n).map(|&x| x % 64).collect();
        let o = KrrOracle::new(64, eps);
        ingest_records.extend(ingest_throughput(
            &OracleStream(&o),
            "krr",
            &krr_data,
            chunk,
            0x1D3,
        ));

        // RAPPOR's per-user cost is Θ(|X|) — the fused path's win here is
        // skipping one dense bitvector allocation per user. Smaller n
        // keeps the row affordable.
        let rappor_n = n / 16;
        let rappor_data: Vec<u64> = data[..rappor_n].iter().map(|&x| x % 256).collect();
        let o = Rappor::new(256, eps);
        ingest_records.extend(ingest_throughput(
            &OracleStream(&o),
            "rappor",
            &rappor_data,
            chunk,
            0x1D4,
        ));
    }

    let mut runs = Vec::new();
    let mut scaling = Vec::new();
    if emit_json {
        let n = if quick { 100_000usize } else { 1_000_000 };
        println!("\n— serial vs batched pipeline at n = {n} (planted workload) —\n");
        let workload = Workload::planted(1u64 << bits, vec![(0xBEEF, 0.3)]);
        let data = workload.generate(n, 97);

        let p = SketchParams::optimal(n as u64, bits, eps, beta);
        let (json, sketch_serial) = compare_at_scale(
            || ExpanderSketch::new(p.clone(), 11),
            "expander_sketch",
            &data,
            12,
        );
        runs.push(json);

        let scan_domain = 1u64 << 16;
        let scan_data: Vec<u64> = data.iter().map(|&x| x & (scan_domain - 1)).collect();
        let sp = hh_core::baselines::ScanParams::new(n as u64, scan_domain, eps, beta);
        let (json, scan_serial) = compare_at_scale(
            || hh_core::baselines::ScanHeavyHitters::new(sp.clone(), 13),
            "scan",
            &scan_data,
            14,
        );
        runs.push(json);

        println!("\n— collector-count scaling (wire round-trip, tree merge) —\n");
        scaling.extend(merge_scaling(
            || ExpanderSketch::new(p.clone(), 11),
            "expander_sketch",
            &data,
            12,
            &sketch_serial,
        ));
        scaling.extend(merge_scaling(
            || hh_core::baselines::ScanHeavyHitters::new(sp.clone(), 13),
            "scan",
            &scan_data,
            14,
            &scan_serial,
        ));

        let doc = JsonObject::new()
            .str("experiment", "table1_resources_serial_vs_batched")
            .int("n", n as u64)
            .int("hardware_threads", rayon::current_num_threads() as u64)
            .str("workload", "planted(0.3 heavy over 2^20 / 2^16 domains)")
            .raw("runs", json_array(runs))
            .raw("merge_scaling", json_array(scaling))
            .raw("stream", json_array(stream_records))
            .raw("ingest", json_array(ingest_records))
            .build();
        std::fs::write(&json_out, format!("{doc}\n"))
            .unwrap_or_else(|e| panic!("write {json_out}: {e}"));
        println!("\nwrote {json_out}");
    } else if ingest_bench {
        // Without --json the tracked baseline document would be written
        // with its comparison arrays empty — never clobber it; the
        // measurements (and their bit-for-bit shard checks) above are
        // the smoke value.
        println!("\n(pass --json / --json-out to record the ingest rows into the JSON baseline)");
    }
}
