//! Experiment F3.6 — the unique-list-recoverable code (Theorem 3.6 /
//! Appendix B).
//!
//! Contract: every message present in at least `(1−α)M` lists is
//! recovered, while adversarial junk entries never produce spurious
//! codewords. Sweeps the corruption rate and the number of simultaneous
//! messages, reporting recovery rates and output list sizes.

use hh_bench::{banner, fmt, Table};
use hh_codes::ulrc::{UlrcParams, UniqueListCode};
use hh_math::rng::{derive_seed, seeded_rng};
use rand::Rng;

/// Build lists for `xs` with `corrupt` coordinates removed per message
/// (plus unavoidable y-collision drops); returns (lists, per-message drop
/// counts).
fn build_lists(
    c: &UniqueListCode,
    xs: &[u64],
    corrupt: usize,
    junk_per_list: usize,
    rng: &mut impl Rng,
) -> (Vec<Vec<(u64, u64)>>, Vec<usize>) {
    let m_coords = c.params().num_coords;
    let mut drops: Vec<std::collections::HashSet<usize>> = xs
        .iter()
        .map(|_| {
            let mut s = std::collections::HashSet::new();
            while s.len() < corrupt {
                s.insert(rng.gen_range(0..m_coords));
            }
            s
        })
        .collect();
    let mut lists: Vec<Vec<(u64, u64)>> = vec![Vec::new(); m_coords];
    for (m, list) in lists.iter_mut().enumerate() {
        let mut used: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (i, &x) in xs.iter().enumerate() {
            if drops[i].contains(&m) {
                continue;
            }
            let y = c.coord_hash(m, x);
            if let Some(&other) = used.get(&y) {
                list.retain(|&(yy, _)| yy != y);
                drops[other].insert(m);
                drops[i].insert(m);
                continue;
            }
            used.insert(y, i);
            list.push((y, c.enc_tilde(x, m)));
        }
        // Adversarial junk on fresh y values.
        let mut added = 0;
        while added < junk_per_list {
            let y = rng.gen_range(0..c.params().y_range);
            if list.iter().all(|&(yy, _)| yy != y) {
                list.push((y, rng.gen_range(0..c.params().z_cardinality())));
                added += 1;
            } else if list.len() >= c.params().y_range as usize {
                break;
            }
        }
    }
    (lists, drops.iter().map(|d| d.len()).collect())
}

fn main() {
    banner(
        "F3.6 — unique-list-recoverable code (Theorem 3.6 / Appendix B)",
        "recover all x present in >= (1-alpha)M lists; junk never decodes",
    );
    let mut params = UlrcParams::for_domain_bits(24);
    params.y_range = 64; // multi-message sweep needs collision room
    let code = UniqueListCode::new(params, 4242);
    let m_coords = code.params().num_coords;
    let alpha = code.params().alpha;
    println!(
        "\nM = {m_coords}, Y = {}, d = {}, GF(2^{}), alpha = {alpha}\n",
        code.params().y_range,
        code.params().degree,
        code.params().gf_bits
    );

    println!("— recovery vs corrupted coordinates (8 messages, 20 trials each) —\n");
    let mut t = Table::new(&[
        "corrupt/M",
        "in-contract msgs",
        "recovered",
        "rate",
        "spurious",
    ]);
    for corrupt in 0..=(m_coords / 2) {
        let mut rng = seeded_rng(derive_seed(1, corrupt as u64));
        let (mut contract, mut recovered, mut spurious) = (0u64, 0u64, 0u64);
        for _ in 0..20 {
            let xs: Vec<u64> = (0..8).map(|_| rng.gen_range(0..1u64 << 24)).collect();
            let (lists, drops) = build_lists(&code, &xs, corrupt, 4, &mut rng);
            let got = code.decode(&lists);
            let budget = (alpha * m_coords as f64).floor() as usize;
            for (i, &x) in xs.iter().enumerate() {
                if drops[i] <= budget {
                    contract += 1;
                    if got.contains(&x) {
                        recovered += 1;
                    }
                }
            }
            spurious += got.iter().filter(|g| !xs.contains(g)).count() as u64;
        }
        t.row(&[
            format!("{corrupt}/{m_coords}"),
            contract.to_string(),
            recovered.to_string(),
            fmt(recovered as f64 / contract.max(1) as f64),
            spurious.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nexpected: rate ~1 well inside the alpha*M = {:.0} budget, degrading only at",
        alpha * m_coords as f64
    );
    println!("the boundary (a message at exactly the budget can lose further cluster");
    println!("vertices to degree pruning); spurious decodes = 0 at every corruption level.");

    println!("\n— list-size scaling (Definition 3.5's L <= C*ell) —\n");
    let mut t = Table::new(&["messages", "recovered", "output size L"]);
    for &count in &[1usize, 4, 8, 16] {
        let mut rng = seeded_rng(derive_seed(2, count as u64));
        let xs: Vec<u64> = (0..count).map(|_| rng.gen_range(0..1u64 << 24)).collect();
        let (lists, _) = build_lists(&code, &xs, 0, 2, &mut rng);
        let got = code.decode(&lists);
        t.row(&[
            count.to_string(),
            got.iter().filter(|g| xs.contains(g)).count().to_string(),
            got.len().to_string(),
        ]);
    }
    t.print();
}
