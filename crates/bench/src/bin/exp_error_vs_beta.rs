//! Experiment T1.err — the headline claim (Table 1, "Worst-case error").
//!
//! `PrivateExpanderSketch`'s detection threshold is
//! `Θ((1/ε)√(n·log(|X|/β)))` while prior work (Theorem 3.3 / Bitstogram)
//! pays an extra `√(log(1/β))`. This experiment prints both protocols'
//! calibrated thresholds across β (the deterministic quantity the
//! theorems bound) and then *measures* recovery at a workload sized
//! between the two thresholds — where our protocol must succeed and the
//! baseline must fail.

use hh_bench::{banner, fmt, Table};
use hh_core::baselines::{Bitstogram, BitstogramParams};
use hh_core::{ExpanderSketch, SketchParams};
use hh_math::rng::derive_seed;
use hh_sim::{metrics, run_heavy_hitter, Workload};

fn main() {
    banner(
        "T1.err / Theorem 3.13 vs Theorem 3.3",
        "error optimal in beta: ours ~ sqrt(n log(|X|/beta)), prior work x sqrt(log(1/beta))",
    );
    let n = 1u64 << 18;
    let bits = 24u32;
    let eps = 4.0;

    println!("\ncalibrated detection thresholds, n = 2^18, |X| = 2^{bits}, eps = {eps}:\n");
    let mut t = Table::new(&[
        "beta",
        "ours",
        "bitstogram",
        "ratio",
        "ours/sqrt(n ln(X/b))",
        "theirs/extra sqrt(ln 1/b)",
    ]);
    for &beta in &[0.25f64, 0.1, 1e-2, 1e-4, 1e-6, 1e-9, 1e-12] {
        let ours = SketchParams::optimal(n, bits, eps, beta).detection_threshold();
        let theirs = BitstogramParams::optimal(n, bits, eps, beta).detection_threshold();
        let shape_ours = ours
            / ((n as f64 * (f64::from(bits) * std::f64::consts::LN_2 + (1.0 / beta).ln())).sqrt()
                / eps);
        let shape_theirs = theirs / (ours * (1.0 / beta).ln().max(1.0).sqrt());
        t.row(&[
            format!("{beta:.0e}"),
            fmt(ours),
            fmt(theirs),
            fmt(theirs / ours),
            fmt(shape_ours),
            fmt(shape_theirs),
        ]);
    }
    t.print();
    println!("\n(constant 4th/5th columns = the claimed functional forms hold)");

    // Measured recovery between the thresholds.
    println!("\nmeasured recovery at planted frequency between the two thresholds:");
    let beta = 0.05;
    let ours_params = SketchParams::optimal(n, bits, eps, beta);
    let theirs_params = BitstogramParams::optimal(n, bits, eps, beta);
    let d_ours = ours_params.detection_threshold();
    let d_theirs = theirs_params.detection_threshold();
    // Between the operating points: above our detection threshold but
    // below the baseline's keep level (half its threshold).
    let planted = (1.25 * d_ours)
        .min(0.85 * d_theirs / 2.0)
        .min(0.45 * n as f64);
    assert!(
        planted > d_ours,
        "no gap to demonstrate at these parameters"
    );
    println!(
        "  ours Δ = {:.0}, theirs Δ = {:.0} (keep level {:.0}), planted count ≈ {:.0}\n",
        d_ours,
        d_theirs,
        d_theirs / 2.0,
        planted
    );
    let heavy = 0xF00Du64;
    let workload = Workload::planted(1u64 << bits, vec![(heavy, planted / n as f64)]);
    let trials = 3u64;
    let mut t = Table::new(&["protocol", "trial", "recovered", "max err", "list len"]);
    for trial in 0..trials {
        let data = workload.generate(n as usize, derive_seed(9000, trial));
        let run = {
            let mut s = ExpanderSketch::new(ours_params.clone(), derive_seed(1, trial));
            run_heavy_hitter(&mut s, &data, derive_seed(2, trial))
        };
        let sum = metrics::summarize(&data, &run.estimates, planted);
        t.row(&[
            "ours".into(),
            trial.to_string(),
            format!("{}", run.estimates.iter().any(|&(x, _)| x == heavy)),
            fmt(sum.max_error),
            sum.list_len.to_string(),
        ]);
        let run = {
            let mut s = Bitstogram::new(theirs_params.clone(), derive_seed(3, trial));
            run_heavy_hitter(&mut s, &data, derive_seed(4, trial))
        };
        let sum = metrics::summarize(&data, &run.estimates, planted);
        t.row(&[
            "bitstogram".into(),
            trial.to_string(),
            format!("{}", run.estimates.iter().any(|&(x, _)| x == heavy)),
            fmt(sum.max_error),
            sum.list_len.to_string(),
        ]);
    }
    t.print();
    println!("\nexpected shape: ours recovers (planted > our Δ) with accurate estimates;");
    println!("bitstogram cannot certify the element (planted sits below its keep level,");
    println!("which its sqrt(log(1/beta))-inflated threshold forces) — the headline gap.");
}
