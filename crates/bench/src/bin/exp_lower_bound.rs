//! Experiments F7.2 / FA.5 — the lower bound via anti-concentration.
//!
//! 1. Theorem A.5 (exact): for heterogeneous Bernoulli sums, even the
//!    best interval of width `c·sqrt(n·ln(1/β))` is escaped with
//!    probability ≥ β.
//! 2. Theorem 7.2 (measured): the duplicated-bits construction run
//!    against the real ε-RR counting protocol — the measured error tail
//!    hugs the `Ω((1/ε)sqrt(n ln(1/β)))` envelope, and the protocol's own
//!    upper bound sandwiches it from above.
//! 3. Theorem 7.4 step (exact): duplicated secrets stay near-uniform.

use hh_bench::{banner, fmt, Table};
use hh_lower::anticoncentration::{min_escape_probability, poisson_binomial_pmf};
use hh_lower::experiment::LowerBoundExperiment;
use hh_lower::mutual_info::{
    duplicated_bit_conditional_entropy, duplicated_bit_information, good_index_probability,
};
use hh_math::rng::seeded_rng;
use rand::Rng;

fn main() {
    banner(
        "F7.2 / FA.5 — lower bound via anti-concentration (Theorem 7.2, A.5)",
        "every LDP frequency protocol errs Omega((1/eps) sqrt(n log(1/beta)))",
    );

    println!("\n— FA.5: exact anti-concentration of heterogeneous Bernoulli sums —\n");
    let n = 4096usize;
    let mut rng = seeded_rng(11);
    let ps: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..0.9)).collect();
    let pmf = poisson_binomial_pmf(&ps);
    let mut t = Table::new(&[
        "beta",
        "interval width c*sqrt(n ln 1/b), c=1/4",
        "exact best-interval escape",
        ">= beta?",
    ]);
    for &beta in &[0.25f64, 0.1, 0.01, 1e-3, 1e-4] {
        let width = (0.25 * (n as f64 * (1.0 / beta).ln()).sqrt()) as usize;
        let (_, escape) = min_escape_probability(&pmf, width);
        t.row(&[
            format!("{beta:.0e}"),
            width.to_string(),
            fmt(escape),
            (escape >= beta).to_string(),
        ]);
    }
    t.print();

    println!("\n— F7.2: duplicated-bits experiment against eps-RR counting —\n");
    let n = 1u64 << 14;
    for &eps in &[0.25f64, 0.5, 1.0] {
        let e = LowerBoundExperiment::new(n, eps, 10.0);
        println!(
            "eps = {eps}: m = {} secrets x {} copies",
            e.num_secrets(),
            e.duplication()
        );
        let mut t = Table::new(&[
            "beta",
            "LB envelope (c=0.2)",
            "measured tail",
            "tail > beta?",
            "protocol upper",
        ]);
        for &beta in &[0.5f64, 0.25, 0.1, 0.05] {
            let t_env = e.envelope(beta, 0.2);
            let tail = e.error_tail(t_env, 600, 777);
            t.row(&[
                fmt(beta),
                fmt(t_env),
                fmt(tail),
                (tail > beta).to_string(),
                fmt(e.protocol_upper(beta)),
            ]);
        }
        t.print();
        println!();
    }
    println!("expected: measured tail exceeds beta at the envelope (the lower bound");
    println!("bites) and vanishes at the protocol's Hoeffding upper envelope — the");
    println!("error of ANY eps-LDP counter is pinched within constants of sqrt(n ln(1/b))/eps.");

    println!("\n— Theorem 7.4 step: duplicated secrets stay near-uniform (exact) —\n");
    let mut t = Table::new(&[
        "eps",
        "copies d",
        "I(X; transcript) bits",
        "H(X | transcript)",
        "good-index mass",
    ]);
    for &eps in &[0.1f64, 0.25, 0.5] {
        let d = hh_lower::mutual_info::duplication_factor(10.0, eps);
        t.row(&[
            fmt(eps),
            d.to_string(),
            fmt(duplicated_bit_information(d, eps)),
            fmt(duplicated_bit_conditional_entropy(d, eps)),
            fmt(good_index_probability(d, eps)),
        ]);
    }
    t.print();
    println!("\n(H >= 0.9 and good mass >= 2/5: the constants the proof of Thm 7.2 needs)");
}
