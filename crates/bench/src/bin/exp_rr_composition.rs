//! Experiment F5.1 — composition for randomized response (Theorem 5.1).
//!
//! `M̃` is pure `ε̃ = 6ε√(k ln(1/β))`-DP yet equals the k-fold ε-RR
//! composition `M` outside an event of probability β. Prints, across k:
//! the basic-composition level kε, ε̃, the *audited exact* pure-DP level
//! of `M̃`, and the exact TV distance to `M` — everything computed from
//! closed-form densities.

use hh_bench::{banner, fmt, Table};
use hh_freq::traits::{LocalRandomizer, RandomizerInput};
use hh_math::info::tv_distance;
use hh_structure::rr_compose::ApproxComposedRr;

fn main() {
    banner(
        "F5.1 — pure-LDP composition for randomized response (Theorem 5.1)",
        "M~ is 6 eps sqrt(k ln 1/beta)-pure-DP and TV(M~, M) <= beta",
    );
    let eps = 0.04;
    let beta = 0.05;
    println!("\nper-bit eps = {eps}, beta = {beta}:\n");
    let mut t = Table::new(&[
        "k",
        "basic k*eps",
        "eps~ (Thm 5.1)",
        "audited eps(M~)",
        "exact TV(M~, M)",
        "escape Pr",
    ]);
    for &k in &[16u32, 25, 36, 49] {
        let mt = ApproxComposedRr::new(k, eps, beta);
        // Audited epsilon over distance-extremal inputs (density depends
        // only on Hamming distances).
        let x0 = 0u64;
        let x1 = (1u64 << k) - 1;
        let mut audited: f64 = 0.0;
        for d in 0..=k {
            let y = (1u64 << d) - 1;
            let l0 = mt.log_density(RandomizerInput::Value(x0), y);
            let l1 = mt.log_density(RandomizerInput::Value(x1), y);
            audited = audited.max((l0 - l1).abs());
        }
        let tv = if k <= 25 {
            let p = mt.distribution(RandomizerInput::Value(0x155 & ((1 << k) - 1)));
            let q = mt
                .inner()
                .distribution(RandomizerInput::Value(0x155 & ((1 << k) - 1)));
            tv_distance(&p, &q)
        } else {
            f64::NAN
        };
        t.row(&[
            k.to_string(),
            fmt(f64::from(k) * eps),
            fmt(mt.epsilon_tilde()),
            fmt(audited),
            if tv.is_nan() { "-".into() } else { fmt(tv) },
            fmt(mt.escape_probability()),
        ]);
    }
    t.print();
    println!("\nexpected: audited <= eps~; TV = escape <= beta; for k >> 36·ln(1/beta)");
    println!("the pure level eps~ undercuts basic composition k*eps — approximate-DP");
    println!("composition rates, from a pure mechanism (the Section 5 phenomenon).");

    println!("\n— the sqrt(k) separation at scale (formula level) —\n");
    let mut t = Table::new(&["k", "basic k*eps", "eps~", "ratio"]);
    for &k in &[256u32, 1024, 4096, 16384] {
        let eps_tilde = 6.0 * eps * (f64::from(k) * (1.0f64 / beta).ln()).sqrt();
        t.row(&[
            k.to_string(),
            fmt(f64::from(k) * eps),
            fmt(eps_tilde),
            fmt(f64::from(k) * eps / eps_tilde),
        ]);
    }
    t.print();
}
