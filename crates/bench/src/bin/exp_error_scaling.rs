//! Experiments F3.13a/b — Theorem 3.13's error scaling in n, ε and |X|.
//!
//! Prints the protocol's calibrated detection threshold and *measured*
//! estimation error across each parameter sweep, with the fitted log-log
//! growth exponents next to the theory (1/2 in n, −1 in ε, and the
//! sqrt-log growth in |X|).

use hh_bench::{banner, fmt, Table};
use hh_core::{ExpanderSketch, SketchParams};
use hh_math::rng::derive_seed;
use hh_math::stats::loglog_slope;
use hh_sim::{run_heavy_hitter, Workload};

fn measured_error(params: &SketchParams, seed: u64) -> (f64, bool) {
    let n = params.n as usize;
    let heavy = 0xCAFEu64 & ((1u64 << params.domain_bits) - 1);
    let frac = (1.5 * params.detection_threshold() / n as f64).min(0.45);
    let data = Workload::planted(1u64 << params.domain_bits, vec![(heavy, frac)]).generate(n, seed);
    let mut server = ExpanderSketch::new(params.clone(), derive_seed(seed, 1));
    let run = run_heavy_hitter(&mut server, &data, derive_seed(seed, 2));
    let truth = data.iter().filter(|&&x| x == heavy).count() as f64;
    let found = run.estimates.iter().find(|&&(x, _)| x == heavy);
    match found {
        Some(&(_, est)) => ((est - truth).abs(), true),
        None => (f64::NAN, false),
    }
}

fn main() {
    banner(
        "F3.13a/b — Theorem 3.13",
        "Delta = O((1/eps) sqrt(n log(|X|/beta))): growth 1/2 in n, -1 in eps, sqrt-log in |X|",
    );
    let beta = 0.1;

    // Sweep n.
    println!("\n— sweep n (|X| = 2^16, eps = 4) —\n");
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut t = Table::new(&[
        "n",
        "Delta",
        "Delta/sqrt(n)",
        "measured |est-true|",
        "recovered",
    ]);
    for &logn in &[15u32, 16, 17, 18] {
        let n = 1u64 << logn;
        let p = SketchParams::optimal(n, 16, 4.0, beta);
        let d = p.detection_threshold();
        let (err, ok) = measured_error(&p, 1000 + u64::from(logn));
        xs.push(n as f64);
        ys.push(d);
        t.row(&[
            format!("2^{logn}"),
            fmt(d),
            fmt(d / (n as f64).sqrt()),
            fmt(err),
            ok.to_string(),
        ]);
    }
    t.print();
    println!(
        "log-log slope of Delta vs n: {:.3} (theory: 0.5)",
        loglog_slope(&xs, &ys)
    );

    // Sweep eps.
    println!("\n— sweep eps (n = 2^17, |X| = 2^16) —\n");
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut t = Table::new(&[
        "eps",
        "Delta",
        "Delta*eps",
        "measured |est-true|",
        "recovered",
    ]);
    for &eps in &[2.0f64, 3.0, 4.0, 6.0] {
        let p = SketchParams::optimal(1 << 17, 16, eps, beta);
        let d = p.detection_threshold();
        let (err, ok) = measured_error(&p, 2000 + eps as u64);
        xs.push(eps);
        ys.push(d);
        t.row(&[fmt(eps), fmt(d), fmt(d * eps), fmt(err), ok.to_string()]);
    }
    t.print();
    println!(
        "log-log slope of Delta vs eps: {:.3} (theory: ~-1 for small eps; flattens as c_eps -> 1)",
        loglog_slope(&xs, &ys)
    );

    // Sweep |X|.
    println!("\n— sweep |X| (n = 2^17, eps = 4) —\n");
    let mut t = Table::new(&[
        "|X|",
        "M",
        "Delta",
        "Delta/sqrt(n log X)",
        "measured",
        "recovered",
    ]);
    for &bits in &[16u32, 24, 32, 40] {
        let p = SketchParams::optimal(1 << 17, bits, 4.0, beta);
        let d = p.detection_threshold();
        let (err, ok) = measured_error(&p, 3000 + u64::from(bits));
        let shape = d / ((1u64 << 17) as f64 * f64::from(bits)).sqrt();
        t.row(&[
            format!("2^{bits}"),
            p.num_coords.to_string(),
            fmt(d),
            fmt(shape),
            fmt(err),
            ok.to_string(),
        ]);
    }
    t.print();
    println!("\n(4th column roughly constant = sqrt(log|X|) growth as claimed)");
}
