//! Experiment F4.5 — max-information of LDP protocols (Theorem 4.5).
//!
//! `I^β_∞(A, n) <= nε²/2 + ε√(2n ln(1/β))` for **arbitrary** input
//! distributions. Computes the exact β-approximate max-information of
//! randomized-response protocols on small n for maximally correlated and
//! product input distributions, against the bound.

use hh_bench::{banner, fmt, Table};
use hh_freq::randomizers::BinaryRandomizedResponse;
use hh_structure::max_info::{exact_joint, exact_max_information, max_information_bound};

fn correlated(n: usize) -> Vec<(f64, Vec<u64>)> {
    vec![(0.5, vec![0; n]), (0.5, vec![1; n])]
}

fn product(n: usize) -> Vec<(f64, Vec<u64>)> {
    let count = 1usize << n;
    (0..count)
        .map(|mask| {
            (
                1.0 / count as f64,
                (0..n).map(|i| (mask >> i) as u64 & 1).collect(),
            )
        })
        .collect()
}

fn main() {
    banner(
        "F4.5 — max-information (Theorem 4.5)",
        "I^beta <= n eps^2/2 + eps sqrt(2n ln(1/beta)), even for non-product inputs",
    );
    let eps = 0.4;
    println!("\neps = {eps}; exact computation over all transcripts:\n");
    let mut t = Table::new(&[
        "n",
        "beta",
        "exact I (correlated D)",
        "exact I (product D)",
        "Thm 4.5 bound",
    ]);
    for &n in &[2usize, 4, 6, 8] {
        for &beta in &[0.01f64, 0.1] {
            let rr = BinaryRandomizedResponse::new(eps);
            let ic = exact_max_information(&exact_joint(&rr, &correlated(n)), beta);
            let ip = if n <= 6 {
                exact_max_information(&exact_joint(&rr, &product(n)), beta)
            } else {
                f64::NAN
            };
            let bound = max_information_bound(n as u64, eps, beta);
            t.row(&[
                n.to_string(),
                fmt(beta),
                fmt(ic),
                if ip.is_nan() { "-".into() } else { fmt(ip) },
                fmt(bound),
            ]);
        }
    }
    t.print();
    println!("\nexpected: every exact value below the bound; the correlated");
    println!("distribution (which breaks the central-model analyses the paper");
    println!("cites) is capped by its one-bit secret, far under the bound.");
}
