//! Experiment F3.7 — the Hashtogram frequency oracle (Theorems 3.7/3.8).
//!
//! Per-query error `O((1/ε)·sqrt(n·log(1/β)))` with `O~(√n)` server
//! memory: measured max error over a query set across n, ε and the
//! direct/hashed variants, against the calibrated bound.

use hh_bench::{banner, fmt, Table};
use hh_freq::hashtogram::{Hashtogram, HashtogramParams};
use hh_math::rng::derive_seed;
use hh_math::stats::loglog_slope;
use hh_sim::{run_oracle, run_oracle_batched, BatchPlan, Workload};

/// Whether `--serial` was passed (re-derived from argv on each call):
/// routes measurement through the serial reference driver instead of the
/// batched pipeline (identical output either way; see the batch
/// equivalence tests).
fn serial_mode() -> bool {
    std::env::args().any(|a| a == "--serial")
}

fn measure(params: HashtogramParams, n: usize, seed: u64) -> (f64, usize) {
    let domain = params.domain;
    let heavy = 7u64.min(domain - 1);
    let workload = Workload::planted(domain, vec![(heavy, 0.2)]);
    let data = workload.generate(n, seed);
    let queries: Vec<u64> = (0..32).map(|i| (i * 37) % domain).collect();
    let mut oracle = Hashtogram::new(params, derive_seed(seed, 1));
    let run = if serial_mode() {
        run_oracle(&mut oracle, &data, &queries, derive_seed(seed, 2))
    } else {
        run_oracle_batched(
            &mut oracle,
            &data,
            &queries,
            derive_seed(seed, 2),
            &BatchPlan::default(),
        )
    };
    let mut max_err = 0.0f64;
    for (&q, &a) in queries.iter().zip(&run.answers) {
        let truth = data.iter().filter(|&&x| x == q).count() as f64;
        max_err = max_err.max((a - truth).abs());
    }
    (max_err, run.memory_bytes)
}

fn main() {
    banner(
        "F3.7 — Hashtogram (Theorems 3.7/3.8)",
        "per-query error O((1/eps) sqrt(n log(1/beta))); memory O~(sqrt n)",
    );
    println!(
        "driver: {}",
        if serial_mode() {
            "serial (--serial)"
        } else {
            "batched parallel pipeline (default)"
        }
    );

    println!("\n— error and memory vs n (hashed variant, |X| = 2^20, eps = 1) —\n");
    let mut t = Table::new(&[
        "n",
        "measured max err",
        "bound",
        "memory KiB",
        "mem/sqrt(n)",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &logn in &[12u32, 14, 16, 18] {
        let n = 1usize << logn;
        let params = HashtogramParams::hashed(n as u64, 1 << 20, 1.0, 0.05);
        let bound = params.error_bound(n as u64, 0.05 / 32.0);
        let (err, mem) = measure(params, n, 100 + u64::from(logn));
        xs.push(n as f64);
        ys.push(err.max(1.0));
        t.row(&[
            format!("2^{logn}"),
            fmt(err),
            fmt(bound),
            (mem / 1024).to_string(),
            fmt(mem as f64 / (n as f64).sqrt()),
        ]);
    }
    t.print();
    println!(
        "log-log slope of measured error vs n: {:.3} (theory: 0.5)",
        loglog_slope(&xs, &ys)
    );

    println!("\n— error vs eps (n = 2^16) —\n");
    let mut t = Table::new(&["eps", "measured max err", "bound", "err*eps"]);
    for &eps in &[0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let n = 1usize << 16;
        let params = HashtogramParams::hashed(n as u64, 1 << 20, eps, 0.05);
        let bound = params.error_bound(n as u64, 0.05 / 32.0);
        let (err, _) = measure(params, n, 200 + (eps * 4.0) as u64);
        t.row(&[fmt(eps), fmt(err), fmt(bound), fmt(err * eps)]);
    }
    t.print();

    println!("\n— direct (Thm 3.8) vs hashed (Thm 3.7) on a small domain —\n");
    let n = 1usize << 16;
    let mut t = Table::new(&["variant", "measured max err", "bound", "memory KiB"]);
    for (name, params) in [
        ("direct", HashtogramParams::direct(256, 1.0, 0.05)),
        ("hashed", HashtogramParams::hashed(n as u64, 256, 1.0, 0.05)),
    ] {
        let bound = params.error_bound(n as u64, 0.05 / 32.0);
        let (err, mem) = measure(params, n, 300);
        t.row(&[name.into(), fmt(err), fmt(bound), (mem / 1024).to_string()]);
    }
    t.print();
    println!("\n(direct variant drops the bucket-collision noise — the min(n,|X|) factor)");
}
