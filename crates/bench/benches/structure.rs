//! Criterion bench for the Section 4–6 machinery: GenProt client and
//! certificates, composed-RR sampling, exact grouposition tails.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_freq::randomizers::GeneralizedRandomizedResponse;
use hh_freq::traits::{LocalRandomizer, RandomizerInput};
use hh_math::rng::seeded_rng;
use hh_structure::grouposition::rr_group_epsilon_exact;
use hh_structure::rr_compose::ApproxComposedRr;
use hh_structure::GenProt;

fn bench_genprot(c: &mut Criterion) {
    let mut group = c.benchmark_group("structure/genprot");
    let base = GeneralizedRandomizedResponse::new(8, 0.25);
    for &t in &[16usize, 64] {
        let gp = GenProt::new(base.clone(), 0.25, t, 1);
        let mut rng = seeded_rng(2);
        group.bench_with_input(BenchmarkId::new("respond", t), &t, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                gp.respond(i, i % 8, &mut rng)
            });
        });
        let ys = gp.public_samples(0);
        group.bench_with_input(BenchmarkId::new("exact_distribution", t), &t, |b, _| {
            b.iter(|| gp.report_distribution(3, &ys));
        });
    }
    group.finish();
}

fn bench_rr_compose(c: &mut Criterion) {
    let mut group = c.benchmark_group("structure/rr_compose");
    let mt = ApproxComposedRr::new(32, 0.05, 0.05);
    let mut rng = seeded_rng(3);
    group.bench_function("sample_k32", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x += 1;
            mt.sample(RandomizerInput::Value(x & 0xFFFF_FFFF), &mut rng)
        });
    });
    group.bench_function("log_density_k32", |b| {
        let mut y = 0u64;
        b.iter(|| {
            y += 12345;
            mt.log_density(RandomizerInput::Value(7), y & 0xFFFF_FFFF)
        });
    });
    group.finish();
}

fn bench_grouposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("structure/grouposition");
    for &k in &[256u64, 4096] {
        group.bench_with_input(BenchmarkId::new("exact_rr_epsilon", k), &k, |b, _| {
            b.iter(|| rr_group_epsilon_exact(k, 0.1, 1e-4));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_genprot, bench_rr_compose, bench_grouposition);
criterion_main!(benches);
