//! Criterion bench for Table 1's time rows: client (user) work and
//! server aggregation for PrivateExpanderSketch and baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_core::baselines::{Bitstogram, BitstogramParams};
use hh_core::traits::HeavyHitterProtocol;
use hh_core::{ExpanderSketch, SketchParams};
use hh_math::rng::seeded_rng;
use hh_sim::{run_heavy_hitter, run_heavy_hitter_batched, BatchPlan, Workload};

fn bench_client(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/user_time");
    for &logn in &[14u32, 16] {
        let n = 1u64 << logn;
        let sketch = ExpanderSketch::new(SketchParams::optimal(n, 24, 2.0, 0.1), 1);
        let bits = Bitstogram::new(BitstogramParams::optimal(n, 24, 2.0, 0.1), 2);
        let mut rng = seeded_rng(3);
        group.bench_with_input(BenchmarkId::new("expander_sketch", n), &n, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % n;
                sketch.respond(i, 0xBEEF, &mut rng)
            });
        });
        let mut rng2 = seeded_rng(4);
        group.bench_with_input(BenchmarkId::new("bitstogram", n), &n, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % n;
                bits.respond(i, 0xBEEF, &mut rng2)
            });
        });
    }
    group.finish();
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/server_full_run");
    group.sample_size(10);
    let n = 1u64 << 14;
    let data = Workload::planted(1 << 24, vec![(0xBEEF, 0.4)]).generate(n as usize, 5);
    // Full runs through both drivers — the serial reference and the
    // batched parallel pipeline (identical output; see batch_equivalence).
    group.bench_function("expander_sketch/serial", |b| {
        b.iter(|| {
            let mut server = ExpanderSketch::new(SketchParams::optimal(n, 24, 2.0, 0.1), 6);
            run_heavy_hitter(&mut server, &data, 7).estimates
        });
    });
    group.bench_function("expander_sketch/batched", |b| {
        b.iter(|| {
            let mut server = ExpanderSketch::new(SketchParams::optimal(n, 24, 2.0, 0.1), 6);
            run_heavy_hitter_batched(&mut server, &data, 7, &BatchPlan::default()).estimates
        });
    });
    group.bench_function("bitstogram/serial", |b| {
        b.iter(|| {
            let mut server = Bitstogram::new(BitstogramParams::optimal(n, 24, 2.0, 0.1), 8);
            run_heavy_hitter(&mut server, &data, 9).estimates
        });
    });
    group.bench_function("bitstogram/batched", |b| {
        b.iter(|| {
            let mut server = Bitstogram::new(BitstogramParams::optimal(n, 24, 2.0, 0.1), 8);
            run_heavy_hitter_batched(&mut server, &data, 9, &BatchPlan::default()).estimates
        });
    });
    group.finish();
}

criterion_group!(benches, bench_client, bench_server);
criterion_main!(benches);
