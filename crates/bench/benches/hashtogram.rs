//! Criterion bench for the Hashtogram oracle's phases (Theorem 3.7's
//! O~(1) user / O~(n) server / O~(1) query costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_freq::hashtogram::{Hashtogram, HashtogramParams};
use hh_freq::traits::FrequencyOracle;
use hh_math::rng::seeded_rng;

fn bench_respond(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashtogram/respond");
    for &logn in &[14u32, 18] {
        let n = 1u64 << logn;
        let oracle = Hashtogram::new(HashtogramParams::hashed(n, 1 << 32, 1.0, 0.05), 1);
        let mut rng = seeded_rng(2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                oracle.respond(i, i % (1 << 32), &mut rng)
            });
        });
    }
    group.finish();
}

fn bench_finalize_and_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashtogram/server");
    group.sample_size(20);
    for &logn in &[14u32, 16] {
        let n = 1u64 << logn;
        // Pre-collect reports once.
        let proto = Hashtogram::new(HashtogramParams::hashed(n, 1 << 32, 1.0, 0.05), 3);
        let mut rng = seeded_rng(4);
        let reports: Vec<_> = (0..n)
            .map(|i| (i, proto.respond(i, i % 1024, &mut rng)))
            .collect();
        group.bench_with_input(BenchmarkId::new("ingest_finalize", n), &n, |b, _| {
            b.iter(|| {
                let mut oracle = proto.clone();
                for &(i, rep) in &reports {
                    oracle.collect(i, rep);
                }
                oracle.finalize();
                oracle.total_users()
            });
        });
        let mut finalized = proto.clone();
        for &(i, rep) in &reports {
            finalized.collect(i, rep);
        }
        finalized.finalize();
        group.bench_with_input(BenchmarkId::new("estimate", n), &n, |b, _| {
            let mut q = 0u64;
            b.iter(|| {
                q = (q + 1) % (1 << 32);
                finalized.estimate(q)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_respond, bench_finalize_and_estimate);
criterion_main!(benches);
