//! Criterion bench for the substrate layers: hashing, WHT,
//! Reed–Solomon, ULRC encode/decode, expander construction, clustering,
//! and the batch-pipeline primitives (respond_batch / collect_batch /
//! par_chunk_map).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_codes::ulrc::{UlrcParams, UniqueListCode};
use hh_codes::ReedSolomon;
use hh_freq::hashtogram::{Hashtogram, HashtogramParams};
use hh_freq::traits::FrequencyOracle;
use hh_graph::cluster::{spectral_clusters, ClusterParams};
use hh_graph::expander::expander;
use hh_hash::{KWiseHash, PairwiseHash};
use hh_math::par::par_chunk_map;
use hh_math::rng::{client_rng, seeded_rng};
use hh_math::wht::fwht;
use rand::Rng;

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/hash");
    let pairwise = PairwiseHash::new(1, 1 << 20);
    group.bench_function("pairwise_eval", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x += 1;
            pairwise.hash(x)
        });
    });
    for &k in &[8usize, 32, 64] {
        let h = KWiseHash::new(2, k, 1 << 20);
        group.bench_with_input(BenchmarkId::new("kwise_eval", k), &k, |b, _| {
            let mut x = 0u64;
            b.iter(|| {
                x += 1;
                h.hash(x)
            });
        });
    }
    group.finish();
}

fn bench_wht(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/wht");
    group.sample_size(20);
    for &logw in &[16u32, 20] {
        let w = 1usize << logw;
        let mut rng = seeded_rng(3);
        let data: Vec<f64> = (0..w).map(|_| rng.gen_range(-1.0..1.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                fwht(&mut v);
                v[0]
            });
        });
    }
    group.finish();
}

fn bench_rs(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/reed_solomon");
    let rs = ReedSolomon::new(4, 14, 6);
    let msg: Vec<u16> = vec![1, 5, 9, 0, 15, 7];
    let cw = rs.encode(&msg);
    group.bench_function("encode_14_6", |b| b.iter(|| rs.encode(&msg)));
    let mut corrupted: Vec<Option<u16>> = cw.iter().map(|&v| Some(v)).collect();
    corrupted[2] = Some(cw[2] ^ 1);
    corrupted[9] = None;
    group.bench_function("decode_1err_1erasure", |b| b.iter(|| rs.decode(&corrupted)));
    group.finish();
}

fn bench_ulrc(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/ulrc");
    group.sample_size(20);
    let code = UniqueListCode::new(UlrcParams::for_domain_bits(24), 5);
    group.bench_function("encode", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 7919) & 0xFF_FFFF;
            code.encode(x)
        });
    });
    // A realistic decode instance: 3 messages, light junk.
    let xs = [0xF00Du64, 0xBEEF, 0x1234];
    let mut lists: Vec<Vec<(u64, u64)>> = vec![Vec::new(); code.params().num_coords];
    for (m, list) in lists.iter_mut().enumerate() {
        for &x in &xs {
            let y = code.coord_hash(m, x);
            if list.iter().all(|&(yy, _)| yy != y) {
                list.push((y, code.enc_tilde(x, m)));
            }
        }
    }
    group.bench_function("decode_3_messages", |b| b.iter(|| code.decode(&lists)));
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/graph");
    group.sample_size(10);
    group.bench_function("expander_14_4_las_vegas", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            expander(14, 4, 2.3 * 3f64.sqrt(), seed)
        });
    });
    let e = expander(24, 4, 2.3 * 3f64.sqrt(), 1);
    let mut g = hh_graph::Graph::new(96);
    for c0 in 0..4 {
        let off = (c0 * 24) as u32;
        for v in 0..24u32 {
            for &u in e.neighbors(v as usize) {
                if v < u {
                    g.add_edge(off + v, off + u);
                }
            }
        }
    }
    group.bench_function("spectral_clusters_4x24", |b| {
        b.iter(|| spectral_clusters(&g, &ClusterParams::default()));
    });
    group.finish();
}

fn bench_batch_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/batch_pipeline");
    group.sample_size(20);
    let n = 1usize << 16;
    let params = HashtogramParams::hashed(n as u64, 1 << 20, 1.0, 0.1);
    let oracle = Hashtogram::new(params.clone(), 1);
    let data: Vec<u64> = {
        let mut rng = seeded_rng(2);
        (0..n).map(|_| rng.gen_range(0..1u64 << 20)).collect()
    };
    let client_seed = 3u64;
    group.bench_function("respond_scalar_64k", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for (i, &x) in data.iter().enumerate() {
                let mut rng = client_rng(client_seed, i as u64);
                acc += i64::from(oracle.respond(i as u64, x, &mut rng).bit);
            }
            acc
        });
    });
    group.bench_function("respond_batch_64k", |b| {
        b.iter(|| oracle.respond_batch(0, &data, client_seed));
    });
    group.bench_function("respond_batch_64k_parallel", |b| {
        b.iter(|| {
            par_chunk_map(&data, 1 << 14, 0, |c, xs| {
                oracle.respond_batch((c << 14) as u64, xs, client_seed)
            })
        });
    });
    // Both sides pay the same reports.clone() inside the timed closure
    // (collect_batch consumes its Vec and the shim has no iter_batched),
    // so the comparison isolates ingest cost, not allocation.
    let reports = oracle.respond_batch(0, &data, client_seed);
    group.bench_function("collect_scalar_64k", |b| {
        b.iter(|| {
            let mut o = Hashtogram::new(params.clone(), 1);
            for (i, rep) in reports.clone().into_iter().enumerate() {
                o.collect(i as u64, rep);
            }
            o.total_users()
        });
    });
    group.bench_function("collect_batch_64k", |b| {
        b.iter(|| {
            let mut o = Hashtogram::new(params.clone(), 1);
            o.collect_batch(0, reports.clone());
            o.total_users()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_wht,
    bench_rs,
    bench_ulrc,
    bench_graph,
    bench_batch_pipeline
);
criterion_main!(benches);
