//! The protocol registry: name → constructor dispatch over the
//! type-erased layer, so binaries select protocols by *runtime
//! configuration* (a CLI flag, a config file) instead of carrying
//! per-protocol monomorphized plumbing.
//!
//! Every protocol and frequency oracle in the workspace registers here
//! under a stable name, with a constructor from one shared parameter
//! record ([`ProtocolSpec`]). Callers look a name up
//! ([`build_hh`] / [`build_oracle`]), get a boxed
//! [`DynHhProtocol`] / [`DynOracle`], and drive it through any of the
//! engines — the dyn drivers in [`crate::run`], the lock-step
//! [`StreamEngine`](crate::stream::StreamEngine), or the pipelined
//! collector runtime ([`crate::pipeline`]) — via the
//! [`DynHhStream`](crate::erased::DynHhStream) /
//! [`DynOracleStream`](crate::erased::DynOracleStream) adapters.
//!
//! ```
//! use hh_sim::registry::{build_hh, ProtocolSpec};
//!
//! let spec = ProtocolSpec { n: 10_000, domain: 1 << 16, eps: 4.0, beta: 0.1, seed: 7 };
//! let mut server = build_hh("expander_sketch", &spec).expect("registered");
//! let run = hh_sim::run_dyn_heavy_hitter_batched(
//!     server.as_mut(), &[1, 2, 3], 9, &hh_sim::BatchPlan::default());
//! assert_eq!(run.n, 3);
//! ```

use crate::erased::{erase_hh, erase_oracle, DynHhProtocol, DynOracle};
use hh_core::baselines::{
    BassilySmithHeavyHitters, Bitstogram, BitstogramParams, BsHhParams, ScanHeavyHitters,
    ScanParams,
};
use hh_core::{ExpanderSketch, SketchParams};
use hh_freq::bassily_smith::BassilySmithOracle;
use hh_freq::hashtogram::{Hashtogram, HashtogramParams};
use hh_freq::krr::KrrOracle;
use hh_freq::rappor::Rappor;

/// The one parameter record every registered constructor builds from:
/// the quantities the paper's protocols are parameterized by, plus the
/// public-randomness seed.
#[derive(Debug, Clone)]
pub struct ProtocolSpec {
    /// Expected population size.
    pub n: u64,
    /// Domain size `|X|` (the dense-state protocols — `scan`, `krr`,
    /// `rappor` — hold Θ(|X|) state; keep their domains small).
    pub domain: u64,
    /// Per-user privacy budget ε.
    pub eps: f64,
    /// Failure probability β.
    pub beta: f64,
    /// Public-randomness seed (ignored by the seedless randomizers
    /// `krr` / `rappor`).
    pub seed: u64,
}

impl ProtocolSpec {
    /// Bits needed to index the domain (`ceil(log2(domain))`, min 1) —
    /// what the hash-based protocols are parameterized by.
    pub fn domain_bits(&self) -> u32 {
        (64 - self.domain.saturating_sub(1).leading_zeros()).max(1)
    }
}

/// One registered heavy-hitter protocol.
pub struct HhEntry {
    /// Stable lookup name.
    pub name: &'static str,
    /// One-line description (for `--help`-style listings).
    pub about: &'static str,
    /// Build an instance from a spec.
    pub build: fn(&ProtocolSpec) -> Box<dyn DynHhProtocol>,
}

/// One registered frequency oracle.
pub struct OracleEntry {
    /// Stable lookup name.
    pub name: &'static str,
    /// One-line description (for `--help`-style listings).
    pub about: &'static str,
    /// Build an instance from a spec.
    pub build: fn(&ProtocolSpec) -> Box<dyn DynOracle>,
}

/// Every registered heavy-hitter protocol.
pub const HH_PROTOCOLS: &[HhEntry] = &[
    HhEntry {
        name: "expander_sketch",
        about: "the paper's PrivateExpanderSketch (optimal worst-case error)",
        build: |spec| {
            erase_hh(ExpanderSketch::new(
                SketchParams::optimal(spec.n, spec.domain_bits(), spec.eps, spec.beta),
                spec.seed,
            ))
        },
    },
    HhEntry {
        name: "scan",
        about: "KRR + full domain scan baseline (Θ(|X|) server state)",
        build: |spec| {
            erase_hh(ScanHeavyHitters::new(
                ScanParams::new(spec.n, spec.domain, spec.eps, spec.beta),
                spec.seed,
            ))
        },
    },
    HhEntry {
        name: "bitstogram",
        about: "Bassily–Nissim–Stemmer–Thakurta Bitstogram [3]",
        build: |spec| {
            erase_hh(Bitstogram::new(
                BitstogramParams::optimal(spec.n, spec.domain_bits(), spec.eps, spec.beta),
                spec.seed,
            ))
        },
    },
    HhEntry {
        name: "bassily_smith_hh",
        about: "Bassily–Smith projection oracle + domain-scan search [4]",
        build: |spec| {
            erase_hh(BassilySmithHeavyHitters::new(
                BsHhParams::optimal(spec.n, spec.domain, spec.eps, spec.beta),
                spec.seed,
            ))
        },
    },
];

/// Every registered frequency oracle.
pub const ORACLES: &[OracleEntry] = &[
    OracleEntry {
        name: "hashtogram",
        about: "hashed Hashtogram frequency oracle",
        build: |spec| {
            erase_oracle(Hashtogram::new(
                HashtogramParams::hashed(spec.n, spec.domain, spec.eps, spec.beta),
                spec.seed,
            ))
        },
    },
    OracleEntry {
        name: "krr",
        about: "k-ary randomized response (Θ(|X|) server state)",
        build: |spec| erase_oracle(KrrOracle::new(spec.domain, spec.eps)),
    },
    OracleEntry {
        name: "rappor",
        about: "basic one-hot RAPPOR (Θ(|X|) reports and state)",
        build: |spec| erase_oracle(Rappor::new(spec.domain, spec.eps)),
    },
    OracleEntry {
        name: "bassily_smith",
        about: "Bassily–Smith projection frequency oracle [4] (w = n rows)",
        build: |spec| {
            erase_oracle(BassilySmithOracle::new(
                spec.domain,
                spec.eps,
                spec.n,
                spec.seed,
            ))
        },
    },
];

/// Names of every registered heavy-hitter protocol, in registry order.
pub fn hh_names() -> Vec<&'static str> {
    HH_PROTOCOLS.iter().map(|e| e.name).collect()
}

/// Names of every registered frequency oracle, in registry order.
pub fn oracle_names() -> Vec<&'static str> {
    ORACLES.iter().map(|e| e.name).collect()
}

/// Build the named heavy-hitter protocol from a spec (`None` for an
/// unregistered name — [`hh_names`] lists the valid ones).
pub fn build_hh(name: &str, spec: &ProtocolSpec) -> Option<Box<dyn DynHhProtocol>> {
    HH_PROTOCOLS
        .iter()
        .find(|e| e.name == name)
        .map(|e| (e.build)(spec))
}

/// Build the named frequency oracle from a spec (`None` for an
/// unregistered name — [`oracle_names`] lists the valid ones).
pub fn build_oracle(name: &str, spec: &ProtocolSpec) -> Option<Box<dyn DynOracle>> {
    ORACLES
        .iter()
        .find(|e| e.name == name)
        .map(|e| (e.build)(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names = hh_names();
        names.extend(oracle_names());
        assert!(!names.is_empty());
        let count = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), count, "duplicate registry names");
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn unknown_names_build_nothing() {
        let spec = ProtocolSpec {
            n: 100,
            domain: 64,
            eps: 2.0,
            beta: 0.1,
            seed: 1,
        };
        assert!(build_hh("no_such_protocol", &spec).is_none());
        assert!(build_oracle("no_such_oracle", &spec).is_none());
    }

    #[test]
    fn domain_bits_round_up() {
        let spec = |domain| ProtocolSpec {
            n: 10,
            domain,
            eps: 1.0,
            beta: 0.1,
            seed: 0,
        };
        assert_eq!(spec(1).domain_bits(), 1);
        assert_eq!(spec(2).domain_bits(), 1);
        assert_eq!(spec(3).domain_bits(), 2);
        assert_eq!(spec(1 << 16).domain_bits(), 16);
        assert_eq!(spec((1 << 16) + 1).domain_bits(), 17);
    }
}
