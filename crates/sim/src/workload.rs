//! Input workloads for the experiments.
//!
//! The paper's evaluation is worst-case/synthetic; these generators cover
//! the regimes its narrative cares about: planted heavy hitters over a
//! light tail (the object of Definition 3.1), Zipf-like skew (realistic
//! telemetry), and the "URL telemetry" mixture motivated by the paper's
//! Chrome/iOS deployment discussion.
//!
//! [`StreamWorkload`] extends these to the streaming engine's epochs:
//! the distribution may *drift* between epochs (a Zipf exponent ramp,
//! heavy-hitter churn through a rotating pool) and per-epoch arrival
//! counts may jitter — the shapes a live telemetry pipeline actually
//! sees between checkpoints.

use hh_math::dist::{AliasTable, Zipf};
use hh_math::rng::{derive_seed, seeded_rng};
use hh_math::sampler::Bernoulli;
use rand::Rng;

/// A reproducible workload over a `u64` domain.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable label for experiment output.
    pub name: String,
    /// Domain size `|X|`.
    pub domain: u64,
    kind: Kind,
}

#[derive(Debug, Clone)]
enum Kind {
    Uniform,
    Zipf {
        exponent: f64,
    },
    Planted {
        heavy: Vec<(u64, f64)>,
    },
    UrlTelemetry {
        popular: u64,
        popular_mass: f64,
        exponent: f64,
    },
}

impl Workload {
    /// Uniform over the domain — the no-heavy-hitters null case.
    pub fn uniform(domain: u64) -> Self {
        Self {
            name: format!("uniform(|X|=2^{})", domain.ilog2()),
            domain,
            kind: Kind::Uniform,
        }
    }

    /// Zipf with the given exponent (rank 1 = element 0).
    pub fn zipf(domain: u64, exponent: f64) -> Self {
        Self {
            name: format!("zipf(s={exponent})"),
            domain,
            kind: Kind::Zipf { exponent },
        }
    }

    /// Planted heavy elements `(value, probability)` over a uniform tail.
    pub fn planted(domain: u64, heavy: Vec<(u64, f64)>) -> Self {
        let total: f64 = heavy.iter().map(|&(_, f)| f).sum();
        assert!(total < 1.0, "planted mass must leave room for the tail");
        for &(x, _) in &heavy {
            assert!(x < domain);
        }
        Self {
            name: format!("planted({} heavies, mass {total:.2})", heavy.len()),
            domain,
            kind: Kind::Planted { heavy },
        }
    }

    /// The browser-telemetry mixture: a Zipf head over `popular` ids
    /// holding `popular_mass` of the traffic, plus a uniform long tail
    /// over the whole (huge) domain — realistic skew for the paper's
    /// motivating deployments.
    pub fn url_telemetry(domain: u64, popular: u64, popular_mass: f64, exponent: f64) -> Self {
        assert!(popular <= domain);
        assert!((0.0..1.0).contains(&popular_mass));
        Self {
            name: format!("url-telemetry({popular} popular, mass {popular_mass})"),
            domain,
            kind: Kind::UrlTelemetry {
                popular,
                popular_mass,
                exponent,
            },
        }
    }

    /// Generate `n` user inputs, reproducibly.
    ///
    /// Skewed kinds precompute their sampling plan once per call: Zipf
    /// heads tabulate into an alias table when the batch amortizes the
    /// build (O(1) table lookups instead of `powf` rejection rounds) and
    /// planted mixtures compare one raw coin word against precomputed
    /// cumulative thresholds (no per-draw `f64` scan). The draws change
    /// relative to the per-draw code they replace, but every generator
    /// stays a pure function of `(self, n, seed)`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = seeded_rng(seed);
        match &self.kind {
            Kind::Uniform => (0..n).map(|_| rng.gen_range(0..self.domain)).collect(),
            Kind::Zipf { exponent } => {
                let z = Zipf::new(self.domain, *exponent);
                match zipf_alias(&z, n) {
                    Some(table) => (0..n).map(|_| table.sample(&mut rng) as u64).collect(),
                    None => (0..n).map(|_| z.sample(&mut rng)).collect(),
                }
            }
            Kind::Planted { heavy } => {
                let cdf = PlantedCdf::new(heavy);
                (0..n)
                    .map(|_| {
                        cdf.sample(&mut rng)
                            .unwrap_or_else(|| rng.gen_range(0..self.domain))
                    })
                    .collect()
            }
            Kind::UrlTelemetry {
                popular,
                popular_mass,
                exponent,
            } => {
                let z = Zipf::new(*popular, *exponent);
                let table = zipf_alias(&z, n);
                let head = Bernoulli::new(*popular_mass);
                (0..n)
                    .map(|_| {
                        if head.sample(&mut rng) {
                            match &table {
                                Some(t) => t.sample(&mut rng) as u64,
                                None => z.sample(&mut rng),
                            }
                        } else {
                            rng.gen_range(0..self.domain)
                        }
                    })
                    .collect()
            }
        }
    }

    /// The elements whose *expected* count reaches `threshold` at `n`
    /// users (exact for planted; head ranks for Zipf/telemetry; empty for
    /// uniform unless the domain is tiny).
    pub fn expected_heavy(&self, n: u64, threshold: f64) -> Vec<u64> {
        match &self.kind {
            Kind::Uniform => {
                let per = n as f64 / self.domain as f64;
                if per >= threshold {
                    (0..self.domain).collect()
                } else {
                    Vec::new()
                }
            }
            Kind::Zipf { exponent } => {
                let z = Zipf::new(self.domain, *exponent);
                let mut out = Vec::new();
                for rank in 0..self.domain.min(10_000) {
                    if n as f64 * z.pmf(rank) >= threshold {
                        out.push(rank);
                    } else {
                        break;
                    }
                }
                out
            }
            Kind::Planted { heavy } => heavy
                .iter()
                .filter(|&&(_, f)| n as f64 * f >= threshold)
                .map(|&(x, _)| x)
                .collect(),
            Kind::UrlTelemetry {
                popular,
                popular_mass,
                exponent,
            } => {
                let z = Zipf::new(*popular, *exponent);
                let mut out = Vec::new();
                for rank in 0..(*popular).min(10_000) {
                    if n as f64 * popular_mass * z.pmf(rank) >= threshold {
                        out.push(rank);
                    } else {
                        break;
                    }
                }
                out
            }
        }
    }
}

/// Tabulate a Zipf head into an alias table when the domain is small
/// enough to hold and the batch is large enough to amortize the O(domain)
/// build (one `powf` per outcome — roughly what a handful of rejection
/// draws cost). Huge domains (e.g. 2^40 "URLs") keep the rejection
/// sampler, whose cost is domain-independent.
fn zipf_alias(z: &Zipf, n: usize) -> Option<AliasTable> {
    let d = z.domain();
    if d <= 1 << 20 && n as u64 >= d / 8 {
        let s = z.exponent();
        let weights: Vec<f64> = (1..=d).map(|j| (j as f64).powf(-s)).collect();
        Some(AliasTable::new(&weights))
    } else {
        None
    }
}

/// Precomputed cumulative thresholds of a planted-heavy mixture: one raw
/// coin word decides which heavy (or the tail) a draw lands on, replacing
/// the per-draw `f64` cumulative scan. Thresholds reuse the
/// [`Bernoulli`] kernel's fixed-point rounding, so each heavy's realized
/// mass is within 2⁻⁶⁴ of its requested probability.
struct PlantedCdf {
    /// `thresholds[i]` = scaled cumulative mass of heavies `0..=i`.
    thresholds: Vec<u64>,
    values: Vec<u64>,
}

impl PlantedCdf {
    fn new(heavy: &[(u64, f64)]) -> Self {
        let mut acc = 0.0;
        let mut thresholds = Vec::with_capacity(heavy.len());
        let mut values = Vec::with_capacity(heavy.len());
        for &(x, f) in heavy {
            acc += f;
            thresholds.push(Bernoulli::new(acc).threshold());
            values.push(x);
        }
        Self { thresholds, values }
    }

    /// One draw: `Some(heavy)` or `None` for the uniform tail.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        let w = rng.next_u64();
        let idx = self.thresholds.partition_point(|&t| t <= w);
        self.values.get(idx).copied()
    }
}

/// Seed label separating per-epoch arrival-jitter draws from the data
/// draws of the same epoch.
const JITTER_LABEL: u64 = 0x71773E;

/// How a [`StreamWorkload`]'s distribution evolves across epochs.
#[derive(Debug, Clone)]
enum StreamKind {
    /// The same workload every epoch.
    Stationary(Workload),
    /// Zipf skew ramping linearly from one exponent to another over the
    /// stream's nominal length (clamped afterwards) — "the head
    /// sharpens/flattens as the day progresses".
    ZipfRamp { from: f64, to: f64, epochs: usize },
    /// Heavy-hitter churn: every `period` epochs the `active` planted
    /// heavies rotate to the next window of a candidate pool — trending
    /// topics arriving and fading.
    Churn {
        pool: Vec<u64>,
        active: usize,
        mass: f64,
        period: usize,
    },
}

/// A reproducible *streaming* workload: one distribution per epoch plus
/// per-epoch arrival jitter. Feed [`StreamWorkload::generate_epoch`]
/// straight into `StreamEngine::ingest_epoch`.
#[derive(Debug, Clone)]
pub struct StreamWorkload {
    /// Human-readable label for experiment output.
    pub name: String,
    /// Domain size `|X|`.
    pub domain: u64,
    kind: StreamKind,
    /// Fractional arrival jitter: epoch sizes draw uniformly from
    /// `base ± jitter·base` (0 = constant arrivals).
    jitter: f64,
}

impl StreamWorkload {
    fn check_jitter(jitter: f64) {
        assert!(
            (0.0..1.0).contains(&jitter),
            "arrival jitter must be in [0, 1), got {jitter}"
        );
    }

    /// The same distribution every epoch, with arrival jitter.
    pub fn stationary(workload: Workload, jitter: f64) -> Self {
        Self::check_jitter(jitter);
        Self {
            name: format!("stream[{}]", workload.name),
            domain: workload.domain,
            kind: StreamKind::Stationary(workload),
            jitter,
        }
    }

    /// Zipf skew ramping linearly from exponent `from` (epoch 0) to `to`
    /// (epoch `epochs - 1`), constant afterwards.
    pub fn zipf_ramp(domain: u64, from: f64, to: f64, epochs: usize, jitter: f64) -> Self {
        Self::check_jitter(jitter);
        assert!(epochs >= 1, "a ramp needs at least one epoch");
        Self {
            name: format!("zipf-ramp(s={from}->{to} over {epochs} epochs)"),
            domain,
            kind: StreamKind::ZipfRamp { from, to, epochs },
            jitter,
        }
    }

    /// Heavy-hitter churn: `active` elements of `pool` hold `mass` of
    /// the traffic (uniform tail beneath), rotating to the next window
    /// of the pool every `period` epochs.
    pub fn churn(
        domain: u64,
        pool: Vec<u64>,
        active: usize,
        mass: f64,
        period: usize,
        jitter: f64,
    ) -> Self {
        Self::check_jitter(jitter);
        assert!(!pool.is_empty(), "churn needs a candidate pool");
        assert!(
            (1..=pool.len()).contains(&active),
            "active heavies must be in 1..=pool ({} vs {})",
            active,
            pool.len()
        );
        assert!((0.0..1.0).contains(&mass), "heavy mass must leave a tail");
        assert!(period >= 1, "churn period must be >= 1");
        for &x in &pool {
            assert!(x < domain, "pool element {x} outside domain");
        }
        Self {
            name: format!(
                "churn({active}/{} heavies, mass {mass}, period {period})",
                pool.len()
            ),
            domain,
            kind: StreamKind::Churn {
                pool,
                active,
                mass,
                period,
            },
            jitter,
        }
    }

    /// The (static) workload epoch `epoch` draws from.
    pub fn epoch_workload(&self, epoch: u64) -> Workload {
        match &self.kind {
            StreamKind::Stationary(w) => w.clone(),
            StreamKind::ZipfRamp { from, to, epochs } => {
                let steps = (*epochs - 1).max(1) as f64;
                let t = (epoch as f64).min(steps) / steps;
                let s = from + (to - from) * t;
                Workload::zipf(self.domain, s)
            }
            StreamKind::Churn {
                pool,
                active,
                mass,
                period,
            } => {
                let window = (epoch / *period as u64) as usize;
                let start = (window * active) % pool.len();
                let heavy: Vec<(u64, f64)> = (0..*active)
                    .map(|i| (pool[(start + i) % pool.len()], mass / *active as f64))
                    .collect();
                Workload::planted(self.domain, heavy)
            }
        }
    }

    /// The jittered arrival count of epoch `epoch` around `base` users
    /// (a pure function of `(seed, epoch)`; at least one arrival).
    pub fn epoch_len(&self, epoch: u64, base: usize, seed: u64) -> usize {
        if self.jitter == 0.0 {
            return base.max(1);
        }
        let mut rng = seeded_rng(derive_seed(derive_seed(seed, JITTER_LABEL), epoch));
        let scale = 1.0 + self.jitter * (2.0 * rng.gen::<f64>() - 1.0);
        ((base as f64 * scale).round() as usize).max(1)
    }

    /// Generate epoch `epoch`'s arrivals: the drifted distribution at
    /// the jittered count, reproducibly.
    pub fn generate_epoch(&self, epoch: u64, base: usize, seed: u64) -> Vec<u64> {
        self.epoch_workload(epoch)
            .generate(self.epoch_len(epoch, base, seed), derive_seed(seed, epoch))
    }

    /// The elements the *current* epoch's distribution makes heavy (see
    /// [`Workload::expected_heavy`]).
    pub fn expected_heavy(&self, epoch: u64, n: u64, threshold: f64) -> Vec<u64> {
        self.epoch_workload(epoch).expected_heavy(n, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let w = Workload::zipf(1 << 20, 1.1);
        assert_eq!(w.generate(100, 5), w.generate(100, 5));
        assert_ne!(w.generate(100, 5), w.generate(100, 6));
    }

    #[test]
    fn planted_masses_are_respected() {
        let w = Workload::planted(1 << 16, vec![(7, 0.3), (9, 0.1)]);
        let data = w.generate(50_000, 1);
        let c7 = data.iter().filter(|&&x| x == 7).count() as f64 / 50_000.0;
        let c9 = data.iter().filter(|&&x| x == 9).count() as f64 / 50_000.0;
        assert!((c7 - 0.3).abs() < 0.02, "c7 = {c7}");
        assert!((c9 - 0.1).abs() < 0.02, "c9 = {c9}");
    }

    #[test]
    fn expected_heavy_for_planted() {
        let w = Workload::planted(1 << 16, vec![(7, 0.3), (9, 0.01)]);
        assert_eq!(w.expected_heavy(10_000, 500.0), vec![7]);
        assert_eq!(w.expected_heavy(10_000, 50.0), vec![7, 9]);
    }

    #[test]
    fn zipf_head_is_heavy() {
        let w = Workload::zipf(1 << 20, 1.5);
        let heavy = w.expected_heavy(100_000, 1_000.0);
        assert!(!heavy.is_empty());
        assert_eq!(heavy[0], 0);
        // The head must actually dominate the sample.
        let data = w.generate(50_000, 2);
        let c0 = data.iter().filter(|&&x| x == 0).count();
        assert!(c0 > 10_000, "rank-0 count {c0}");
    }

    #[test]
    fn telemetry_mixes_head_and_tail() {
        let w = Workload::url_telemetry(1 << 40, 1000, 0.8, 1.2);
        let data = w.generate(20_000, 3);
        let head = data.iter().filter(|&&x| x < 1000).count() as f64 / 20_000.0;
        assert!((head - 0.8).abs() < 0.05, "head mass {head}");
        assert!(data.iter().any(|&x| x >= 1000), "no tail traffic");
    }

    #[test]
    #[should_panic(expected = "leave room for the tail")]
    fn rejects_overfull_planted() {
        let _ = Workload::planted(16, vec![(0, 0.7), (1, 0.5)]);
    }

    #[test]
    fn zipf_ramp_drifts_monotonically() {
        let w = StreamWorkload::zipf_ramp(1 << 16, 1.0, 2.0, 5, 0.0);
        // A sharper exponent concentrates more mass on rank 0.
        let head_mass = |e: u64| {
            let data = w.epoch_workload(e).generate(20_000, 9);
            data.iter().filter(|&&x| x == 0).count()
        };
        let (first, last) = (head_mass(0), head_mass(4));
        assert!(
            last > first + 2_000,
            "ramp did not sharpen the head: {first} -> {last}"
        );
        // Clamped past the ramp's end.
        assert_eq!(
            w.epoch_workload(4).generate(100, 3),
            w.epoch_workload(40).generate(100, 3)
        );
    }

    #[test]
    fn churn_rotates_the_heavy_set() {
        let pool: Vec<u64> = (100..112).collect();
        let w = StreamWorkload::churn(1 << 16, pool.clone(), 3, 0.6, 2, 0.0);
        let heavy0 = w.expected_heavy(0, 10_000, 500.0);
        let heavy1 = w.expected_heavy(1, 10_000, 500.0);
        let heavy2 = w.expected_heavy(2, 10_000, 500.0);
        assert_eq!(heavy0, vec![100, 101, 102]);
        assert_eq!(heavy1, heavy0, "rotated before the period elapsed");
        assert_eq!(heavy2, vec![103, 104, 105]);
        // The pool wraps around.
        assert_eq!(w.expected_heavy(8, 10_000, 500.0), vec![100, 101, 102]);
    }

    #[test]
    fn arrival_jitter_is_bounded_and_reproducible() {
        let w = StreamWorkload::stationary(Workload::uniform(1 << 10), 0.25);
        for e in 0..20u64 {
            let len = w.epoch_len(e, 1000, 7);
            assert!((750..=1250).contains(&len), "epoch {e}: {len}");
            assert_eq!(len, w.epoch_len(e, 1000, 7));
        }
        // Jitter actually varies across epochs.
        let lens: std::collections::HashSet<usize> =
            (0..20).map(|e| w.epoch_len(e, 1000, 7)).collect();
        assert!(lens.len() > 5, "jitter degenerate: {lens:?}");
        // Zero jitter means constant epochs.
        let flat = StreamWorkload::stationary(Workload::uniform(1 << 10), 0.0);
        assert!((0..20).all(|e| flat.epoch_len(e, 1000, 7) == 1000));
    }

    #[test]
    #[should_panic(expected = "churn needs a candidate pool")]
    fn rejects_empty_churn_pool() {
        let _ = StreamWorkload::churn(16, vec![], 1, 0.5, 1, 0.0);
    }
}
