//! Input workloads for the experiments.
//!
//! The paper's evaluation is worst-case/synthetic; these generators cover
//! the regimes its narrative cares about: planted heavy hitters over a
//! light tail (the object of Definition 3.1), Zipf-like skew (realistic
//! telemetry), and the "URL telemetry" mixture motivated by the paper's
//! Chrome/iOS deployment discussion.

use hh_math::dist::Zipf;
use hh_math::rng::seeded_rng;
use rand::Rng;

/// A reproducible workload over a `u64` domain.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable label for experiment output.
    pub name: String,
    /// Domain size `|X|`.
    pub domain: u64,
    kind: Kind,
}

#[derive(Debug, Clone)]
enum Kind {
    Uniform,
    Zipf {
        exponent: f64,
    },
    Planted {
        heavy: Vec<(u64, f64)>,
    },
    UrlTelemetry {
        popular: u64,
        popular_mass: f64,
        exponent: f64,
    },
}

impl Workload {
    /// Uniform over the domain — the no-heavy-hitters null case.
    pub fn uniform(domain: u64) -> Self {
        Self {
            name: format!("uniform(|X|=2^{})", domain.ilog2()),
            domain,
            kind: Kind::Uniform,
        }
    }

    /// Zipf with the given exponent (rank 1 = element 0).
    pub fn zipf(domain: u64, exponent: f64) -> Self {
        Self {
            name: format!("zipf(s={exponent})"),
            domain,
            kind: Kind::Zipf { exponent },
        }
    }

    /// Planted heavy elements `(value, probability)` over a uniform tail.
    pub fn planted(domain: u64, heavy: Vec<(u64, f64)>) -> Self {
        let total: f64 = heavy.iter().map(|&(_, f)| f).sum();
        assert!(total < 1.0, "planted mass must leave room for the tail");
        for &(x, _) in &heavy {
            assert!(x < domain);
        }
        Self {
            name: format!("planted({} heavies, mass {total:.2})", heavy.len()),
            domain,
            kind: Kind::Planted { heavy },
        }
    }

    /// The browser-telemetry mixture: a Zipf head over `popular` ids
    /// holding `popular_mass` of the traffic, plus a uniform long tail
    /// over the whole (huge) domain — realistic skew for the paper's
    /// motivating deployments.
    pub fn url_telemetry(domain: u64, popular: u64, popular_mass: f64, exponent: f64) -> Self {
        assert!(popular <= domain);
        assert!((0.0..1.0).contains(&popular_mass));
        Self {
            name: format!("url-telemetry({popular} popular, mass {popular_mass})"),
            domain,
            kind: Kind::UrlTelemetry {
                popular,
                popular_mass,
                exponent,
            },
        }
    }

    /// Generate `n` user inputs, reproducibly.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = seeded_rng(seed);
        match &self.kind {
            Kind::Uniform => (0..n).map(|_| rng.gen_range(0..self.domain)).collect(),
            Kind::Zipf { exponent } => {
                let z = Zipf::new(self.domain, *exponent);
                (0..n).map(|_| z.sample(&mut rng)).collect()
            }
            Kind::Planted { heavy } => (0..n)
                .map(|_| {
                    let u: f64 = rng.gen();
                    let mut acc = 0.0;
                    for &(x, f) in heavy {
                        acc += f;
                        if u < acc {
                            return x;
                        }
                    }
                    rng.gen_range(0..self.domain)
                })
                .collect(),
            Kind::UrlTelemetry {
                popular,
                popular_mass,
                exponent,
            } => {
                let z = Zipf::new(*popular, *exponent);
                (0..n)
                    .map(|_| {
                        if rng.gen::<f64>() < *popular_mass {
                            z.sample(&mut rng)
                        } else {
                            rng.gen_range(0..self.domain)
                        }
                    })
                    .collect()
            }
        }
    }

    /// The elements whose *expected* count reaches `threshold` at `n`
    /// users (exact for planted; head ranks for Zipf/telemetry; empty for
    /// uniform unless the domain is tiny).
    pub fn expected_heavy(&self, n: u64, threshold: f64) -> Vec<u64> {
        match &self.kind {
            Kind::Uniform => {
                let per = n as f64 / self.domain as f64;
                if per >= threshold {
                    (0..self.domain).collect()
                } else {
                    Vec::new()
                }
            }
            Kind::Zipf { exponent } => {
                let z = Zipf::new(self.domain, *exponent);
                let mut out = Vec::new();
                for rank in 0..self.domain.min(10_000) {
                    if n as f64 * z.pmf(rank) >= threshold {
                        out.push(rank);
                    } else {
                        break;
                    }
                }
                out
            }
            Kind::Planted { heavy } => heavy
                .iter()
                .filter(|&&(_, f)| n as f64 * f >= threshold)
                .map(|&(x, _)| x)
                .collect(),
            Kind::UrlTelemetry {
                popular,
                popular_mass,
                exponent,
            } => {
                let z = Zipf::new(*popular, *exponent);
                let mut out = Vec::new();
                for rank in 0..(*popular).min(10_000) {
                    if n as f64 * popular_mass * z.pmf(rank) >= threshold {
                        out.push(rank);
                    } else {
                        break;
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let w = Workload::zipf(1 << 20, 1.1);
        assert_eq!(w.generate(100, 5), w.generate(100, 5));
        assert_ne!(w.generate(100, 5), w.generate(100, 6));
    }

    #[test]
    fn planted_masses_are_respected() {
        let w = Workload::planted(1 << 16, vec![(7, 0.3), (9, 0.1)]);
        let data = w.generate(50_000, 1);
        let c7 = data.iter().filter(|&&x| x == 7).count() as f64 / 50_000.0;
        let c9 = data.iter().filter(|&&x| x == 9).count() as f64 / 50_000.0;
        assert!((c7 - 0.3).abs() < 0.02, "c7 = {c7}");
        assert!((c9 - 0.1).abs() < 0.02, "c9 = {c9}");
    }

    #[test]
    fn expected_heavy_for_planted() {
        let w = Workload::planted(1 << 16, vec![(7, 0.3), (9, 0.01)]);
        assert_eq!(w.expected_heavy(10_000, 500.0), vec![7]);
        assert_eq!(w.expected_heavy(10_000, 50.0), vec![7, 9]);
    }

    #[test]
    fn zipf_head_is_heavy() {
        let w = Workload::zipf(1 << 20, 1.5);
        let heavy = w.expected_heavy(100_000, 1_000.0);
        assert!(!heavy.is_empty());
        assert_eq!(heavy[0], 0);
        // The head must actually dominate the sample.
        let data = w.generate(50_000, 2);
        let c0 = data.iter().filter(|&&x| x == 0).count();
        assert!(c0 > 10_000, "rank-0 count {c0}");
    }

    #[test]
    fn telemetry_mixes_head_and_tail() {
        let w = Workload::url_telemetry(1 << 40, 1000, 0.8, 1.2);
        let data = w.generate(20_000, 3);
        let head = data.iter().filter(|&&x| x < 1000).count() as f64 / 20_000.0;
        assert!((head - 0.8).abs() < 0.05, "head mass {head}");
        assert!(data.iter().any(|&x| x >= 1000), "no tail traffic");
    }

    #[test]
    #[should_panic(expected = "leave room for the tail")]
    fn rejects_overfull_planted() {
        let _ = Workload::planted(16, vec![(0, 0.7), (1, 0.5)]);
    }
}
