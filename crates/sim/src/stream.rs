//! The streaming epoch engine: continuous ingestion with durable shard
//! snapshots and checkpoint/replay crash recovery.
//!
//! The distributed driver of `run` executes one static batch; real
//! deployments of local-model heavy hitters ingest reports in *rounds*
//! from an open-ended population, checkpoint aggregator state, and
//! tolerate collector loss. [`StreamEngine`] is that machine:
//!
//! 1. **Epochs** — each [`StreamEngine::ingest_epoch`] call takes the
//!    next slice of the population: the fused client path
//!    (`respond_encode_batch`) samples each parallel chunk's reports
//!    straight into a pooled wire buffer, each chunk's bytes are routed
//!    to one of `k` collector nodes (global chunk index mod `k`), and
//!    every collector folds the chunk's *borrowed* frames into its
//!    private live shard (`absorb_wire`) — no intermediate report vec on
//!    either side, and after the first checkpointed epoch no steady-state
//!    buffer allocation either (chunk buffers cycle
//!    pool → respond → spool → checkpoint → pool).
//! 2. **Snapshots** — at epoch boundaries (cadence
//!    [`StreamPlan::checkpoint_every`]) every collector's shard is
//!    encoded to bytes through its `WireShard` codec — the durable
//!    artifact a real node would write to stable storage. Snapshotting
//!    truncates the collector's *spool*: the wire-chunk log retained
//!    since its last checkpoint.
//! 3. **Recovery** — [`StreamEngine::kill_collector`] discards a live
//!    shard (a simulated crash; the node's spool keeps receiving its
//!    routed chunks, like a durable queue with its consumer down).
//!    [`StreamEngine::recover_collector`] decodes the last snapshot and
//!    replays only the spooled reports since — never the full history.
//! 4. **Mid-stream queries** — `finish_at_epoch` (on the concrete
//!    engines) answers top-k / frequency queries from the *merged
//!    decoded snapshots*, without consuming the live shards, so the
//!    stream keeps running.
//!
//! **Equivalence guarantee:** because user `i`'s coins are a pure
//! function of `(seed, i)`, shards hold exact integer state, and the
//! snapshot codec round-trips bit-for-bit, the final output equals the
//! serial one-shot run over the same population for *every* epoch size,
//! collector count, checkpoint cadence, kill schedule, and merge order
//! (pinned by `tests/streaming_equivalence.rs` and the snapshot/replay
//! proptests in `tests/shard_wire_conformance.rs`). The distributed
//! drivers in [`crate::run`] are thin wrappers over this engine — one
//! ingestion path, not three.
//!
//! This engine is *lock-step*: each epoch runs parallel respond →
//! barrier → parallel absorb → barrier → checkpoint, which makes it the
//! simple, obviously-correct reference. The production-shaped runtime —
//! long-lived collector actors behind bounded queues, with ingest,
//! absorption and checkpointing overlapped under backpressure — lives
//! in [`crate::pipeline`] and is pinned bit-for-bit against this
//! engine.

use crate::erased::{DynHhProtocol, DynHhStream, DynOracle, DynOracleStream};
use crate::run::{DistPlan, MergeOrder};
use hh_core::traits::HeavyHitterProtocol;
use hh_freq::traits::FrequencyOracle;
use hh_freq::wire::{FrameError, WireError, WireFrames, WireReport, WireShard};
use hh_math::par::{merge_tree, par_chunk_zip_map, par_map_owned, planned_threads, BufferPool};
use hh_math::rng::derive_seed;
use std::time::{Duration, Instant};

/// Seed label for heavy-hitter client coins (one hop off the run seed).
pub(crate) const HH_CLIENT_LABEL: u64 = 0xC11E57;
/// Seed label for frequency-oracle client coins.
pub(crate) const ORACLE_CLIENT_LABEL: u64 = 0x04AC1E;

/// Execution shape of the streaming engine.
#[derive(Debug, Clone)]
pub struct StreamPlan {
    /// Users per epoch for [`StreamEngine::ingest_all`]. Does not affect
    /// output.
    pub epoch_size: usize,
    /// Checkpoint every this many epochs (`0` = only on explicit
    /// [`StreamEngine::checkpoint`] calls). Does not affect output.
    pub checkpoint_every: usize,
    /// Collector fleet shape (collectors, chunk size, threads, merge
    /// order). None of it affects output.
    pub dist: DistPlan,
}

impl Default for StreamPlan {
    fn default() -> Self {
        Self {
            epoch_size: 1 << 16,
            checkpoint_every: 1,
            dist: DistPlan::default(),
        }
    }
}

impl StreamPlan {
    /// The whole population in one epoch with no checkpoints — the shape
    /// the one-shot distributed drivers run.
    pub fn one_shot(dist: &DistPlan) -> Self {
        Self {
            epoch_size: usize::MAX,
            checkpoint_every: 0,
            dist: dist.clone(),
        }
    }

    /// Panic early (with a named field) on degenerate shapes instead of
    /// failing downstream in chunk division or shard merging.
    pub fn validate(&self) {
        assert!(
            self.epoch_size >= 1,
            "StreamPlan.epoch_size must be >= 1 (got 0)"
        );
        self.dist.validate();
    }
}

/// The protocol surface the streaming engines ingest through: produce a
/// user range's wire frames, build/absorb/merge shards, and run the
/// shard snapshot codec. Implemented by the [`HhStream`] and
/// [`OracleStream`] adapters (and their type-erased counterparts in
/// [`crate::erased`]) so one engine serves both protocol families.
///
/// The surface is deliberately *wire-native and object-friendly*:
/// reports only ever appear as encoded frames, and the shard codec runs
/// through `&self` (not an associated-type bound), so a `dyn`-boxed
/// protocol behind [`crate::erased::DynHhProtocol`] can drive the same
/// engines as a monomorphized one. Code that needs typed `Report`
/// values (e.g. the legacy materializing ingest path benchmarks compare
/// against) bounds on [`MaterializingIngest`] instead.
pub trait StreamIngest {
    /// The mergeable, durable partial aggregate.
    type Shard: Send;
    /// Seed-derivation label for this family's client coins — must match
    /// the serial reference driver so streams reproduce one-shot runs.
    const CLIENT_LABEL: u64;

    /// Fused respond + encode: append the wire frames of the contiguous
    /// user range `start_index .. start_index + xs.len()` to `out`,
    /// returning each frame's length.
    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32>;
    /// An empty partial aggregate.
    fn new_shard(&self) -> Self::Shard;
    /// Zero-copy: fold a chunk of borrowed wire frames into `shard` —
    /// bit-for-bit equal to decoding every frame and absorbing the
    /// reports.
    fn absorb_wire(
        &self,
        shard: &mut Self::Shard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError>;
    /// Combine two partial aggregates.
    fn merge(&self, a: Self::Shard, b: Self::Shard) -> Self::Shard;
    /// Exact byte length of `shard`'s snapshot encoding.
    fn shard_encoded_len(&self, shard: &Self::Shard) -> usize;
    /// Append `shard`'s snapshot encoding to `out` (the durable artifact
    /// a collector checkpoints).
    fn encode_shard_into(&self, shard: &Self::Shard, out: &mut Vec<u8>);
    /// Decode a snapshot produced by [`StreamIngest::encode_shard_into`].
    fn decode_shard(&self, bytes: &[u8]) -> Result<Self::Shard, WireError>;
    /// Encode a shard snapshot into a fresh buffer.
    fn encode_shard(&self, shard: &Self::Shard) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.shard_encoded_len(shard));
        self.encode_shard_into(shard, &mut out);
        out
    }
}

/// The typed, report-materializing extension of [`StreamIngest`]: the
/// pre-zero-copy pipeline (respond to a report vec, absorb decoded
/// reports). The streaming engines never call these — they exist for
/// conformance tests and the fused-vs-legacy ingest benchmarks, and are
/// not object-safe (a type-erased protocol has no `Report` type).
pub trait MaterializingIngest: StreamIngest {
    /// The client message type crossing the wire.
    type Report: WireReport + Send + Sync;

    /// Reports of the contiguous user range starting at `start_index`.
    fn respond_batch(&self, start_index: u64, xs: &[u64], client_seed: u64) -> Vec<Self::Report>;
    /// Fold a contiguous user range of reports into `shard`.
    fn absorb(&self, shard: &mut Self::Shard, start_index: u64, reports: &[Self::Report]);
}

/// [`StreamIngest`] over a borrowed heavy-hitter protocol.
#[derive(Clone, Copy)]
pub struct HhStream<'a, P>(pub &'a P);

impl<'a, P> StreamIngest for HhStream<'a, P>
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
{
    type Shard = P::Shard;
    const CLIENT_LABEL: u64 = HH_CLIENT_LABEL;

    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        self.0
            .respond_encode_batch(start_index, xs, client_seed, out)
    }

    fn new_shard(&self) -> P::Shard {
        self.0.new_shard()
    }

    fn absorb_wire(
        &self,
        shard: &mut P::Shard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        self.0.absorb_wire(shard, start_index, frames)
    }

    fn merge(&self, a: P::Shard, b: P::Shard) -> P::Shard {
        self.0.merge(a, b)
    }

    fn shard_encoded_len(&self, shard: &P::Shard) -> usize {
        shard.shard_encoded_len()
    }

    fn encode_shard_into(&self, shard: &P::Shard, out: &mut Vec<u8>) {
        shard.encode_shard_into(out);
    }

    fn decode_shard(&self, bytes: &[u8]) -> Result<P::Shard, WireError> {
        P::Shard::decode_shard(bytes)
    }
}

impl<'a, P> MaterializingIngest for HhStream<'a, P>
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
{
    type Report = P::Report;

    fn respond_batch(&self, start_index: u64, xs: &[u64], client_seed: u64) -> Vec<P::Report> {
        self.0.respond_batch(start_index, xs, client_seed)
    }

    fn absorb(&self, shard: &mut P::Shard, start_index: u64, reports: &[P::Report]) {
        self.0.absorb(shard, start_index, reports);
    }
}

/// [`StreamIngest`] over a borrowed frequency oracle.
#[derive(Clone, Copy)]
pub struct OracleStream<'a, O>(pub &'a O);

impl<'a, O> StreamIngest for OracleStream<'a, O>
where
    O: FrequencyOracle + Sync,
    O::Report: Send + Sync,
{
    type Shard = O::Shard;
    const CLIENT_LABEL: u64 = ORACLE_CLIENT_LABEL;

    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        self.0
            .respond_encode_batch(start_index, xs, client_seed, out)
    }

    fn new_shard(&self) -> O::Shard {
        self.0.new_shard()
    }

    fn absorb_wire(
        &self,
        shard: &mut O::Shard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        self.0.absorb_wire(shard, start_index, frames)
    }

    fn merge(&self, a: O::Shard, b: O::Shard) -> O::Shard {
        self.0.merge(a, b)
    }

    fn shard_encoded_len(&self, shard: &O::Shard) -> usize {
        shard.shard_encoded_len()
    }

    fn encode_shard_into(&self, shard: &O::Shard, out: &mut Vec<u8>) {
        shard.encode_shard_into(out);
    }

    fn decode_shard(&self, bytes: &[u8]) -> Result<O::Shard, WireError> {
        O::Shard::decode_shard(bytes)
    }
}

impl<'a, O> MaterializingIngest for OracleStream<'a, O>
where
    O: FrequencyOracle + Sync,
    O::Report: Send + Sync,
{
    type Report = O::Report;

    fn respond_batch(&self, start_index: u64, xs: &[u64], client_seed: u64) -> Vec<O::Report> {
        self.0.respond_batch(start_index, xs, client_seed)
    }

    fn absorb(&self, shard: &mut O::Shard, start_index: u64, reports: &[O::Report]) {
        self.0.absorb(shard, start_index, reports);
    }
}

/// One chunk of reports as owned framed wire bytes: the concatenated
/// encodings (written by the fused `respond_encode_batch` path), each
/// report's frame length, and the user index the chunk starts at. This
/// is both the simulated RPC to a collector and the spool entry
/// replayed on recovery. Byte buffers cycle through the engine's pool
/// (pool → respond → spool → checkpoint → pool), so steady-state
/// epochs reuse capacity instead of allocating.
pub(crate) struct WireChunk {
    pub(crate) start: u64,
    pub(crate) bytes: Vec<u8>,
    pub(crate) frame_lens: Vec<u32>,
}

impl WireChunk {
    /// The borrowed frame view collectors absorb from — validated
    /// framing (no trailing garbage, no zero-length frames).
    pub(crate) fn frames(&self) -> Result<WireFrames<'_>, hh_freq::wire::WireError> {
        WireFrames::new(&self.bytes, &self.frame_lens)
    }

    /// Reclaim the chunk's byte buffer for the pool (cleared, capacity
    /// kept).
    pub(crate) fn into_buffer(mut self) -> Vec<u8> {
        self.bytes.clear();
        self.bytes
    }
}

/// Absorb one routed/spooled chunk into a shard through the zero-copy
/// wire path. The simulated wire and spool are lossless, so corruption
/// is a bug, not an operational event — but when it happens, the panic
/// names the collector, the chunk's start user, and (via [`FrameError`])
/// the frame index and byte offset, so a corrupt spool is diagnosable.
pub(crate) fn absorb_chunk<I: StreamIngest>(
    ingest: &I,
    shard: &mut I::Shard,
    collector: usize,
    chunk: &WireChunk,
) {
    let frames = chunk.frames().unwrap_or_else(|e| {
        panic!(
            "collector {collector}: chunk starting at user {} is misframed: {e}",
            chunk.start
        )
    });
    ingest
        .absorb_wire(shard, chunk.start, &frames)
        .unwrap_or_else(|e| {
            panic!(
                "collector {collector}: chunk starting at user {} (frame user {}): {e}",
                chunk.start,
                chunk.start + e.frame as u64
            )
        });
}

/// Combine collector shards in the requested order (see [`MergeOrder`]).
pub(crate) fn combine_shards<S>(
    shards: Vec<S>,
    order: MergeOrder,
    mut merge: impl FnMut(S, S) -> S,
) -> S {
    match order {
        MergeOrder::Tree => merge_tree(shards, merge).expect("at least one shard"),
        MergeOrder::Sequential => shards
            .into_iter()
            .reduce(&mut merge)
            .expect("at least one shard"),
        MergeOrder::ReverseSequential => shards
            .into_iter()
            .rev()
            .reduce(merge)
            .expect("at least one shard"),
    }
}

/// A durable checkpoint of one collector's shard (shared with the
/// pipelined runtime's collector actors).
pub(crate) struct Snapshot {
    /// The `WireShard` encoding — what a real node would fsync.
    pub(crate) bytes: Vec<u8>,
    /// The epoch the snapshot was taken at.
    pub(crate) epoch: u64,
}

/// Encode `shard`'s durable snapshot, reusing the previous snapshot's
/// byte buffer (a checkpoint *replaces* the durable artifact, so
/// steady-state checkpointing allocates nothing once the buffer has
/// grown to the shard's encoded size). The one snapshot-encoding
/// sequence both the lock-step engine and the pipelined collector
/// actors run — their bit-for-bit equivalence depends on sharing it.
pub(crate) fn encode_snapshot<I: StreamIngest>(
    ingest: &I,
    shard: &I::Shard,
    previous: Option<Snapshot>,
    epoch: u64,
) -> Snapshot {
    let mut bytes = match previous {
        Some(old) => {
            let mut b = old.bytes;
            b.clear();
            b
        }
        None => Vec::with_capacity(ingest.shard_encoded_len(shard)),
    };
    ingest.encode_shard_into(shard, &mut bytes);
    Snapshot { bytes, epoch }
}

/// Rebuild a crashed collector's live shard: decode its last snapshot
/// (or start empty if it never checkpointed) and replay the spooled
/// chunks since. Returns the rebuilt shard, the snapshot's epoch, and
/// the number of replayed reports. Shared by [`StreamEngine`] and the
/// pipelined collector actors.
pub(crate) fn rebuild_shard<I: StreamIngest>(
    ingest: &I,
    collector: usize,
    snapshot: Option<&Snapshot>,
    log: &[WireChunk],
) -> (I::Shard, Option<u64>, u64) {
    let (mut shard, from_epoch) = match snapshot {
        Some(snap) => (
            ingest.decode_shard(&snap.bytes).unwrap_or_else(|e| {
                panic!(
                    "collector {collector}: snapshot from epoch {} ({} bytes) failed to decode: {e}",
                    snap.epoch,
                    snap.bytes.len()
                )
            }),
            Some(snap.epoch),
        ),
        None => (ingest.new_shard(), None),
    };
    let mut replayed_reports = 0u64;
    for chunk in log {
        replayed_reports += chunk.frame_lens.len() as u64;
        absorb_chunk(ingest, &mut shard, collector, chunk);
    }
    (shard, from_epoch, replayed_reports)
}

/// One simulated collector node.
struct CollectorState<S> {
    /// The in-memory partial aggregate; `None` while crashed.
    live: Option<S>,
    /// Last durable checkpoint, if any.
    snapshot: Option<Snapshot>,
    /// Spooled wire chunks since the last checkpoint — the replay log.
    log: Vec<WireChunk>,
}

/// Cumulative resource accounting of one engine run.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// Epochs ingested.
    pub epochs: u64,
    /// Users ingested.
    pub users: u64,
    /// Total bytes all reports occupied on the (simulated) wire.
    pub wire_bytes: u64,
    /// Wall-clock time of the respond + encode phases.
    pub client_total: Duration,
    /// Wall-clock time of the collectors' decode + absorb phases.
    pub ingest_total: Duration,
    /// Checkpoints taken and their total wall-clock cost.
    pub checkpoints: u64,
    /// Total time spent encoding snapshots.
    pub checkpoint_total: Duration,
    /// Total snapshot bytes across collectors at the latest checkpoint.
    pub snapshot_bytes_last: u64,
    /// Recoveries performed and their total wall-clock cost.
    pub recoveries: u64,
    /// Total time spent decoding snapshots and replaying spools.
    pub recovery_total: Duration,
    /// Reports replayed from spools across all recoveries.
    pub replayed_reports: u64,
    /// Time to combine the collector shards at the end of the stream.
    pub merge_total: Duration,
    /// Peak worker threads used by the parallel phases (for the
    /// pipelined runtime: encoder workers plus collector actors).
    pub threads: usize,
    /// Backpressure high-water mark of the pipelined runtime: the most
    /// wire chunks ever waiting in one collector's bounded queue.
    /// Always 0 for the lock-step [`StreamEngine`] (no queues).
    pub max_queue_occupancy: usize,
    /// Total time the pipelined runtime's producers spent blocked on
    /// full collector queues (the backpressure cost). Always zero for
    /// the lock-step [`StreamEngine`].
    pub producer_stall: Duration,
    /// Mid-stream `finish_at_epoch` queries answered.
    pub finish_queries: u64,
    /// Total wall-clock time inside `finish_at_epoch` (fold + decode +
    /// estimate sweep + sort).
    pub finish_total: Duration,
    /// Time spent *folding* the durable view into finish state: decoding
    /// collector snapshots, merging them, and (re-)encoding the merged
    /// aggregate. Paid once per checkpoint stamp, not once per query —
    /// the incremental-finalization win.
    pub fold_total: Duration,
    /// `finish_at_epoch` queries answered from incrementally folded
    /// state (a memoized heavy-hitter list or the cached merged durable
    /// view) instead of a from-scratch decode + merge.
    pub finish_cache_hits: u64,
    /// Scratch-pool buffer handouts served by reuse (see
    /// [`hh_math::par::FinishScratch::handout_counts`]).
    pub scratch_reused: u64,
    /// Scratch-pool buffer handouts that had to allocate fresh.
    pub scratch_fresh: u64,
}

/// Outcome of one [`StreamEngine::checkpoint`].
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// Bytes written across all snapshotted collectors.
    pub snapshot_bytes: u64,
    /// Collectors snapshotted (crashed nodes are skipped).
    pub collectors: usize,
    /// Wall-clock encoding time.
    pub elapsed: Duration,
}

/// Outcome of one [`StreamEngine::recover_collector`].
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// The epoch of the snapshot recovery started from (`None` = the
    /// node had never checkpointed; recovery replayed its whole spool).
    pub from_epoch: Option<u64>,
    /// Reports replayed from the spool.
    pub replayed_reports: u64,
    /// Wall-clock decode + replay time.
    pub elapsed: Duration,
}

/// The streaming epoch engine (see the module docs).
///
/// Generic over [`StreamIngest`], so one implementation serves both
/// heavy-hitter protocols ([`HhStream`]) and frequency oracles
/// ([`OracleStream`]); the concrete wrappers add `finish_at_epoch` /
/// `finish` in their protocol family's vocabulary.
pub struct StreamEngine<I: StreamIngest> {
    ingest: I,
    plan: StreamPlan,
    client_seed: u64,
    collectors: Vec<CollectorState<I::Shard>>,
    epoch: u64,
    users: u64,
    /// Global chunk counter — routing is `chunk % collectors` across the
    /// whole stream, exactly as in the one-shot distributed run.
    next_chunk: usize,
    /// Recycled wire-chunk byte buffers: the respond phase takes them,
    /// the spool holds them until its checkpoint truncation returns
    /// them. After the first checkpointed epoch, steady-state ingest
    /// reuses this capacity instead of allocating per chunk.
    pool: BufferPool,
    /// Bumped whenever the durable view changes (every checkpoint).
    /// Stamps the incremental finish caches below.
    finish_stamp: u64,
    /// The merged durable view, incrementally folded: per-collector
    /// snapshots decoded, merged, and re-encoded once per stamp. Warm
    /// `finish_at_epoch` queries decode this single artifact instead of
    /// re-running the per-collector decode + merge tree.
    merged_bytes: Option<(u64, Vec<u8>)>,
    /// Memoized heavy-hitter answer per stamp (HH family only): repeated
    /// queries at an unchanged checkpoint skip the decode entirely.
    cached_answer: Option<(u64, Vec<(u64, f64)>)>,
    /// Engine-owned decode scratch: thread plan plus reusable buffers,
    /// so repeated mid-stream queries allocate nothing steady-state.
    scratch: hh_math::par::FinishScratch,
    stats: StreamStats,
}

impl<I: StreamIngest + Sync> StreamEngine<I> {
    /// Start a stream. `seed` is the run seed of the matching serial
    /// reference run (client coins derive from it per
    /// [`StreamIngest::CLIENT_LABEL`]).
    pub fn new(ingest: I, plan: StreamPlan, seed: u64) -> Self {
        plan.validate();
        let collectors = (0..plan.dist.collectors)
            .map(|_| CollectorState {
                live: Some(ingest.new_shard()),
                snapshot: None,
                log: Vec::new(),
            })
            .collect();
        Self {
            client_seed: derive_seed(seed, I::CLIENT_LABEL),
            ingest,
            plan,
            collectors,
            epoch: 0,
            users: 0,
            next_chunk: 0,
            pool: BufferPool::new(),
            finish_stamp: 0,
            merged_bytes: None,
            cached_answer: None,
            scratch: hh_math::par::FinishScratch::default(),
            stats: StreamStats::default(),
        }
    }

    /// Epochs ingested so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Users ingested so far.
    pub fn users(&self) -> u64 {
        self.users
    }

    /// Cumulative resource accounting.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Per-collector size in bytes of the latest snapshot (`None` = the
    /// node has never checkpointed).
    pub fn snapshot_sizes(&self) -> Vec<Option<usize>> {
        self.collectors
            .iter()
            .map(|n| n.snapshot.as_ref().map(|s| s.bytes.len()))
            .collect()
    }

    /// Per-collector epoch of the latest snapshot (`None` = the node has
    /// never checkpointed). Callers of [`StreamEngine::snapshot_shard`] /
    /// `finish_at_epoch` can check this to detect a *ragged* durable
    /// view: while a crashed node sits unrecovered across a checkpoint,
    /// its snapshot stays at an older epoch than its peers'.
    pub fn snapshot_epochs(&self) -> Vec<Option<u64>> {
        self.collectors
            .iter()
            .map(|n| n.snapshot.as_ref().map(|s| s.epoch))
            .collect()
    }

    /// Whether a collector currently holds a live shard.
    pub fn is_alive(&self, node: usize) -> bool {
        self.collectors[node].live.is_some()
    }

    /// Ingest one epoch: the next `xs.len()` users of the population.
    /// The fused respond + encode phase samples each chunk's reports
    /// straight into a pooled wire buffer (no intermediate report vec);
    /// each chunk is routed to collector `global_chunk % k`, absorbed
    /// into the node's live shard *from its borrowed frames*
    /// (`absorb_wire` — no decoded report vec either), and appended to
    /// its spool. Auto-checkpoints on the
    /// [`StreamPlan::checkpoint_every`] cadence.
    pub fn ingest_epoch(&mut self, xs: &[u64]) {
        let k = self.plan.dist.collectors;
        let chunk_size = self.plan.dist.chunk_size;
        let threads = self.plan.dist.threads;
        let start_user = self.users;
        self.stats.threads = self
            .stats
            .threads
            .max(planned_threads(threads, xs.len(), chunk_size));

        // Phase 1: fused respond + encode (the clients' messages as they
        // leave the devices), written into pooled buffers.
        let t0 = Instant::now();
        let num_chunks = xs.len().div_ceil(chunk_size);
        let buffers: Vec<Vec<u8>> = (0..num_chunks).map(|_| self.pool.take()).collect();
        let wire: Vec<WireChunk> = {
            let ingest = &self.ingest;
            let client_seed = self.client_seed;
            par_chunk_zip_map(xs, chunk_size, threads, buffers, |c, slice, mut bytes| {
                let start = start_user + (c * chunk_size) as u64;
                debug_assert!(bytes.is_empty(), "pooled buffer not cleared");
                let frame_lens = ingest.respond_encode_batch(start, slice, client_seed, &mut bytes);
                WireChunk {
                    start,
                    bytes,
                    frame_lens,
                }
            })
        };
        self.stats.client_total += t0.elapsed();
        self.stats.wire_bytes += wire.iter().map(|w| w.bytes.len() as u64).sum::<u64>();

        // Phase 2: route + absorb-from-wire — collectors in parallel,
        // each owning its shard and its share of the epoch's chunks.
        // Crashed nodes only spool (their durable queue keeps
        // receiving).
        let t1 = Instant::now();
        let mut per_node: Vec<Vec<WireChunk>> = (0..k).map(|_| Vec::new()).collect();
        for (c, chunk) in wire.into_iter().enumerate() {
            per_node[(self.next_chunk + c) % k].push(chunk);
        }
        self.next_chunk += num_chunks;
        let work: Vec<(usize, Option<I::Shard>, Vec<WireChunk>)> = self
            .collectors
            .iter_mut()
            .zip(per_node)
            .enumerate()
            .map(|(id, (node, chunks))| (id, node.live.take(), chunks))
            .collect();
        let done = {
            let ingest = &self.ingest;
            par_map_owned(work, threads, |_, (id, mut live, chunks)| {
                if let Some(shard) = live.as_mut() {
                    for chunk in &chunks {
                        absorb_chunk(ingest, shard, id, chunk);
                    }
                }
                (live, chunks)
            })
        };
        for (node, (live, chunks)) in self.collectors.iter_mut().zip(done) {
            node.live = live;
            node.log.extend(chunks);
        }
        self.stats.ingest_total += t1.elapsed();

        self.users += xs.len() as u64;
        self.epoch += 1;
        self.stats.users = self.users;
        self.stats.epochs = self.epoch;
        if self.plan.checkpoint_every > 0
            && self.epoch.is_multiple_of(self.plan.checkpoint_every as u64)
        {
            self.checkpoint();
        }
    }

    /// Ingest a whole dataset in epochs of [`StreamPlan::epoch_size`].
    pub fn ingest_all(&mut self, data: &[u64]) {
        let mut off = 0;
        while off < data.len() {
            let hi = off.saturating_add(self.plan.epoch_size).min(data.len());
            self.ingest_epoch(&data[off..hi]);
            off = hi;
        }
    }

    /// Snapshot every live collector's shard to bytes (the durable
    /// artifact) and truncate its spool. Crashed collectors are skipped:
    /// their last snapshot stays valid and their spool keeps growing
    /// until recovery.
    ///
    /// The previous snapshot's byte buffer is reused for the new
    /// encoding (a checkpoint *replaces* the durable artifact), so
    /// steady-state checkpointing allocates nothing once buffers have
    /// grown to the shard's encoded size.
    pub fn checkpoint(&mut self) -> CheckpointReport {
        let t = Instant::now();
        let mut snapshot_bytes = 0u64;
        let mut snapshotted = 0usize;
        let pool = &mut self.pool;
        for node in &mut self.collectors {
            if let Some(shard) = &node.live {
                let snap = encode_snapshot(&self.ingest, shard, node.snapshot.take(), self.epoch);
                snapshot_bytes += snap.bytes.len() as u64;
                node.snapshot = Some(snap);
                // Truncate the spool: its chunks are no longer needed
                // for replay, so their buffers go back to the pool for
                // the next epoch's respond phase.
                pool.put_all(node.log.drain(..).map(WireChunk::into_buffer));
                snapshotted += 1;
            }
        }
        let elapsed = t.elapsed();
        // The durable view changed: stamp the incremental finish caches
        // stale (the fold itself happens lazily at the next query, so
        // steady-state checkpointing stays allocation-free).
        self.finish_stamp += 1;
        self.stats.checkpoints += 1;
        self.stats.checkpoint_total += elapsed;
        self.stats.snapshot_bytes_last = self
            .collectors
            .iter()
            .filter_map(|n| n.snapshot.as_ref())
            .map(|s| s.bytes.len() as u64)
            .sum();
        CheckpointReport {
            snapshot_bytes,
            collectors: snapshotted,
            elapsed,
        }
    }

    /// Crash a collector: its live shard is lost. Its spool (the durable
    /// queue feeding it) keeps receiving routed chunks, so nothing is
    /// dropped — recovery replays them.
    pub fn kill_collector(&mut self, node: usize) {
        let state = &mut self.collectors[node];
        assert!(state.live.is_some(), "collector {node} is already dead");
        state.live = None;
    }

    /// Recover a crashed collector: decode its last snapshot (or start
    /// empty if it never checkpointed) and replay only the spooled
    /// reports since. The rebuilt shard is bit-for-bit the shard an
    /// uninterrupted collector would hold.
    pub fn recover_collector(&mut self, node: usize) -> RecoveryReport {
        let state = &mut self.collectors[node];
        assert!(
            state.live.is_none(),
            "collector {node} is alive — nothing to recover"
        );
        let t = Instant::now();
        let (shard, from_epoch, replayed_reports) =
            rebuild_shard(&self.ingest, node, state.snapshot.as_ref(), &state.log);
        self.collectors[node].live = Some(shard);
        let elapsed = t.elapsed();
        self.stats.recoveries += 1;
        self.stats.recovery_total += elapsed;
        self.stats.replayed_reports += replayed_reports;
        RecoveryReport {
            from_epoch,
            replayed_reports,
            elapsed,
        }
    }

    /// The durable mid-stream view: decode every collector's last
    /// snapshot and merge them (in the plan's order), leaving all live
    /// shards untouched. `None` before the first checkpoint.
    ///
    /// When every collector checkpointed at the same boundary (the
    /// normal cadence), this is exactly the aggregate of the first
    /// `users-at-that-boundary` reports. While a crashed node sits
    /// unrecovered across later checkpoints its snapshot lags its
    /// peers', so the view is *ragged* — the honest answer of a degraded
    /// fleet, not a prefix of the stream. [`StreamEngine::snapshot_epochs`]
    /// exposes the per-node epochs so callers can detect this.
    pub fn snapshot_shard(&self) -> Option<I::Shard> {
        let shards: Vec<I::Shard> = self
            .collectors
            .iter()
            .enumerate()
            .filter_map(|(id, n)| n.snapshot.as_ref().map(|s| (id, s)))
            .map(|(id, s)| {
                self.ingest.decode_shard(&s.bytes).unwrap_or_else(|e| {
                    panic!(
                        "collector {id}: snapshot from epoch {} ({} bytes) failed to decode: {e}",
                        s.epoch,
                        s.bytes.len()
                    )
                })
            })
            .collect();
        if shards.is_empty() {
            return None;
        }
        Some(combine_shards(shards, self.plan.dist.merge, |a, b| {
            self.ingest.merge(a, b)
        }))
    }

    /// [`StreamEngine::snapshot_shard`] through the incremental fold
    /// cache: the first query after a checkpoint pays the per-collector
    /// decode + merge once and re-encodes the merged aggregate (reusing
    /// the previous stamp's buffer); subsequent queries at the same
    /// stamp decode that single artifact. Values are bit-for-bit the
    /// uncached [`StreamEngine::snapshot_shard`]'s because the snapshot
    /// codec round-trips exactly.
    fn merged_durable_shard(&mut self) -> Option<I::Shard> {
        let warm = matches!(&self.merged_bytes, Some((stamp, _)) if *stamp == self.finish_stamp);
        if warm {
            self.stats.finish_cache_hits += 1;
            let (_, bytes) = self.merged_bytes.as_ref().expect("warm cache");
            return Some(
                self.ingest
                    .decode_shard(bytes)
                    .expect("merged snapshot re-encoding round-trips"),
            );
        }
        let t = Instant::now();
        let merged = self.snapshot_shard()?;
        let mut bytes = match self.merged_bytes.take() {
            Some((_, mut b)) => {
                b.clear();
                b
            }
            None => Vec::with_capacity(self.ingest.shard_encoded_len(&merged)),
        };
        self.ingest.encode_shard_into(&merged, &mut bytes);
        self.merged_bytes = Some((self.finish_stamp, bytes));
        self.stats.fold_total += t.elapsed();
        Some(merged)
    }

    /// End the stream: recover any crashed collectors (replaying their
    /// spools), merge all live shards in the plan's order, and return
    /// the final aggregate with the run's accounting.
    pub fn into_live_shard(mut self) -> (I::Shard, StreamStats) {
        for node in 0..self.collectors.len() {
            if self.collectors[node].live.is_none() {
                self.recover_collector(node);
            }
        }
        let t = Instant::now();
        let shards: Vec<I::Shard> = self
            .collectors
            .into_iter()
            .map(|n| n.live.expect("all collectors recovered"))
            .collect();
        let merged = combine_shards(shards, self.plan.dist.merge, |a, b| self.ingest.merge(a, b));
        self.stats.merge_total += t.elapsed();
        (merged, self.stats)
    }
}

impl<'a, P> StreamEngine<HhStream<'a, P>>
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
{
    /// Answer a top-k query mid-stream from the merged decoded
    /// snapshots, without consuming the live shards. `fresh` must be a
    /// new instance built with the same parameters and public-randomness
    /// seed as the streamed protocol.
    ///
    /// Incremental: the expensive decode runs once per checkpoint stamp.
    /// The first query after a checkpoint folds the durable view (decode
    /// snapshots → merge → finish) and memoizes the answer; repeated
    /// queries at an unchanged checkpoint return the memoized list — the
    /// engine-owned [`hh_math::par::FinishScratch`] recycles the decode
    /// buffers, so warm queries allocate nothing beyond the returned
    /// `Vec`. Answers are bit-for-bit the from-scratch
    /// `finish_shard` + `finish` result (`finish` is deterministic).
    ///
    /// Panics when users have been ingested but no collector has
    /// checkpointed yet — an empty answer there would be
    /// indistinguishable from a genuinely empty stream. Call
    /// [`StreamEngine::checkpoint`] first (or set a
    /// [`StreamPlan::checkpoint_every`] cadence).
    pub fn finish_at_epoch(&mut self, fresh: &mut P) -> Vec<(u64, f64)> {
        let t = Instant::now();
        self.stats.finish_queries += 1;
        if let Some((stamp, answer)) = &self.cached_answer {
            if *stamp == self.finish_stamp {
                self.stats.finish_cache_hits += 1;
                let answer = answer.clone();
                self.stats.finish_total += t.elapsed();
                return answer;
            }
        }
        let folded = self.merged_durable_shard();
        let had_snapshot = folded.is_some();
        match folded {
            Some(shard) => fresh.finish_shard(shard),
            None => assert!(
                self.users == 0,
                "finish_at_epoch with {} users ingested but no checkpoint to answer from — \
                 call checkpoint() first (checkpoint_every = 0 never auto-checkpoints)",
                self.users
            ),
        }
        let answer = fresh.finish_with(&mut self.scratch);
        if had_snapshot {
            self.cached_answer = Some((self.finish_stamp, answer.clone()));
        }
        let (reused, fresh_bufs) = self.scratch.handout_counts();
        self.stats.scratch_reused = reused;
        self.stats.scratch_fresh = fresh_bufs;
        self.stats.finish_total += t.elapsed();
        answer
    }
}

impl<'a, O> StreamEngine<OracleStream<'a, O>>
where
    O: FrequencyOracle + Sync,
    O::Report: Send + Sync,
{
    /// Prepare a mid-stream frequency oracle from the merged decoded
    /// snapshots, without consuming the live shards: folds the durable
    /// view into `fresh` and finalizes it, so the caller can `estimate`.
    /// `fresh` must be a new instance built with the same parameters and
    /// public-randomness seed as the streamed oracle.
    ///
    /// Incremental: the per-collector decode + merge runs once per
    /// checkpoint stamp; repeated queries at an unchanged checkpoint
    /// decode the cached merged artifact instead (the oracle's state
    /// lives in the caller's `fresh`, so the fold into it still runs,
    /// through the engine-owned scratch). Resulting estimates are
    /// bit-for-bit the from-scratch `finish_shard` + `finalize` result.
    ///
    /// Panics when users have been ingested but no collector has
    /// checkpointed yet — zero estimates there would be
    /// indistinguishable from a genuinely empty stream. Call
    /// [`StreamEngine::checkpoint`] first (or set a
    /// [`StreamPlan::checkpoint_every`] cadence).
    pub fn finish_at_epoch(&mut self, fresh: &mut O) {
        let t = Instant::now();
        self.stats.finish_queries += 1;
        match self.merged_durable_shard() {
            Some(shard) => fresh.finish_shard(shard),
            None => assert!(
                self.users == 0,
                "finish_at_epoch with {} users ingested but no checkpoint to answer from — \
                 call checkpoint() first (checkpoint_every = 0 never auto-checkpoints)",
                self.users
            ),
        }
        fresh.finalize_with(&mut self.scratch);
        let (reused, fresh_bufs) = self.scratch.handout_counts();
        self.stats.scratch_reused = reused;
        self.stats.scratch_fresh = fresh_bufs;
        self.stats.finish_total += t.elapsed();
    }
}

impl<'a> StreamEngine<DynHhStream<'a>> {
    /// Type-erased [`finish_at_epoch`](StreamEngine::finish_at_epoch):
    /// the same incremental mid-stream query over a registry-dispatched
    /// protocol. `fresh` must be built from the same
    /// [`ProtocolSpec`](crate::registry::ProtocolSpec) as the streamed
    /// protocol.
    pub fn finish_at_epoch(&mut self, fresh: &mut dyn DynHhProtocol) -> Vec<(u64, f64)> {
        let t = Instant::now();
        self.stats.finish_queries += 1;
        if let Some((stamp, answer)) = &self.cached_answer {
            if *stamp == self.finish_stamp {
                self.stats.finish_cache_hits += 1;
                let answer = answer.clone();
                self.stats.finish_total += t.elapsed();
                return answer;
            }
        }
        let folded = self.merged_durable_shard();
        let had_snapshot = folded.is_some();
        match folded {
            Some(shard) => fresh.finish_shard(shard),
            None => assert!(
                self.users == 0,
                "finish_at_epoch with {} users ingested but no checkpoint to answer from — \
                 call checkpoint() first (checkpoint_every = 0 never auto-checkpoints)",
                self.users
            ),
        }
        let answer = fresh.finish_with(&mut self.scratch);
        if had_snapshot {
            self.cached_answer = Some((self.finish_stamp, answer.clone()));
        }
        let (reused, fresh_bufs) = self.scratch.handout_counts();
        self.stats.scratch_reused = reused;
        self.stats.scratch_fresh = fresh_bufs;
        self.stats.finish_total += t.elapsed();
        answer
    }
}

impl<'a> StreamEngine<DynOracleStream<'a>> {
    /// Type-erased oracle [`finish_at_epoch`](StreamEngine::finish_at_epoch):
    /// folds the merged durable view into `fresh` and finalizes it
    /// through the engine-owned scratch, so the caller can `estimate`.
    pub fn finish_at_epoch(&mut self, fresh: &mut dyn DynOracle) {
        let t = Instant::now();
        self.stats.finish_queries += 1;
        match self.merged_durable_shard() {
            Some(shard) => fresh.finish_shard(shard),
            None => assert!(
                self.users == 0,
                "finish_at_epoch with {} users ingested but no checkpoint to answer from — \
                 call checkpoint() first (checkpoint_every = 0 never auto-checkpoints)",
                self.users
            ),
        }
        fresh.finalize_with(&mut self.scratch);
        let (reused, fresh_bufs) = self.scratch.handout_counts();
        self.stats.scratch_reused = reused;
        self.stats.scratch_fresh = fresh_bufs;
        self.stats.finish_total += t.elapsed();
    }
}
