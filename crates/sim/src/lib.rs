//! Workload generation and protocol simulation with resource accounting.
//!
//! The paper's Table 1 compares protocols on seven metrics (server/user
//! time, server/user memory, communication, public randomness, error).
//! This crate provides the harness that measures them on a single
//! machine: [`workload`] generates the distributed inputs, [`run`]
//! executes a protocol user-by-user with phase timing and resource
//! accounting, and [`metrics`] summarizes accuracy against ground truth.

pub mod metrics;
pub mod run;
pub mod workload;

pub use run::{run_heavy_hitter, run_oracle, OracleRun, ProtocolRun};
pub use workload::Workload;
