//! Workload generation and protocol execution — serial and batched —
//! with the paper's Table 1 resource accounting.
//!
//! The paper's Table 1 compares protocols on seven metrics (server/user
//! time, server/user memory, communication, public randomness, error).
//! This crate is the harness that measures them on one machine, at
//! population scale:
//!
//! * [`workload`] generates the distributed inputs (planted heavy
//!   hitters, Zipf skew, the URL-telemetry mixture);
//! * [`run`] executes a protocol over the population and times each
//!   phase. Three drivers share one reproducibility contract:
//!   - [`run_heavy_hitter`] / [`run_oracle`] — the serial reference
//!     path, one user at a time;
//!   - [`run_heavy_hitter_batched`] / [`run_oracle_batched`] — the
//!     fused parallel pipeline: chunked `respond_encode_batch` on
//!     scoped worker threads (each chunk's reports sampled straight
//!     into a wire buffer), zero-copy `absorb_wire` ingest into
//!     per-chunk shards merged tree-wise, then the unchanged `finish`.
//!     Configured by [`BatchPlan`] (chunk size, thread count — neither
//!     affects output);
//!   - [`run_heavy_hitter_distributed`] / [`run_oracle_distributed`] —
//!     a simulated collector fleet: every report crosses the wire as a
//!     fused-encoded frame, chunks are routed to one of `k` collector
//!     nodes, folded there from borrowed frames, and the shards are
//!     merged (tree-wise by default) before `finish`. Configured by
//!     [`DistPlan`] (collector count, chunk size, threads,
//!     [`MergeOrder`] — none affects output); also accounts measured
//!     wire bytes. Both are thin single-epoch wrappers over [`stream`].
//! * [`stream`] is the open-ended ingestion engine: reports arrive in
//!   *epochs*, every collector's shard is snapshotted to bytes at
//!   checkpoint boundaries (the `WireShard` codec), a killed collector
//!   recovers by decoding its last snapshot and replaying only the
//!   spooled reports since, and mid-stream queries are answered from
//!   the merged decoded snapshots without stopping the stream.
//!   Configured by [`StreamPlan`] (epoch size, checkpoint cadence, the
//!   fleet's [`DistPlan`] — none affects output).
//! * [`pipeline`] removes the lock-step engine's epoch barriers:
//!   long-lived collector *actor* threads behind bounded queues absorb
//!   chunks, encode checkpoints and replay recoveries concurrently with
//!   the client-side encoding, under backpressure — bit-for-bit equal
//!   to [`stream`]'s engine for every queue depth and worker count
//!   (chunk sequence numbers keep per-collector order exact).
//!   Configured by [`PipelineConfig`].
//! * [`erased`] is the object-safe protocol layer — [`DynHhProtocol`] /
//!   [`DynOracle`] pass reports as wire frames and shards as opaque
//!   boxes or snapshot bytes, so every driver and engine above also
//!   runs protocols chosen at *runtime*; [`registry`] maps stable names
//!   to constructors from one [`ProtocolSpec`].
//! * [`metrics`] summarizes accuracy against ground truth.
//!
//! **Determinism:** user `i`'s client coins are the derived stream
//! `client_rng(client_seed, i)` in every driver, and every protocol
//! aggregates through order-exact integer shards, so for a fixed seed
//! the batched and distributed drivers are bit-for-bit equivalent to
//! the serial one at any chunk size, thread count, collector count and
//! merge order. This is load-bearing for the experiment harness (perf
//! changes can never silently change results) and is pinned by the
//! `batch_equivalence` and `distributed_merge` integration tests at the
//! workspace root.

pub mod erased;
pub mod metrics;
pub mod pipeline;
pub mod registry;
pub mod run;
pub mod stream;
pub mod workload;

pub use erased::{
    erase_hh, erase_oracle, DynHhProtocol, DynHhStream, DynOracle, DynOracleStream, DynShard,
    Erased,
};
pub use metrics::FinishPhase;
pub use pipeline::{run_pipelined, run_pipelined_all, PipelineConfig, PipelineSession};
pub use registry::{build_hh, build_oracle, ProtocolSpec};
pub use run::{
    run_dyn_heavy_hitter, run_dyn_heavy_hitter_batched, run_dyn_heavy_hitter_distributed,
    run_dyn_oracle, run_dyn_oracle_batched, run_dyn_oracle_distributed, run_heavy_hitter,
    run_heavy_hitter_batched, run_heavy_hitter_distributed, run_oracle, run_oracle_batched,
    run_oracle_distributed, BatchPlan, DistPlan, DistributedOracleRun, DistributedRun, MergeOrder,
    OracleRun, ProtocolRun,
};
pub use stream::{
    CheckpointReport, HhStream, MaterializingIngest, OracleStream, RecoveryReport, StreamEngine,
    StreamIngest, StreamPlan, StreamStats,
};
pub use workload::{StreamWorkload, Workload};
