//! Workload generation and protocol execution — serial and batched —
//! with the paper's Table 1 resource accounting.
//!
//! The paper's Table 1 compares protocols on seven metrics (server/user
//! time, server/user memory, communication, public randomness, error).
//! This crate is the harness that measures them on one machine, at
//! population scale:
//!
//! * [`workload`] generates the distributed inputs (planted heavy
//!   hitters, Zipf skew, the URL-telemetry mixture);
//! * [`run`] executes a protocol over the population and times each
//!   phase. Two drivers share one reproducibility contract:
//!   - [`run_heavy_hitter`] / [`run_oracle`] — the serial reference
//!     path, one user at a time;
//!   - [`run_heavy_hitter_batched`] / [`run_oracle_batched`] — the
//!     batch-first parallel pipeline: chunked `respond_batch` on scoped
//!     worker threads, chunk-ordered sharded-accumulator `collect_batch`
//!     ingest, then the unchanged `finish`. Configured by [`BatchPlan`]
//!     (chunk size, thread count — neither affects output).
//! * [`metrics`] summarizes accuracy against ground truth.
//!
//! **Determinism:** user `i`'s client coins are the derived stream
//! `client_rng(client_seed, i)` in both drivers, and every protocol
//! ingests reports through order-exact integer tallies, so for a fixed
//! seed the batched driver is bit-for-bit equivalent to the serial one
//! at any chunk size and thread count. This is load-bearing for the
//! experiment harness (perf changes can never silently change results)
//! and is pinned by the `batch_equivalence` integration tests at the
//! workspace root.

pub mod metrics;
pub mod run;
pub mod workload;

pub use run::{
    run_heavy_hitter, run_heavy_hitter_batched, run_oracle, run_oracle_batched, BatchPlan,
    OracleRun, ProtocolRun,
};
pub use workload::Workload;
