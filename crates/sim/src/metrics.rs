//! Accuracy metrics over repeated trials.

use hh_core::verify;
use hh_math::stats;

/// Accuracy summary of one protocol output against ground truth at
/// threshold `Δ`.
#[derive(Debug, Clone, Copy)]
pub struct TrialSummary {
    /// Fraction of Δ-heavy elements recovered.
    pub recall: f64,
    /// Fraction of reported elements that are genuinely (Δ/4)-frequent.
    pub precision: f64,
    /// Worst estimation error over the output list.
    pub max_error: f64,
    /// Output list length.
    pub list_len: usize,
}

/// Summarize one run.
pub fn summarize(data: &[u64], estimates: &[(u64, f64)], delta: f64) -> TrialSummary {
    let report = verify::check_contract(data, estimates, delta);
    TrialSummary {
        recall: verify::heavy_recall(data, estimates, delta),
        precision: verify::precision_at_half(data, estimates, delta),
        max_error: report.max_estimation_error,
        list_len: report.list_len,
    }
}

/// Aggregate over trials (median accuracy, worst-case recall, measured
/// failure rate of the Definition 3.1 contract).
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Median recall across trials.
    pub median_recall: f64,
    /// Minimum recall (worst trial).
    pub min_recall: f64,
    /// Median of per-trial max estimation error.
    pub median_max_error: f64,
    /// 90th percentile of max estimation error.
    pub p90_max_error: f64,
    /// Fraction of trials with perfect recall — `1 −` this is the
    /// measured analogue of the theorems' β.
    pub success_rate: f64,
    /// Median output list length.
    pub median_list_len: f64,
}

/// Combine trial summaries.
pub fn aggregate(summaries: &[TrialSummary]) -> Aggregate {
    assert!(!summaries.is_empty());
    let recalls: Vec<f64> = summaries.iter().map(|s| s.recall).collect();
    let errors: Vec<f64> = summaries.iter().map(|s| s.max_error).collect();
    let lens: Vec<f64> = summaries.iter().map(|s| s.list_len as f64).collect();
    Aggregate {
        trials: summaries.len(),
        median_recall: stats::median(&recalls),
        min_recall: recalls.iter().copied().fold(f64::INFINITY, f64::min),
        median_max_error: stats::median(&errors),
        p90_max_error: stats::quantile(&errors, 0.9),
        success_rate: recalls.iter().filter(|&&r| r >= 1.0).count() as f64 / summaries.len() as f64,
        median_list_len: stats::median(&lens),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_perfect_output() {
        let data = vec![1, 1, 1, 2];
        let est = vec![(1u64, 3.0)];
        let s = summarize(&data, &est, 3.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.max_error, 0.0);
    }

    #[test]
    fn aggregate_counts_failures() {
        let good = TrialSummary {
            recall: 1.0,
            precision: 1.0,
            max_error: 2.0,
            list_len: 3,
        };
        let bad = TrialSummary {
            recall: 0.5,
            precision: 1.0,
            max_error: 9.0,
            list_len: 3,
        };
        let agg = aggregate(&[good, good, good, bad]);
        assert_eq!(agg.trials, 4);
        assert!((agg.success_rate - 0.75).abs() < 1e-12);
        assert_eq!(agg.min_recall, 0.5);
        assert!(agg.p90_max_error >= agg.median_max_error);
    }
}
