//! Accuracy metrics over repeated trials, plus the finish-phase
//! accounting distilled from a streaming run's counters.

use crate::stream::StreamStats;
use hh_core::verify;
use hh_math::stats;

/// Accuracy summary of one protocol output against ground truth at
/// threshold `Δ`.
#[derive(Debug, Clone, Copy)]
pub struct TrialSummary {
    /// Fraction of Δ-heavy elements recovered.
    pub recall: f64,
    /// Fraction of reported elements that are genuinely (Δ/4)-frequent.
    pub precision: f64,
    /// Worst estimation error over the output list.
    pub max_error: f64,
    /// Output list length.
    pub list_len: usize,
}

/// Summarize one run.
pub fn summarize(data: &[u64], estimates: &[(u64, f64)], delta: f64) -> TrialSummary {
    let report = verify::check_contract(data, estimates, delta);
    TrialSummary {
        recall: verify::heavy_recall(data, estimates, delta),
        precision: verify::precision_at_half(data, estimates, delta),
        max_error: report.max_estimation_error,
        list_len: report.list_len,
    }
}

/// Aggregate over trials (median accuracy, worst-case recall, measured
/// failure rate of the Definition 3.1 contract).
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Median recall across trials.
    pub median_recall: f64,
    /// Minimum recall (worst trial).
    pub min_recall: f64,
    /// Median of per-trial max estimation error.
    pub median_max_error: f64,
    /// 90th percentile of max estimation error.
    pub p90_max_error: f64,
    /// Fraction of trials with perfect recall — `1 −` this is the
    /// measured analogue of the theorems' β.
    pub success_rate: f64,
    /// Median output list length.
    pub median_list_len: f64,
}

/// Combine trial summaries.
pub fn aggregate(summaries: &[TrialSummary]) -> Aggregate {
    assert!(!summaries.is_empty());
    let recalls: Vec<f64> = summaries.iter().map(|s| s.recall).collect();
    let errors: Vec<f64> = summaries.iter().map(|s| s.max_error).collect();
    let lens: Vec<f64> = summaries.iter().map(|s| s.list_len as f64).collect();
    Aggregate {
        trials: summaries.len(),
        median_recall: stats::median(&recalls),
        min_recall: recalls.iter().copied().fold(f64::INFINITY, f64::min),
        median_max_error: stats::median(&errors),
        p90_max_error: stats::quantile(&errors, 0.9),
        success_rate: recalls.iter().filter(|&&r| r >= 1.0).count() as f64 / summaries.len() as f64,
        median_list_len: stats::median(&lens),
    }
}

/// Finish-phase accounting of one streaming run: how much of the
/// server-side decode work was answered incrementally, distilled from
/// [`StreamStats`] for the `--stream` / `--pipeline` bench reports.
#[derive(Debug, Clone, Copy)]
pub struct FinishPhase {
    /// Mid-stream `finish_at_epoch` queries answered.
    pub queries: u64,
    /// Total wall-clock seconds inside `finish_at_epoch`.
    pub finish_secs: f64,
    /// Seconds spent folding the durable view into finish state (paid
    /// once per checkpoint stamp, not once per query).
    pub fold_secs: f64,
    /// Queries answered from incrementally folded state.
    pub cache_hits: u64,
    /// Scratch-pool buffer handouts served by reuse.
    pub scratch_reused: u64,
    /// Scratch-pool buffer handouts that allocated fresh.
    pub scratch_fresh: u64,
}

impl FinishPhase {
    /// Distill the finish-phase counters out of a run's [`StreamStats`].
    pub fn from_stats(stats: &StreamStats) -> Self {
        Self {
            queries: stats.finish_queries,
            finish_secs: stats.finish_total.as_secs_f64(),
            fold_secs: stats.fold_total.as_secs_f64(),
            cache_hits: stats.finish_cache_hits,
            scratch_reused: stats.scratch_reused,
            scratch_fresh: stats.scratch_fresh,
        }
    }

    /// Fraction of queries answered from incrementally folded state
    /// (0 when no queries ran).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Fraction of scratch-buffer handouts served by reuse (0 before
    /// any handout).
    pub fn scratch_reuse_rate(&self) -> f64 {
        let total = self.scratch_reused + self.scratch_fresh;
        if total == 0 {
            0.0
        } else {
            self.scratch_reused as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_phase_rates() {
        let stats = StreamStats {
            finish_queries: 4,
            finish_cache_hits: 3,
            scratch_reused: 6,
            scratch_fresh: 2,
            ..Default::default()
        };
        let phase = FinishPhase::from_stats(&stats);
        assert_eq!(phase.cache_hit_rate(), 0.75);
        assert_eq!(phase.scratch_reuse_rate(), 0.75);
        let empty = FinishPhase::from_stats(&StreamStats::default());
        assert_eq!(empty.cache_hit_rate(), 0.0);
        assert_eq!(empty.scratch_reuse_rate(), 0.0);
    }

    #[test]
    fn summary_of_perfect_output() {
        let data = vec![1, 1, 1, 2];
        let est = vec![(1u64, 3.0)];
        let s = summarize(&data, &est, 3.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.max_error, 0.0);
    }

    #[test]
    fn aggregate_counts_failures() {
        let good = TrialSummary {
            recall: 1.0,
            precision: 1.0,
            max_error: 2.0,
            list_len: 3,
        };
        let bad = TrialSummary {
            recall: 0.5,
            precision: 1.0,
            max_error: 9.0,
            list_len: 3,
        };
        let agg = aggregate(&[good, good, good, bad]);
        assert_eq!(agg.trials, 4);
        assert!((agg.success_rate - 0.75).abs() < 1e-12);
        assert_eq!(agg.min_recall, 0.5);
        assert!(agg.p90_max_error >= agg.median_max_error);
    }
}
