//! The pipelined collector runtime: long-lived collector actors fed by
//! bounded channels, so ingest, absorption and checkpointing overlap.
//!
//! The lock-step [`StreamEngine`](crate::stream::StreamEngine) runs each
//! epoch as parallel respond → barrier → parallel absorb → barrier →
//! checkpoint: collector threads idle while clients encode, clients idle
//! while collectors absorb, and everyone idles while snapshots encode —
//! exactly the central coordination cost the fully-distributed local
//! model is supposed to avoid. This module removes the barriers:
//!
//! * every collector is a **long-lived actor thread** owning its shard,
//!   snapshot and spool, fed by a **bounded** command queue
//!   (`std::sync::mpsc::sync_channel`, depth
//!   [`PipelineConfig::queue_depth`]);
//! * the session side encodes wire chunks (on
//!   [`PipelineConfig::workers`] encoder threads) and sends each chunk
//!   to its collector **the moment it is encoded** — collectors absorb
//!   epoch `e`'s chunks while the producers are still encoding the rest
//!   of `e` (or already `e+1`), and cadence checkpoints execute inside
//!   the collector threads while the producers keep going;
//! * a full queue applies **backpressure**: the producer blocks until
//!   the collector drains, and the stall is measured
//!   ([`StreamStats::producer_stall`], with the high-water mark in
//!   [`StreamStats::max_queue_occupancy`]).
//!
//! # Bit-for-bit equivalence with the lock-step engine
//!
//! Every chunk carries its **global sequence number**; chunk `s` routes
//! to collector `s % k` (the lock-step rule), and each collector holds a
//! small reorder buffer so it absorbs its chunks in increasing sequence
//! order even when concurrent encoder workers finish out of order. All
//! of an epoch's sends happen before the epoch-boundary command sends
//! (checkpoint / kill / recover), and `mpsc` queues are FIFO, so every
//! collector observes exactly the lock-step event order: same chunks,
//! same order, same checkpoint boundaries. Shards, snapshots, recoveries
//! and final output are therefore *bit-for-bit* identical to
//! [`StreamEngine`](crate::stream::StreamEngine) — pinned by the
//! pipelined-vs-lock-step proptest grid in
//! `tests/streaming_equivalence.rs`.
//!
//! # Use
//!
//! The actors borrow the protocol, so the runtime runs inside a scope:
//! [`run_pipelined`] spawns the fleet, hands a [`PipelineSession`] to
//! your closure (drive it like the lock-step engine: `ingest_epoch`,
//! `checkpoint`, `kill_collector`, `recover_collector`,
//! `finish_at_epoch`), then shuts the fleet down, merges the collector
//! shards and returns the final aggregate with its [`StreamStats`].

use crate::erased::{DynHhProtocol, DynHhStream, DynOracle, DynOracleStream};
use crate::stream::{
    absorb_chunk, combine_shards, encode_snapshot, rebuild_shard, CheckpointReport, HhStream,
    OracleStream, RecoveryReport, Snapshot, StreamIngest, StreamPlan, StreamStats, WireChunk,
};
use hh_core::traits::HeavyHitterProtocol;
use hh_freq::traits::FrequencyOracle;
use hh_math::par::{BufferPool, FinishScratch};
use hh_math::rng::derive_seed;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shape of the pipelined runtime: how deep the collector queues are and
/// how many encoder threads feed them. Neither affects output.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Bounded depth (in wire chunks) of each collector's command
    /// queue. A full queue blocks the producer — backpressure instead of
    /// unbounded buffering.
    pub queue_depth: usize,
    /// Encoder threads running the fused `respond_encode_batch` on the
    /// session side. `1` encodes on the session thread itself (no extra
    /// threads, still fully overlapped with the collector actors).
    pub workers: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            queue_depth: 4,
            workers: rayon::current_num_threads().max(1),
        }
    }
}

impl PipelineConfig {
    /// Panic early (with the field named) on degenerate shapes instead
    /// of deadlocking on an unusable channel or encoding nothing.
    pub fn validate(&self) {
        assert!(
            self.queue_depth >= 1,
            "PipelineConfig.queue_depth must be >= 1 (got 0)"
        );
        assert!(
            self.workers >= 1,
            "PipelineConfig.workers must be >= 1 (got 0)"
        );
    }
}

/// One command down a collector's queue. Everything the lock-step engine
/// does to a collector between barriers arrives here as a message, in
/// the same order.
enum Cmd {
    /// One routed wire chunk. `seq` is the chunk's global sequence
    /// number — the collector absorbs strictly in `seq` order.
    Chunk { seq: u64, chunk: WireChunk },
    /// Snapshot the live shard (no-op while crashed) and truncate the
    /// spool. `epoch` stamps the snapshot; `reply` is `None` for
    /// fire-and-forget cadence checkpoints.
    Checkpoint {
        epoch: u64,
        reply: Option<Sender<CollectorCheckpoint>>,
    },
    /// Crash: drop the live shard. The spool keeps receiving.
    Kill,
    /// Rebuild the live shard from the last snapshot plus the spool.
    Recover { reply: Sender<RecoveryReport> },
    /// Copy the latest snapshot's bytes into `buf` (pooled by the
    /// session) for a mid-stream query.
    Query {
        buf: Vec<u8>,
        reply: Sender<QueryReply>,
    },
    /// End of stream: recover if crashed, then hand the live shard and
    /// the actor's accounting back and exit.
    Finish,
}

/// Reply to [`Cmd::Checkpoint`] when a report was requested.
struct CollectorCheckpoint {
    /// Whether a snapshot was written (`false` while crashed).
    snapshotted: bool,
    /// Size of the written snapshot.
    snapshot_bytes: u64,
}

/// Reply to [`Cmd::Query`].
struct QueryReply {
    collector: usize,
    /// Epoch of the returned snapshot (`None` = never checkpointed; the
    /// buffer comes back unused).
    epoch: Option<u64>,
    buf: Vec<u8>,
}

/// The accounting one collector actor hands back at [`Cmd::Finish`].
#[derive(Default)]
struct CollectorTotals {
    ingest_total: Duration,
    checkpoint_total: Duration,
    snapshot_bytes_last: u64,
    recoveries: u64,
    recovery_total: Duration,
    replayed_reports: u64,
}

/// The state one collector actor owns.
struct CollectorActor<'a, I: StreamIngest> {
    ingest: &'a I,
    id: usize,
    k: usize,
    /// The in-memory partial aggregate; `None` while crashed.
    live: Option<I::Shard>,
    snapshot: Option<Snapshot>,
    /// Spooled chunks since the last checkpoint, in sequence order.
    log: Vec<WireChunk>,
    /// Early arrivals from concurrent encoder workers, keyed by global
    /// sequence number, held until their predecessors are absorbed.
    pending: BTreeMap<u64, WireChunk>,
    /// The next global chunk sequence this collector will absorb
    /// (starts at `id`, steps by `k`).
    next_seq: u64,
    epoch: u64,
    pool_tx: Sender<Vec<u8>>,
    totals: CollectorTotals,
}

impl<'a, I: StreamIngest> CollectorActor<'a, I> {
    /// Absorb (if alive) and spool every pending chunk that is next in
    /// sequence order.
    fn drain_in_order(&mut self) {
        while let Some(chunk) = self.pending.remove(&self.next_seq) {
            self.next_seq += self.k as u64;
            if let Some(shard) = self.live.as_mut() {
                let t = Instant::now();
                absorb_chunk(self.ingest, shard, self.id, &chunk);
                self.totals.ingest_total += t.elapsed();
            }
            self.log.push(chunk);
        }
    }

    /// Snapshot the live shard (through the shared
    /// [`encode_snapshot`] sequence, reusing the previous snapshot's
    /// buffer) and truncate the spool — buffers go back to the
    /// session's pool.
    fn checkpoint(&mut self) -> CollectorCheckpoint {
        let Some(shard) = &self.live else {
            return CollectorCheckpoint {
                snapshotted: false,
                snapshot_bytes: 0,
            };
        };
        let t = Instant::now();
        let snap = encode_snapshot(self.ingest, shard, self.snapshot.take(), self.epoch);
        let snapshot_bytes = snap.bytes.len() as u64;
        self.snapshot = Some(snap);
        for chunk in self.log.drain(..) {
            // The session may have gone away on a panic path; losing
            // pooled buffers then is fine.
            let _ = self.pool_tx.send(chunk.into_buffer());
        }
        self.totals.checkpoint_total += t.elapsed();
        self.totals.snapshot_bytes_last = snapshot_bytes;
        CollectorCheckpoint {
            snapshotted: true,
            snapshot_bytes,
        }
    }

    /// Decode the last snapshot and replay the spool (the shared
    /// [`rebuild_shard`] sequence).
    fn recover(&mut self) -> RecoveryReport {
        assert!(
            self.live.is_none(),
            "collector {} is alive — nothing to recover",
            self.id
        );
        let t = Instant::now();
        let (shard, from_epoch, replayed_reports) =
            rebuild_shard(self.ingest, self.id, self.snapshot.as_ref(), &self.log);
        self.live = Some(shard);
        let elapsed = t.elapsed();
        self.totals.recoveries += 1;
        self.totals.recovery_total += elapsed;
        self.totals.replayed_reports += replayed_reports;
        RecoveryReport {
            from_epoch,
            replayed_reports,
            elapsed,
        }
    }
}

/// One collector actor's lifetime: receive commands until [`Cmd::Finish`]
/// (or the session disappears), then hand back the shard and accounting.
fn collector_loop<I: StreamIngest>(
    ingest: &I,
    id: usize,
    k: usize,
    rx: Receiver<Cmd>,
    pool_tx: Sender<Vec<u8>>,
    done_tx: Sender<(usize, I::Shard, CollectorTotals)>,
    occupancy: &AtomicUsize,
) {
    let mut actor = CollectorActor {
        ingest,
        id,
        k,
        live: Some(ingest.new_shard()),
        snapshot: None,
        log: Vec::new(),
        pending: BTreeMap::new(),
        next_seq: id as u64,
        epoch: 0,
        pool_tx,
        totals: CollectorTotals::default(),
    };
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Chunk { seq, chunk } => {
                occupancy.fetch_sub(1, Ordering::Relaxed);
                actor.pending.insert(seq, chunk);
                actor.drain_in_order();
            }
            Cmd::Checkpoint { epoch, reply } => {
                debug_assert!(
                    actor.pending.is_empty(),
                    "collector {id}: checkpoint arrived before its epoch's chunks"
                );
                actor.epoch = epoch;
                let report = actor.checkpoint();
                if let Some(reply) = reply {
                    let _ = reply.send(report);
                }
            }
            Cmd::Kill => {
                assert!(actor.live.is_some(), "collector {id} is already dead");
                actor.live = None;
            }
            Cmd::Recover { reply } => {
                let report = actor.recover();
                let _ = reply.send(report);
            }
            Cmd::Query { mut buf, reply } => {
                buf.clear();
                let epoch = actor.snapshot.as_ref().map(|snap| {
                    buf.extend_from_slice(&snap.bytes);
                    snap.epoch
                });
                let _ = reply.send(QueryReply {
                    collector: id,
                    epoch,
                    buf,
                });
            }
            Cmd::Finish => {
                if actor.live.is_none() {
                    actor.recover();
                }
                let shard = actor.live.take().expect("just recovered");
                done_tx
                    .send((id, shard, actor.totals))
                    .expect("session hung up before collecting shards");
                return;
            }
        }
    }
    // Session dropped without Finish (panic unwinding): just exit.
}

/// Route one encoded chunk to its collector, counting occupancy and
/// blocking (with the stall measured) when the queue is full.
fn send_chunk(
    txs: &[SyncSender<Cmd>],
    occupancy: &[AtomicUsize],
    max_occupancy: &AtomicUsize,
    stall_nanos: &AtomicU64,
    seq: u64,
    chunk: WireChunk,
) {
    let id = (seq % txs.len() as u64) as usize;
    // Counted before the send so the consumer's decrement can never
    // observe a zero it would wrap below; the high-water mark therefore
    // includes the chunk currently being offered.
    let occ = occupancy[id].fetch_add(1, Ordering::Relaxed) + 1;
    max_occupancy.fetch_max(occ, Ordering::Relaxed);
    match txs[id].try_send(Cmd::Chunk { seq, chunk }) {
        Ok(()) => {}
        Err(TrySendError::Full(cmd)) => {
            let t = Instant::now();
            txs[id].send(cmd).unwrap_or_else(|_| {
                panic!("collector {id} hung up with its queue full");
            });
            stall_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        Err(TrySendError::Disconnected(_)) => panic!("collector {id} hung up"),
    }
}

/// The driving half of the pipelined runtime (see the module docs): the
/// API of the lock-step engine, but every call is a message send into
/// the running collector fleet. Obtained inside [`run_pipelined`].
pub struct PipelineSession<'a, I: StreamIngest> {
    ingest: &'a I,
    plan: StreamPlan,
    config: PipelineConfig,
    client_seed: u64,
    txs: Vec<SyncSender<Cmd>>,
    pool_rx: Receiver<Vec<u8>>,
    pool: BufferPool,
    /// Pooled reply buffers for snapshot queries, so repeated mid-stream
    /// `finish_at_epoch` calls reuse capacity instead of re-allocating
    /// per snapshot.
    query_bufs: Vec<Vec<u8>>,
    /// Mirror of each collector's crashed/alive state (exact, because
    /// commands are applied in send order).
    alive: Vec<bool>,
    epoch: u64,
    users: u64,
    next_chunk: u64,
    checkpoints: u64,
    client_total: Duration,
    wire_bytes: u64,
    /// The merged durable view, incrementally folded once per checkpoint
    /// stamp (`checkpoints` count — commands apply in send order, so the
    /// count keys exactly the fleet state a query would observe). Warm
    /// `finish_at_epoch` calls decode this single artifact instead of
    /// round-tripping a snapshot query through every collector actor.
    merged_bytes: Option<(u64, Vec<u8>)>,
    /// Memoized heavy-hitter answer per stamp (HH family only).
    cached_answer: Option<(u64, Vec<(u64, f64)>)>,
    /// Session-owned decode scratch for mid-stream queries.
    scratch: FinishScratch,
    finish_queries: u64,
    finish_total: Duration,
    fold_total: Duration,
    finish_cache_hits: u64,
    occupancy: &'a [AtomicUsize],
    max_occupancy: &'a AtomicUsize,
    stall_nanos: &'a AtomicU64,
}

impl<'a, I: StreamIngest + Sync> PipelineSession<'a, I> {
    /// Epochs ingested so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Users ingested so far.
    pub fn users(&self) -> u64 {
        self.users
    }

    /// Whether a collector currently holds a live shard.
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// Ingest one epoch: encode the next `xs.len()` users' wire chunks
    /// (on [`PipelineConfig::workers`] threads) and stream each chunk to
    /// its collector as soon as it is encoded. Returns once every chunk
    /// is *enqueued* — absorption proceeds concurrently in the collector
    /// actors. Auto-checkpoints on the [`StreamPlan::checkpoint_every`]
    /// cadence (also asynchronously, inside the actors).
    pub fn ingest_epoch(&mut self, xs: &[u64]) {
        let chunk_size = self.plan.dist.chunk_size;
        let t0 = Instant::now();
        // Reclaim the buffers collectors freed at their last checkpoints.
        while let Ok(buf) = self.pool_rx.try_recv() {
            self.pool.put(buf);
        }
        let num_chunks = xs.len().div_ceil(chunk_size);
        let start_user = self.users;
        let workers = self.config.workers.min(num_chunks).max(1);
        if workers <= 1 {
            for (c, slice) in xs.chunks(chunk_size).enumerate() {
                let start = start_user + (c * chunk_size) as u64;
                let mut bytes = self.pool.take();
                let frame_lens =
                    self.ingest
                        .respond_encode_batch(start, slice, self.client_seed, &mut bytes);
                self.wire_bytes += bytes.len() as u64;
                send_chunk(
                    &self.txs,
                    self.occupancy,
                    self.max_occupancy,
                    self.stall_nanos,
                    self.next_chunk + c as u64,
                    WireChunk {
                        start,
                        bytes,
                        frame_lens,
                    },
                );
            }
        } else {
            // Concurrent encoders share a claim queue and send each
            // chunk themselves; collectors reorder by sequence number.
            let buffers: Vec<Vec<u8>> = (0..num_chunks).map(|_| self.pool.take()).collect();
            let work = Mutex::new(xs.chunks(chunk_size).zip(buffers).enumerate());
            let wire_bytes = AtomicU64::new(0);
            let (ingest, client_seed, base_seq) = (self.ingest, self.client_seed, self.next_chunk);
            let (txs, occupancy) = (&self.txs, self.occupancy);
            let (max_occupancy, stall_nanos) = (self.max_occupancy, self.stall_nanos);
            let (work, wire_total) = (&work, &wire_bytes);
            // Plain scoped OS threads, NOT a rayon pool: encoders block
            // on full collector queues (that's the backpressure), and a
            // blocked task would wedge a fixed work-stealing pool.
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(move || loop {
                        let next = work.lock().expect("encoder panicked").next();
                        let Some((c, (slice, mut bytes))) = next else {
                            break;
                        };
                        let start = start_user + (c * chunk_size) as u64;
                        debug_assert!(bytes.is_empty(), "pooled buffer not cleared");
                        let frame_lens =
                            ingest.respond_encode_batch(start, slice, client_seed, &mut bytes);
                        wire_total.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                        send_chunk(
                            txs,
                            occupancy,
                            max_occupancy,
                            stall_nanos,
                            base_seq + c as u64,
                            WireChunk {
                                start,
                                bytes,
                                frame_lens,
                            },
                        );
                    });
                }
            });
            self.wire_bytes += wire_bytes.load(Ordering::Relaxed);
        }
        self.next_chunk += num_chunks as u64;
        self.users += xs.len() as u64;
        self.epoch += 1;
        self.client_total += t0.elapsed();
        if self.plan.checkpoint_every > 0
            && self.epoch.is_multiple_of(self.plan.checkpoint_every as u64)
        {
            // Fire-and-forget: the snapshots encode inside the collector
            // actors while the next epoch's encoding proceeds.
            self.send_checkpoint(None);
        }
    }

    /// Ingest a whole dataset in epochs of [`StreamPlan::epoch_size`].
    pub fn ingest_all(&mut self, data: &[u64]) {
        let mut off = 0;
        while off < data.len() {
            let hi = off.saturating_add(self.plan.epoch_size).min(data.len());
            self.ingest_epoch(&data[off..hi]);
            off = hi;
        }
    }

    fn send_checkpoint(&mut self, reply: Option<&Sender<CollectorCheckpoint>>) {
        self.checkpoints += 1;
        for tx in &self.txs {
            tx.send(Cmd::Checkpoint {
                epoch: self.epoch,
                reply: reply.cloned(),
            })
            .expect("collector hung up");
        }
    }

    /// Checkpoint every live collector now and wait for the fleet's
    /// reports. (Cadence checkpoints don't wait; this explicit form
    /// matches the lock-step engine's synchronous `checkpoint()`.)
    pub fn checkpoint(&mut self) -> CheckpointReport {
        let t = Instant::now();
        let (reply_tx, reply_rx) = mpsc::channel();
        self.send_checkpoint(Some(&reply_tx));
        drop(reply_tx);
        let mut snapshot_bytes = 0u64;
        let mut collectors = 0usize;
        for _ in 0..self.txs.len() {
            let report = reply_rx.recv().expect("collector died mid-checkpoint");
            if report.snapshotted {
                snapshot_bytes += report.snapshot_bytes;
                collectors += 1;
            }
        }
        CheckpointReport {
            snapshot_bytes,
            collectors,
            elapsed: t.elapsed(),
        }
    }

    /// Crash a collector: its live shard is lost once the command
    /// reaches it (after everything already queued — the same stream
    /// position a lock-step kill at this epoch boundary would hit). Its
    /// spool keeps receiving routed chunks.
    pub fn kill_collector(&mut self, node: usize) {
        assert!(self.alive[node], "collector {node} is already dead");
        self.alive[node] = false;
        self.txs[node].send(Cmd::Kill).expect("collector hung up");
    }

    /// Recover a crashed collector (snapshot decode + spool replay, in
    /// the actor) and wait for its report.
    pub fn recover_collector(&mut self, node: usize) -> RecoveryReport {
        assert!(
            !self.alive[node],
            "collector {node} is alive — nothing to recover"
        );
        let (reply_tx, reply_rx) = mpsc::channel();
        self.txs[node]
            .send(Cmd::Recover { reply: reply_tx })
            .expect("collector hung up");
        let report = reply_rx.recv().expect("collector died mid-recovery");
        self.alive[node] = true;
        report
    }

    /// The durable mid-stream view: fetch every collector's latest
    /// snapshot (bytes copied into pooled buffers, reused across calls),
    /// decode and merge them in the plan's order. `None` before the
    /// first checkpoint. Live shards are untouched; the fleet keeps
    /// absorbing whatever is still queued while the session decodes.
    pub fn snapshot_shard(&mut self) -> Option<I::Shard> {
        let (reply_tx, reply_rx) = mpsc::channel();
        for tx in &self.txs {
            let buf = self.query_bufs.pop().unwrap_or_default();
            tx.send(Cmd::Query {
                buf,
                reply: reply_tx.clone(),
            })
            .expect("collector hung up");
        }
        drop(reply_tx);
        let k = self.txs.len();
        let mut slots: Vec<Option<(u64, Vec<u8>)>> = (0..k).map(|_| None).collect();
        for _ in 0..k {
            let reply = reply_rx.recv().expect("collector died mid-query");
            match reply.epoch {
                Some(epoch) => slots[reply.collector] = Some((epoch, reply.buf)),
                None => self.query_bufs.push(reply.buf),
            }
        }
        let mut shards: Vec<I::Shard> = Vec::new();
        for (id, slot) in slots.into_iter().enumerate() {
            if let Some((epoch, buf)) = slot {
                shards.push(self.ingest.decode_shard(&buf).unwrap_or_else(|e| {
                    panic!(
                        "collector {id}: snapshot from epoch {epoch} ({} bytes) failed to decode: {e}",
                        buf.len()
                    )
                }));
                self.query_bufs.push(buf);
            }
        }
        if shards.is_empty() {
            return None;
        }
        Some(combine_shards(shards, self.plan.dist.merge, |a, b| {
            self.ingest.merge(a, b)
        }))
    }

    /// [`PipelineSession::snapshot_shard`] through the incremental fold
    /// cache (see the lock-step engine's `merged_durable_shard`): the
    /// first query after a checkpoint pays the fleet-wide snapshot
    /// query, decode, and merge once and re-encodes the merged
    /// aggregate; subsequent queries at the same checkpoint count decode
    /// that single artifact without touching the collector actors.
    fn merged_durable_shard(&mut self) -> Option<I::Shard> {
        let warm = matches!(&self.merged_bytes, Some((stamp, _)) if *stamp == self.checkpoints);
        if warm {
            self.finish_cache_hits += 1;
            let (_, bytes) = self.merged_bytes.as_ref().expect("warm cache");
            return Some(
                self.ingest
                    .decode_shard(bytes)
                    .expect("merged snapshot re-encoding round-trips"),
            );
        }
        let t = Instant::now();
        let merged = self.snapshot_shard()?;
        let mut bytes = match self.merged_bytes.take() {
            Some((_, mut b)) => {
                b.clear();
                b
            }
            None => Vec::with_capacity(self.ingest.shard_encoded_len(&merged)),
        };
        self.ingest.encode_shard_into(&merged, &mut bytes);
        self.merged_bytes = Some((self.checkpoints, bytes));
        self.fold_total += t.elapsed();
        Some(merged)
    }

    /// Shut the fleet down: every actor recovers if crashed, hands its
    /// shard back, and exits; the shards merge in the plan's order.
    fn finish(
        self,
        done_rx: Receiver<(usize, I::Shard, CollectorTotals)>,
    ) -> (I::Shard, StreamStats) {
        let k = self.txs.len();
        for tx in &self.txs {
            tx.send(Cmd::Finish).expect("collector hung up");
        }
        drop(self.txs);
        let mut shard_slots: Vec<Option<I::Shard>> = (0..k).map(|_| None).collect();
        let (scratch_reused, scratch_fresh) = self.scratch.handout_counts();
        let mut stats = StreamStats {
            epochs: self.epoch,
            users: self.users,
            wire_bytes: self.wire_bytes,
            client_total: self.client_total,
            checkpoints: self.checkpoints,
            threads: self.config.workers + k,
            finish_queries: self.finish_queries,
            finish_total: self.finish_total,
            fold_total: self.fold_total,
            finish_cache_hits: self.finish_cache_hits,
            scratch_reused,
            scratch_fresh,
            ..StreamStats::default()
        };
        for _ in 0..k {
            let (id, shard, totals) = done_rx.recv().expect("collector died before finishing");
            shard_slots[id] = Some(shard);
            stats.ingest_total += totals.ingest_total;
            stats.checkpoint_total += totals.checkpoint_total;
            stats.snapshot_bytes_last += totals.snapshot_bytes_last;
            stats.recoveries += totals.recoveries;
            stats.recovery_total += totals.recovery_total;
            stats.replayed_reports += totals.replayed_reports;
        }
        stats.max_queue_occupancy = self.max_occupancy.load(Ordering::Relaxed);
        stats.producer_stall = Duration::from_nanos(self.stall_nanos.load(Ordering::Relaxed));
        let t = Instant::now();
        let shards: Vec<I::Shard> = shard_slots
            .into_iter()
            .map(|s| s.expect("every collector reported"))
            .collect();
        let merged = combine_shards(shards, self.plan.dist.merge, |a, b| self.ingest.merge(a, b));
        stats.merge_total = t.elapsed();
        (merged, stats)
    }
}

impl<'a, 'p, P> PipelineSession<'a, HhStream<'p, P>>
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
{
    /// Answer a top-k query mid-stream from the merged decoded
    /// snapshots, without consuming the live shards. `fresh` must be a
    /// new instance built with the same parameters and public-randomness
    /// seed as the streamed protocol.
    ///
    /// Incremental, like the lock-step engine's: the first query after a
    /// checkpoint folds the durable view and memoizes the answer;
    /// repeated queries at an unchanged checkpoint count return the
    /// memoized list, bit-for-bit the from-scratch result.
    ///
    /// Panics when users have been ingested but no collector has
    /// checkpointed yet — an empty answer there would be
    /// indistinguishable from a genuinely empty stream.
    pub fn finish_at_epoch(&mut self, fresh: &mut P) -> Vec<(u64, f64)> {
        let t = Instant::now();
        self.finish_queries += 1;
        if let Some((stamp, answer)) = &self.cached_answer {
            if *stamp == self.checkpoints {
                self.finish_cache_hits += 1;
                let answer = answer.clone();
                self.finish_total += t.elapsed();
                return answer;
            }
        }
        let folded = self.merged_durable_shard();
        let had_snapshot = folded.is_some();
        match folded {
            Some(shard) => fresh.finish_shard(shard),
            None => assert!(
                self.users == 0,
                "finish_at_epoch with {} users ingested but no checkpoint to answer from — \
                 call checkpoint() first (checkpoint_every = 0 never auto-checkpoints)",
                self.users
            ),
        }
        let answer = fresh.finish_with(&mut self.scratch);
        if had_snapshot {
            self.cached_answer = Some((self.checkpoints, answer.clone()));
        }
        self.finish_total += t.elapsed();
        answer
    }
}

impl<'a, 'p, O> PipelineSession<'a, OracleStream<'p, O>>
where
    O: FrequencyOracle + Sync,
    O::Report: Send + Sync,
{
    /// Prepare a mid-stream frequency oracle from the merged decoded
    /// snapshots, without consuming the live shards (the oracle analogue
    /// of the heavy-hitter `finish_at_epoch`). Incremental: repeated
    /// queries at an unchanged checkpoint count decode the cached merged
    /// artifact instead of round-tripping the collector fleet.
    pub fn finish_at_epoch(&mut self, fresh: &mut O) {
        let t = Instant::now();
        self.finish_queries += 1;
        match self.merged_durable_shard() {
            Some(shard) => fresh.finish_shard(shard),
            None => assert!(
                self.users == 0,
                "finish_at_epoch with {} users ingested but no checkpoint to answer from — \
                 call checkpoint() first (checkpoint_every = 0 never auto-checkpoints)",
                self.users
            ),
        }
        fresh.finalize_with(&mut self.scratch);
        self.finish_total += t.elapsed();
    }
}

impl<'a, 'p> PipelineSession<'a, DynHhStream<'p>> {
    /// Type-erased [`finish_at_epoch`](PipelineSession::finish_at_epoch):
    /// the same incremental mid-stream query over a registry-dispatched
    /// protocol. `fresh` must be built from the same
    /// [`ProtocolSpec`](crate::registry::ProtocolSpec) as the streamed
    /// protocol.
    pub fn finish_at_epoch(&mut self, fresh: &mut dyn DynHhProtocol) -> Vec<(u64, f64)> {
        let t = Instant::now();
        self.finish_queries += 1;
        if let Some((stamp, answer)) = &self.cached_answer {
            if *stamp == self.checkpoints {
                self.finish_cache_hits += 1;
                let answer = answer.clone();
                self.finish_total += t.elapsed();
                return answer;
            }
        }
        let folded = self.merged_durable_shard();
        let had_snapshot = folded.is_some();
        match folded {
            Some(shard) => fresh.finish_shard(shard),
            None => assert!(
                self.users == 0,
                "finish_at_epoch with {} users ingested but no checkpoint to answer from — \
                 call checkpoint() first (checkpoint_every = 0 never auto-checkpoints)",
                self.users
            ),
        }
        let answer = fresh.finish_with(&mut self.scratch);
        if had_snapshot {
            self.cached_answer = Some((self.checkpoints, answer.clone()));
        }
        self.finish_total += t.elapsed();
        answer
    }
}

impl<'a, 'p> PipelineSession<'a, DynOracleStream<'p>> {
    /// Type-erased oracle [`finish_at_epoch`](PipelineSession::finish_at_epoch):
    /// folds the merged durable view into `fresh` and finalizes it
    /// through the session-owned scratch, so the caller can `estimate`.
    pub fn finish_at_epoch(&mut self, fresh: &mut dyn DynOracle) {
        let t = Instant::now();
        self.finish_queries += 1;
        match self.merged_durable_shard() {
            Some(shard) => fresh.finish_shard(shard),
            None => assert!(
                self.users == 0,
                "finish_at_epoch with {} users ingested but no checkpoint to answer from — \
                 call checkpoint() first (checkpoint_every = 0 never auto-checkpoints)",
                self.users
            ),
        }
        fresh.finalize_with(&mut self.scratch);
        self.finish_total += t.elapsed();
    }
}

/// Run the pipelined collector runtime: spawn `plan.dist.collectors`
/// long-lived collector actors (plus the session's encoder workers),
/// hand a [`PipelineSession`] to `drive`, then shut the fleet down and
/// return the merged final shard, the run's [`StreamStats`], and
/// `drive`'s own result.
///
/// Output is bit-for-bit identical to driving the lock-step
/// [`StreamEngine`](crate::stream::StreamEngine) through the same
/// sequence of calls, for every queue depth and worker count (see the
/// module docs for why).
pub fn run_pipelined<I, R>(
    ingest: &I,
    plan: &StreamPlan,
    config: &PipelineConfig,
    seed: u64,
    drive: impl FnOnce(&mut PipelineSession<'_, I>) -> R,
) -> (I::Shard, StreamStats, R)
where
    I: StreamIngest + Sync,
{
    plan.validate();
    config.validate();
    let k = plan.dist.collectors;
    let occupancy: Vec<AtomicUsize> = (0..k).map(|_| AtomicUsize::new(0)).collect();
    let max_occupancy = AtomicUsize::new(0);
    let stall_nanos = AtomicU64::new(0);
    // Plain scoped OS threads, NOT a rayon pool: a collector actor
    // blocks in `recv` for the lifetime of the stream, and lifetime-long
    // blocking tasks would occupy (and at k >= pool size, wedge) a
    // fixed work-stealing pool.
    std::thread::scope(|s| {
        let (done_tx, done_rx) = mpsc::channel();
        let (pool_tx, pool_rx) = mpsc::channel();
        let mut txs = Vec::with_capacity(k);
        for (id, occ) in occupancy.iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel(config.queue_depth);
            txs.push(tx);
            let done_tx = done_tx.clone();
            let pool_tx = pool_tx.clone();
            s.spawn(move || collector_loop(ingest, id, k, rx, pool_tx, done_tx, occ));
        }
        drop(done_tx);
        drop(pool_tx);
        let mut session = PipelineSession {
            ingest,
            plan: plan.clone(),
            config: config.clone(),
            client_seed: derive_seed(seed, I::CLIENT_LABEL),
            txs,
            pool_rx,
            pool: BufferPool::new(),
            query_bufs: Vec::new(),
            alive: vec![true; k],
            epoch: 0,
            users: 0,
            next_chunk: 0,
            checkpoints: 0,
            client_total: Duration::ZERO,
            wire_bytes: 0,
            merged_bytes: None,
            cached_answer: None,
            scratch: FinishScratch::default(),
            finish_queries: 0,
            finish_total: Duration::ZERO,
            fold_total: Duration::ZERO,
            finish_cache_hits: 0,
            occupancy: &occupancy,
            max_occupancy: &max_occupancy,
            stall_nanos: &stall_nanos,
        };
        let out = drive(&mut session);
        let (shard, stats) = session.finish(done_rx);
        (shard, stats, out)
    })
}

/// Convenience: ingest `data` in [`StreamPlan::epoch_size`] epochs
/// through the pipelined runtime and return the merged final shard and
/// stats — the pipelined counterpart of building a lock-step engine,
/// calling `ingest_all`, and finishing it.
pub fn run_pipelined_all<I>(
    ingest: &I,
    plan: &StreamPlan,
    config: &PipelineConfig,
    seed: u64,
    data: &[u64],
) -> (I::Shard, StreamStats)
where
    I: StreamIngest + Sync,
{
    let (shard, stats, ()) = run_pipelined(ingest, plan, config, seed, |session| {
        session.ingest_all(data);
    });
    (shard, stats)
}
