//! Protocol execution with the Table 1 resource accounting: a serial
//! reference driver, a batched parallel driver, and a distributed
//! collector-fleet driver — all with identical output.
//!
//! # The reproducibility contract
//!
//! Every driver gives user `i` the client coin stream
//! [`client_rng`]`(client_seed, i)` where `client_seed` is derived from
//! the run seed. A user's report is therefore a pure function of
//! `(seed, i, x)`: the serial runner, the batched runner at *any* chunk
//! size and thread count, and the distributed runner at *any* collector
//! count and merge order produce bit-for-bit identical reports — and,
//! because every protocol aggregates through order-exact integer
//! shards, bit-for-bit identical `finish()` output. The
//! `batch_equivalence` and `distributed_merge` integration tests pin
//! this down protocol by protocol.
//!
//! # The batched pipeline
//!
//! [`run_heavy_hitter_batched`] executes in three phases, all wire-native
//! (the same fused path the streaming engine runs):
//!
//! 1. **respond + encode** — the population is partitioned into chunks
//!    of [`BatchPlan::chunk_size`]; scoped worker threads run the fused
//!    `respond_encode_batch` over the chunks, sampling each user's
//!    report straight into a per-chunk wire buffer (no intermediate
//!    `Report` vec — the buffered state is a few bytes per user);
//! 2. **ingest** — each chunk's borrowed frames are folded into a fresh
//!    shard in parallel (`absorb_wire`, zero-copy — no decoded report
//!    vec either), the shards merge tree-wise, and the result folds into
//!    the server;
//! 3. **finish** — unchanged single-threaded aggregation/decoding.
//!
//! # The distributed pipeline
//!
//! [`run_heavy_hitter_distributed`] simulates a collector fleet. It is
//! a thin wrapper over the streaming epoch engine
//! ([`crate::stream::StreamEngine`]) run as a single epoch:
//!
//! 1. **respond + encode** — as above, but each chunk's reports are
//!    immediately serialized through their [`WireReport`](hh_core::traits::WireReport) encoding (the
//!    clients' messages as they would leave the device); total wire
//!    bytes are accounted;
//! 2. **collect** — chunk `c`'s bytes are routed to collector
//!    `c % collectors`; each collector folds its chunks' borrowed wire
//!    frames straight into its own shard (`absorb_wire` — collectors run
//!    in parallel and share nothing, and no `Report` values are ever
//!    materialized);
//! 3. **merge** — the collector shards are combined in the order given
//!    by [`MergeOrder`] (tree-wise by default) and folded into the
//!    server;
//! 4. **finish** — the scratch-threaded parallel decode
//!    ([`finish_with`](hh_core::traits::HeavyHitterProtocol::finish_with)),
//!    honoring the plan's thread policy; the serial drivers force the
//!    serial path (`FinishScratch::serial`). Thread count never changes
//!    output.
//!
//! Open-ended, multi-epoch ingestion — with durable shard snapshots,
//! crash recovery and mid-stream queries — lives in [`crate::stream`];
//! this module's drivers and that engine share one ingestion path.

use crate::erased::{DynHhProtocol, DynHhStream, DynOracle, DynOracleStream};
use crate::stream::{HhStream, OracleStream, StreamEngine, StreamIngest, StreamPlan, StreamStats};
use hh_core::traits::HeavyHitterProtocol;
use hh_freq::traits::FrequencyOracle;
use hh_freq::wire::WireFrames;
use hh_math::par::{merge_tree, par_chunk_map, par_map_owned, FinishScratch};
use hh_math::rng::{client_rng, derive_seed};
use std::time::{Duration, Instant};

use crate::stream::{HH_CLIENT_LABEL, ORACLE_CLIENT_LABEL};

/// Execution shape of the batched drivers.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Users per chunk in the respond phase. Does not affect output.
    pub chunk_size: usize,
    /// Worker threads (`0` = available hardware parallelism). Does not
    /// affect output.
    pub threads: usize,
}

impl Default for BatchPlan {
    fn default() -> Self {
        Self {
            chunk_size: 1 << 15,
            threads: 0,
        }
    }
}

impl BatchPlan {
    /// A plan with an explicit chunk size, auto thread count.
    pub fn with_chunk_size(chunk_size: usize) -> Self {
        Self {
            chunk_size,
            ..Self::default()
        }
    }

    /// Panic early (with the field named) on degenerate shapes instead
    /// of failing downstream in chunk division.
    pub fn validate(&self) {
        assert!(
            self.chunk_size >= 1,
            "BatchPlan.chunk_size must be >= 1 (got 0)"
        );
    }
}

/// Measured resources of one heavy-hitter protocol run.
#[derive(Debug, Clone)]
pub struct ProtocolRun {
    /// The output list `Est`.
    pub estimates: Vec<(u64, f64)>,
    /// Number of users simulated.
    pub n: usize,
    /// Client-side time. Serial driver: summed per-user `respond` time
    /// (Table 1 "User time" is this divided by `n`). Batched driver:
    /// wall-clock time of the parallel respond phase.
    pub client_total: Duration,
    /// Server-side ingestion time (collect / collect_batch).
    pub server_ingest: Duration,
    /// Server-side aggregation/decoding time (finish).
    pub server_finish: Duration,
    /// Worker threads used by the respond phase (1 for the serial driver).
    pub threads: usize,
    /// Per-user communication in bits.
    pub report_bits: usize,
    /// Server working memory in bytes.
    pub memory_bytes: usize,
    /// The protocol's detection threshold Δ.
    pub detection_threshold: f64,
}

impl ProtocolRun {
    /// Mean per-user client time (serial driver) / mean wall-clock cost
    /// per user of the respond phase (batched driver).
    pub fn user_time(&self) -> Duration {
        self.client_total / self.n.max(1) as u32
    }

    /// Total server time (ingest + finish).
    pub fn server_time(&self) -> Duration {
        self.server_ingest + self.server_finish
    }

    /// End-to-end time of the run (client phase + server phases).
    pub fn total_time(&self) -> Duration {
        self.client_total + self.server_ingest + self.server_finish
    }
}

/// Run a heavy-hitter protocol over a dataset serially, timing each phase.
///
/// User `i` draws her coins from the stream `(seed, i)` (see the module
/// docs), so runs are exactly reproducible, each user's coins are
/// independent, and the output is identical to
/// [`run_heavy_hitter_batched`].
pub fn run_heavy_hitter<P: HeavyHitterProtocol>(
    server: &mut P,
    data: &[u64],
    seed: u64,
) -> ProtocolRun {
    let mut client_total = Duration::ZERO;
    let mut server_ingest = Duration::ZERO;
    let client_seed = derive_seed(seed, HH_CLIENT_LABEL);
    for (i, &x) in data.iter().enumerate() {
        let t0 = Instant::now();
        let mut rng = client_rng(client_seed, i as u64);
        let report = server.respond(i as u64, x, &mut rng);
        client_total += t0.elapsed();
        let t1 = Instant::now();
        server.collect(i as u64, report);
        server_ingest += t1.elapsed();
    }
    let t2 = Instant::now();
    // Forced-serial decode: this driver is the timing reference the
    // batched/distributed speedups are measured against.
    let estimates = server.finish_with(&mut FinishScratch::serial());
    let server_finish = t2.elapsed();
    ProtocolRun {
        estimates,
        n: data.len(),
        client_total,
        server_ingest,
        server_finish,
        threads: 1,
        report_bits: server.report_bits(),
        memory_bytes: server.memory_bytes(),
        detection_threshold: server.detection_threshold(),
    }
}

/// Run a heavy-hitter protocol through the batched, parallel pipeline.
///
/// Output is bit-for-bit identical to [`run_heavy_hitter`] with the same
/// `seed`, for every `plan` (chunk size and thread count only change the
/// schedule, never the result).
pub fn run_heavy_hitter_batched<P>(
    server: &mut P,
    data: &[u64],
    seed: u64,
    plan: &BatchPlan,
) -> ProtocolRun
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
{
    let out = batched_ingest(&HhStream(&*server), data, seed, plan);
    let t1 = Instant::now();
    if let Some(shard) = out.shard {
        server.finish_shard(shard);
    }
    let server_ingest = out.ingest_total + t1.elapsed();
    let t2 = Instant::now();
    // The finish phase honors the plan's thread policy, like the
    // respond/absorb phases (output is thread-count-invariant).
    let estimates = server.finish_with(&mut FinishScratch::with_threads(plan.threads));
    let server_finish = t2.elapsed();
    ProtocolRun {
        estimates,
        n: data.len(),
        client_total: out.client_total,
        server_ingest,
        server_finish,
        threads: out.threads,
        report_bits: server.report_bits(),
        memory_bytes: server.memory_bytes(),
        detection_threshold: server.detection_threshold(),
    }
}

/// Outcome of [`batched_ingest`]: the merged shard (if any data) and the
/// phase timings.
struct BatchedIngest<S> {
    shard: Option<S>,
    client_total: Duration,
    ingest_total: Duration,
    threads: usize,
}

/// The shared fused batched pipeline over any [`StreamIngest`] — typed
/// or type-erased: parallel `respond_encode_batch` into per-chunk wire
/// buffers, then zero-copy sharded `absorb_wire` with a tree merge.
fn batched_ingest<I: StreamIngest + Sync>(
    ingest: &I,
    data: &[u64],
    seed: u64,
    plan: &BatchPlan,
) -> BatchedIngest<I::Shard> {
    plan.validate();
    let client_seed = derive_seed(seed, I::CLIENT_LABEL);
    let threads = effective_threads(plan, data.len());
    // Fused respond + encode: each chunk's reports are sampled straight
    // into a wire buffer — no intermediate report vec, and the buffered
    // frames are a few bytes per user instead of a full `Report`.
    let t0 = Instant::now();
    let chunks = par_chunk_map(data, plan.chunk_size, plan.threads, |c, xs| {
        let mut bytes = Vec::new();
        let frame_lens =
            ingest.respond_encode_batch((c * plan.chunk_size) as u64, xs, client_seed, &mut bytes);
        (bytes, frame_lens)
    });
    let client_total = t0.elapsed();
    // Zero-copy ingest: fold the chunks' borrowed frames into per-worker
    // shards in parallel (`absorb_wire` — no decoded report vec), merge
    // tree-wise. Identical output to serial per-user ingest: shards are
    // exact and order-exact.
    let t1 = Instant::now();
    let shard = absorb_chunks_sharded(ingest, chunks, plan, threads);
    BatchedIngest {
        shard,
        client_total,
        ingest_total: t1.elapsed(),
        threads,
    }
}

/// The thread count the respond phase will actually use — delegated to
/// the scheduler's own policy so the reported number cannot drift from
/// [`par_chunk_map`]'s behavior.
fn effective_threads(plan: &BatchPlan, n: usize) -> usize {
    hh_math::par::planned_threads(plan.threads, n, plan.chunk_size)
}

/// One encoded wire chunk as the batched drivers buffer it: the
/// concatenated frame bytes and each frame's length.
type WireChunkBuf = (Vec<u8>, Vec<u32>);

/// The zero-copy ingest phase of the batched drivers: fold encoded wire
/// chunks into shards in parallel and merge them tree-wise.
///
/// Contiguous chunks are grouped so at most ~one shard per worker is
/// ever alive — a shard can be O(domain) state, not O(chunk) (a hashed
/// Hashtogram holds its full `groups × buckets` tally), so one shard
/// per *chunk* would make peak memory scale with `n / chunk_size`.
/// Grouping does not change output: absorption is order-exact, and
/// groups preserve chunk order.
///
/// The in-process pipeline is lossless, so corruption is a bug — the
/// panic carries the failing chunk's start user and (via `FrameError`)
/// the frame index and byte offset.
fn absorb_chunks_sharded<I: StreamIngest + Sync>(
    ingest: &I,
    chunks: Vec<WireChunkBuf>,
    plan: &BatchPlan,
    workers: usize,
) -> Option<I::Shard> {
    let chunk_size = plan.chunk_size;
    let per_group = chunks.len().div_ceil(workers.max(1)).max(1);
    let mut groups: Vec<(usize, Vec<WireChunkBuf>)> = Vec::new();
    let mut it = chunks.into_iter();
    let mut first_chunk = 0usize;
    loop {
        let group: Vec<_> = it.by_ref().take(per_group).collect();
        if group.is_empty() {
            break;
        }
        let len = group.len();
        groups.push((first_chunk, group));
        first_chunk += len;
    }
    let shards = par_map_owned(groups, plan.threads, |_, (first_chunk, group)| {
        let mut shard = ingest.new_shard();
        for (j, (bytes, frame_lens)) in group.into_iter().enumerate() {
            let start = ((first_chunk + j) * chunk_size) as u64;
            let frames = WireFrames::new(&bytes, &frame_lens)
                .unwrap_or_else(|e| panic!("chunk starting at user {start} is misframed: {e}"));
            ingest
                .absorb_wire(&mut shard, start, &frames)
                .unwrap_or_else(|e| panic!("chunk starting at user {start}: {e}"));
        }
        shard
    });
    merge_tree(shards, |a, b| ingest.merge(a, b))
}

/// The shared collector-fleet ingest over any [`StreamIngest`] — typed
/// or type-erased: a single-epoch run of the lock-step streaming engine.
fn one_shot_fleet<I: StreamIngest + Sync>(
    ingest: I,
    data: &[u64],
    seed: u64,
    plan: &DistPlan,
) -> (I::Shard, StreamStats) {
    let mut engine = StreamEngine::new(ingest, StreamPlan::one_shot(plan), seed);
    engine.ingest_epoch(data);
    engine.into_live_shard()
}

/// The order in which collector shards are combined. Every order yields
/// bit-for-bit identical output (`merge` is observationally associative
/// and commutative) — the drivers expose the choice so tests can prove
/// it and benches can measure the tree's latency advantage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOrder {
    /// Pairwise rounds: `(s0+s1) + (s2+s3) + …` — `log2(k)` merge depth,
    /// what a collector fleet would do.
    Tree,
    /// Left fold: `((s0+s1)+s2)+…`.
    Sequential,
    /// Left fold over the shards in reverse arrival order
    /// (`((s_k+s_{k-1})+…)+s0`) — exercises commutativity.
    ReverseSequential,
}

/// Execution shape of the distributed drivers.
#[derive(Debug, Clone)]
pub struct DistPlan {
    /// Number of simulated collector nodes. Does not affect output.
    pub collectors: usize,
    /// Users per chunk in the respond phase (one chunk = one "RPC" of
    /// framed reports to a collector). Does not affect output.
    pub chunk_size: usize,
    /// Worker threads (`0` = available hardware parallelism). Does not
    /// affect output.
    pub threads: usize,
    /// Shard combination order. Does not affect output.
    pub merge: MergeOrder,
}

impl Default for DistPlan {
    fn default() -> Self {
        Self {
            collectors: 8,
            chunk_size: 1 << 15,
            threads: 0,
            merge: MergeOrder::Tree,
        }
    }
}

impl DistPlan {
    /// A plan with an explicit collector count, defaults elsewhere.
    pub fn with_collectors(collectors: usize) -> Self {
        Self {
            collectors,
            ..Self::default()
        }
    }

    /// Panic early (with the field named) on degenerate shapes instead
    /// of failing downstream in chunk division or empty shard merges.
    pub fn validate(&self) {
        assert!(
            self.collectors >= 1,
            "DistPlan.collectors must be >= 1 (got 0)"
        );
        assert!(
            self.chunk_size >= 1,
            "DistPlan.chunk_size must be >= 1 (got 0)"
        );
    }
}

/// Measured resources of one distributed heavy-hitter run.
#[derive(Debug, Clone)]
pub struct DistributedRun {
    /// The output list `Est` — bit-for-bit equal to the serial run's.
    pub estimates: Vec<(u64, f64)>,
    /// Number of users simulated.
    pub n: usize,
    /// Collector nodes simulated.
    pub collectors: usize,
    /// Total bytes all reports occupied on the (simulated) wire.
    pub wire_bytes: u64,
    /// Wall-clock time of the respond + encode phase.
    pub client_total: Duration,
    /// Wall-clock time of the collectors' decode + absorb phase.
    pub server_ingest: Duration,
    /// Time to combine the collector shards and fold them in.
    pub server_merge: Duration,
    /// Aggregation/decoding time (finish).
    pub server_finish: Duration,
    /// Worker threads used by the parallel phases.
    pub threads: usize,
    /// Per-user communication claim in bits.
    pub report_bits: usize,
    /// Server working memory in bytes.
    pub memory_bytes: usize,
    /// The protocol's detection threshold Δ.
    pub detection_threshold: f64,
}

impl DistributedRun {
    /// Mean measured wire bytes per user.
    pub fn wire_bytes_per_user(&self) -> f64 {
        self.wire_bytes as f64 / self.n.max(1) as f64
    }

    /// Total server time (ingest + merge + finish).
    pub fn server_time(&self) -> Duration {
        self.server_ingest + self.server_merge + self.server_finish
    }

    /// End-to-end time of the run.
    pub fn total_time(&self) -> Duration {
        self.client_total + self.server_time()
    }
}

/// Run a heavy-hitter protocol across a simulated collector fleet — a
/// single-epoch run of the streaming engine ([`crate::stream`]).
///
/// Every report crosses a real serialization boundary (its
/// [`WireReport`](hh_core::traits::WireReport) encoding) on the way to its collector; collectors
/// build independent shards which are merged and finished centrally.
/// Output is bit-for-bit identical to [`run_heavy_hitter`] with the
/// same `seed`, for every `plan` — collector count, chunk size, thread
/// count and merge order only change the schedule, never the result
/// (pinned by the `distributed_merge` integration tests).
pub fn run_heavy_hitter_distributed<P>(
    server: &mut P,
    data: &[u64],
    seed: u64,
    plan: &DistPlan,
) -> DistributedRun
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
{
    plan.validate();
    let (merged, stats) = one_shot_fleet(HhStream(&*server), data, seed, plan);

    // Fold the fleet's merged shard into the server.
    let t2 = Instant::now();
    server.finish_shard(merged);
    let server_merge = stats.merge_total + t2.elapsed();

    // Central aggregation/decoding, at the fleet plan's thread policy.
    let t3 = Instant::now();
    let estimates = server.finish_with(&mut FinishScratch::with_threads(plan.threads));
    let server_finish = t3.elapsed();

    DistributedRun {
        estimates,
        n: data.len(),
        collectors: plan.collectors,
        wire_bytes: stats.wire_bytes,
        client_total: stats.client_total,
        server_ingest: stats.ingest_total,
        server_merge,
        server_finish,
        threads: stats.threads,
        report_bits: server.report_bits(),
        memory_bytes: server.memory_bytes(),
        detection_threshold: server.detection_threshold(),
    }
}

/// Measured resources of one frequency-oracle run.
#[derive(Debug, Clone)]
pub struct OracleRun {
    /// Estimates for the queried elements, in query order.
    pub answers: Vec<f64>,
    /// Number of users simulated.
    pub n: usize,
    /// Client-side time (summed serial / wall-clock batched, as in
    /// [`ProtocolRun::client_total`]).
    pub client_total: Duration,
    /// Server ingestion + finalization time.
    pub server_build: Duration,
    /// Total query time.
    pub query_total: Duration,
    /// Worker threads used by the respond phase (1 for the serial driver).
    pub threads: usize,
    /// Per-user communication bits.
    pub report_bits: usize,
    /// Server memory bytes.
    pub memory_bytes: usize,
}

/// Run a frequency oracle over a dataset and a query set, serially.
pub fn run_oracle<O: FrequencyOracle>(
    oracle: &mut O,
    data: &[u64],
    queries: &[u64],
    seed: u64,
) -> OracleRun {
    let mut client_total = Duration::ZERO;
    let mut server_build = Duration::ZERO;
    let client_seed = derive_seed(seed, ORACLE_CLIENT_LABEL);
    for (i, &x) in data.iter().enumerate() {
        let t0 = Instant::now();
        let mut rng = client_rng(client_seed, i as u64);
        let report = oracle.respond(i as u64, x, &mut rng);
        client_total += t0.elapsed();
        let t1 = Instant::now();
        oracle.collect(i as u64, report);
        server_build += t1.elapsed();
    }
    let t2 = Instant::now();
    // Forced-serial finalize: the serial timing reference.
    oracle.finalize_with(&mut FinishScratch::serial());
    server_build += t2.elapsed();
    let t3 = Instant::now();
    let answers = queries.iter().map(|&q| oracle.estimate(q)).collect();
    let query_total = t3.elapsed();
    OracleRun {
        answers,
        n: data.len(),
        client_total,
        server_build,
        query_total,
        threads: 1,
        report_bits: oracle.report_bits(),
        memory_bytes: oracle.memory_bytes(),
    }
}

/// Run a frequency oracle through the batched, parallel pipeline.
///
/// Output is bit-for-bit identical to [`run_oracle`] with the same seed,
/// for every `plan`.
pub fn run_oracle_batched<O>(
    oracle: &mut O,
    data: &[u64],
    queries: &[u64],
    seed: u64,
    plan: &BatchPlan,
) -> OracleRun
where
    O: FrequencyOracle + Sync,
    O::Report: Send + Sync,
{
    // Same fused pipeline as `run_heavy_hitter_batched`: respond
    // straight into wire buffers, then zero-copy absorb into per-chunk
    // shards merged tree-wise.
    let out = batched_ingest(&OracleStream(&*oracle), data, seed, plan);
    let t1 = Instant::now();
    if let Some(shard) = out.shard {
        oracle.finish_shard(shard);
    }
    oracle.finalize_with(&mut FinishScratch::with_threads(plan.threads));
    let server_build = out.ingest_total + t1.elapsed();
    let t3 = Instant::now();
    let answers = queries.iter().map(|&q| oracle.estimate(q)).collect();
    let query_total = t3.elapsed();
    OracleRun {
        answers,
        n: data.len(),
        client_total: out.client_total,
        server_build,
        query_total,
        threads: out.threads,
        report_bits: oracle.report_bits(),
        memory_bytes: oracle.memory_bytes(),
    }
}

/// Measured resources of one distributed frequency-oracle run.
#[derive(Debug, Clone)]
pub struct DistributedOracleRun {
    /// Estimates for the queried elements, in query order — bit-for-bit
    /// equal to the serial run's.
    pub answers: Vec<f64>,
    /// Number of users simulated.
    pub n: usize,
    /// Collector nodes simulated.
    pub collectors: usize,
    /// Total bytes all reports occupied on the (simulated) wire.
    pub wire_bytes: u64,
    /// Wall-clock time of the respond + encode phase.
    pub client_total: Duration,
    /// Collector decode/absorb + merge + finalize time.
    pub server_build: Duration,
    /// Total query time.
    pub query_total: Duration,
    /// Worker threads used by the parallel phases.
    pub threads: usize,
    /// Per-user communication claim in bits.
    pub report_bits: usize,
    /// Server memory bytes.
    pub memory_bytes: usize,
}

impl DistributedOracleRun {
    /// Mean measured wire bytes per user.
    pub fn wire_bytes_per_user(&self) -> f64 {
        self.wire_bytes as f64 / self.n.max(1) as f64
    }
}

/// Run a frequency oracle across a simulated collector fleet — the
/// oracle-level analogue of [`run_heavy_hitter_distributed`] (the same
/// single-epoch run of the streaming engine), with the same wire
/// round-trip and merge guarantees: answers are bit-for-bit identical
/// to [`run_oracle`] for every `plan`.
pub fn run_oracle_distributed<O>(
    oracle: &mut O,
    data: &[u64],
    queries: &[u64],
    seed: u64,
    plan: &DistPlan,
) -> DistributedOracleRun
where
    O: FrequencyOracle + Sync,
    O::Report: Send + Sync,
{
    plan.validate();
    let (merged, stats) = one_shot_fleet(OracleStream(&*oracle), data, seed, plan);

    let t1 = Instant::now();
    oracle.finish_shard(merged);
    oracle.finalize_with(&mut FinishScratch::with_threads(plan.threads));
    let server_build = stats.ingest_total + stats.merge_total + t1.elapsed();

    let t2 = Instant::now();
    let answers = queries.iter().map(|&q| oracle.estimate(q)).collect();
    let query_total = t2.elapsed();

    DistributedOracleRun {
        answers,
        n: data.len(),
        collectors: plan.collectors,
        wire_bytes: stats.wire_bytes,
        client_total: stats.client_total,
        server_build,
        query_total,
        threads: stats.threads,
        report_bits: oracle.report_bits(),
        memory_bytes: oracle.memory_bytes(),
    }
}

/// Run a type-erased heavy-hitter protocol serially — the dyn twin of
/// [`run_heavy_hitter`], used by registry-dispatched binaries.
///
/// Reports are produced and ingested through the wire-native surface
/// (per-user `respond_encode_batch` / `absorb_wire`), so the coins —
/// and therefore the estimates — are bit-for-bit the typed serial
/// run's.
pub fn run_dyn_heavy_hitter(
    server: &mut dyn DynHhProtocol,
    data: &[u64],
    seed: u64,
) -> ProtocolRun {
    let client_seed = derive_seed(seed, HH_CLIENT_LABEL);
    let mut client_total = Duration::ZERO;
    let mut server_ingest = Duration::ZERO;
    let mut shard = server.new_shard();
    let mut buf: Vec<u8> = Vec::new();
    for (i, &x) in data.iter().enumerate() {
        let t0 = Instant::now();
        buf.clear();
        let lens =
            server.respond_encode_batch(i as u64, std::slice::from_ref(&x), client_seed, &mut buf);
        client_total += t0.elapsed();
        let t1 = Instant::now();
        let frames = WireFrames::new(&buf, &lens)
            .unwrap_or_else(|e| panic!("user {i}: misframed report: {e}"));
        server
            .absorb_wire(&mut shard, i as u64, &frames)
            .unwrap_or_else(|e| panic!("user {i}: {e}"));
        server_ingest += t1.elapsed();
    }
    let t1 = Instant::now();
    server.finish_shard(shard);
    server_ingest += t1.elapsed();
    let t2 = Instant::now();
    // Forced-serial decode, like the typed serial reference.
    let estimates = server.finish_with(&mut FinishScratch::serial());
    let server_finish = t2.elapsed();
    ProtocolRun {
        estimates,
        n: data.len(),
        client_total,
        server_ingest,
        server_finish,
        threads: 1,
        report_bits: server.report_bits(),
        memory_bytes: server.memory_bytes(),
        detection_threshold: server.detection_threshold(),
    }
}

/// Run a type-erased heavy-hitter protocol through the batched parallel
/// pipeline — the dyn twin of [`run_heavy_hitter_batched`] (same shared
/// ingest path, same bit-for-bit output).
pub fn run_dyn_heavy_hitter_batched(
    server: &mut dyn DynHhProtocol,
    data: &[u64],
    seed: u64,
    plan: &BatchPlan,
) -> ProtocolRun {
    let out = batched_ingest(&DynHhStream(&*server), data, seed, plan);
    let t1 = Instant::now();
    if let Some(shard) = out.shard {
        server.finish_shard(shard);
    }
    let server_ingest = out.ingest_total + t1.elapsed();
    let t2 = Instant::now();
    let estimates = server.finish_with(&mut FinishScratch::with_threads(plan.threads));
    let server_finish = t2.elapsed();
    ProtocolRun {
        estimates,
        n: data.len(),
        client_total: out.client_total,
        server_ingest,
        server_finish,
        threads: out.threads,
        report_bits: server.report_bits(),
        memory_bytes: server.memory_bytes(),
        detection_threshold: server.detection_threshold(),
    }
}

/// Run a type-erased heavy-hitter protocol across a simulated collector
/// fleet — the dyn twin of [`run_heavy_hitter_distributed`] (the same
/// single-epoch run of the lock-step streaming engine).
pub fn run_dyn_heavy_hitter_distributed(
    server: &mut dyn DynHhProtocol,
    data: &[u64],
    seed: u64,
    plan: &DistPlan,
) -> DistributedRun {
    plan.validate();
    let (merged, stats) = one_shot_fleet(DynHhStream(&*server), data, seed, plan);

    let t2 = Instant::now();
    server.finish_shard(merged);
    let server_merge = stats.merge_total + t2.elapsed();

    let t3 = Instant::now();
    let estimates = server.finish_with(&mut FinishScratch::with_threads(plan.threads));
    let server_finish = t3.elapsed();

    DistributedRun {
        estimates,
        n: data.len(),
        collectors: plan.collectors,
        wire_bytes: stats.wire_bytes,
        client_total: stats.client_total,
        server_ingest: stats.ingest_total,
        server_merge,
        server_finish,
        threads: stats.threads,
        report_bits: server.report_bits(),
        memory_bytes: server.memory_bytes(),
        detection_threshold: server.detection_threshold(),
    }
}

/// Run a type-erased frequency oracle serially — the dyn twin of
/// [`run_oracle`].
pub fn run_dyn_oracle(
    oracle: &mut dyn DynOracle,
    data: &[u64],
    queries: &[u64],
    seed: u64,
) -> OracleRun {
    let client_seed = derive_seed(seed, ORACLE_CLIENT_LABEL);
    let mut client_total = Duration::ZERO;
    let mut server_build = Duration::ZERO;
    let mut shard = oracle.new_shard();
    let mut buf: Vec<u8> = Vec::new();
    for (i, &x) in data.iter().enumerate() {
        let t0 = Instant::now();
        buf.clear();
        let lens =
            oracle.respond_encode_batch(i as u64, std::slice::from_ref(&x), client_seed, &mut buf);
        client_total += t0.elapsed();
        let t1 = Instant::now();
        let frames = WireFrames::new(&buf, &lens)
            .unwrap_or_else(|e| panic!("user {i}: misframed report: {e}"));
        oracle
            .absorb_wire(&mut shard, i as u64, &frames)
            .unwrap_or_else(|e| panic!("user {i}: {e}"));
        server_build += t1.elapsed();
    }
    let t2 = Instant::now();
    oracle.finish_shard(shard);
    // Forced-serial finalize, like the typed serial reference.
    oracle.finalize_with(&mut FinishScratch::serial());
    server_build += t2.elapsed();
    let t3 = Instant::now();
    let answers = queries.iter().map(|&q| oracle.estimate(q)).collect();
    let query_total = t3.elapsed();
    OracleRun {
        answers,
        n: data.len(),
        client_total,
        server_build,
        query_total,
        threads: 1,
        report_bits: oracle.report_bits(),
        memory_bytes: oracle.memory_bytes(),
    }
}

/// Run a type-erased frequency oracle through the batched parallel
/// pipeline — the dyn twin of [`run_oracle_batched`].
pub fn run_dyn_oracle_batched(
    oracle: &mut dyn DynOracle,
    data: &[u64],
    queries: &[u64],
    seed: u64,
    plan: &BatchPlan,
) -> OracleRun {
    let out = batched_ingest(&DynOracleStream(&*oracle), data, seed, plan);
    let t1 = Instant::now();
    if let Some(shard) = out.shard {
        oracle.finish_shard(shard);
    }
    oracle.finalize_with(&mut FinishScratch::with_threads(plan.threads));
    let server_build = out.ingest_total + t1.elapsed();
    let t3 = Instant::now();
    let answers = queries.iter().map(|&q| oracle.estimate(q)).collect();
    let query_total = t3.elapsed();
    OracleRun {
        answers,
        n: data.len(),
        client_total: out.client_total,
        server_build,
        query_total,
        threads: out.threads,
        report_bits: oracle.report_bits(),
        memory_bytes: oracle.memory_bytes(),
    }
}

/// Run a type-erased frequency oracle across a simulated collector
/// fleet — the dyn twin of [`run_oracle_distributed`].
pub fn run_dyn_oracle_distributed(
    oracle: &mut dyn DynOracle,
    data: &[u64],
    queries: &[u64],
    seed: u64,
    plan: &DistPlan,
) -> DistributedOracleRun {
    plan.validate();
    let (merged, stats) = one_shot_fleet(DynOracleStream(&*oracle), data, seed, plan);

    let t1 = Instant::now();
    oracle.finish_shard(merged);
    oracle.finalize_with(&mut FinishScratch::with_threads(plan.threads));
    let server_build = stats.ingest_total + stats.merge_total + t1.elapsed();

    let t2 = Instant::now();
    let answers = queries.iter().map(|&q| oracle.estimate(q)).collect();
    let query_total = t2.elapsed();

    DistributedOracleRun {
        answers,
        n: data.len(),
        collectors: plan.collectors,
        wire_bytes: stats.wire_bytes,
        client_total: stats.client_total,
        server_build,
        query_total,
        threads: stats.threads,
        report_bits: oracle.report_bits(),
        memory_bytes: oracle.memory_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use hh_core::baselines::scan::{ScanHeavyHitters, ScanParams};
    use hh_freq::hashtogram::{Hashtogram, HashtogramParams};

    #[test]
    fn heavy_hitter_run_accounts_resources() {
        let n = 20_000usize;
        let w = Workload::planted(256, vec![(3, 0.4)]);
        let data = w.generate(n, 1);
        let mut server = ScanHeavyHitters::new(ScanParams::new(n as u64, 256, 2.0, 0.1), 2);
        let run = run_heavy_hitter(&mut server, &data, 3);
        assert_eq!(run.n, n);
        assert!(run.estimates.iter().any(|&(x, _)| x == 3));
        assert!(run.report_bits > 0);
        assert!(run.memory_bytes > 0);
        assert!(run.server_time() > Duration::ZERO);
        assert!(run.user_time() < Duration::from_millis(10));
        assert_eq!(run.threads, 1);
    }

    #[test]
    fn oracle_run_answers_queries() {
        let n = 10_000usize;
        let w = Workload::planted(1 << 16, vec![(42, 0.5)]);
        let data = w.generate(n, 4);
        let mut oracle = Hashtogram::new(HashtogramParams::hashed(n as u64, 1 << 16, 1.0, 0.1), 5);
        let run = run_oracle(&mut oracle, &data, &[42, 77], 6);
        assert_eq!(run.answers.len(), 2);
        assert!(run.answers[0] > 0.3 * n as f64, "answer {}", run.answers[0]);
        assert!(run.answers[1] < 0.2 * n as f64);
    }

    #[test]
    fn runs_are_reproducible() {
        let n = 5_000usize;
        let w = Workload::zipf(1 << 12, 1.2);
        let data = w.generate(n, 7);
        let est1 = {
            let mut s = ScanHeavyHitters::new(ScanParams::new(n as u64, 1 << 12, 2.0, 0.1), 8);
            run_heavy_hitter(&mut s, &data, 9).estimates
        };
        let est2 = {
            let mut s = ScanHeavyHitters::new(ScanParams::new(n as u64, 1 << 12, 2.0, 0.1), 8);
            run_heavy_hitter(&mut s, &data, 9).estimates
        };
        assert_eq!(est1, est2);
    }

    #[test]
    fn batched_matches_serial_exactly() {
        let n = 12_000usize;
        let w = Workload::planted(512, vec![(9, 0.3), (100, 0.2)]);
        let data = w.generate(n, 11);
        let serial = {
            let mut s = ScanHeavyHitters::new(ScanParams::new(n as u64, 512, 2.0, 0.1), 12);
            run_heavy_hitter(&mut s, &data, 13).estimates
        };
        for chunk_size in [n, n / 2 + 1, n / 8, 777] {
            for threads in [0, 1, 2, 4] {
                let plan = BatchPlan {
                    chunk_size,
                    threads,
                };
                let mut s = ScanHeavyHitters::new(ScanParams::new(n as u64, 512, 2.0, 0.1), 12);
                let run = run_heavy_hitter_batched(&mut s, &data, 13, &plan);
                assert_eq!(
                    run.estimates, serial,
                    "chunk_size {chunk_size}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn batched_oracle_matches_serial_exactly() {
        let n = 9_000usize;
        let w = Workload::zipf(1 << 14, 1.3);
        let data = w.generate(n, 17);
        let queries = [0u64, 1, 5, 1000];
        let params = || HashtogramParams::hashed(n as u64, 1 << 14, 1.0, 0.1);
        let serial = {
            let mut o = Hashtogram::new(params(), 18);
            run_oracle(&mut o, &data, &queries, 19).answers
        };
        for chunk_size in [n, 1 << 10, 333] {
            let mut o = Hashtogram::new(params(), 18);
            let run = run_oracle_batched(
                &mut o,
                &data,
                &queries,
                19,
                &BatchPlan::with_chunk_size(chunk_size),
            );
            assert_eq!(run.answers, serial, "chunk_size {chunk_size}");
        }
    }

    #[test]
    fn effective_threads_is_bounded() {
        let plan = BatchPlan {
            chunk_size: 100,
            threads: 8,
        };
        assert_eq!(effective_threads(&plan, 100), 1);
        assert_eq!(effective_threads(&plan, 250), 3);
        assert_eq!(effective_threads(&plan, 10_000), 8);
        assert_eq!(effective_threads(&plan, 0), 1);
    }
}
