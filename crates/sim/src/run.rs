//! Protocol execution with the Table 1 resource accounting.

use hh_core::traits::HeavyHitterProtocol;
use hh_freq::traits::FrequencyOracle;
use hh_math::rng::{derive_seed, seeded_rng};
use std::time::{Duration, Instant};

/// Measured resources of one heavy-hitter protocol run.
#[derive(Debug, Clone)]
pub struct ProtocolRun {
    /// The output list `Est`.
    pub estimates: Vec<(u64, f64)>,
    /// Number of users simulated.
    pub n: usize,
    /// Total client-side time across all users (Table 1 "User time" is
    /// this divided by `n`).
    pub client_total: Duration,
    /// Server-side ingestion time (collect calls).
    pub server_ingest: Duration,
    /// Server-side aggregation/decoding time (finish).
    pub server_finish: Duration,
    /// Per-user communication in bits.
    pub report_bits: usize,
    /// Server working memory in bytes.
    pub memory_bytes: usize,
    /// The protocol's detection threshold Δ.
    pub detection_threshold: f64,
}

impl ProtocolRun {
    /// Mean per-user client time.
    pub fn user_time(&self) -> Duration {
        self.client_total / self.n.max(1) as u32
    }

    /// Total server time (ingest + finish).
    pub fn server_time(&self) -> Duration {
        self.server_ingest + self.server_finish
    }
}

/// Run a heavy-hitter protocol over a dataset, timing each phase.
///
/// Client randomness is derived per user from `seed`, so runs are exactly
/// reproducible and each user's coins are independent.
pub fn run_heavy_hitter<P: HeavyHitterProtocol>(
    server: &mut P,
    data: &[u64],
    seed: u64,
) -> ProtocolRun {
    let mut client_total = Duration::ZERO;
    let mut server_ingest = Duration::ZERO;
    let mut rng = seeded_rng(derive_seed(seed, 0xC11E57));
    for (i, &x) in data.iter().enumerate() {
        let t0 = Instant::now();
        let report = server.respond(i as u64, x, &mut rng);
        client_total += t0.elapsed();
        let t1 = Instant::now();
        server.collect(i as u64, report);
        server_ingest += t1.elapsed();
    }
    let t2 = Instant::now();
    let estimates = server.finish();
    let server_finish = t2.elapsed();
    ProtocolRun {
        estimates,
        n: data.len(),
        client_total,
        server_ingest,
        server_finish,
        report_bits: server.report_bits(),
        memory_bytes: server.memory_bytes(),
        detection_threshold: server.detection_threshold(),
    }
}

/// Measured resources of one frequency-oracle run.
#[derive(Debug, Clone)]
pub struct OracleRun {
    /// Estimates for the queried elements, in query order.
    pub answers: Vec<f64>,
    /// Number of users simulated.
    pub n: usize,
    /// Total client-side time.
    pub client_total: Duration,
    /// Server ingestion + finalization time.
    pub server_build: Duration,
    /// Total query time.
    pub query_total: Duration,
    /// Per-user communication bits.
    pub report_bits: usize,
    /// Server memory bytes.
    pub memory_bytes: usize,
}

/// Run a frequency oracle over a dataset and a query set.
pub fn run_oracle<O: FrequencyOracle>(
    oracle: &mut O,
    data: &[u64],
    queries: &[u64],
    seed: u64,
) -> OracleRun {
    let mut client_total = Duration::ZERO;
    let mut server_build = Duration::ZERO;
    let mut rng = seeded_rng(derive_seed(seed, 0x04AC1E));
    for (i, &x) in data.iter().enumerate() {
        let t0 = Instant::now();
        let report = oracle.respond(i as u64, x, &mut rng);
        client_total += t0.elapsed();
        let t1 = Instant::now();
        oracle.collect(i as u64, report);
        server_build += t1.elapsed();
    }
    let t2 = Instant::now();
    oracle.finalize();
    server_build += t2.elapsed();
    let t3 = Instant::now();
    let answers = queries.iter().map(|&q| oracle.estimate(q)).collect();
    let query_total = t3.elapsed();
    OracleRun {
        answers,
        n: data.len(),
        client_total,
        server_build,
        query_total,
        report_bits: oracle.report_bits(),
        memory_bytes: oracle.memory_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use hh_core::baselines::scan::{ScanHeavyHitters, ScanParams};
    use hh_freq::hashtogram::{Hashtogram, HashtogramParams};

    #[test]
    fn heavy_hitter_run_accounts_resources() {
        let n = 20_000usize;
        let w = Workload::planted(256, vec![(3, 0.4)]);
        let data = w.generate(n, 1);
        let mut server = ScanHeavyHitters::new(ScanParams::new(n as u64, 256, 2.0, 0.1), 2);
        let run = run_heavy_hitter(&mut server, &data, 3);
        assert_eq!(run.n, n);
        assert!(run.estimates.iter().any(|&(x, _)| x == 3));
        assert!(run.report_bits > 0);
        assert!(run.memory_bytes > 0);
        assert!(run.server_time() > Duration::ZERO);
        assert!(run.user_time() < Duration::from_millis(10));
    }

    #[test]
    fn oracle_run_answers_queries() {
        let n = 10_000usize;
        let w = Workload::planted(1 << 16, vec![(42, 0.5)]);
        let data = w.generate(n, 4);
        let mut oracle = Hashtogram::new(
            HashtogramParams::hashed(n as u64, 1 << 16, 1.0, 0.1),
            5,
        );
        let run = run_oracle(&mut oracle, &data, &[42, 77], 6);
        assert_eq!(run.answers.len(), 2);
        assert!(run.answers[0] > 0.3 * n as f64, "answer {}", run.answers[0]);
        assert!(run.answers[1] < 0.2 * n as f64);
    }

    #[test]
    fn runs_are_reproducible() {
        let n = 5_000usize;
        let w = Workload::zipf(1 << 12, 1.2);
        let data = w.generate(n, 7);
        let est1 = {
            let mut s = ScanHeavyHitters::new(ScanParams::new(n as u64, 1 << 12, 2.0, 0.1), 8);
            run_heavy_hitter(&mut s, &data, 9).estimates
        };
        let est2 = {
            let mut s = ScanHeavyHitters::new(ScanParams::new(n as u64, 1 << 12, 2.0, 0.1), 8);
            run_heavy_hitter(&mut s, &data, 9).estimates
        };
        assert_eq!(est1, est2);
    }
}
