//! The type-erased protocol layer: object-safe twins of
//! [`HeavyHitterProtocol`] and [`FrequencyOracle`] with byte-level
//! shard/report passing, so protocols can be chosen by *runtime
//! configuration* (see [`crate::registry`]) instead of per-binary
//! monomorphized `match` arms.
//!
//! The generic traits are not object-safe: `respond` is generic over
//! the RNG, and reports/shards are associated types. The dyn layer
//! erases all of that at the *wire boundary*, which the zero-copy
//! refactors already made the native interface:
//!
//! * **reports** only ever cross as encoded frames —
//!   `respond_encode_batch` writes bytes, `absorb_wire` reads borrowed
//!   frames, so no `Report` type appears in a signature;
//! * **live shards** cross as [`DynShard`] (a `Box<dyn Any + Send>`
//!   owning the concrete shard), moved around opaquely and downcast
//!   only inside the owning protocol's wrapper;
//! * **durable shards** cross as their `WireShard` snapshot bytes via
//!   `encode_shard_into` / `decode_shard` through `&self`.
//!
//! [`Erased`] wraps any concrete protocol into the dyn traits (a
//! wrapper struct rather than a blanket impl, so `finish()` et al.
//! never become ambiguous on concrete types), and [`DynHhStream`] /
//! [`DynOracleStream`] adapt a `&dyn` protocol into
//! [`StreamIngest`] — so the batched drivers, the lock-step
//! [`StreamEngine`](crate::stream::StreamEngine) and the pipelined
//! collector runtime ([`crate::pipeline`]) all drive dyn-dispatched
//! protocols through the *same* engines as monomorphized ones.

use crate::stream::{StreamIngest, HH_CLIENT_LABEL, ORACLE_CLIENT_LABEL};
use hh_core::traits::HeavyHitterProtocol;
use hh_freq::traits::FrequencyOracle;
use hh_freq::wire::{FrameError, WireError, WireFrames, WireShard};
use hh_math::par::FinishScratch;
use std::any::Any;

/// A type-erased live shard: the concrete `Shard` of whichever protocol
/// produced it, boxed. Only that protocol's [`Erased`] wrapper can look
/// inside; every other component moves it around opaquely (exactly what
/// a collector does with a partial aggregate).
pub struct DynShard(Box<dyn Any + Send>);

impl DynShard {
    fn new<S: Any + Send>(shard: S) -> Self {
        DynShard(Box::new(shard))
    }

    fn downcast<S: Any>(self, ctx: &str) -> S {
        *self.0.downcast::<S>().unwrap_or_else(|_| {
            panic!(
                "{ctx}: shard is not a {} — it was produced by a different protocol",
                std::any::type_name::<S>()
            )
        })
    }

    fn downcast_mut<S: Any>(&mut self, ctx: &str) -> &mut S {
        self.0.downcast_mut::<S>().unwrap_or_else(|| {
            panic!(
                "{ctx}: shard is not a {} — it was produced by a different protocol",
                std::any::type_name::<S>()
            )
        })
    }

    fn downcast_ref<S: Any>(&self, ctx: &str) -> &S {
        self.0.downcast_ref::<S>().unwrap_or_else(|| {
            panic!(
                "{ctx}: shard is not a {} — it was produced by a different protocol",
                std::any::type_name::<S>()
            )
        })
    }
}

/// Object-safe heavy-hitter protocol: the wire-native surface of
/// [`HeavyHitterProtocol`], with reports as encoded frames and shards as
/// [`DynShard`] / snapshot bytes. Obtain one with [`erase_hh`] or from
/// the [`crate::registry`].
pub trait DynHhProtocol: Send + Sync {
    /// Fused respond + encode for a contiguous user range (appends wire
    /// frames to `out`, returns each frame's length).
    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32>;
    /// An empty partial aggregate.
    fn new_shard(&self) -> DynShard;
    /// Zero-copy: fold borrowed wire frames into `shard`.
    fn absorb_wire(
        &self,
        shard: &mut DynShard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError>;
    /// Combine two partial aggregates.
    fn merge(&self, a: DynShard, b: DynShard) -> DynShard;
    /// Exact byte length of `shard`'s snapshot encoding.
    fn shard_encoded_len(&self, shard: &DynShard) -> usize;
    /// Append `shard`'s snapshot encoding to `out`.
    fn encode_shard_into(&self, shard: &DynShard, out: &mut Vec<u8>);
    /// Decode a snapshot back into a live shard.
    fn decode_shard(&self, bytes: &[u8]) -> Result<DynShard, WireError>;
    /// Fold a partial aggregate into the server state.
    fn finish_shard(&mut self, shard: DynShard);
    /// Run the aggregation/decoding pipeline; the estimated heavy-hitter
    /// list, sorted by `(estimate desc, value asc)`.
    fn finish(&mut self) -> Vec<(u64, f64)>;
    /// [`DynHhProtocol::finish`] with caller-owned scratch (thread plan +
    /// reusable decode buffers); output is bit-for-bit identical to
    /// [`DynHhProtocol::finish`].
    fn finish_with(&mut self, scratch: &mut FinishScratch) -> Vec<(u64, f64)> {
        let _ = scratch;
        self.finish()
    }
    /// Communication per user in bits.
    fn report_bits(&self) -> usize;
    /// Server working-memory estimate in bytes.
    fn memory_bytes(&self) -> usize;
    /// Total per-user privacy budget consumed.
    fn epsilon(&self) -> f64;
    /// The protocol's detection threshold Δ.
    fn detection_threshold(&self) -> f64;
}

/// Object-safe frequency oracle: the wire-native surface of
/// [`FrequencyOracle`] (see [`DynHhProtocol`]). Obtain one with
/// [`erase_oracle`] or from the [`crate::registry`].
pub trait DynOracle: Send + Sync {
    /// Fused respond + encode for a contiguous user range.
    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32>;
    /// An empty partial aggregate.
    fn new_shard(&self) -> DynShard;
    /// Zero-copy: fold borrowed wire frames into `shard`.
    fn absorb_wire(
        &self,
        shard: &mut DynShard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError>;
    /// Combine two partial aggregates.
    fn merge(&self, a: DynShard, b: DynShard) -> DynShard;
    /// Exact byte length of `shard`'s snapshot encoding.
    fn shard_encoded_len(&self, shard: &DynShard) -> usize;
    /// Append `shard`'s snapshot encoding to `out`.
    fn encode_shard_into(&self, shard: &DynShard, out: &mut Vec<u8>);
    /// Decode a snapshot back into a live shard.
    fn decode_shard(&self, bytes: &[u8]) -> Result<DynShard, WireError>;
    /// Fold a partial aggregate into the server state.
    fn finish_shard(&mut self, shard: DynShard);
    /// Finish ingestion; must be called before [`DynOracle::estimate`].
    fn finalize(&mut self);
    /// [`DynOracle::finalize`] with caller-owned scratch (thread plan +
    /// reusable decode buffers); resulting state is bit-for-bit identical
    /// to [`DynOracle::finalize`].
    fn finalize_with(&mut self, scratch: &mut FinishScratch) {
        let _ = scratch;
        self.finalize();
    }
    /// Estimate `f_S(x)`.
    fn estimate(&self, x: u64) -> f64;
    /// Communication per user in bits.
    fn report_bits(&self) -> usize;
    /// Server working-memory estimate in bytes.
    fn memory_bytes(&self) -> usize;
    /// The per-user privacy parameter the protocol consumes.
    fn epsilon(&self) -> f64;
}

/// Wraps a concrete protocol/oracle into its object-safe dyn trait.
///
/// A newtype rather than a blanket impl so the dyn methods can share
/// the generic traits' names without making calls on concrete types
/// ambiguous.
pub struct Erased<P>(pub P);

impl<P> DynHhProtocol for Erased<P>
where
    P: HeavyHitterProtocol + Send + Sync,
    P::Report: Send + Sync,
{
    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        self.0
            .respond_encode_batch(start_index, xs, client_seed, out)
    }

    fn new_shard(&self) -> DynShard {
        DynShard::new(self.0.new_shard())
    }

    fn absorb_wire(
        &self,
        shard: &mut DynShard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        self.0
            .absorb_wire(shard.downcast_mut("absorb_wire"), start_index, frames)
    }

    fn merge(&self, a: DynShard, b: DynShard) -> DynShard {
        DynShard::new(self.0.merge(a.downcast("merge"), b.downcast("merge")))
    }

    fn shard_encoded_len(&self, shard: &DynShard) -> usize {
        shard
            .downcast_ref::<P::Shard>("shard_encoded_len")
            .shard_encoded_len()
    }

    fn encode_shard_into(&self, shard: &DynShard, out: &mut Vec<u8>) {
        shard
            .downcast_ref::<P::Shard>("encode_shard_into")
            .encode_shard_into(out);
    }

    fn decode_shard(&self, bytes: &[u8]) -> Result<DynShard, WireError> {
        P::Shard::decode_shard(bytes).map(DynShard::new)
    }

    fn finish_shard(&mut self, shard: DynShard) {
        self.0.finish_shard(shard.downcast("finish_shard"));
    }

    fn finish(&mut self) -> Vec<(u64, f64)> {
        self.0.finish()
    }

    fn finish_with(&mut self, scratch: &mut FinishScratch) -> Vec<(u64, f64)> {
        self.0.finish_with(scratch)
    }

    fn report_bits(&self) -> usize {
        self.0.report_bits()
    }

    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }

    fn epsilon(&self) -> f64 {
        self.0.epsilon()
    }

    fn detection_threshold(&self) -> f64 {
        self.0.detection_threshold()
    }
}

impl<O> DynOracle for Erased<O>
where
    O: FrequencyOracle + Send + Sync,
    O::Report: Send + Sync,
{
    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        self.0
            .respond_encode_batch(start_index, xs, client_seed, out)
    }

    fn new_shard(&self) -> DynShard {
        DynShard::new(self.0.new_shard())
    }

    fn absorb_wire(
        &self,
        shard: &mut DynShard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        self.0
            .absorb_wire(shard.downcast_mut("absorb_wire"), start_index, frames)
    }

    fn merge(&self, a: DynShard, b: DynShard) -> DynShard {
        DynShard::new(self.0.merge(a.downcast("merge"), b.downcast("merge")))
    }

    fn shard_encoded_len(&self, shard: &DynShard) -> usize {
        shard
            .downcast_ref::<O::Shard>("shard_encoded_len")
            .shard_encoded_len()
    }

    fn encode_shard_into(&self, shard: &DynShard, out: &mut Vec<u8>) {
        shard
            .downcast_ref::<O::Shard>("encode_shard_into")
            .encode_shard_into(out);
    }

    fn decode_shard(&self, bytes: &[u8]) -> Result<DynShard, WireError> {
        O::Shard::decode_shard(bytes).map(DynShard::new)
    }

    fn finish_shard(&mut self, shard: DynShard) {
        self.0.finish_shard(shard.downcast("finish_shard"));
    }

    fn finalize(&mut self) {
        self.0.finalize();
    }

    fn finalize_with(&mut self, scratch: &mut FinishScratch) {
        self.0.finalize_with(scratch);
    }

    fn estimate(&self, x: u64) -> f64 {
        self.0.estimate(x)
    }

    fn report_bits(&self) -> usize {
        self.0.report_bits()
    }

    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }

    fn epsilon(&self) -> f64 {
        self.0.epsilon()
    }
}

/// Box a concrete heavy-hitter protocol behind the object-safe trait.
pub fn erase_hh<P>(protocol: P) -> Box<dyn DynHhProtocol>
where
    P: HeavyHitterProtocol + Send + Sync + 'static,
    P::Report: Send + Sync,
{
    Box::new(Erased(protocol))
}

/// Box a concrete frequency oracle behind the object-safe trait.
pub fn erase_oracle<O>(oracle: O) -> Box<dyn DynOracle>
where
    O: FrequencyOracle + Send + Sync + 'static,
    O::Report: Send + Sync,
{
    Box::new(Erased(oracle))
}

/// [`StreamIngest`] over a borrowed type-erased heavy-hitter protocol —
/// drives the batched drivers, the lock-step engine and the pipelined
/// runtime exactly like the typed [`HhStream`](crate::stream::HhStream).
#[derive(Clone, Copy)]
pub struct DynHhStream<'a>(pub &'a dyn DynHhProtocol);

impl StreamIngest for DynHhStream<'_> {
    type Shard = DynShard;
    const CLIENT_LABEL: u64 = HH_CLIENT_LABEL;

    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        self.0
            .respond_encode_batch(start_index, xs, client_seed, out)
    }

    fn new_shard(&self) -> DynShard {
        self.0.new_shard()
    }

    fn absorb_wire(
        &self,
        shard: &mut DynShard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        self.0.absorb_wire(shard, start_index, frames)
    }

    fn merge(&self, a: DynShard, b: DynShard) -> DynShard {
        self.0.merge(a, b)
    }

    fn shard_encoded_len(&self, shard: &DynShard) -> usize {
        self.0.shard_encoded_len(shard)
    }

    fn encode_shard_into(&self, shard: &DynShard, out: &mut Vec<u8>) {
        self.0.encode_shard_into(shard, out);
    }

    fn decode_shard(&self, bytes: &[u8]) -> Result<DynShard, WireError> {
        self.0.decode_shard(bytes)
    }
}

/// [`StreamIngest`] over a borrowed type-erased frequency oracle (see
/// [`DynHhStream`]).
#[derive(Clone, Copy)]
pub struct DynOracleStream<'a>(pub &'a dyn DynOracle);

impl StreamIngest for DynOracleStream<'_> {
    type Shard = DynShard;
    const CLIENT_LABEL: u64 = ORACLE_CLIENT_LABEL;

    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        self.0
            .respond_encode_batch(start_index, xs, client_seed, out)
    }

    fn new_shard(&self) -> DynShard {
        self.0.new_shard()
    }

    fn absorb_wire(
        &self,
        shard: &mut DynShard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        self.0.absorb_wire(shard, start_index, frames)
    }

    fn merge(&self, a: DynShard, b: DynShard) -> DynShard {
        self.0.merge(a, b)
    }

    fn shard_encoded_len(&self, shard: &DynShard) -> usize {
        self.0.shard_encoded_len(shard)
    }

    fn encode_shard_into(&self, shard: &DynShard, out: &mut Vec<u8>) {
        self.0.encode_shard_into(shard, out);
    }

    fn decode_shard(&self, bytes: &[u8]) -> Result<DynShard, WireError> {
        self.0.decode_shard(bytes)
    }
}
