//! Locally differentially private frequency oracles.
//!
//! A *frequency oracle* (Definition 3.2 of the paper) is a one-round LDP
//! protocol whose server-side output can estimate `f_S(x)` for every
//! domain element. This crate implements:
//!
//! * [`hashtogram`] — the oracle of Theorems 3.7/3.8 (\[3\]'s `Hashtogram`):
//!   count-sketch bucketing + Hadamard response, achieving per-query error
//!   `O((1/ε)·sqrt(n·log(1/β)))` with `O~(√n)` server memory and `O~(1)`
//!   user cost. The workhorse of `PrivateExpanderSketch`.
//! * [`rappor`] — basic one-hot RAPPOR \[12\], the industrial baseline the
//!   paper's introduction cites (Θ(|X|) user cost).
//! * [`krr`] — generalized randomized response over small domains.
//! * [`bassily_smith`] — a Bassily–Smith \[4\]-style JL projection oracle,
//!   the Table 1 comparison column.
//! * [`randomizers`] — single-message local randomizers with *computable
//!   densities* (binary/general RR, Hadamard response, and two genuinely
//!   approximate `(ε, δ)` randomizers), consumed by GenProt and by the
//!   exact privacy auditor in `hh-structure`.
//! * [`calibrate`] — the shared noise-scale and union-bound threshold
//!   calculations that connect oracle noise to protocol thresholds.
//! * [`wire`] — the byte-exact report wire format ([`WireReport`]) every
//!   oracle's `Report` implements, making the Table 1 communication
//!   claims measurable (and the protocols deployable across a real
//!   serialization boundary).
//!
//! Every protocol here is **non-interactive**: clients see only public
//! randomness (a single seed) and their own input.

pub mod bassily_smith;
pub mod calibrate;
pub mod hashtogram;
pub mod krr;
pub mod randomizers;
pub mod rappor;
pub mod traits;
pub mod wire;

pub use hashtogram::{
    Hashtogram, HashtogramAbsorber, HashtogramParams, HashtogramReport, HashtogramShard,
};
pub use traits::{FrequencyOracle, LocalRandomizer, RandomizerInput};
pub use wire::{FrameError, WireError, WireFrames, WireReport, WireShard};
