//! Bassily–Smith (STOC 2015)-style frequency oracle — the Table 1
//! comparison column.
//!
//! Their succinct-histogram protocol projects the one-hot vector of each
//! input through a random ±1 matrix `Φ ∈ {±1}^{w×|X|}` with `w = Θ(n)`
//! rows; each user 1-bit randomized-responds a single random row entry
//! `Φ[j, x]`, and a frequency query correlates the debiased reports
//! against the query's column of `Φ`.
//!
//! Resource shape (what the paper's Table 1 records and our benches
//! measure): per-query server work `O(w) = O(n)`, so a heavy-hitter
//! search by domain scan costs `Θ(n·|X|)` — the impractical baseline the
//! paper improves on. The `O~(n^{1.5})`/`O~(n^{2.5})` user/server entries
//! of Table 1 come from materializing the public matrix without shared
//! randomness; we account for those analytically (the matrix here is
//! hash-derived, the honest option footnote 2 of the paper mentions) and
//! measure the rest.

use crate::randomizers::BinaryRandomizedResponse;
use crate::traits::{FinishScratch, FrequencyOracle, LocalRandomizer, RandomizerInput};
use crate::wire::{
    pack_row_bit, read_tally_run, read_uint, tally_run_len, uint_len, unpack_row_bit, varint_len,
    write_tally_run, write_uint, write_varint, FrameError, ShardReader, WireError, WireFrames,
    WireReport, WireShard,
};
use hh_hash::family::labels;
use hh_hash::{HashFamily, KWiseHash};
use hh_math::par::{par_chunk_map, planned_threads};
use hh_math::sampler::{ClientCoins, Uniform64};
use rand::Rng;

/// Bassily–Smith-style JL projection oracle.
#[derive(Debug, Clone)]
pub struct BassilySmithOracle {
    domain: u64,
    eps: f64,
    /// Projection dimension `w` (rows of Φ).
    w: u64,
    rr: BinaryRandomizedResponse,
    /// Hoisted row kernel drawing `j ~ U[w]`; `w` is arbitrary, so the
    /// kernel keeps a precomputed rejection cutoff (divide-free draws).
    row: Uniform64,
    /// Row-entry sign generator: Φ[j, x] = sign(h(j·|X| + x)); `k`-wise
    /// independence across columns within a row suffices for the
    /// concentration the analysis needs.
    sign: KWiseHash,
    /// Per-row ±1 report tallies (before finalize). Integer, so sharded
    /// parallel ingest merges exactly — see the Hashtogram tallies note.
    tallies: Vec<i64>,
    /// Debiased projection accumulator ĝ (length w, built by finalize).
    acc: Vec<f64>,
    total: u64,
    finalized: bool,
}

impl BassilySmithOracle {
    /// Construct with projection dimension `w` (Bassily–Smith use
    /// `w = Θ(n)`; pass `n` for the faithful profile).
    pub fn new(domain: u64, eps: f64, w: u64, seed: u64) -> Self {
        assert!(w >= 1);
        let family = HashFamily::new(seed);
        Self {
            domain,
            eps,
            w,
            rr: BinaryRandomizedResponse::new(eps),
            row: Uniform64::new(w),
            sign: family.kwise(labels::BS_PROJECTION, 0, 20, 1 << 32),
            tallies: vec![0i64; w as usize],
            acc: Vec::new(),
            total: 0,
            finalized: false,
        }
    }

    /// Φ[j, x] ∈ {±1}.
    #[inline]
    pub fn phi(&self, j: u64, x: u64) -> f64 {
        // Mix row and column through the k-wise hash; take one bit.
        let v = self
            .sign
            .hash(j.wrapping_mul(0x9E37_79B9).wrapping_add(x) % ((1 << 48) - 59));
        if v & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// The per-user draw body shared by the scalar
    /// [`FrequencyOracle::respond`] and the fused encode path: the
    /// rejection-free row draw through the hoisted `row` kernel, then
    /// one ε-RR bit through the binary word kernel. Both entry points
    /// consume identical coin words.
    fn respond_with<R: Rng + ?Sized>(&self, x: u64, rng: &mut R) -> BsReport {
        assert!(x < self.domain);
        let j = self.row.sample(rng);
        let true_bit = u64::from(self.phi(j, x) > 0.0);
        let sent = self.rr.sample(RandomizerInput::Value(true_bit), rng);
        BsReport {
            row: j,
            bit: if sent == 1 { 1 } else { -1 },
        }
    }
}

/// A user's report: the sampled row and the randomized bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BsReport {
    /// Row index `j ∈ [w]`.
    pub row: u64,
    /// ε-RR of `Φ[j, x]` as ±1.
    pub bit: i8,
}

/// Wire format: the `1 + ceil(log2 w)`-bit payload `row·2 + [bit > 0]`
/// as a minimal little-endian integer.
impl WireReport for BsReport {
    fn encoded_len(&self) -> usize {
        uint_len(pack_row_bit(self.row, self.bit))
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uint(out, pack_row_bit(self.row, self.bit));
    }

    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let (row, bit) = unpack_row_bit(read_uint(bytes)?);
        Ok(BsReport { row, bit })
    }
}

/// Mergeable partial aggregate of a [`BassilySmithOracle`]: per-row ±1
/// integer tallies (merge is exact addition).
#[derive(Debug, Clone)]
pub struct BsShard {
    tallies: Vec<i64>,
    users: u64,
}

/// Snapshot codec: `[users][tallies run]`, canonical varints (tallies
/// zigzag-coded).
impl WireShard for BsShard {
    fn shard_encoded_len(&self) -> usize {
        varint_len(self.users) + tally_run_len(&self.tallies)
    }

    fn encode_shard_into(&self, out: &mut Vec<u8>) {
        write_varint(out, self.users);
        write_tally_run(out, &self.tallies);
    }

    fn decode_shard(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ShardReader::new(bytes);
        let users = r.u64()?;
        let tallies = read_tally_run(&mut r)?;
        r.finish()?;
        Ok(BsShard { tallies, users })
    }
}

impl FrequencyOracle for BassilySmithOracle {
    type Report = BsReport;
    type Shard = BsShard;

    fn respond<R: Rng + ?Sized>(&self, _user_index: u64, x: u64, rng: &mut R) -> BsReport {
        self.respond_with(x, rng)
    }

    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        // Fused: pack `row·2 + bit` straight into the wire buffer —
        // `respond_with` is the same draw body the scalar path runs,
        // coin streams included, with the stream deriver hoisted.
        let coins = ClientCoins::new(client_seed);
        xs.iter()
            .enumerate()
            .map(|(k, &x)| {
                let mut rng = coins.user(start_index + k as u64);
                let rep = self.respond_with(x, &mut rng);
                let before = out.len();
                write_uint(out, pack_row_bit(rep.row, rep.bit));
                (out.len() - before) as u32
            })
            .collect()
    }

    fn collect(&mut self, _user_index: u64, report: BsReport) {
        assert!(!self.finalized);
        // Each user contributes c_ε·(±1) to her sampled row (the debias
        // factor is applied at finalize over the exact integer tally).
        self.tallies[report.row as usize] += i64::from(report.bit);
        self.total += 1;
    }

    fn new_shard(&self) -> BsShard {
        BsShard {
            tallies: vec![0i64; self.w as usize],
            users: 0,
        }
    }

    fn absorb(&self, shard: &mut BsShard, _start_index: u64, reports: &[BsReport]) {
        for rep in reports {
            shard.tallies[rep.row as usize] += i64::from(rep.bit);
        }
        shard.users += reports.len() as u64;
    }

    fn absorb_wire(
        &self,
        shard: &mut BsShard,
        _start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        // Zero-copy: unpack `row·2 + bit` off each borrowed frame and
        // fold the ±1 tally. Rows are validated (absorb's slice indexing
        // would panic on the same corruption).
        for (k, frame) in frames.iter().enumerate() {
            let (row, bit) =
                unpack_row_bit(read_uint(frame).map_err(|e| frames.frame_error(k, e))?);
            if row >= self.w {
                return Err(frames.frame_error(k, WireError::Invalid("report row outside w")));
            }
            shard.tallies[row as usize] += i64::from(bit);
        }
        shard.users += frames.len() as u64;
        Ok(())
    }

    fn merge(&self, mut a: BsShard, b: BsShard) -> BsShard {
        // Hard check — see the HashtogramShard merge note: decoded
        // snapshots are parameter-free, so mismatches must not truncate.
        assert_eq!(a.tallies.len(), b.tallies.len(), "shard shape mismatch");
        for (acc, add) in a.tallies.iter_mut().zip(&b.tallies) {
            *acc += add;
        }
        a.users += b.users;
        a
    }

    fn finish_shard(&mut self, shard: BsShard) {
        assert!(!self.finalized);
        for (acc, add) in self.tallies.iter_mut().zip(&shard.tallies) {
            *acc += add;
        }
        self.total += shard.users;
    }

    fn finalize(&mut self) {
        assert!(!self.finalized, "double finalize");
        let c = self.rr.debias_factor();
        self.acc = self.tallies.iter().map(|&t| c * t as f64).collect();
        self.tallies = Vec::new();
        self.finalized = true;
    }

    fn finalize_with(&mut self, scratch: &mut FinishScratch) {
        assert!(!self.finalized, "double finalize");
        let c = self.rr.debias_factor();
        let tallies = std::mem::take(&mut self.tallies);
        // Element-wise debias: chunks are independent and come back in
        // chunk order, so the concatenation is bit-for-bit `finalize()`'s
        // (the per-query dot product in `estimate` stays serial — its FP
        // accumulation order is part of the result).
        let workers = planned_threads(scratch.threads, tallies.len(), 1);
        let chunk = tallies.len().div_ceil(workers).max(1);
        let parts = par_chunk_map(&tallies, chunk, scratch.threads, |_, ts| {
            ts.iter().map(|&t| c * t as f64).collect::<Vec<f64>>()
        });
        let mut acc = Vec::with_capacity(tallies.len());
        for part in parts {
            acc.extend_from_slice(&part);
        }
        self.acc = acc;
        self.finalized = true;
    }

    fn estimate(&self, x: u64) -> f64 {
        assert!(self.finalized, "estimate before finalize");
        // f̂(x) = ⟨ĝ, Φ[:, x]⟩ / 1 — each user holding x contributes
        // E[c_ε·bit·Φ[j,x]] = E_j[Φ[j,x]²] = 1; other users' signs are
        // k-wise independent and cancel in expectation.
        let mut dot = 0.0;
        for j in 0..self.w {
            dot += self.acc[j as usize] * self.phi(j, x);
        }
        dot
    }

    fn report_bits(&self) -> usize {
        1 + (64 - (self.w - 1).leading_zeros()) as usize
    }

    fn memory_bytes(&self) -> usize {
        self.w as usize * std::mem::size_of::<f64>()
    }

    fn epsilon(&self) -> f64 {
        self.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_math::rng::seeded_rng;

    #[test]
    fn recovers_heavy_element() {
        let n = 30_000u64;
        let domain = 1u64 << 20;
        let mut oracle = BassilySmithOracle::new(domain, 1.0, n / 4, 1);
        let mut rng = seeded_rng(2);
        let heavy = 123_456u64;
        for i in 0..n {
            let x = if i % 4 == 0 { heavy } else { i % domain };
            let rep = oracle.respond(i, x, &mut rng);
            oracle.collect(i, rep);
        }
        oracle.finalize();
        let est = oracle.estimate(heavy);
        let truth = (n / 4) as f64;
        assert!(
            (est - truth).abs() < 0.5 * truth + 800.0,
            "estimate {est} vs {truth}"
        );
    }

    #[test]
    fn signs_are_balanced() {
        let oracle = BassilySmithOracle::new(1 << 16, 1.0, 256, 3);
        let mut sum = 0.0;
        let trials = 40_000u64;
        for t in 0..trials {
            sum += oracle.phi(t % 256, t / 256);
        }
        assert!((sum / trials as f64).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "double finalize")]
    fn double_finalize_panics() {
        let mut oracle = BassilySmithOracle::new(1 << 10, 1.0, 64, 5);
        oracle.finalize();
        oracle.finalize();
    }

    #[test]
    fn query_cost_is_linear_in_w() {
        // Structural check: memory (and hence per-query work) scales with
        // w, unlike Hashtogram's sqrt(n).
        let a = BassilySmithOracle::new(1 << 16, 1.0, 1024, 4);
        let b = BassilySmithOracle::new(1 << 16, 1.0, 4096, 4);
        assert_eq!(b.memory_bytes(), 4 * a.memory_bytes());
    }
}
