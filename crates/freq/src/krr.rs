//! Frequency oracle from generalized randomized response (small domains).
//!
//! The simplest LDP frequency oracle: every user sends an ε-GRR report of
//! her value; the server keeps a histogram and debiases. Error
//! `Θ((1/ε)·sqrt(n·k))` — competitive only for very small domains, which
//! is exactly the role it plays in the benches (and inside Section 5's
//! composition experiments).

use crate::randomizers::GeneralizedRandomizedResponse;
use crate::traits::{FrequencyOracle, LocalRandomizer, RandomizerInput};
use crate::wire::{
    count_run_len, read_count_run, read_uint, varint_len, write_count_run, write_uint,
    write_varint, FrameError, ShardReader, WireError, WireFrames, WireShard,
};
use hh_math::sampler::ClientCoins;
use rand::Rng;

/// GRR-based frequency oracle over `[k]`.
#[derive(Debug, Clone)]
pub struct KrrOracle {
    grr: GeneralizedRandomizedResponse,
    k: u64,
    counts: Vec<u64>,
    total: u64,
    finalized: bool,
}

impl KrrOracle {
    /// Oracle over a `k`-element domain with privacy ε.
    pub fn new(k: u64, eps: f64) -> Self {
        Self {
            grr: GeneralizedRandomizedResponse::new(k, eps),
            k,
            counts: vec![0; k as usize],
            total: 0,
            finalized: false,
        }
    }

    /// The underlying randomizer (for audits / GenProt wrapping).
    pub fn randomizer(&self) -> &GeneralizedRandomizedResponse {
        &self.grr
    }
}

/// Mergeable partial aggregate of a [`KrrOracle`]: a plain histogram of
/// received reports (merge is exact addition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KrrShard {
    counts: Vec<u64>,
    users: u64,
}

/// Snapshot codec: `[users][counts run]`, canonical varints.
impl WireShard for KrrShard {
    fn shard_encoded_len(&self) -> usize {
        varint_len(self.users) + count_run_len(&self.counts)
    }

    fn encode_shard_into(&self, out: &mut Vec<u8>) {
        write_varint(out, self.users);
        write_count_run(out, &self.counts);
    }

    fn decode_shard(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ShardReader::new(bytes);
        let users = r.u64()?;
        let counts = read_count_run(&mut r)?;
        r.finish()?;
        Ok(KrrShard { counts, users })
    }
}

impl FrequencyOracle for KrrOracle {
    /// The GRR output itself — wire format is the minimal little-endian
    /// encoding of the value (`ceil(log2 k)` claimed bits).
    type Report = u64;
    type Shard = KrrShard;

    fn respond<R: Rng + ?Sized>(&self, _user_index: u64, x: u64, rng: &mut R) -> u64 {
        self.grr.sample(RandomizerInput::Value(x), rng)
    }

    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        // Fused: sample each GRR output straight into the wire buffer,
        // same per-user coin streams and keep-vs-lie kernel as the
        // scalar respond path (hoisted out of the per-user loop).
        let coins = ClientCoins::new(client_seed);
        let kernel = self.grr.kernel();
        xs.iter()
            .enumerate()
            .map(|(k, &x)| {
                assert!(x < self.k, "input {x} outside [k]");
                let mut rng = coins.user(start_index + k as u64);
                let v = kernel.sample(x, &mut rng);
                let before = out.len();
                write_uint(out, v);
                (out.len() - before) as u32
            })
            .collect()
    }

    fn collect(&mut self, _user_index: u64, report: u64) {
        assert!(!self.finalized);
        assert!(report < self.k);
        self.counts[report as usize] += 1;
        self.total += 1;
    }

    fn new_shard(&self) -> KrrShard {
        KrrShard {
            counts: vec![0; self.k as usize],
            users: 0,
        }
    }

    fn absorb(&self, shard: &mut KrrShard, _start_index: u64, reports: &[u64]) {
        for &report in reports {
            assert!(report < self.k);
            shard.counts[report as usize] += 1;
        }
        shard.users += reports.len() as u64;
    }

    fn absorb_wire(
        &self,
        shard: &mut KrrShard,
        _start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        // Zero-copy: each frame is the GRR value's minimal encoding —
        // read it and bump the histogram cell, no report vec.
        for (k, frame) in frames.iter().enumerate() {
            let v = read_uint(frame).map_err(|e| frames.frame_error(k, e))?;
            if v >= self.k {
                return Err(
                    frames.frame_error(k, WireError::Invalid("GRR report outside the domain"))
                );
            }
            shard.counts[v as usize] += 1;
        }
        shard.users += frames.len() as u64;
        Ok(())
    }

    fn merge(&self, mut a: KrrShard, b: KrrShard) -> KrrShard {
        // Hard check — see the HashtogramShard merge note: decoded
        // snapshots are parameter-free, so mismatches must not truncate.
        assert_eq!(a.counts.len(), b.counts.len(), "shard shape mismatch");
        for (acc, add) in a.counts.iter_mut().zip(&b.counts) {
            *acc += add;
        }
        a.users += b.users;
        a
    }

    fn finish_shard(&mut self, shard: KrrShard) {
        assert!(!self.finalized);
        for (acc, add) in self.counts.iter_mut().zip(&shard.counts) {
            *acc += add;
        }
        self.total += shard.users;
    }

    fn finalize(&mut self) {
        self.finalized = true;
    }

    fn estimate(&self, x: u64) -> f64 {
        assert!(self.finalized, "estimate before finalize");
        self.grr
            .debias(self.counts[x as usize] as f64, self.total as f64)
    }

    fn report_bits(&self) -> usize {
        (64 - (self.k - 1).leading_zeros()) as usize
    }

    fn memory_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>()
    }

    fn epsilon(&self) -> f64 {
        self.grr.claimed_epsilon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_math::rng::seeded_rng;

    #[test]
    fn recovers_skewed_histogram() {
        let k = 10u64;
        let n = 60_000u64;
        let mut oracle = KrrOracle::new(k, 1.0);
        let mut rng = seeded_rng(1);
        for i in 0..n {
            let x = if i % 5 == 0 { 3 } else { i % k };
            let rep = oracle.respond(i, x, &mut rng);
            oracle.collect(i, rep);
        }
        oracle.finalize();
        // Element 3 holds 1/5 + 1/10·4/5 = 0.28 of the data.
        let est = oracle.estimate(3);
        let want = n as f64 * (0.2 + 0.8 / k as f64);
        assert!(
            (est - want).abs() < 0.1 * n as f64,
            "estimate {est} vs {want}"
        );
        // Estimates roughly sum to n.
        let total: f64 = (0..k).map(|x| oracle.estimate(x)).sum();
        assert!((total - n as f64).abs() < 1e-6 * n as f64);
    }

    #[test]
    fn report_bits_is_log_k() {
        assert_eq!(KrrOracle::new(16, 1.0).report_bits(), 4);
        assert_eq!(KrrOracle::new(17, 1.0).report_bits(), 5);
        assert_eq!(KrrOracle::new(2, 1.0).report_bits(), 1);
    }
}
