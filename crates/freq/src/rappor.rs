//! Basic one-hot RAPPOR (Erlingsson–Pihur–Korolova, CCS 2014).
//!
//! The industrial baseline cited by the paper's introduction: each user
//! one-hot encodes her value over the whole domain and flips every bit
//! independently. Flipping a one-hot vector has ℓ₁-sensitivity 2, so a
//! per-bit budget of ε/2 yields ε-LDP overall.
//!
//! Costs are the story here: Θ(|X|) user time and communication per
//! report, versus Hashtogram's `O~(1)` — this contrast is experiment
//! T1.comm in EXPERIMENTS.md.

use crate::traits::FrequencyOracle;
use crate::wire::{
    count_run_len, read_count_run, varint_len, write_count_run, write_varint, FrameError,
    ShardReader, WireError, WireFrames, WireShard,
};
use hh_math::sampler::{Bernoulli, ClientCoins};
use rand::Rng;

/// Basic RAPPOR over a (small) domain.
#[derive(Debug, Clone)]
pub struct Rappor {
    domain: u64,
    eps: f64,
    /// Pr[bit transmitted truthfully].
    keep: f64,
    /// Word-level kernel flipping each bit with probability `1 - keep`.
    flip: Bernoulli,
    /// Accumulated ones per position.
    ones: Vec<u64>,
    total: u64,
    finalized: bool,
}

impl Rappor {
    /// ε-LDP one-hot RAPPOR. `domain` is capped (the report is a dense
    /// bitvector; this protocol is the "doesn't scale" baseline).
    pub fn new(domain: u64, eps: f64) -> Self {
        assert!(domain >= 2);
        assert!(domain <= 1 << 22, "one-hot RAPPOR beyond 2^22 is pointless");
        assert!(eps > 0.0);
        let half = eps / 2.0;
        let keep = half.exp() / (half.exp() + 1.0);
        Self {
            domain,
            eps,
            keep,
            flip: Bernoulli::new(1.0 - keep),
            ones: vec![0; domain as usize],
            total: 0,
            finalized: false,
        }
    }

    /// Pr\[bit transmitted truthfully\] (`e^{ε/2}/(e^{ε/2}+1)`).
    pub fn keep_probability(&self) -> f64 {
        self.keep
    }

    fn q(&self) -> f64 {
        1.0 - self.keep
    }

    /// Sample the perturbed bitvector of a user holding `x` into `out`
    /// (exactly `domain.div_ceil(8)` bytes) — the one flip loop both
    /// [`FrequencyOracle::respond`] and the fused
    /// [`FrequencyOracle::respond_encode_batch`] run.
    ///
    /// Per 64 positions the report is `truth_word XOR flip_mask`, with
    /// the flip mask drawn by the bit-parallel Bernoulli kernel at flip
    /// probability `1 - keep` — a handful of words per 64 positions
    /// instead of one `f64` draw per position.
    fn respond_into<R: Rng + ?Sized>(&self, x: u64, rng: &mut R, out: &mut [u8]) {
        assert!(x < self.domain);
        debug_assert_eq!(out.len(), (self.domain as usize).div_ceil(8));
        let words = (self.domain as usize).div_ceil(64);
        for w in 0..words {
            let lo = (w as u64) * 64;
            let truth = if (lo..lo + 64).contains(&x) {
                1u64 << (x - lo)
            } else {
                0
            };
            let mut sent = truth ^ self.flip.sample_word(rng);
            let valid = (self.domain - lo).min(64);
            if valid < 64 {
                // Positions beyond the domain stay zero on the wire.
                sent &= (1u64 << valid) - 1;
            }
            let bytes = sent.to_le_bytes();
            let start = w * 8;
            let nb = (out.len() - start).min(8);
            out[start..start + nb].copy_from_slice(&bytes[..nb]);
        }
    }
}

/// Mergeable partial aggregate of a [`Rappor`] oracle: per-position
/// one-counts (merge is exact addition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RapporShard {
    ones: Vec<u64>,
    users: u64,
}

/// Snapshot codec: `[users][ones run]`, canonical varints.
impl WireShard for RapporShard {
    fn shard_encoded_len(&self) -> usize {
        varint_len(self.users) + count_run_len(&self.ones)
    }

    fn encode_shard_into(&self, out: &mut Vec<u8>) {
        write_varint(out, self.users);
        write_count_run(out, &self.ones);
    }

    fn decode_shard(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ShardReader::new(bytes);
        let users = r.u64()?;
        let ones = read_count_run(&mut r)?;
        r.finish()?;
        Ok(RapporShard { ones, users })
    }
}

impl FrequencyOracle for Rappor {
    /// The perturbed bitvector, byte-packed — the report *is* its wire
    /// format (`ceil(domain / 8)` bytes against the `domain`-bit claim).
    type Report = Vec<u8>;
    type Shard = RapporShard;

    fn respond<R: Rng + ?Sized>(&self, _user_index: u64, x: u64, rng: &mut R) -> Vec<u8> {
        let mut out = vec![0u8; (self.domain as usize).div_ceil(8)];
        self.respond_into(x, rng, &mut out);
        out
    }

    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        // Fused: flip words straight into the wire buffer — the report
        // *is* its wire format, so this skips one dense bitvector
        // allocation per user, and `respond_into` is the same kernel
        // loop `respond` runs, word streams included.
        let coins = ClientCoins::new(client_seed);
        let len = (self.domain as usize).div_ceil(8);
        let mut lens = Vec::with_capacity(xs.len());
        for (k, &x) in xs.iter().enumerate() {
            let mut rng = coins.user(start_index + k as u64);
            let base = out.len();
            out.resize(base + len, 0);
            self.respond_into(x, &mut rng, &mut out[base..]);
            lens.push(len as u32);
        }
        lens
    }

    fn collect(&mut self, _user_index: u64, report: Vec<u8>) {
        assert!(!self.finalized);
        assert_eq!(report.len(), (self.domain as usize).div_ceil(8));
        for j in 0..self.domain {
            if report[(j / 8) as usize] >> (j % 8) & 1 == 1 {
                self.ones[j as usize] += 1;
            }
        }
        self.total += 1;
    }

    fn new_shard(&self) -> RapporShard {
        RapporShard {
            ones: vec![0; self.domain as usize],
            users: 0,
        }
    }

    fn absorb(&self, shard: &mut RapporShard, _start_index: u64, reports: &[Vec<u8>]) {
        for report in reports {
            assert_eq!(report.len(), (self.domain as usize).div_ceil(8));
            for j in 0..self.domain {
                if report[(j / 8) as usize] >> (j % 8) & 1 == 1 {
                    shard.ones[j as usize] += 1;
                }
            }
        }
        shard.users += reports.len() as u64;
    }

    fn absorb_wire(
        &self,
        shard: &mut RapporShard,
        _start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        // Zero-copy: the frame *is* the perturbed bitvector — count the
        // ones straight off the borrowed bytes.
        let expect = (self.domain as usize).div_ceil(8);
        for (k, frame) in frames.iter().enumerate() {
            if frame.len() != expect {
                return Err(frames.frame_error(k, WireError::Invalid("bitvector length mismatch")));
            }
            for j in 0..self.domain {
                if frame[(j / 8) as usize] >> (j % 8) & 1 == 1 {
                    shard.ones[j as usize] += 1;
                }
            }
        }
        shard.users += frames.len() as u64;
        Ok(())
    }

    fn merge(&self, mut a: RapporShard, b: RapporShard) -> RapporShard {
        // Hard check — see the HashtogramShard merge note: decoded
        // snapshots are parameter-free, so mismatches must not truncate.
        assert_eq!(a.ones.len(), b.ones.len(), "shard shape mismatch");
        for (acc, add) in a.ones.iter_mut().zip(&b.ones) {
            *acc += add;
        }
        a.users += b.users;
        a
    }

    fn finish_shard(&mut self, shard: RapporShard) {
        assert!(!self.finalized);
        for (acc, add) in self.ones.iter_mut().zip(&shard.ones) {
            *acc += add;
        }
        self.total += shard.users;
    }

    fn finalize(&mut self) {
        self.finalized = true;
    }

    fn estimate(&self, x: u64) -> f64 {
        assert!(self.finalized, "estimate before finalize");
        let c = self.ones[x as usize] as f64;
        let n = self.total as f64;
        (c - n * self.q()) / (self.keep - self.q())
    }

    fn report_bits(&self) -> usize {
        self.domain as usize
    }

    fn memory_bytes(&self) -> usize {
        self.ones.len() * std::mem::size_of::<u64>()
    }

    fn epsilon(&self) -> f64 {
        self.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_math::rng::seeded_rng;

    #[test]
    fn recovers_point_mass() {
        let domain = 32u64;
        let n = 20_000u64;
        let mut oracle = Rappor::new(domain, 1.0);
        let mut rng = seeded_rng(2);
        for i in 0..n {
            let x = if i % 2 == 0 { 11 } else { i % domain };
            let rep = oracle.respond(i, x, &mut rng);
            oracle.collect(i, rep);
        }
        oracle.finalize();
        let est = oracle.estimate(11);
        let want = n as f64 * (0.5 + 0.5 / domain as f64);
        assert!((est - want).abs() < 0.08 * n as f64, "est {est} vs {want}");
    }

    #[test]
    fn per_user_cost_is_linear_in_domain() {
        let oracle = Rappor::new(1024, 1.0);
        assert_eq!(oracle.report_bits(), 1024);
    }

    #[test]
    fn estimate_of_absent_element_near_zero() {
        let domain = 64u64;
        let n = 30_000u64;
        let mut oracle = Rappor::new(domain, 2.0);
        let mut rng = seeded_rng(3);
        for i in 0..n {
            let rep = oracle.respond(i, 5, &mut rng);
            oracle.collect(i, rep);
        }
        oracle.finalize();
        let est = oracle.estimate(40);
        assert!(est.abs() < 0.05 * n as f64, "absent estimate {est}");
    }
}
