//! Basic one-hot RAPPOR (Erlingsson–Pihur–Korolova, CCS 2014).
//!
//! The industrial baseline cited by the paper's introduction: each user
//! one-hot encodes her value over the whole domain and flips every bit
//! independently. Flipping a one-hot vector has ℓ₁-sensitivity 2, so a
//! per-bit budget of ε/2 yields ε-LDP overall.
//!
//! Costs are the story here: Θ(|X|) user time and communication per
//! report, versus Hashtogram's `O~(1)` — this contrast is experiment
//! T1.comm in EXPERIMENTS.md.

use crate::traits::FrequencyOracle;
use rand::Rng;

/// Basic RAPPOR over a (small) domain.
#[derive(Debug, Clone)]
pub struct Rappor {
    domain: u64,
    eps: f64,
    /// Pr[bit transmitted truthfully].
    keep: f64,
    /// Accumulated ones per position.
    ones: Vec<u64>,
    total: u64,
    finalized: bool,
}

impl Rappor {
    /// ε-LDP one-hot RAPPOR. `domain` is capped (the report is a dense
    /// bitvector; this protocol is the "doesn't scale" baseline).
    pub fn new(domain: u64, eps: f64) -> Self {
        assert!(domain >= 2);
        assert!(domain <= 1 << 22, "one-hot RAPPOR beyond 2^22 is pointless");
        assert!(eps > 0.0);
        let half = eps / 2.0;
        Self {
            domain,
            eps,
            keep: half.exp() / (half.exp() + 1.0),
            ones: vec![0; domain as usize],
            total: 0,
            finalized: false,
        }
    }

    fn q(&self) -> f64 {
        1.0 - self.keep
    }
}

impl FrequencyOracle for Rappor {
    /// The perturbed bitvector, packed into words.
    type Report = Vec<u64>;

    fn respond<R: Rng + ?Sized>(&self, _user_index: u64, x: u64, rng: &mut R) -> Vec<u64> {
        assert!(x < self.domain);
        let words = (self.domain as usize).div_ceil(64);
        let mut out = vec![0u64; words];
        for j in 0..self.domain {
            let true_bit = j == x;
            let sent = if rng.gen::<f64>() < self.keep {
                true_bit
            } else {
                !true_bit
            };
            if sent {
                out[(j / 64) as usize] |= 1 << (j % 64);
            }
        }
        out
    }

    fn collect(&mut self, _user_index: u64, report: Vec<u64>) {
        assert!(!self.finalized);
        for j in 0..self.domain {
            if report[(j / 64) as usize] >> (j % 64) & 1 == 1 {
                self.ones[j as usize] += 1;
            }
        }
        self.total += 1;
    }

    fn finalize(&mut self) {
        self.finalized = true;
    }

    fn estimate(&self, x: u64) -> f64 {
        assert!(self.finalized, "estimate before finalize");
        let c = self.ones[x as usize] as f64;
        let n = self.total as f64;
        (c - n * self.q()) / (self.keep - self.q())
    }

    fn report_bits(&self) -> usize {
        self.domain as usize
    }

    fn memory_bytes(&self) -> usize {
        self.ones.len() * std::mem::size_of::<u64>()
    }

    fn epsilon(&self) -> f64 {
        self.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_math::rng::seeded_rng;

    #[test]
    fn recovers_point_mass() {
        let domain = 32u64;
        let n = 20_000u64;
        let mut oracle = Rappor::new(domain, 1.0);
        let mut rng = seeded_rng(2);
        for i in 0..n {
            let x = if i % 2 == 0 { 11 } else { i % domain };
            let rep = oracle.respond(i, x, &mut rng);
            oracle.collect(i, rep);
        }
        oracle.finalize();
        let est = oracle.estimate(11);
        let want = n as f64 * (0.5 + 0.5 / domain as f64);
        assert!((est - want).abs() < 0.08 * n as f64, "est {est} vs {want}");
    }

    #[test]
    fn per_user_cost_is_linear_in_domain() {
        let oracle = Rappor::new(1024, 1.0);
        assert_eq!(oracle.report_bits(), 1024);
    }

    #[test]
    fn estimate_of_absent_element_near_zero() {
        let domain = 64u64;
        let n = 30_000u64;
        let mut oracle = Rappor::new(domain, 2.0);
        let mut rng = seeded_rng(3);
        for i in 0..n {
            let rep = oracle.respond(i, 5, &mut rng);
            oracle.collect(i, rep);
        }
        oracle.finalize();
        let est = oracle.estimate(40);
        assert!(est.abs() < 0.05 * n as f64, "absent estimate {est}");
    }
}
