//! Core protocol abstractions.
//!
//! Both traits here are **batch-first** (see `hh_core::traits` for the
//! full contract): the batch methods default to per-item delegation, and
//! overrides must be observationally identical while being free to
//! vectorize or ingest through sharded parallel accumulators.

use hh_math::rng::client_rng;
use rand::Rng;

/// Input to a local randomizer: a real domain element or the null symbol
/// `⊥` used by GenProt's public sampling (Algorithm GenProt, step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandomizerInput {
    /// A domain element.
    Value(u64),
    /// The null input `⊥` (by convention, a canonical reference input; each
    /// randomizer documents its choice).
    Null,
}

impl From<u64> for RandomizerInput {
    fn from(x: u64) -> Self {
        RandomizerInput::Value(x)
    }
}

/// A single-message local randomizer with *computable output densities*.
///
/// Outputs are encoded as `u64` indices into a finite output space, which
/// lets the workspace (a) run GenProt's rejection sampling, which needs
/// exact density ratios, and (b) *audit* privacy claims exactly by
/// enumerating outputs (`hh-structure::audit`).
pub trait LocalRandomizer {
    /// Number of possible outputs (outputs are `0..output_cardinality()`).
    fn output_cardinality(&self) -> u64;

    /// Draw one output for the given input.
    fn sample<R: Rng + ?Sized>(&self, x: RandomizerInput, rng: &mut R) -> u64;

    /// `ln Pr[A(x) = y]`.
    fn log_density(&self, x: RandomizerInput, y: u64) -> f64;

    /// Draw one output per input, sharing `rng` sequentially.
    ///
    /// Draw-order identical to repeated [`LocalRandomizer::sample`]
    /// calls (the default — overrides may batch the arithmetic but must
    /// preserve the output stream). This is the bulk entry point for
    /// simulation-side consumers that draw many samples from one stream,
    /// e.g. GenProt's public candidate lists; the per-user protocol path
    /// keeps per-user coin streams instead.
    fn sample_batch<R: Rng + ?Sized>(&self, xs: &[RandomizerInput], rng: &mut R) -> Vec<u64> {
        xs.iter().map(|&x| self.sample(x, rng)).collect()
    }

    /// The pure-DP parameter the randomizer claims (`f64::INFINITY` for
    /// approximate-only randomizers).
    fn claimed_epsilon(&self) -> f64;

    /// The approximation parameter δ the randomizer claims (0 for pure).
    fn claimed_delta(&self) -> f64 {
        0.0
    }

    /// Exact output distribution for an input (enumerated).
    fn distribution(&self, x: RandomizerInput) -> Vec<f64> {
        (0..self.output_cardinality())
            .map(|y| self.log_density(x, y).exp())
            .collect()
    }
}

/// A one-round LDP frequency-oracle protocol (Definition 3.2).
///
/// The object holds the *public randomness* (derived from one seed) and
/// the server state; [`FrequencyOracle::respond`] is the client algorithm
/// (it reads only public state and the user's own input, never other
/// users' reports — non-interactivity by construction).
pub trait FrequencyOracle {
    /// The client's single message to the server.
    type Report;

    /// Client-side: user `user_index` holding `x` produces her report.
    fn respond<R: Rng + ?Sized>(&self, user_index: u64, x: u64, rng: &mut R) -> Self::Report;

    /// Client-side, batched: reports of the contiguous user range
    /// `start_index .. start_index + xs.len()`, where user
    /// `start_index + k` draws her coins from
    /// [`client_rng`]`(client_seed, start_index + k)` — the same contract
    /// as `hh_core::traits::HeavyHitterProtocol::respond_batch`.
    fn respond_batch(&self, start_index: u64, xs: &[u64], client_seed: u64) -> Vec<Self::Report> {
        xs.iter()
            .enumerate()
            .map(|(k, &x)| {
                let i = start_index + k as u64;
                self.respond(i, x, &mut client_rng(client_seed, i))
            })
            .collect()
    }

    /// Server-side: ingest one report.
    fn collect(&mut self, user_index: u64, report: Self::Report);

    /// Server-side, batched ingest of a contiguous user range. Must be
    /// observationally identical to per-report
    /// [`FrequencyOracle::collect`] calls (the default); overrides may
    /// use sharded parallel accumulators with order-exact merges.
    fn collect_batch(&mut self, start_index: u64, reports: Vec<Self::Report>) {
        for (k, report) in reports.into_iter().enumerate() {
            self.collect(start_index + k as u64, report);
        }
    }

    /// Server-side: finish ingestion (e.g. apply the inverse transform).
    /// Must be called before [`FrequencyOracle::estimate`].
    fn finalize(&mut self);

    /// Estimate `f_S(x)`.
    fn estimate(&self, x: u64) -> f64;

    /// Communication per user in bits (for the Table 1 accounting).
    fn report_bits(&self) -> usize;

    /// Server working-memory estimate in bytes (sketch state only).
    fn memory_bytes(&self) -> usize;

    /// The per-user privacy parameter the protocol consumes.
    fn epsilon(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomizer_input_from_u64() {
        assert_eq!(RandomizerInput::from(7), RandomizerInput::Value(7));
    }
}
