//! Core protocol abstractions: local randomizers and the
//! encoder/aggregator split of the frequency-oracle interface.
//!
//! # Encoder / aggregator architecture
//!
//! A [`FrequencyOracle`] is two machines connected by a wire:
//!
//! * the **encoder** (client side): [`FrequencyOracle::respond`] /
//!   [`FrequencyOracle::respond_batch`] turn a user's input into a
//!   `Report`, and every `Report` implements [`WireReport`] — an exact
//!   byte encoding, so "logarithmic-size message" is a measured property,
//!   not a theoretical one. The fused entry point
//!   [`FrequencyOracle::respond_encode_batch`] samples straight into a
//!   wire buffer (no intermediate report vec) — byte-identical to
//!   respond-then-encode;
//! * the **aggregator** (server side): ingestion state is first-class and
//!   *mergeable*. A [`FrequencyOracle::Shard`] is a self-contained
//!   partial aggregate; [`FrequencyOracle::new_shard`] makes an empty
//!   one, [`FrequencyOracle::absorb`] folds a contiguous range of
//!   reports into it, [`FrequencyOracle::merge`] combines two shards,
//!   and [`FrequencyOracle::finish_shard`] folds a shard into the
//!   server. Shards are exact integer state, so `merge` is associative
//!   and commutative with `new_shard()` as the identity — any shard
//!   tree, over any partition of the reports, yields bit-for-bit the
//!   state of serial per-user [`FrequencyOracle::collect`] calls (the
//!   `batch_equivalence` and `distributed_merge` integration tests pin
//!   this). The zero-copy entry point [`FrequencyOracle::absorb_wire`]
//!   folds borrowed wire frames ([`WireFrames`]) into a shard without
//!   constructing `Report` values — bit-for-bit equal to
//!   decode-then-absorb.
//!
//! [`FrequencyOracle::collect_batch`] is no longer a per-protocol
//! parallel accumulator: its default is the one shared sharding path —
//! absorb chunks on worker threads, merge tree-wise, fold the result in.
//! Protocols implement the four shard primitives and get batched (and
//! distributed — see `hh_sim::run_oracle_distributed`) ingestion for
//! free.
//!
//! Reproducibility contract (unchanged from the batch-first interface):
//! user `i`'s client coins are always the stream
//! [`hh_math::rng::client_rng`]`(client_seed, i)` — a pure function of
//! the run seed and the user index — so reports, and therefore every
//! aggregate, do not depend on chunk boundaries, thread count, collector
//! assignment, or merge order.

use crate::wire::{encode_reports, FrameError, WireFrames, WireReport, WireShard};
use hh_math::par::par_chunk_map;
use hh_math::rng::client_rng;
use rand::Rng;

// The shared sharding helpers live in `hh_math::par` — one definition
// for this trait, `hh_core::traits`, and the sim drivers, so the
// defaults cannot drift apart. Re-exported here for compatibility.
pub use hh_math::par::{merge_tree, shard_chunk_size, FinishScratch, MIN_SHARD_CHUNK};

/// Input to a local randomizer: a real domain element or the null symbol
/// `⊥` used by GenProt's public sampling (Algorithm GenProt, step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandomizerInput {
    /// A domain element.
    Value(u64),
    /// The null input `⊥` (by convention, a canonical reference input; each
    /// randomizer documents its choice).
    Null,
}

impl From<u64> for RandomizerInput {
    fn from(x: u64) -> Self {
        RandomizerInput::Value(x)
    }
}

/// A single-message local randomizer with *computable output densities*.
///
/// Outputs are encoded as `u64` indices into a finite output space, which
/// lets the workspace (a) run GenProt's rejection sampling, which needs
/// exact density ratios, and (b) *audit* privacy claims exactly by
/// enumerating outputs (`hh-structure::audit`).
pub trait LocalRandomizer {
    /// Number of possible outputs (outputs are `0..output_cardinality()`).
    fn output_cardinality(&self) -> u64;

    /// Draw one output for the given input.
    fn sample<R: Rng + ?Sized>(&self, x: RandomizerInput, rng: &mut R) -> u64;

    /// `ln Pr[A(x) = y]`.
    fn log_density(&self, x: RandomizerInput, y: u64) -> f64;

    /// Draw one output per input, sharing `rng` sequentially.
    ///
    /// Draw-order identical to repeated [`LocalRandomizer::sample`]
    /// calls (the default — overrides may batch the arithmetic but must
    /// preserve the output stream). This is the bulk entry point for
    /// simulation-side consumers that draw many samples from one stream,
    /// e.g. GenProt's public candidate lists; the per-user protocol path
    /// keeps per-user coin streams instead.
    fn sample_batch<R: Rng + ?Sized>(&self, xs: &[RandomizerInput], rng: &mut R) -> Vec<u64> {
        xs.iter().map(|&x| self.sample(x, rng)).collect()
    }

    /// The pure-DP parameter the randomizer claims (`f64::INFINITY` for
    /// approximate-only randomizers).
    fn claimed_epsilon(&self) -> f64;

    /// The approximation parameter δ the randomizer claims (0 for pure).
    fn claimed_delta(&self) -> f64 {
        0.0
    }

    /// Exact output distribution for an input (enumerated).
    fn distribution(&self, x: RandomizerInput) -> Vec<f64> {
        (0..self.output_cardinality())
            .map(|y| self.log_density(x, y).exp())
            .collect()
    }
}

/// A one-round LDP frequency-oracle protocol (Definition 3.2), split into
/// a wire-format encoder and a mergeable aggregator (see the module
/// docs).
///
/// The object holds the *public randomness* (derived from one seed) and
/// the server state; [`FrequencyOracle::respond`] is the client algorithm
/// (it reads only public state and the user's own input, never other
/// users' reports — non-interactivity by construction).
pub trait FrequencyOracle {
    /// The client's single message to the server, as it crosses the wire.
    type Report: WireReport;

    /// Self-contained, mergeable partial aggregation state: what one
    /// collector node holds after ingesting a subset of the reports.
    ///
    /// Shards are *durable artifacts*: every shard implements
    /// [`WireShard`], an exact byte codec, so a collector's partial
    /// aggregate can be checkpointed to stable storage and a crashed
    /// node recovered by decoding its last snapshot and replaying the
    /// reports since (see `hh_sim::stream`).
    ///
    /// Shards own their state outright (`'static`), so they can cross
    /// type-erasure boundaries — `hh_sim`'s object-safe protocol layer
    /// moves them as `Box<dyn Any>` behind byte-level wire interfaces.
    type Shard: Send + WireShard + 'static;

    /// Client-side: user `user_index` holding `x` produces her report.
    fn respond<R: Rng + ?Sized>(&self, user_index: u64, x: u64, rng: &mut R) -> Self::Report;

    /// Client-side, batched: reports of the contiguous user range
    /// `start_index .. start_index + xs.len()`, where user
    /// `start_index + k` draws her coins from
    /// [`client_rng`]`(client_seed, start_index + k)` — the same contract
    /// as `hh_core::traits::HeavyHitterProtocol::respond_batch`.
    fn respond_batch(&self, start_index: u64, xs: &[u64], client_seed: u64) -> Vec<Self::Report> {
        xs.iter()
            .enumerate()
            .map(|(k, &x)| {
                let i = start_index + k as u64;
                self.respond(i, x, &mut client_rng(client_seed, i))
            })
            .collect()
    }

    /// Client-side, fused respond + encode: append the wire frames of
    /// the contiguous user range `start_index .. start_index + xs.len()`
    /// to `out`, returning each frame's length.
    ///
    /// Byte-for-byte identical to [`FrequencyOracle::respond_batch`]
    /// followed by per-report `encode_into` (the default does exactly
    /// that); fused overrides sample straight into the wire buffer with
    /// no intermediate report vec, which is what makes the steady-state
    /// ingest pipeline allocation-free (`out` is typically a pooled
    /// buffer reused across batches).
    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        encode_reports(&self.respond_batch(start_index, xs, client_seed), out)
    }

    /// Server-side: ingest one report. The semantic ground truth every
    /// shard path must match observationally.
    fn collect(&mut self, user_index: u64, report: Self::Report);

    /// An empty partial aggregate (the identity of
    /// [`FrequencyOracle::merge`]).
    fn new_shard(&self) -> Self::Shard;

    /// Fold the reports of the contiguous user range
    /// `start_index .. start_index + reports.len()` into `shard`.
    ///
    /// Must be observationally identical to per-user
    /// [`FrequencyOracle::collect`] calls over the same range (absorbed
    /// state is exact — integer tallies, never floats — so ranges may be
    /// absorbed in any order across any number of shards).
    fn absorb(&self, shard: &mut Self::Shard, start_index: u64, reports: &[Self::Report]);

    /// Server-side, zero-copy: fold borrowed wire frames into `shard`
    /// without constructing `Report` values — frame `k` is user
    /// `start_index + k`'s report.
    ///
    /// Must leave `shard` bit-for-bit identical to decoding every frame
    /// and calling [`FrequencyOracle::absorb`] (the default does exactly
    /// that; the `wire_conformance` proptests pin every override against
    /// it). A corrupt frame — undecodable bytes, or a decoded value
    /// outside the protocol's domain — returns a [`FrameError`] naming
    /// the frame and its byte offset; on `Err` the shard may hold a
    /// partial absorption and must be discarded.
    fn absorb_wire(
        &self,
        shard: &mut Self::Shard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        let mut reports = Vec::with_capacity(frames.len());
        for (k, frame) in frames.iter().enumerate() {
            reports.push(Self::Report::decode(frame).map_err(|e| frames.frame_error(k, e))?);
        }
        self.absorb(shard, start_index, &reports);
        Ok(())
    }

    /// Combine two partial aggregates. Associative and commutative
    /// (observationally), with [`FrequencyOracle::new_shard`] as
    /// identity.
    fn merge(&self, a: Self::Shard, b: Self::Shard) -> Self::Shard;

    /// Fold a partial aggregate into the server state (before
    /// [`FrequencyOracle::finalize`]).
    fn finish_shard(&mut self, shard: Self::Shard);

    /// Server-side, batched ingest of a contiguous user range through
    /// the shared sharding path: absorb chunks into per-thread shards in
    /// parallel, merge them tree-wise, fold the result in. Must be (and,
    /// with the default, is) observationally identical to per-report
    /// [`FrequencyOracle::collect`] calls.
    fn collect_batch(&mut self, start_index: u64, reports: Vec<Self::Report>)
    where
        Self: Sync,
        Self::Report: Sync,
    {
        if reports.is_empty() {
            return;
        }
        let chunk = shard_chunk_size(reports.len());
        let shards = {
            let this: &Self = self;
            par_chunk_map(&reports, chunk, 0, |c, reps| {
                let mut shard = this.new_shard();
                this.absorb(&mut shard, start_index + (c * chunk) as u64, reps);
                shard
            })
        };
        if let Some(shard) = merge_tree(shards, |a, b| self.merge(a, b)) {
            self.finish_shard(shard);
        }
    }

    /// Server-side: finish ingestion (e.g. apply the inverse transform).
    /// Must be called before [`FrequencyOracle::estimate`].
    fn finalize(&mut self);

    /// Server-side: [`FrequencyOracle::finalize`] with an explicit
    /// [`FinishScratch`] — the parallel, allocation-recycling entry
    /// point of the finish path.
    ///
    /// The scratch carries the worker-thread knob the debias/transform
    /// sweeps run under and pooled buffers reused across calls; neither
    /// may change the result: after `finalize_with`, every
    /// [`FrequencyOracle::estimate`] answer is **bit-for-bit equal** to
    /// the plain [`FrequencyOracle::finalize`] path for every scratch
    /// state and thread count (the `finish_equivalence` proptests pin
    /// every override). The default ignores the scratch and runs the
    /// plain serial `finalize`.
    fn finalize_with(&mut self, _scratch: &mut FinishScratch) {
        self.finalize();
    }

    /// Estimate `f_S(x)`.
    fn estimate(&self, x: u64) -> f64;

    /// Communication per user in bits (for the Table 1 accounting). The
    /// wire encoding satisfies
    /// `encoded_len() <= report_bits().div_ceil(8)` — pinned by the
    /// `wire_conformance` integration tests.
    fn report_bits(&self) -> usize;

    /// Server working-memory estimate in bytes (sketch state only).
    fn memory_bytes(&self) -> usize;

    /// The per-user privacy parameter the protocol consumes.
    fn epsilon(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomizer_input_from_u64() {
        assert_eq!(RandomizerInput::from(7), RandomizerInput::Value(7));
    }
}
