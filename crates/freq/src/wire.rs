//! The wire format of client reports.
//!
//! The paper's protocols are client/server with logarithmic-size
//! messages; this module is where that claim meets bytes. Every
//! `Report` type in the workspace implements [`WireReport`]: an exact,
//! byte-oriented encoding (`encode_into` / `decode`) whose length is
//! known up front (`encoded_len`), so a report can cross a real
//! serialization boundary — a socket, a collector queue, a disk spool —
//! and arrive bit-for-bit intact. The distributed driver
//! (`hh_sim::run_heavy_hitter_distributed`) round-trips every report
//! through this format, and the `wire_conformance` integration tests pin
//! `decode(encode(r)) == r` plus the size bound
//! `encoded_len <= report_bits().div_ceil(8)` for every protocol and
//! oracle (a byte transport cannot beat bit granularity, so the claimed
//! Θ(log)-bit payload rounds up to the next whole byte).
//!
//! Encoding conventions:
//!
//! * Scalar payloads are **minimal little-endian**: the value is written
//!   in the fewest bytes that hold it (at least one), and the decoder
//!   reads the entire slice, rejecting non-canonical (zero-padded)
//!   encodings. Framing — knowing where one report ends — is the
//!   transport's job; the simulated collectors frame with
//!   [`WireReport::encoded_len`].
//! * Fields that are pure functions of the user index and public
//!   randomness (Hashtogram's group, the sketch's coordinate) are **not
//!   on the wire**: the server recomputes them from the index it already
//!   has. Reports carry payload only.
//! * Composite reports (one message wrapping two oracle reports)
//!   prefix the first component with a one-byte length so the decoder
//!   can split without protocol parameters.

use std::fmt;

/// Why a byte slice failed to decode as a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The slice is shorter than the format requires.
    Truncated,
    /// The slice holds bytes beyond the end of the report.
    Trailing,
    /// The bytes violate the format (non-canonical length, bad range).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire report truncated"),
            WireError::Trailing => write!(f, "trailing bytes after wire report"),
            WireError::Invalid(why) => write!(f, "invalid wire report: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A client report with an exact byte encoding.
///
/// Implementations must satisfy, for every value `r`:
///
/// 1. **Round trip:** `decode(&encode(r)) == Ok(r)`.
/// 2. **Exact length:** `encode_into` appends exactly
///    [`WireReport::encoded_len`] bytes.
/// 3. **Size claim:** when `r` was produced by a protocol whose
///    per-user communication claim is `report_bits()`,
///    `encoded_len() <= report_bits().div_ceil(8)`.
pub trait WireReport: Sized {
    /// Exact number of bytes [`WireReport::encode_into`] will append.
    fn encoded_len(&self) -> usize;

    /// Append the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decode a report from a slice holding exactly one encoded report.
    fn decode(bytes: &[u8]) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        debug_assert_eq!(out.len(), self.encoded_len(), "encoded_len lied");
        out
    }
}

/// Bytes needed for the minimal little-endian encoding of `v` (≥ 1).
pub fn uint_len(v: u64) -> usize {
    (8 - (v.leading_zeros() as usize) / 8).max(1)
}

/// Append the minimal little-endian encoding of `v` (see [`uint_len`]).
pub fn write_uint(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes()[..uint_len(v)]);
}

/// Read a minimal little-endian integer spanning the whole slice.
///
/// Rejects empty slices, slices longer than 8 bytes, and non-canonical
/// encodings (a most-significant byte of zero in a multi-byte slice).
pub fn read_uint(bytes: &[u8]) -> Result<u64, WireError> {
    if bytes.is_empty() {
        return Err(WireError::Truncated);
    }
    if bytes.len() > 8 {
        return Err(WireError::Trailing);
    }
    if bytes.len() > 1 && bytes[bytes.len() - 1] == 0 {
        return Err(WireError::Invalid("zero-padded integer"));
    }
    let mut buf = [0u8; 8];
    buf[..bytes.len()].copy_from_slice(bytes);
    Ok(u64::from_le_bytes(buf))
}

/// Exact wire length in bytes of a `[first_len: u8][first][second]`
/// composite frame (see [`encode_pair`]).
pub fn pair_encoded_len<A: WireReport, B: WireReport>(first: &A, second: &B) -> usize {
    1 + first.encoded_len() + second.encoded_len()
}

/// Append a two-component composite frame: the first component's length
/// in one byte (so the decoder can split without protocol parameters),
/// then each component's own encoding.
pub fn encode_pair<A: WireReport, B: WireReport>(first: &A, second: &B, out: &mut Vec<u8>) {
    debug_assert!(first.encoded_len() <= u8::MAX as usize);
    out.push(first.encoded_len() as u8);
    first.encode_into(out);
    second.encode_into(out);
}

/// Decode a frame produced by [`encode_pair`].
pub fn decode_pair<A: WireReport, B: WireReport>(bytes: &[u8]) -> Result<(A, B), WireError> {
    let (&first_len, rest) = bytes.split_first().ok_or(WireError::Truncated)?;
    let first_len = first_len as usize;
    if rest.len() < first_len {
        return Err(WireError::Truncated);
    }
    let (first, second) = rest.split_at(first_len);
    Ok((A::decode(first)?, B::decode(second)?))
}

/// Worst-case size, in (byte-aligned) bits, of a composite
/// [`encode_pair`] message whose components claim `first_bits` and
/// `second_bits` — the `report_bits()` of the composite protocols.
pub fn pair_wire_bits(first_bits: usize, second_bits: usize) -> usize {
    8 * (1 + first_bits.div_ceil(8) + second_bits.div_ceil(8))
}

/// Raw `u64` reports (generalized randomized response): the value itself,
/// minimal little-endian.
impl WireReport for u64 {
    fn encoded_len(&self) -> usize {
        uint_len(*self)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uint(out, *self);
    }

    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        read_uint(bytes)
    }
}

/// Dense bitvector reports (one-hot RAPPOR): the bytes are the wire
/// format — identity encoding.
impl WireReport for Vec<u8> {
    fn encoded_len(&self) -> usize {
        self.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }

    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        Ok(bytes.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_len_boundaries() {
        assert_eq!(uint_len(0), 1);
        assert_eq!(uint_len(255), 1);
        assert_eq!(uint_len(256), 2);
        assert_eq!(uint_len(u64::MAX), 8);
    }

    #[test]
    fn uint_round_trips_minimal() {
        for v in [0u64, 1, 127, 255, 256, 65_535, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_uint(&mut buf, v);
            assert_eq!(buf.len(), uint_len(v));
            assert_eq!(read_uint(&buf), Ok(v));
        }
    }

    #[test]
    fn read_uint_rejects_malformed() {
        assert_eq!(read_uint(&[]), Err(WireError::Truncated));
        assert_eq!(read_uint(&[1; 9]), Err(WireError::Trailing));
        assert_eq!(
            read_uint(&[7, 0]),
            Err(WireError::Invalid("zero-padded integer"))
        );
    }

    #[test]
    fn u64_wire_round_trip() {
        for v in [0u64, 42, 1 << 33] {
            assert_eq!(u64::decode(&v.encode()), Ok(v));
            assert_eq!(v.encode().len(), v.encoded_len());
        }
    }

    #[test]
    fn bytes_wire_round_trip() {
        let v = vec![0xAAu8, 0, 0x55];
        assert_eq!(Vec::<u8>::decode(&v.encode()), Ok(v.clone()));
        assert_eq!(v.encoded_len(), 3);
    }
}
