//! The wire format of client reports.
//!
//! The paper's protocols are client/server with logarithmic-size
//! messages; this module is where that claim meets bytes. Every
//! `Report` type in the workspace implements [`WireReport`]: an exact,
//! byte-oriented encoding (`encode_into` / `decode`) whose length is
//! known up front (`encoded_len`), so a report can cross a real
//! serialization boundary — a socket, a collector queue, a disk spool —
//! and arrive bit-for-bit intact. The distributed driver
//! (`hh_sim::run_heavy_hitter_distributed`) round-trips every report
//! through this format, and the `wire_conformance` integration tests pin
//! `decode(encode(r)) == r` plus the size bound
//! `encoded_len <= report_bits().div_ceil(8)` for every protocol and
//! oracle (a byte transport cannot beat bit granularity, so the claimed
//! Θ(log)-bit payload rounds up to the next whole byte).
//!
//! Encoding conventions:
//!
//! * Scalar payloads are **minimal little-endian**: the value is written
//!   in the fewest bytes that hold it (at least one), and the decoder
//!   reads the entire slice, rejecting non-canonical (zero-padded)
//!   encodings. Framing — knowing where one report ends — is the
//!   transport's job; the simulated collectors frame with
//!   [`WireReport::encoded_len`].
//! * Fields that are pure functions of the user index and public
//!   randomness (Hashtogram's group, the sketch's coordinate) are **not
//!   on the wire**: the server recomputes them from the index it already
//!   has. Reports carry payload only.
//! * Composite reports (one message wrapping two oracle reports)
//!   prefix the first component with a one-byte length so the decoder
//!   can split without protocol parameters.
//!
//! # Borrowed frames: the zero-copy ingest contract
//!
//! A batch of encoded reports travels as one *chunk*: a contiguous byte
//! buffer of concatenated frames plus each frame's length.
//! [`WireFrames`] is the borrowed view of such a chunk — it owns
//! nothing, so a collector can fold frames straight out of a pooled
//! arena into its shard (`absorb_wire` on the protocol traits) without
//! materializing `Report` values. The contract:
//!
//! * frame `k` of a chunk starting at `start_index` is user
//!   `start_index + k`'s report — position carries the user identity,
//!   nothing is repeated on the wire;
//! * [`WireFrames::new`] validates the framing up front: zero-length
//!   frames (no report encodes to zero bytes), frame lengths overrunning
//!   the buffer, and trailing bytes beyond the last frame are all
//!   rejected at chunk-decode time;
//! * a failed frame decode surfaces as a [`FrameError`] carrying the
//!   frame index and byte offset, so corruption is diagnosable down to
//!   the byte;
//! * the view is transient: spools and snapshots that must outlive the
//!   arena copy what they need (see `hh_sim::stream`), while the hot
//!   ingest path stays allocation-free.
//!
//! The fused client half is `respond_encode_batch` on the protocol
//! traits: sample straight into the chunk buffer
//! ([`encode_reports`] framing), never building the intermediate report
//! vec. `tests/wire_conformance.rs` pins both halves against the
//! materializing paths bit-for-bit.

use std::fmt;

/// Why a byte slice failed to decode as a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The slice is shorter than the format requires.
    Truncated,
    /// The slice holds bytes beyond the end of the report.
    Trailing,
    /// The bytes violate the format (non-canonical length, bad range).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire report truncated"),
            WireError::Trailing => write!(f, "trailing bytes after wire report"),
            WireError::Invalid(why) => write!(f, "invalid wire report: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A client report with an exact byte encoding.
///
/// Implementations must satisfy, for every value `r`:
///
/// 1. **Round trip:** `decode(&encode(r)) == Ok(r)`.
/// 2. **Exact length:** `encode_into` appends exactly
///    [`WireReport::encoded_len`] bytes.
/// 3. **Size claim:** when `r` was produced by a protocol whose
///    per-user communication claim is `report_bits()`,
///    `encoded_len() <= report_bits().div_ceil(8)`.
pub trait WireReport: Sized {
    /// Exact number of bytes [`WireReport::encode_into`] will append.
    fn encoded_len(&self) -> usize;

    /// Append the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decode a report from a slice holding exactly one encoded report.
    fn decode(bytes: &[u8]) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        debug_assert_eq!(out.len(), self.encoded_len(), "encoded_len lied");
        out
    }
}

/// Bytes needed for the minimal little-endian encoding of `v` (≥ 1).
pub fn uint_len(v: u64) -> usize {
    (8 - (v.leading_zeros() as usize) / 8).max(1)
}

/// Append the minimal little-endian encoding of `v` (see [`uint_len`]).
pub fn write_uint(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes()[..uint_len(v)]);
}

/// Read a minimal little-endian integer spanning the whole slice.
///
/// Rejects empty slices, slices longer than 8 bytes, and non-canonical
/// encodings (a most-significant byte of zero in a multi-byte slice).
pub fn read_uint(bytes: &[u8]) -> Result<u64, WireError> {
    if bytes.is_empty() {
        return Err(WireError::Truncated);
    }
    if bytes.len() > 8 {
        return Err(WireError::Trailing);
    }
    if bytes.len() > 1 && bytes[bytes.len() - 1] == 0 {
        return Err(WireError::Invalid("zero-padded integer"));
    }
    let mut buf = [0u8; 8];
    buf[..bytes.len()].copy_from_slice(bytes);
    Ok(u64::from_le_bytes(buf))
}

/// Exact wire length in bytes of a `[first_len: u8][first][second]`
/// composite frame (see [`encode_pair`]).
pub fn pair_encoded_len<A: WireReport, B: WireReport>(first: &A, second: &B) -> usize {
    1 + first.encoded_len() + second.encoded_len()
}

/// Append a two-component composite frame: the first component's length
/// in one byte (so the decoder can split without protocol parameters),
/// then each component's own encoding.
pub fn encode_pair<A: WireReport, B: WireReport>(first: &A, second: &B, out: &mut Vec<u8>) {
    debug_assert!(first.encoded_len() <= u8::MAX as usize);
    out.push(first.encoded_len() as u8);
    first.encode_into(out);
    second.encode_into(out);
}

/// Decode a frame produced by [`encode_pair`].
pub fn decode_pair<A: WireReport, B: WireReport>(bytes: &[u8]) -> Result<(A, B), WireError> {
    let (&first_len, rest) = bytes.split_first().ok_or(WireError::Truncated)?;
    let first_len = first_len as usize;
    if rest.len() < first_len {
        return Err(WireError::Truncated);
    }
    let (first, second) = rest.split_at(first_len);
    Ok((A::decode(first)?, B::decode(second)?))
}

/// Worst-case size, in (byte-aligned) bits, of a composite
/// [`encode_pair`] message whose components claim `first_bits` and
/// `second_bits` — the `report_bits()` of the composite protocols.
pub fn pair_wire_bits(first_bits: usize, second_bits: usize) -> usize {
    8 * (1 + first_bits.div_ceil(8) + second_bits.div_ceil(8))
}

/// Append each report's encoding to `out`, returning the frame lengths —
/// the framing side of the fused encode path ([`WireFrames`] is the
/// borrowing side). This is what the default
/// `respond_encode_batch` trait implementations delegate to; fused
/// overrides produce byte-identical output without materializing the
/// report slice first.
pub fn encode_reports<R: WireReport>(reports: &[R], out: &mut Vec<u8>) -> Vec<u32> {
    reports
        .iter()
        .map(|report| {
            let before = out.len();
            report.encode_into(out);
            let len = out.len() - before;
            debug_assert_eq!(len, report.encoded_len(), "encoded_len lied");
            len as u32
        })
        .collect()
}

/// A borrowed view over one chunk of framed wire bytes: the concatenated
/// report encodings of a contiguous user range, plus each frame's
/// length.
///
/// This is the contract of the zero-copy ingest path: the bytes are
/// *borrowed* (typically from a pooled arena that outlives the view —
/// see `hh_sim::stream`), frame `k` belongs to user `start_index + k`,
/// and `absorb_wire` implementations fold the frames into a shard
/// without ever constructing owned `Report` values. Construction
/// validates the framing: every frame must be non-empty (no report
/// encodes to zero bytes) and the frame lengths must cover the buffer
/// exactly — trailing garbage and overruns are rejected here, at
/// chunk-decode time, not silently ignored downstream.
#[derive(Debug, Clone, Copy)]
pub struct WireFrames<'a> {
    bytes: &'a [u8],
    frame_lens: &'a [u32],
}

impl<'a> WireFrames<'a> {
    /// Frame a byte buffer. Rejects zero-length frames, frame lengths
    /// overrunning the buffer ([`WireError::Truncated`]), and bytes
    /// beyond the last frame ([`WireError::Trailing`]).
    pub fn new(bytes: &'a [u8], frame_lens: &'a [u32]) -> Result<Self, WireError> {
        let mut total = 0usize;
        for &len in frame_lens {
            if len == 0 {
                return Err(WireError::Invalid("zero-length frame"));
            }
            total = total
                .checked_add(len as usize)
                .ok_or(WireError::Truncated)?;
        }
        if total > bytes.len() {
            return Err(WireError::Truncated);
        }
        if total < bytes.len() {
            return Err(WireError::Trailing);
        }
        Ok(Self { bytes, frame_lens })
    }

    /// Number of frames (= users) in the chunk.
    pub fn len(&self) -> usize {
        self.frame_lens.len()
    }

    /// Whether the chunk holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frame_lens.is_empty()
    }

    /// Total wire bytes across all frames.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Iterate the frames in user order.
    pub fn iter(&self) -> Frames<'a> {
        Frames {
            bytes: self.bytes,
            lens: self.frame_lens.iter(),
        }
    }

    /// Pin a decode failure to frame `frame` of this chunk (its index
    /// and the byte offset its encoding starts at).
    pub fn frame_error(&self, frame: usize, error: WireError) -> FrameError {
        let byte_offset = self.frame_lens[..frame]
            .iter()
            .map(|&l| l as usize)
            .sum::<usize>();
        FrameError {
            frame,
            byte_offset,
            error,
        }
    }
}

impl<'a> IntoIterator for &WireFrames<'a> {
    type Item = &'a [u8];
    type IntoIter = Frames<'a>;

    fn into_iter(self) -> Frames<'a> {
        self.iter()
    }
}

/// Iterator over the frames of a [`WireFrames`] view, in user order.
#[derive(Debug, Clone)]
pub struct Frames<'a> {
    bytes: &'a [u8],
    lens: std::slice::Iter<'a, u32>,
}

impl<'a> Iterator for Frames<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let &len = self.lens.next()?;
        // In bounds: `WireFrames::new` checked the lengths cover the
        // buffer exactly.
        let (frame, rest) = self.bytes.split_at(len as usize);
        self.bytes = rest;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.lens.size_hint()
    }
}

impl ExactSizeIterator for Frames<'_> {}

/// A decode failure pinned to one frame of a wire chunk: which frame,
/// where its bytes start, and why it failed. `absorb_wire`
/// implementations return this so a corrupt spool or RPC is diagnosable
/// down to the byte (the streaming engine adds the collector id and the
/// chunk's start user on top).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameError {
    /// Index of the failing frame within the chunk (user
    /// `start_index + frame`).
    pub frame: usize,
    /// Byte offset of the frame's first byte within the chunk buffer.
    pub byte_offset: usize,
    /// The underlying wire error.
    pub error: WireError,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frame {} at byte offset {}: {}",
            self.frame, self.byte_offset, self.error
        )
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A mergeable aggregation shard with an exact byte encoding — the
/// durable-snapshot analogue of [`WireReport`].
///
/// Where a `Report` is one client's message on the wire, a `Shard` is a
/// collector node's *partial aggregate*, and this codec is what makes
/// it a first-class durable artifact: a collector checkpoints by
/// encoding its shard to bytes, and recovers from a crash by decoding
/// the last snapshot and replaying only the reports received since
/// (`hh_sim::stream::StreamEngine` drives exactly this cycle).
///
/// Implementations must satisfy, for every shard `s`:
///
/// 1. **Round trip:** `decode_shard(&encode_shard(s))` is a shard that
///    is observationally identical to `s` — absorbing, merging, or
///    finishing it produces bit-for-bit the results `s` would.
/// 2. **Exact length:** `encode_shard_into` appends exactly
///    [`WireShard::shard_encoded_len`] bytes.
/// 3. **Canonical integers:** all integers use the minimal (canonical)
///    LEB128 varint forms of [`write_varint`] / [`write_varint_i64`];
///    decoders reject zero-padded encodings.
pub trait WireShard: Sized {
    /// Exact number of bytes [`WireShard::encode_shard_into`] appends.
    fn shard_encoded_len(&self) -> usize;

    /// Append the encoding of `self` to `out`.
    fn encode_shard_into(&self, out: &mut Vec<u8>);

    /// Decode a shard from a slice holding exactly one encoded shard.
    fn decode_shard(bytes: &[u8]) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn encode_shard(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.shard_encoded_len());
        self.encode_shard_into(&mut out);
        debug_assert_eq!(
            out.len(),
            self.shard_encoded_len(),
            "shard_encoded_len lied"
        );
        out
    }
}

/// Bytes of the canonical LEB128 varint encoding of `v` (1–10).
pub fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).div_ceil(7).max(1)
}

/// Append the canonical LEB128 varint encoding of `v`: 7 value bits per
/// byte, least-significant group first, high bit = continuation.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// ZigZag-map a signed tally to the unsigned varint domain
/// (`0, -1, 1, -2, … ↦ 0, 1, 2, 3, …`), so small-magnitude tallies of
/// either sign stay one byte.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Bytes of the canonical varint encoding of a signed tally.
pub fn varint_len_i64(v: i64) -> usize {
    varint_len(zigzag(v))
}

/// Append the canonical varint encoding of a signed tally.
pub fn write_varint_i64(out: &mut Vec<u8>, v: i64) {
    write_varint(out, zigzag(v));
}

/// A cursor over an encoded shard: sequential canonical-varint reads
/// with truncation/overflow/padding checks, and a final
/// [`ShardReader::finish`] that rejects trailing bytes.
#[derive(Debug)]
pub struct ShardReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ShardReader<'a> {
    /// Start reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Read one canonical LEB128 varint.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let &byte = self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
            self.pos += 1;
            let group = u64::from(byte & 0x7F);
            if shift == 63 && group > 1 {
                return Err(WireError::Invalid("varint overflows u64"));
            }
            v |= group << shift;
            if byte & 0x80 == 0 {
                if group == 0 && shift > 0 {
                    return Err(WireError::Invalid("zero-padded varint"));
                }
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::Invalid("varint longer than 10 bytes"));
            }
        }
    }

    /// Read one signed tally ([`zigzag`]-coded varint).
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(unzigzag(self.u64()?))
    }

    /// Read a varint element count, guarded against allocation bombs:
    /// each element needs at least one byte, so a count beyond the
    /// remaining bytes is corrupt.
    pub fn count(&mut self) -> Result<usize, WireError> {
        let n = self.u64()?;
        if n > (self.bytes.len() - self.pos) as u64 {
            return Err(WireError::Truncated);
        }
        Ok(n as usize)
    }

    /// Read `len` raw bytes (a nested frame).
    pub fn raw(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Finish: the whole slice must have been consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }
}

/// Exact encoded length of a `[count][elements…]` varint run of signed
/// tallies — the layout shard codecs use for tally vectors.
pub fn tally_run_len(tallies: &[i64]) -> usize {
    varint_len(tallies.len() as u64) + tallies.iter().map(|&t| varint_len_i64(t)).sum::<usize>()
}

/// Append a `[count][elements…]` varint run of signed tallies.
pub fn write_tally_run(out: &mut Vec<u8>, tallies: &[i64]) {
    write_varint(out, tallies.len() as u64);
    for &t in tallies {
        write_varint_i64(out, t);
    }
}

/// Read a `[count][elements…]` varint run of signed tallies.
pub fn read_tally_run(r: &mut ShardReader<'_>) -> Result<Vec<i64>, WireError> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.i64()?);
    }
    Ok(out)
}

/// Exact encoded length of a `[count][elements…]` varint run of counts.
pub fn count_run_len(counts: &[u64]) -> usize {
    varint_len(counts.len() as u64) + counts.iter().map(|&c| varint_len(c)).sum::<usize>()
}

/// Append a `[count][elements…]` varint run of counts.
pub fn write_count_run(out: &mut Vec<u8>, counts: &[u64]) {
    write_varint(out, counts.len() as u64);
    for &c in counts {
        write_varint(out, c);
    }
}

/// Read a `[count][elements…]` varint run of counts.
pub fn read_count_run(r: &mut ShardReader<'_>) -> Result<Vec<u64>, WireError> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

/// Pack a Hadamard-style `(row, ±1 bit)` report into its wire scalar
/// `row·2 + [bit > 0]` — the one definition the report codecs
/// (`HashtogramReport`, `BsReport`) and the shard report-run codec
/// share, so snapshot and report formats cannot drift apart.
pub fn pack_row_bit(row: u64, bit: i8) -> u64 {
    row << 1 | u64::from(bit > 0)
}

/// Inverse of [`pack_row_bit`].
pub fn unpack_row_bit(v: u64) -> (u64, i8) {
    (v >> 1, if v & 1 == 1 { 1 } else { -1 })
}

/// Raw `u64` reports (generalized randomized response): the value itself,
/// minimal little-endian.
impl WireReport for u64 {
    fn encoded_len(&self) -> usize {
        uint_len(*self)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uint(out, *self);
    }

    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        read_uint(bytes)
    }
}

/// Dense bitvector reports (one-hot RAPPOR): the bytes are the wire
/// format — identity encoding.
impl WireReport for Vec<u8> {
    fn encoded_len(&self) -> usize {
        self.len()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }

    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        Ok(bytes.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_len_boundaries() {
        assert_eq!(uint_len(0), 1);
        assert_eq!(uint_len(255), 1);
        assert_eq!(uint_len(256), 2);
        assert_eq!(uint_len(u64::MAX), 8);
    }

    #[test]
    fn uint_round_trips_minimal() {
        for v in [0u64, 1, 127, 255, 256, 65_535, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_uint(&mut buf, v);
            assert_eq!(buf.len(), uint_len(v));
            assert_eq!(read_uint(&buf), Ok(v));
        }
    }

    #[test]
    fn read_uint_rejects_malformed() {
        assert_eq!(read_uint(&[]), Err(WireError::Truncated));
        assert_eq!(read_uint(&[1; 9]), Err(WireError::Trailing));
        assert_eq!(
            read_uint(&[7, 0]),
            Err(WireError::Invalid("zero-padded integer"))
        );
    }

    #[test]
    fn u64_wire_round_trip() {
        for v in [0u64, 42, 1 << 33] {
            assert_eq!(u64::decode(&v.encode()), Ok(v));
            assert_eq!(v.encode().len(), v.encoded_len());
        }
    }

    #[test]
    fn bytes_wire_round_trip() {
        let v = vec![0xAAu8, 0, 0x55];
        assert_eq!(Vec::<u8>::decode(&v.encode()), Ok(v.clone()));
        assert_eq!(v.encoded_len(), 3);
    }

    #[test]
    fn varint_round_trips_at_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, 1 << 35, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "length lied for {v}");
            let mut r = ShardReader::new(&buf);
            assert_eq!(r.u64(), Ok(v));
            assert!(r.finish().is_ok());
        }
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(u64::MAX), 10);
    }

    #[test]
    fn varint_rejects_malformed() {
        // Truncated: continuation bit with nothing after.
        assert_eq!(ShardReader::new(&[0x80]).u64(), Err(WireError::Truncated));
        // Zero-padded: 0x80 0x00 is a non-canonical zero.
        assert_eq!(
            ShardReader::new(&[0x80, 0x00]).u64(),
            Err(WireError::Invalid("zero-padded varint"))
        );
        // Eleven bytes never decode.
        assert!(ShardReader::new(&[0xFF; 11]).u64().is_err());
        // 10-byte value overflowing 64 bits.
        let mut over = vec![0xFF; 9];
        over.push(0x02);
        assert_eq!(
            ShardReader::new(&over).u64(),
            Err(WireError::Invalid("varint overflows u64"))
        );
        // Trailing bytes after the value are flagged at finish.
        let r = {
            let mut r = ShardReader::new(&[0x07, 0x07]);
            assert_eq!(r.u64(), Ok(7));
            r
        };
        assert_eq!(r.finish(), Err(WireError::Trailing));
    }

    #[test]
    fn zigzag_is_a_bijection_on_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes of either sign stay one byte.
        assert_eq!(varint_len_i64(-1), 1);
        assert_eq!(varint_len_i64(63), 1);
        assert_eq!(varint_len_i64(64), 2);
    }

    #[test]
    fn tally_and_count_runs_round_trip() {
        let tallies = vec![0i64, -5, 1 << 40, -(1 << 40), 7];
        let counts = vec![0u64, 9, u64::MAX];
        let mut buf = Vec::new();
        write_tally_run(&mut buf, &tallies);
        write_count_run(&mut buf, &counts);
        assert_eq!(buf.len(), tally_run_len(&tallies) + count_run_len(&counts));
        let mut r = ShardReader::new(&buf);
        assert_eq!(read_tally_run(&mut r), Ok(tallies));
        assert_eq!(read_count_run(&mut r), Ok(counts));
        assert!(r.finish().is_ok());
    }

    #[test]
    fn wire_frames_iterate_in_order() {
        let mut bytes = Vec::new();
        let lens = encode_reports(&[1u64, 300, 70_000], &mut bytes);
        assert_eq!(lens, vec![1, 2, 3]);
        let frames = WireFrames::new(&bytes, &lens).expect("well-framed");
        assert_eq!(frames.len(), 3);
        assert!(!frames.is_empty());
        assert_eq!(frames.total_bytes(), 6);
        let decoded: Vec<u64> = frames
            .iter()
            .map(|f| u64::decode(f).expect("frame decodes"))
            .collect();
        assert_eq!(decoded, vec![1, 300, 70_000]);
        assert_eq!(frames.iter().len(), 3);
    }

    #[test]
    fn empty_chunk_is_well_framed() {
        let frames = WireFrames::new(&[], &[]).expect("empty chunk");
        assert!(frames.is_empty());
        assert_eq!(frames.iter().count(), 0);
    }

    #[test]
    fn wire_frames_reject_malformed_framing() {
        // Trailing garbage: bytes beyond the last frame.
        assert_eq!(
            WireFrames::new(&[7, 8, 9], &[1, 1]).unwrap_err(),
            WireError::Trailing
        );
        // Frame lengths overrunning the buffer.
        assert_eq!(
            WireFrames::new(&[7, 8], &[1, 2]).unwrap_err(),
            WireError::Truncated
        );
        // Zero-length frames: no report encodes to zero bytes.
        assert_eq!(
            WireFrames::new(&[7], &[1, 0]).unwrap_err(),
            WireError::Invalid("zero-length frame")
        );
        // Length sums that overflow must not wrap around to "fits".
        assert_eq!(
            WireFrames::new(&[7], &[u32::MAX; 5]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn frame_errors_carry_index_and_offset() {
        let mut bytes = Vec::new();
        let lens = encode_reports(&[1u64, 300, 70_000], &mut bytes);
        let frames = WireFrames::new(&bytes, &lens).expect("well-framed");
        let err = frames.frame_error(2, WireError::Truncated);
        assert_eq!(err.frame, 2);
        assert_eq!(err.byte_offset, 3);
        assert_eq!(err.error, WireError::Truncated);
        assert_eq!(
            err.to_string(),
            "frame 2 at byte offset 3: wire report truncated"
        );
    }

    #[test]
    fn run_counts_beyond_the_buffer_are_truncation() {
        // A count claiming more elements than bytes remain must fail
        // fast, not allocate.
        let mut buf = Vec::new();
        write_varint(&mut buf, 1 << 30);
        let mut r = ShardReader::new(&buf);
        assert_eq!(read_count_run(&mut r), Err(WireError::Truncated));
    }
}
