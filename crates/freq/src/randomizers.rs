//! Local randomizers with exactly computable output densities.
//!
//! These are the "atoms" of every protocol in the workspace, and the
//! subjects of the structural results: GenProt (Section 6) consumes any
//! of them through the [`LocalRandomizer`] trait, and the exact privacy
//! auditor enumerates their outputs to *prove* (not just claim) their
//! privacy parameters in tests.

use crate::traits::{LocalRandomizer, RandomizerInput};
use hh_math::sampler::{Bernoulli, GrrSampler, Uniform64};
use rand::Rng;

/// Binary randomized response (Warner): keep the bit w.p. `e^ε/(e^ε+1)`.
///
/// `⊥` is the uniform input: `A(⊥)` outputs a fair coin.
#[derive(Debug, Clone)]
pub struct BinaryRandomizedResponse {
    eps: f64,
    keep: f64,
    coin: Bernoulli,
}

impl BinaryRandomizedResponse {
    /// ε-DP binary randomized response.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        let keep = eps.exp() / (eps.exp() + 1.0);
        Self {
            eps,
            keep,
            coin: Bernoulli::new(keep),
        }
    }

    /// Probability of transmitting the true bit.
    pub fn keep_probability(&self) -> f64 {
        self.keep
    }

    /// The word-level keep coin — the single sampling kernel every call
    /// site (scalar, batched, fused) draws through.
    pub fn keep_coin(&self) -> Bernoulli {
        self.coin
    }

    /// The unbiasing factor `c_ε = (e^ε+1)/(e^ε−1)`: `c_ε·(±1 response)`
    /// has expectation `±1`.
    pub fn debias_factor(&self) -> f64 {
        (self.eps.exp() + 1.0) / (self.eps.exp() - 1.0)
    }
}

impl LocalRandomizer for BinaryRandomizedResponse {
    fn output_cardinality(&self) -> u64 {
        2
    }

    fn sample<R: Rng + ?Sized>(&self, x: RandomizerInput, rng: &mut R) -> u64 {
        match x {
            // One word: threshold-compared biased coin (the kernel).
            RandomizerInput::Value(v) => (v & 1) ^ u64::from(!self.coin.sample(rng)),
            // One word: a fair bit from the top of the word.
            RandomizerInput::Null => rng.next_u64() >> 63,
        }
    }

    fn sample_batch<R: Rng + ?Sized>(&self, xs: &[RandomizerInput], rng: &mut R) -> Vec<u64> {
        // Branch-light bulk path through the same kernel; both paths
        // consume exactly one word per input, so the output stream is
        // identical to the default implementation.
        let mut out = Vec::with_capacity(xs.len());
        for &x in xs {
            out.push(match x {
                RandomizerInput::Value(v) => (v & 1) ^ u64::from(!self.coin.sample(rng)),
                RandomizerInput::Null => rng.next_u64() >> 63,
            });
        }
        out
    }

    fn log_density(&self, x: RandomizerInput, y: u64) -> f64 {
        assert!(y < 2, "binary output expected");
        match x {
            RandomizerInput::Value(v) => {
                if v & 1 == y {
                    self.keep.ln()
                } else {
                    (1.0 - self.keep).ln()
                }
            }
            RandomizerInput::Null => 0.5f64.ln(),
        }
    }

    fn claimed_epsilon(&self) -> f64 {
        self.eps
    }
}

/// Generalized randomized response over `[k]`: report the truth w.p.
/// `e^ε/(e^ε+k−1)`, otherwise a uniformly random *other* value.
///
/// `⊥` is the uniform distribution over `[k]`.
#[derive(Debug, Clone)]
pub struct GeneralizedRandomizedResponse {
    k: u64,
    eps: f64,
    p_true: f64,
    p_other: f64,
    sampler: GrrSampler,
    uniform: Uniform64,
}

impl GeneralizedRandomizedResponse {
    /// ε-DP response over a `k`-element domain.
    pub fn new(k: u64, eps: f64) -> Self {
        assert!(k >= 2, "domain must have at least 2 elements");
        assert!(eps > 0.0);
        let e = eps.exp();
        let p_true = e / (e + k as f64 - 1.0);
        Self {
            k,
            eps,
            p_true,
            p_other: 1.0 / (e + k as f64 - 1.0),
            sampler: GrrSampler::new(k, p_true),
            uniform: Uniform64::new(k),
        }
    }

    /// Unbiased count estimator helpers: `(count − n·p_other) / (p_true − p_other)`.
    pub fn debias(&self, count: f64, n: f64) -> f64 {
        (count - n * self.p_other) / (self.p_true - self.p_other)
    }

    /// The one-word keep-vs-lie kernel every call site draws through.
    pub fn kernel(&self) -> GrrSampler {
        self.sampler
    }
}

impl LocalRandomizer for GeneralizedRandomizedResponse {
    fn output_cardinality(&self) -> u64 {
        self.k
    }

    fn sample<R: Rng + ?Sized>(&self, x: RandomizerInput, rng: &mut R) -> u64 {
        match x {
            RandomizerInput::Value(v) => {
                assert!(v < self.k, "input {v} outside [k]");
                // One word decides keep-vs-lie and the lie value.
                self.sampler.sample(v, rng)
            }
            RandomizerInput::Null => self.uniform.sample(rng),
        }
    }

    fn log_density(&self, x: RandomizerInput, y: u64) -> f64 {
        assert!(y < self.k);
        match x {
            RandomizerInput::Value(v) => {
                if v == y {
                    self.p_true.ln()
                } else {
                    self.p_other.ln()
                }
            }
            RandomizerInput::Null => -(self.k as f64).ln(),
        }
    }

    fn claimed_epsilon(&self) -> f64 {
        self.eps
    }
}

/// Hadamard response: output `(ℓ, b)` where `ℓ ~ U[W]` and `b` is an ε-RR
/// of the Hadamard entry `H[ℓ, x] ∈ {±1}` (encoded as `{0, 1}`).
///
/// Output encoding: `y = 2ℓ + b`. `⊥` sends a uniform `(ℓ, b)`.
/// This is the per-user message of the Hashtogram oracle, exposed as a
/// standalone randomizer so GenProt can wrap the *actual* protocol atom.
#[derive(Debug, Clone)]
pub struct HadamardResponse {
    w: u64,
    row: Uniform64,
    rr: BinaryRandomizedResponse,
}

impl HadamardResponse {
    /// `W` must be a power of two; inputs are bucket indices `< W`.
    pub fn new(w: u64, eps: f64) -> Self {
        assert!(w.is_power_of_two(), "W must be a power of two");
        Self {
            w,
            // Power-of-two span: the widening multiply keeps the top
            // log2(W) bits of one word, never rejecting.
            row: Uniform64::new(w),
            rr: BinaryRandomizedResponse::new(eps),
        }
    }

    /// Decompose an output index into `(ℓ, bit)`.
    pub fn split(&self, y: u64) -> (u64, u64) {
        (y >> 1, y & 1)
    }

    fn entry_bit(&self, ell: u64, x: u64) -> u64 {
        // +1 ↦ 1, −1 ↦ 0.
        if hh_math::wht::hadamard_entry(ell, x) == 1 {
            1
        } else {
            0
        }
    }
}

impl LocalRandomizer for HadamardResponse {
    fn output_cardinality(&self) -> u64 {
        2 * self.w
    }

    fn sample<R: Rng + ?Sized>(&self, x: RandomizerInput, rng: &mut R) -> u64 {
        let ell = self.row.sample(rng);
        match x {
            RandomizerInput::Value(v) => {
                assert!(v < self.w, "bucket {v} outside [W]");
                let true_bit = self.entry_bit(ell, v);
                let bit = self.rr.sample(RandomizerInput::Value(true_bit), rng);
                2 * ell + bit
            }
            RandomizerInput::Null => 2 * ell + (rng.next_u64() >> 63),
        }
    }

    fn log_density(&self, x: RandomizerInput, y: u64) -> f64 {
        assert!(y < 2 * self.w);
        let (ell, bit) = self.split(y);
        let l_uniform = -(self.w as f64).ln();
        match x {
            RandomizerInput::Value(v) => {
                let true_bit = self.entry_bit(ell, v);
                l_uniform + self.rr.log_density(RandomizerInput::Value(true_bit), bit)
            }
            RandomizerInput::Null => l_uniform + 0.5f64.ln(),
        }
    }

    fn claimed_epsilon(&self) -> f64 {
        self.rr.claimed_epsilon()
    }
}

/// A *genuinely approximate* `(ε, δ)`-LDP randomizer: with probability δ
/// it reveals the input exactly (in a disjoint region of the output
/// space), otherwise it runs ε-GRR. The worst-case shape of approximate
/// privacy — exactly what GenProt (Section 6) must clean up.
///
/// Outputs: `0..k` = GRR region, `k..2k` = reveal region (`k + x`).
/// `⊥` never reveals: it plays uniform GRR output.
#[derive(Debug, Clone)]
pub struct RevealingRandomizer {
    grr: GeneralizedRandomizedResponse,
    delta: f64,
    reveal: Bernoulli,
    k: u64,
}

impl RevealingRandomizer {
    /// `(ε, δ)`-LDP by construction: the reveal event has mass δ.
    pub fn new(k: u64, eps: f64, delta: f64) -> Self {
        assert!((0.0..1.0).contains(&delta));
        Self {
            grr: GeneralizedRandomizedResponse::new(k, eps),
            delta,
            reveal: Bernoulli::new(delta),
            k,
        }
    }
}

impl LocalRandomizer for RevealingRandomizer {
    fn output_cardinality(&self) -> u64 {
        2 * self.k
    }

    fn sample<R: Rng + ?Sized>(&self, x: RandomizerInput, rng: &mut R) -> u64 {
        match x {
            RandomizerInput::Value(v) => {
                if self.reveal.sample(rng) {
                    self.k + v
                } else {
                    self.grr.sample(x, rng)
                }
            }
            RandomizerInput::Null => self.grr.sample(RandomizerInput::Null, rng),
        }
    }

    fn log_density(&self, x: RandomizerInput, y: u64) -> f64 {
        assert!(y < 2 * self.k);
        match x {
            RandomizerInput::Value(v) => {
                if y >= self.k {
                    if y - self.k == v {
                        self.delta.ln()
                    } else {
                        f64::NEG_INFINITY
                    }
                } else {
                    (1.0 - self.delta).ln() + self.grr.log_density(x, y)
                }
            }
            RandomizerInput::Null => {
                if y >= self.k {
                    f64::NEG_INFINITY
                } else {
                    self.grr.log_density(RandomizerInput::Null, y)
                }
            }
        }
    }

    fn claimed_epsilon(&self) -> f64 {
        f64::INFINITY
    }

    fn claimed_delta(&self) -> f64 {
        self.delta
    }
}

/// Discretized-Gaussian randomizer on `{0, 1}` inputs: output is
/// `x·shift + round(N(0, σ²))` clamped to a finite grid — the textbook
/// `(ε, δ)` mechanism, with densities computed from the discretized pmf.
///
/// `⊥` is input 0.
#[derive(Debug, Clone)]
pub struct DiscreteGaussianRandomizer {
    sigma: f64,
    shift: i64,
    half_range: i64,
    /// pmf over the grid for a mean-zero noise variable.
    noise_pmf: Vec<f64>,
}

impl DiscreteGaussianRandomizer {
    /// Noise scale σ, signal shift, and grid half-range (outputs live on
    /// `[-half_range, half_range + shift]`, encoded by offset).
    pub fn new(sigma: f64, shift: i64, half_range: i64) -> Self {
        assert!(sigma > 0.0 && shift > 0 && half_range > 3 * shift);
        // pmf of round(N(0, σ²)) truncated to ±half_range, renormalized.
        let mut pmf: Vec<f64> = (-half_range..=half_range)
            .map(|t| {
                let z = t as f64 / sigma;
                (-0.5 * z * z).exp()
            })
            .collect();
        let total: f64 = pmf.iter().sum();
        for p in pmf.iter_mut() {
            *p /= total;
        }
        Self {
            sigma,
            shift,
            half_range,
            noise_pmf: pmf,
        }
    }

    fn output_range(&self) -> i64 {
        2 * self.half_range + 1 + self.shift
    }

    fn signal(&self, x: RandomizerInput) -> i64 {
        match x {
            RandomizerInput::Value(v) => {
                assert!(v <= 1, "binary-input mechanism");
                v as i64 * self.shift
            }
            RandomizerInput::Null => 0,
        }
    }

    /// The `(ε, δ)` pair this mechanism satisfies for a target ε, computed
    /// exactly as the hockey-stick divergence between the two output
    /// distributions (both directions).
    pub fn exact_delta(&self, eps: f64) -> f64 {
        let p0 = self.distribution(RandomizerInput::Value(0));
        let p1 = self.distribution(RandomizerInput::Value(1));
        hh_math::info::hockey_stick(&p0, &p1, eps).max(hh_math::info::hockey_stick(&p1, &p0, eps))
    }

    /// Noise scale.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl LocalRandomizer for DiscreteGaussianRandomizer {
    fn output_cardinality(&self) -> u64 {
        self.output_range() as u64
    }

    fn sample<R: Rng + ?Sized>(&self, x: RandomizerInput, rng: &mut R) -> u64 {
        // Inverse-transform sampling of the truncated discretized Gaussian.
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut noise = self.half_range; // fallback: top of range
        for (i, &p) in self.noise_pmf.iter().enumerate() {
            acc += p;
            if u <= acc {
                noise = i as i64 - self.half_range;
                break;
            }
        }
        (self.signal(x) + noise + self.half_range) as u64
    }

    fn log_density(&self, x: RandomizerInput, y: u64) -> f64 {
        let noise = y as i64 - self.half_range - self.signal(x);
        if noise < -self.half_range || noise > self.half_range {
            return f64::NEG_INFINITY;
        }
        self.noise_pmf[(noise + self.half_range) as usize].ln()
    }

    fn claimed_epsilon(&self) -> f64 {
        f64::INFINITY
    }

    fn claimed_delta(&self) -> f64 {
        // By convention report δ at ε = 1; callers wanting other trade-off
        // points use `exact_delta`.
        self.exact_delta(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn max_log_ratio<A: LocalRandomizer>(a: &A, x1: u64, x2: u64) -> f64 {
        (0..a.output_cardinality())
            .map(|y| {
                let l1 = a.log_density(RandomizerInput::Value(x1), y);
                let l2 = a.log_density(RandomizerInput::Value(x2), y);
                if l1 == f64::NEG_INFINITY && l2 == f64::NEG_INFINITY {
                    0.0
                } else {
                    (l1 - l2).abs()
                }
            })
            .fold(0.0, f64::max)
    }

    fn densities_normalize<A: LocalRandomizer>(a: &A, x: RandomizerInput) {
        let total: f64 = a.distribution(x).iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "densities sum to {total}");
    }

    #[test]
    fn binary_rr_is_exactly_eps_dp() {
        for &eps in &[0.1f64, 0.5, 1.0, 2.0] {
            let rr = BinaryRandomizedResponse::new(eps);
            densities_normalize(&rr, RandomizerInput::Value(0));
            densities_normalize(&rr, RandomizerInput::Null);
            let ratio = max_log_ratio(&rr, 0, 1);
            assert!((ratio - eps).abs() < 1e-12, "eps={eps}: ratio {ratio}");
        }
    }

    #[test]
    fn sample_batch_matches_repeated_sample() {
        // The bulk path must reproduce the scalar draw stream exactly,
        // for both the overridden (BinaryRandomizedResponse) and default
        // (GeneralizedRandomizedResponse, HadamardResponse) impls.
        let inputs: Vec<RandomizerInput> = (0..200u64)
            .map(|i| match i % 3 {
                0 => RandomizerInput::Null,
                1 => RandomizerInput::Value(0),
                _ => RandomizerInput::Value(1),
            })
            .collect();
        fn check<A: LocalRandomizer>(a: &A, inputs: &[RandomizerInput], seed: u64) {
            let batch = a.sample_batch(inputs, &mut SmallRng::seed_from_u64(seed));
            let mut rng = SmallRng::seed_from_u64(seed);
            let scalar: Vec<u64> = inputs.iter().map(|&x| a.sample(x, &mut rng)).collect();
            assert_eq!(batch, scalar);
        }
        check(&BinaryRandomizedResponse::new(0.7), &inputs, 11);
        check(&GeneralizedRandomizedResponse::new(2, 1.0), &inputs, 12);
        check(&HadamardResponse::new(2, 0.5), &inputs, 13);
    }

    #[test]
    fn binary_rr_debias_is_unbiased() {
        let eps = 1.0;
        let rr = BinaryRandomizedResponse::new(eps);
        let mut rng = SmallRng::seed_from_u64(1);
        let trials = 200_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let y = rr.sample(RandomizerInput::Value(1), &mut rng);
            let pm = if y == 1 { 1.0 } else { -1.0 };
            sum += rr.debias_factor() * pm;
        }
        let mean = sum / trials as f64;
        assert!((mean - 1.0).abs() < 0.02, "debiased mean {mean}");
    }

    #[test]
    fn grr_is_exactly_eps_dp_and_normalized() {
        for &(k, eps) in &[(3u64, 0.5f64), (10, 1.0), (64, 2.0)] {
            let g = GeneralizedRandomizedResponse::new(k, eps);
            densities_normalize(&g, RandomizerInput::Value(k - 1));
            densities_normalize(&g, RandomizerInput::Null);
            let ratio = max_log_ratio(&g, 0, k - 1);
            assert!((ratio - eps).abs() < 1e-12, "k={k} eps={eps}: {ratio}");
        }
    }

    #[test]
    fn grr_sampling_matches_density() {
        let g = GeneralizedRandomizedResponse::new(5, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let trials = 300_000u64;
        let mut counts = [0u64; 5];
        for _ in 0..trials {
            counts[g.sample(RandomizerInput::Value(2), &mut rng) as usize] += 1;
        }
        for y in 0..5u64 {
            let want = g.log_density(RandomizerInput::Value(2), y).exp();
            let got = counts[y as usize] as f64 / trials as f64;
            let tol = 6.0 * (want / trials as f64).sqrt() + 1e-3;
            assert!((got - want).abs() < tol, "y={y}: {got} vs {want}");
        }
    }

    #[test]
    fn grr_debias_recovers_counts() {
        let g = GeneralizedRandomizedResponse::new(8, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 40_000u64;
        // 70% of users hold 3, 30% hold 5.
        let mut counts = [0u64; 8];
        for i in 0..n {
            let x = if i % 10 < 7 { 3 } else { 5 };
            counts[g.sample(RandomizerInput::Value(x), &mut rng) as usize] += 1;
        }
        let est3 = g.debias(counts[3] as f64, n as f64);
        assert!(
            (est3 - 0.7 * n as f64).abs() < 0.05 * n as f64,
            "estimate {est3}"
        );
    }

    #[test]
    fn hadamard_response_eps_dp_over_buckets() {
        let h = HadamardResponse::new(16, 1.0);
        densities_normalize(&h, RandomizerInput::Value(7));
        densities_normalize(&h, RandomizerInput::Null);
        let ratio = max_log_ratio(&h, 3, 12);
        assert!(ratio <= 1.0 + 1e-12, "ratio {ratio}");
        // And the bound is achieved (some output distinguishes maximally).
        assert!(ratio > 1.0 - 1e-9);
    }

    #[test]
    fn hadamard_sampling_matches_density() {
        let h = HadamardResponse::new(8, 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let trials = 400_000u64;
        let mut counts = [0u64; 16];
        for _ in 0..trials {
            counts[h.sample(RandomizerInput::Value(5), &mut rng) as usize] += 1;
        }
        for y in 0..16u64 {
            let want = h.log_density(RandomizerInput::Value(5), y).exp();
            let got = counts[y as usize] as f64 / trials as f64;
            let tol = 6.0 * (want / trials as f64).sqrt() + 1e-3;
            assert!((got - want).abs() < tol, "y={y}: {got} vs {want}");
        }
    }

    #[test]
    fn revealing_randomizer_is_exactly_eps_delta() {
        let k = 6u64;
        let (eps, delta) = (0.8, 0.05);
        let rv = RevealingRandomizer::new(k, eps, delta);
        densities_normalize(&rv, RandomizerInput::Value(2));
        densities_normalize(&rv, RandomizerInput::Null);
        // Hockey-stick at eps must be exactly delta (the reveal mass).
        let p0 = rv.distribution(RandomizerInput::Value(0));
        let p1 = rv.distribution(RandomizerInput::Value(1));
        let hs = hh_math::info::hockey_stick(&p0, &p1, eps);
        assert!((hs - delta).abs() < 1e-10, "hockey-stick {hs} vs {delta}");
        // Pure DP fails: unbounded ratio on the reveal region.
        let l0 = rv.log_density(RandomizerInput::Value(0), k);
        let l1 = rv.log_density(RandomizerInput::Value(1), k);
        assert!(l0 > f64::NEG_INFINITY && l1 == f64::NEG_INFINITY);
    }

    #[test]
    fn gaussian_randomizer_density_and_delta() {
        let g = DiscreteGaussianRandomizer::new(4.0, 1, 40);
        densities_normalize(&g, RandomizerInput::Value(0));
        densities_normalize(&g, RandomizerInput::Value(1));
        densities_normalize(&g, RandomizerInput::Null);
        // Exact delta decreases with eps.
        let d1 = g.exact_delta(0.25);
        let d2 = g.exact_delta(1.0);
        assert!(d1 > d2, "delta must shrink with eps: {d1} vs {d2}");
        assert!(d2 > 0.0 && d2 < 0.1);
    }

    #[test]
    fn gaussian_sampler_matches_density() {
        let g = DiscreteGaussianRandomizer::new(2.0, 1, 12);
        let mut rng = SmallRng::seed_from_u64(5);
        let trials = 200_000u64;
        let mut counts = vec![0u64; g.output_cardinality() as usize];
        for _ in 0..trials {
            counts[g.sample(RandomizerInput::Value(1), &mut rng) as usize] += 1;
        }
        for y in 0..g.output_cardinality() {
            let want = g.log_density(RandomizerInput::Value(1), y).exp();
            let got = counts[y as usize] as f64 / trials as f64;
            let tol = 6.0 * (want.max(1e-9) / trials as f64).sqrt() + 1e-3;
            assert!((got - want).abs() < tol, "y={y}: {got} vs {want}");
        }
    }
}
