//! Noise-scale and threshold calibration shared across protocols.
//!
//! `PrivateExpanderSketch`'s stand-out threshold (Algorithm step 3b) and
//! heavy-hitter threshold come in two flavors: the paper's asymptotic
//! formula (`C_f · loglog|X|/ε · sqrt(n/log|X|)`) and an oracle-driven
//! form derived from the actual Hoeffding noise scale of the Hashtogram
//! reports with a union bound over the queried cells. The oracle-driven
//! form is the default (its constants are honest); the paper form is kept
//! for side-by-side comparison in the benches.

/// The randomized-response unbiasing constant `c_ε = (e^ε+1)/(e^ε−1)`.
///
/// One debiased ±1 report has magnitude `c_ε`, hence variance `≤ c_ε²`;
/// every error formula in the workspace is expressed through it.
pub fn c_eps(eps: f64) -> f64 {
    assert!(eps > 0.0);
    (eps.exp() + 1.0) / (eps.exp() - 1.0)
}

/// Hoeffding deviation bound for a sum of `n` debiased reports at
/// confidence `1 − beta`: `c_ε · sqrt(2 n ln(2/beta))`.
pub fn report_sum_deviation(n: f64, eps: f64, beta: f64) -> f64 {
    assert!(beta > 0.0 && beta < 1.0);
    c_eps(eps) * (2.0 * n * (2.0 / beta).ln()).sqrt()
}

/// Union-bound threshold over `cells` simultaneous estimates at overall
/// failure `beta`: the per-cell confidence is `beta / cells`.
pub fn union_threshold(n: f64, eps: f64, beta: f64, cells: u64) -> f64 {
    assert!(cells >= 1);
    report_sum_deviation(n, eps, beta / cells as f64)
}

/// The paper's step-3b threshold form:
/// `C_f · (loglog|X| / ε) · sqrt(n / log|X|)`.
pub fn threshold_paper_form(n: u64, domain_bits: u32, eps: f64, c_f: f64) -> f64 {
    let log_x = f64::from(domain_bits).max(2.0);
    c_f * log_x.ln().max(1.0) / eps * (n as f64 / log_x).sqrt()
}

/// The paper's optimal heavy-hitter detection threshold (Theorem 3.13
/// item 2): `C · (1/ε) · sqrt(n · log(|X|/β))` — the headline error rate.
pub fn detection_threshold_paper(n: u64, domain_bits: u32, eps: f64, beta: f64, c: f64) -> f64 {
    let log_term = f64::from(domain_bits) * std::f64::consts::LN_2 + (1.0 / beta).ln();
    c / eps * (n as f64 * log_term).sqrt()
}

/// The sub-optimal threshold of prior work (Theorem 3.3 item 2):
/// `C · (1/ε) · sqrt(n · log(|X|/β) · log(1/β))` — what Bitstogram pays.
pub fn detection_threshold_bitstogram(
    n: u64,
    domain_bits: u32,
    eps: f64,
    beta: f64,
    c: f64,
) -> f64 {
    detection_threshold_paper(n, domain_bits, eps, beta, c) * (1.0 / beta).ln().max(1.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_eps_limits() {
        // Small eps: c_eps ~ 2/eps. Large eps: c_eps -> 1.
        assert!((c_eps(0.01) - 200.0).abs() / 200.0 < 0.01);
        assert!(c_eps(10.0) < 1.01);
        assert!(c_eps(1.0) > 1.0);
    }

    #[test]
    fn deviation_monotonicity() {
        let d1 = report_sum_deviation(1000.0, 1.0, 0.05);
        assert!(report_sum_deviation(4000.0, 1.0, 0.05) > d1);
        assert!(report_sum_deviation(1000.0, 0.5, 0.05) > d1);
        assert!(report_sum_deviation(1000.0, 1.0, 0.001) > d1);
    }

    #[test]
    fn union_threshold_grows_logarithmically() {
        let t1 = union_threshold(1000.0, 1.0, 0.05, 1);
        let t2 = union_threshold(1000.0, 1.0, 0.05, 1 << 20);
        assert!(t2 > t1);
        // sqrt(ln) growth: 2^20 cells should far less than double... the
        // ratio is sqrt(ln(2^20/β)/ln(1/β))-ish; just sanity-band it.
        assert!(t2 / t1 < 3.0, "ratio {}", t2 / t1);
    }

    #[test]
    fn paper_thresholds_ordering() {
        // Theorem 3.3's threshold must dominate Theorem 3.13's, with the
        // gap growing as beta shrinks — the paper's headline separation.
        let (n, bits, eps) = (1u64 << 16, 32u32, 1.0);
        let mut prev_ratio = 1.0;
        for &beta in &[0.1f64, 0.01, 1e-4, 1e-8] {
            let ours = detection_threshold_paper(n, bits, eps, beta, 1.0);
            let theirs = detection_threshold_bitstogram(n, bits, eps, beta, 1.0);
            let ratio = theirs / ours;
            assert!(ratio >= prev_ratio, "separation must grow: {ratio}");
            prev_ratio = ratio;
        }
        assert!(prev_ratio > 4.0, "at beta=1e-8 the gap should be >4x");
    }

    #[test]
    fn paper_form_threshold_scales() {
        let t1 = threshold_paper_form(1 << 14, 32, 1.0, 1.0);
        let t2 = threshold_paper_form(1 << 16, 32, 1.0, 1.0);
        assert!((t2 / t1 - 2.0).abs() < 0.01, "sqrt(n) scaling violated");
    }
}
