//! `Hashtogram` — the frequency oracle of Theorems 3.7 and 3.8
//! (Bassily–Nissim–Stemmer–Thakurta, "Practical Locally Private Heavy
//! Hitters").
//!
//! Structure (count-median-sketch + Hadamard response):
//!
//! * Users are split into `R = Θ(log(1/β))` groups by a public hash.
//! * Group `r` holds a pairwise-independent bucket hash
//!   `h_r : X → [W]` (`W = Θ(√n)`, a power of two) and a ±1 sign hash
//!   `s_r` (count-sketch debiasing of bucket collisions).
//! * A user in group `r` with input `x` computes `b = h_r(x)`, draws
//!   `ℓ ~ U[W]`, and sends the single ε-randomized-response bit of
//!   `s_r(x)·H[ℓ, b]` together with `ℓ` — `1 + log W` bits, `O~(1)` time.
//! * The server accumulates debiased coefficients per group and applies
//!   one fast Walsh–Hadamard transform at finalization; a query takes the
//!   median across groups of the rescaled, sign-corrected bucket values.
//!
//! The **small-domain variant** (Theorem 3.8) sets `W >= |X|` with the
//! identity bucket map and no signs — collisions are impossible, memory is
//! `O~(|X|)`, and the error loses the `min{n, |X|}` union factor. That
//! variant is what `PrivateExpanderSketch` runs on the `[B]×[Y]×[Z]`
//! domain.
//!
//! Privacy: each user sends one bit through ε-RR (the pair `(ℓ, bit)` with
//! input-independent `ℓ`), hence the protocol is ε-LDP; the claim is
//! audited exactly in `hh-structure::audit` via
//! [`crate::randomizers::HadamardResponse`].

use crate::randomizers::BinaryRandomizedResponse;
use crate::traits::{FrequencyOracle, LocalRandomizer, RandomizerInput};
use crate::wire::{
    count_run_len, pack_row_bit, read_count_run, read_tally_run, read_uint, tally_run_len,
    uint_len, unpack_row_bit, varint_len, write_count_run, write_tally_run, write_uint,
    write_varint, FrameError, ShardReader, WireError, WireFrames, WireReport, WireShard,
};
use hh_hash::family::labels;
use hh_hash::{HashFamily, PairwiseHash, SignHash};
use hh_math::par::{par_map_owned, FinishScratch};
use hh_math::rng::derive_seed;
use hh_math::sampler::{ClientCoins, Uniform64};
use hh_math::stats::median_in_place;
use hh_math::wht::{fwht, fwht_threaded, hadamard_entry};
use rand::Rng;

/// Configuration of a [`Hashtogram`] oracle.
#[derive(Debug, Clone)]
pub struct HashtogramParams {
    /// Domain size `|X|` (elements are `0..domain`).
    pub domain: u64,
    /// Privacy parameter ε consumed by the single report.
    pub eps: f64,
    /// Number of user groups `R`.
    pub groups: usize,
    /// Buckets per group `W` (power of two).
    pub buckets: u64,
    /// `true` = Theorem 3.7 (hashed buckets + signs);
    /// `false` = Theorem 3.8 (identity buckets, requires `buckets >= domain`).
    pub hashed: bool,
}

impl HashtogramParams {
    /// Theorem 3.7 profile: `W = Θ(√n)`, `R = Θ(log(1/β))`.
    pub fn hashed(n: u64, domain: u64, eps: f64, beta: f64) -> Self {
        assert!(beta > 0.0 && beta < 1.0);
        let buckets = ((n as f64).sqrt().ceil() as u64)
            .next_power_of_two()
            .max(16);
        let groups = (((1.0 / beta).ln() / std::f64::consts::LN_2).ceil() as usize + 3) | 1;
        Self {
            domain,
            eps,
            groups,
            buckets,
            hashed: true,
        }
    }

    /// Theorem 3.8 profile: direct histogram over a small domain.
    pub fn direct(domain: u64, eps: f64, beta: f64) -> Self {
        assert!(beta > 0.0 && beta < 1.0);
        let buckets = domain.next_power_of_two().max(2);
        let groups = (((1.0 / beta).ln() / std::f64::consts::LN_2).ceil() as usize + 3) | 1;
        Self {
            domain,
            eps,
            groups,
            buckets,
            hashed: false,
        }
    }

    /// The high-probability per-query error bound implied by the
    /// parameters (the quantity Theorems 3.7/3.8 bound as
    /// `O((1/ε)√(n log(1/β)))`).
    ///
    /// Derivation: one group's rescaled estimate deviates by more than
    /// `D(p) = c_ε·sqrt(2·n·R·ln(2/p))` with probability at most `p`
    /// (Hoeffding over `n/R` reports of magnitude `c_ε`, times the `R`
    /// rescaling). The median over `R` groups fails only when `R/2`
    /// groups deviate, i.e. with probability `≤ (4p)^{R/2}`; solving for
    /// the caller's per-query budget gives `p = (β_q)^{2/R}/4` (or `β_q`
    /// itself when `R = 1`).
    pub fn error_bound(&self, n: u64, per_query_beta: f64) -> f64 {
        assert!(per_query_beta > 0.0 && per_query_beta < 1.0);
        let c_eps = (self.eps.exp() + 1.0) / (self.eps.exp() - 1.0);
        let r = self.groups as f64;
        let p = if self.groups == 1 {
            per_query_beta
        } else {
            (per_query_beta.powf(2.0 / r) / 4.0).min(0.25)
        };
        c_eps * (2.0 * n as f64 * r * (2.0 / p).ln()).sqrt()
    }
}

/// One user's report: the sampled Hadamard row and the randomized bit —
/// `1 + log2(W)` payload bits. The user's group is a pure function of
/// her index and the public randomness, so it is *not* part of the
/// report (the server recomputes it at ingest; see [`WireReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashtogramReport {
    /// Sampled Hadamard row `ℓ ∈ [W]`.
    pub ell: u64,
    /// Randomized response of `s_r(x)·H[ℓ, h_r(x)]`, as ±1.
    pub bit: i8,
}

/// Wire format: the `1 + log2(W)`-bit payload `ℓ·2 + [bit > 0]` as a
/// minimal little-endian integer — `report_bits().div_ceil(8)` bytes or
/// fewer.
impl WireReport for HashtogramReport {
    fn encoded_len(&self) -> usize {
        uint_len(pack_row_bit(self.ell, self.bit))
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        write_uint(out, pack_row_bit(self.ell, self.bit));
    }

    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let (ell, bit) = unpack_row_bit(read_uint(bytes)?);
        Ok(HashtogramReport { ell, bit })
    }
}

/// Mergeable partial aggregate of a [`Hashtogram`]: flat
/// `groups × buckets` integer tallies plus per-group user counts.
/// Integer state merges by addition — exact and order-invariant.
#[derive(Debug, Clone)]
pub struct HashtogramShard {
    /// Row-major `groups × buckets` ±1 report tallies.
    tallies: Vec<i64>,
    /// Users seen per group.
    group_counts: Vec<u64>,
    /// Total users absorbed.
    users: u64,
}

/// Snapshot codec: `[users][group_counts run][tallies run]`, all
/// canonical varints (tallies zigzag-coded). The run lengths make the
/// frame self-describing, so recovery needs no protocol parameters.
impl WireShard for HashtogramShard {
    fn shard_encoded_len(&self) -> usize {
        varint_len(self.users) + count_run_len(&self.group_counts) + tally_run_len(&self.tallies)
    }

    fn encode_shard_into(&self, out: &mut Vec<u8>) {
        write_varint(out, self.users);
        write_count_run(out, &self.group_counts);
        write_tally_run(out, &self.tallies);
    }

    fn decode_shard(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ShardReader::new(bytes);
        let users = r.u64()?;
        let group_counts = read_count_run(&mut r)?;
        let tallies = read_tally_run(&mut r)?;
        r.finish()?;
        // No encoder produces groups without tallies or vice versa: a
        // real shard is `groups` rows of one fixed bucket width.
        let consistent = if group_counts.is_empty() {
            tallies.is_empty()
        } else {
            !tallies.is_empty() && tallies.len().is_multiple_of(group_counts.len())
        };
        if !consistent {
            return Err(WireError::Invalid("tally rows do not divide into groups"));
        }
        Ok(HashtogramShard {
            tallies,
            group_counts,
            users,
        })
    }
}

/// Exact encoded length of a buffered-report run — the
/// `[count]([user][ℓ·2+bit])…` layout the composite protocol shards
/// (`SketchShard`, `BitstogramShard`) use for per-coordinate report
/// buffers. The report scalar is the same `ℓ·2 + [bit > 0]` packing as
/// the report's own wire format, as a varint.
pub fn report_run_len(run: &[(u64, HashtogramReport)]) -> usize {
    varint_len(run.len() as u64)
        + run
            .iter()
            .map(|&(user, rep)| varint_len(user) + varint_len(pack_row_bit(rep.ell, rep.bit)))
            .sum::<usize>()
}

/// Append a buffered-report run (see [`report_run_len`]).
pub fn write_report_run(out: &mut Vec<u8>, run: &[(u64, HashtogramReport)]) {
    write_varint(out, run.len() as u64);
    for &(user, rep) in run {
        write_varint(out, user);
        write_varint(out, pack_row_bit(rep.ell, rep.bit));
    }
}

/// Read a buffered-report run (see [`report_run_len`]).
pub fn read_report_run(r: &mut ShardReader<'_>) -> Result<Vec<(u64, HashtogramReport)>, WireError> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let user = r.u64()?;
        let (ell, bit) = unpack_row_bit(r.u64()?);
        out.push((user, HashtogramReport { ell, bit }));
    }
    Ok(out)
}

/// The Hashtogram oracle: public randomness + server sketch state.
#[derive(Debug, Clone)]
pub struct Hashtogram {
    params: HashtogramParams,
    family: HashFamily,
    bucket_hashes: Vec<PairwiseHash>,
    sign_hashes: Vec<SignHash>,
    rr: BinaryRandomizedResponse,
    /// Hoisted row kernel drawing `ℓ ~ U[W]`; `W` is a power of two, so
    /// the draw is the top bits of one coin word and never rejects.
    row: Uniform64,
    /// Per-group ±1 report tallies over Hadamard rows (before finalize).
    ///
    /// Integers, not debiased floats: integer addition is associative, so
    /// ingesting reports in *any* order — including merging sharded
    /// partial tallies from parallel `collect_batch` — leaves bit-for-bit
    /// identical state. The debias factor is a constant multiplier and is
    /// applied once at finalization.
    tallies: Vec<Vec<i64>>,
    /// Per-group bucket estimates (populated by finalize).
    acc: Vec<Vec<f64>>,
    /// Users seen per group.
    group_counts: Vec<u64>,
    total_users: u64,
    finalized: bool,
}

impl Hashtogram {
    /// Instantiate from parameters and a public-randomness seed.
    pub fn new(params: HashtogramParams, seed: u64) -> Self {
        assert!(params.buckets.is_power_of_two(), "W must be a power of two");
        assert!(params.groups >= 1);
        if !params.hashed {
            assert!(
                params.buckets >= params.domain,
                "direct variant needs W >= |X| ({} < {})",
                params.buckets,
                params.domain
            );
        }
        let family = HashFamily::new(seed);
        let bucket_hashes = (0..params.groups as u64)
            .map(|r| family.pairwise(labels::HASHTOGRAM_BUCKET, r, params.buckets))
            .collect();
        let sign_hashes = (0..params.groups as u64)
            .map(|r| family.sign(labels::HASHTOGRAM_BUCKET + 1000, r))
            .collect();
        let rr = BinaryRandomizedResponse::new(params.eps);
        let row = Uniform64::new(params.buckets);
        let tallies = vec![vec![0i64; params.buckets as usize]; params.groups];
        let group_counts = vec![0; params.groups];
        Self {
            params,
            family,
            bucket_hashes,
            sign_hashes,
            rr,
            row,
            tallies,
            acc: Vec::new(),
            group_counts,
            total_users: 0,
            finalized: false,
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> &HashtogramParams {
        &self.params
    }

    /// The derivation seed of the public group assignment (hoistable by
    /// batch paths; one value per oracle instance).
    fn assignment_seed(&self) -> u64 {
        self.family.component_seed(labels::HASHTOGRAM_ASSIGN, 0)
    }

    /// The group of `user_index` under a hoisted assignment seed — the
    /// single definition both [`Hashtogram::group_of`] and the batch
    /// paths go through, so they cannot diverge.
    fn group_at(assignment_seed: u64, user_index: u64, groups: u64) -> u32 {
        (derive_seed(assignment_seed, user_index) % groups) as u32
    }

    /// The public group assignment of a user (uniform via seed mixing).
    pub fn group_of(&self, user_index: u64) -> u32 {
        Self::group_at(
            self.assignment_seed(),
            user_index,
            self.params.groups as u64,
        )
    }

    /// Bucket of `x` in group `r`.
    pub fn bucket(&self, r: u32, x: u64) -> u64 {
        if self.params.hashed {
            self.bucket_hashes[r as usize].hash(x)
        } else {
            x
        }
    }

    /// Sign of `x` in group `r` (always +1 in the direct variant).
    pub fn sign(&self, r: u32, x: u64) -> i64 {
        if self.params.hashed {
            self.sign_hashes[r as usize].sign(x)
        } else {
            1
        }
    }

    /// Number of users ingested so far.
    pub fn total_users(&self) -> u64 {
        self.total_users
    }

    /// The randomizer a single user runs, for auditing: the report is one
    /// ε-RR bit over an input-independent row choice.
    pub fn randomizer(&self) -> crate::randomizers::HadamardResponse {
        crate::randomizers::HadamardResponse::new(self.params.buckets, self.params.eps)
    }

    /// The one batched client loop both [`Hashtogram::respond_batch`]
    /// and the fused encode path drive: per-user derived coin streams,
    /// the group-assignment component seed hoisted out of the loop (it
    /// costs two SplitMix hops per user in the scalar path), each report
    /// handed to `emit` in user order.
    fn respond_each(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        mut emit: impl FnMut(HashtogramReport),
    ) {
        let assign_seed = self.assignment_seed();
        let groups = self.params.groups as u64;
        let coins = ClientCoins::new(client_seed);
        for (k, &x) in xs.iter().enumerate() {
            let i = start_index + k as u64;
            let mut rng = coins.user(i);
            let group = Self::group_at(assign_seed, i, groups);
            emit(self.respond_with(group, x, &mut rng));
        }
    }

    /// The per-user draw body shared by the scalar
    /// [`FrequencyOracle::respond`] and [`Hashtogram::respond_each`]:
    /// one coin word for the Hadamard row (via the hoisted `row` kernel;
    /// `W` is a power of two, so the draw never rejects) and one ε-RR
    /// bit through the binary word kernel. Both entry points consume
    /// identical coin words, so serial and fused runs agree bit for bit.
    fn respond_with<R: Rng + ?Sized>(&self, group: u32, x: u64, rng: &mut R) -> HashtogramReport {
        assert!(x < self.params.domain, "input {x} outside domain");
        let b = self.bucket(group, x);
        let s = self.sign(group, x);
        let ell = self.row.sample(rng);
        let true_pm = i64::from(hadamard_entry(ell, b)) * s;
        let true_bit = u64::from(true_pm > 0);
        let sent = self.rr.sample(RandomizerInput::Value(true_bit), rng);
        HashtogramReport {
            ell,
            bit: if sent == 1 { 1 } else { -1 },
        }
    }

    /// The hoisted zero-copy ingester: assignment seed and shapes derived
    /// once per batch. Shared by this oracle's own wire path and by the
    /// composite protocols that wrap it (`ExpanderSketch` / `Bitstogram`
    /// outer halves), so their per-report folds cannot drift from
    /// [`Hashtogram::absorb`].
    pub fn absorber(&self) -> HashtogramAbsorber {
        HashtogramAbsorber {
            assign_seed: self.assignment_seed(),
            groups: self.params.groups as u64,
            buckets: self.params.buckets as usize,
        }
    }

    /// [`FrequencyOracle::estimate`] writing the per-group estimates
    /// into a caller-owned buffer — bit-for-bit the same answer, no
    /// per-query allocation. The sweep entry point the scan-style
    /// protocols drive with a pooled [`FinishScratch`] buffer.
    pub fn estimate_into(&self, x: u64, buf: &mut Vec<f64>) -> f64 {
        assert!(self.finalized, "estimate before finalize");
        assert!(x < self.params.domain);
        let n = self.total_users as f64;
        buf.clear();
        buf.extend((0..self.params.groups).map(|r| {
            let b = self.bucket(r as u32, x);
            let s = self.sign(r as u32, x) as f64;
            let raw = self.acc[r][b as usize] * s;
            // Rescale the group subsample to the full population.
            let m = self.group_counts[r].max(1) as f64;
            raw * (n / m)
        }));
        median_in_place(buf)
    }
}

/// Hoisted per-report shard ingester for [`Hashtogram`] reports (see
/// [`Hashtogram::absorber`]): validates the row and folds the ±1 tally
/// into the right `(group, row)` cell.
#[derive(Debug, Clone, Copy)]
pub struct HashtogramAbsorber {
    assign_seed: u64,
    groups: u64,
    buckets: usize,
}

impl HashtogramAbsorber {
    /// Fold one report for `user_index` into `shard`. `Err` when the
    /// row index is outside `W` — a corrupt frame would otherwise alias
    /// into a *neighboring group's* row of the flat tally.
    pub fn absorb_one(
        &self,
        shard: &mut HashtogramShard,
        user_index: u64,
        rep: HashtogramReport,
    ) -> Result<(), WireError> {
        if rep.ell as usize >= self.buckets {
            return Err(WireError::Invalid("report row outside W"));
        }
        let g = Hashtogram::group_at(self.assign_seed, user_index, self.groups) as usize;
        shard.tallies[g * self.buckets + rep.ell as usize] += i64::from(rep.bit);
        shard.group_counts[g] += 1;
        shard.users += 1;
        Ok(())
    }
}

impl FrequencyOracle for Hashtogram {
    type Report = HashtogramReport;
    type Shard = HashtogramShard;

    fn respond<R: Rng + ?Sized>(&self, user_index: u64, x: u64, rng: &mut R) -> HashtogramReport {
        self.respond_with(self.group_of(user_index), x, rng)
    }

    fn respond_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
    ) -> Vec<HashtogramReport> {
        let mut out = Vec::with_capacity(xs.len());
        self.respond_each(start_index, xs, client_seed, |rep| out.push(rep));
        out
    }

    fn respond_encode_batch(
        &self,
        start_index: u64,
        xs: &[u64],
        client_seed: u64,
        out: &mut Vec<u8>,
    ) -> Vec<u32> {
        // Fused: the same per-user draws as `respond_batch`, written
        // straight to the wire — no intermediate report vec.
        let mut lens = Vec::with_capacity(xs.len());
        self.respond_each(start_index, xs, client_seed, |rep| {
            let before = out.len();
            rep.encode_into(out);
            lens.push((out.len() - before) as u32);
        });
        lens
    }

    fn collect(&mut self, user_index: u64, report: HashtogramReport) {
        assert!(!self.finalized, "collect after finalize");
        let group = self.group_of(user_index) as usize;
        self.tallies[group][report.ell as usize] += i64::from(report.bit);
        self.group_counts[group] += 1;
        self.total_users += 1;
    }

    fn new_shard(&self) -> HashtogramShard {
        HashtogramShard {
            tallies: vec![0i64; self.params.groups * self.params.buckets as usize],
            group_counts: vec![0u64; self.params.groups],
            users: 0,
        }
    }

    fn absorb(&self, shard: &mut HashtogramShard, start_index: u64, reports: &[HashtogramReport]) {
        // The group is recomputed from the user index under the hoisted
        // absorber — reports carry payload only. Rows are validated
        // there: a corrupt report with ell >= W would otherwise alias
        // into a neighboring group's row of the flat tally (the serial
        // `collect` path panics on the same corruption via its per-group
        // indexing), so a bad row panics here too.
        let absorber = self.absorber();
        for (k, &rep) in reports.iter().enumerate() {
            absorber
                .absorb_one(shard, start_index + k as u64, rep)
                .unwrap_or_else(|_| {
                    panic!("report row {} outside W = {}", rep.ell, self.params.buckets)
                });
        }
    }

    fn absorb_wire(
        &self,
        shard: &mut HashtogramShard,
        start_index: u64,
        frames: &WireFrames<'_>,
    ) -> Result<(), FrameError> {
        let absorber = self.absorber();
        for (k, frame) in frames.iter().enumerate() {
            let rep = HashtogramReport::decode(frame).map_err(|e| frames.frame_error(k, e))?;
            absorber
                .absorb_one(shard, start_index + k as u64, rep)
                .map_err(|e| frames.frame_error(k, e))?;
        }
        Ok(())
    }

    fn merge(&self, mut a: HashtogramShard, b: HashtogramShard) -> HashtogramShard {
        // Hard check: decoded snapshots carry no protocol parameters, so
        // a shard from a mismatched configuration must fail loudly here,
        // never zip-truncate into a silently wrong aggregate.
        assert_eq!(a.tallies.len(), b.tallies.len(), "shard shape mismatch");
        assert_eq!(
            a.group_counts.len(),
            b.group_counts.len(),
            "shard shape mismatch"
        );
        for (acc, add) in a.tallies.iter_mut().zip(&b.tallies) {
            *acc += add;
        }
        for (acc, add) in a.group_counts.iter_mut().zip(&b.group_counts) {
            *acc += add;
        }
        a.users += b.users;
        a
    }

    fn finish_shard(&mut self, shard: HashtogramShard) {
        assert!(!self.finalized, "collect after finalize");
        let buckets = self.params.buckets as usize;
        assert_eq!(
            shard.tallies.len(),
            self.params.groups * buckets,
            "shard shape mismatch"
        );
        assert_eq!(
            shard.group_counts.len(),
            self.params.groups,
            "shard shape mismatch"
        );
        for (g, row) in self.tallies.iter_mut().enumerate() {
            for (acc, add) in row
                .iter_mut()
                .zip(&shard.tallies[g * buckets..(g + 1) * buckets])
            {
                *acc += add;
            }
            self.group_counts[g] += shard.group_counts[g];
        }
        self.total_users += shard.users;
    }

    fn finalize(&mut self) {
        assert!(!self.finalized, "double finalize");
        let c = self.rr.debias_factor();
        self.acc = self
            .tallies
            .iter()
            .map(|row| {
                // Debias once per cell (constant multiplier over the exact
                // integer tally), then the WHT turns accumulated
                // coefficients into per-bucket sums: each user contributes
                // (in expectation) W * (1/W) * 1 to her bucket via the
                // orthogonality of Hadamard rows.
                let mut out: Vec<f64> = row.iter().map(|&t| c * t as f64).collect();
                fwht(&mut out);
                out
            })
            .collect();
        self.tallies = Vec::new();
        self.finalized = true;
    }

    fn finalize_with(&mut self, scratch: &mut FinishScratch) {
        assert!(!self.finalized, "double finalize");
        let c = self.rr.debias_factor();
        let threads = scratch.threads;
        let rows = std::mem::take(&mut self.tallies);
        self.acc = if rows.len() <= 1 {
            // One row: the only parallelism available is inside the
            // transform itself — the blocked WHT kernel.
            rows.into_iter()
                .map(|row| {
                    let mut out: Vec<f64> = row.iter().map(|&t| c * t as f64).collect();
                    fwht_threaded(&mut out, threads);
                    out
                })
                .collect()
        } else {
            // One row per group; rows are independent, results come back
            // in row order — the debias + WHT per row is the serial
            // kernel, so the output is bit-for-bit `finalize()`'s.
            par_map_owned(rows, threads, |_, row| {
                let mut out: Vec<f64> = row.iter().map(|&t| c * t as f64).collect();
                fwht(&mut out);
                out
            })
        };
        self.finalized = true;
    }

    fn estimate(&self, x: u64) -> f64 {
        let mut buf = Vec::with_capacity(self.params.groups);
        self.estimate_into(x, &mut buf)
    }

    fn report_bits(&self) -> usize {
        1 + (self.params.buckets.trailing_zeros() as usize)
    }

    fn memory_bytes(&self) -> usize {
        self.params.groups * self.params.buckets as usize * std::mem::size_of::<f64>()
    }

    fn epsilon(&self) -> f64 {
        self.params.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_math::rng::seeded_rng;

    /// Run the full protocol on a dataset and return the oracle.
    fn run(params: HashtogramParams, data: &[u64], seed: u64) -> Hashtogram {
        let mut oracle = Hashtogram::new(params, seed);
        let mut rng = seeded_rng(seed ^ 0x0BAC_CA0F);
        for (i, &x) in data.iter().enumerate() {
            let rep = oracle.respond(i as u64, x, &mut rng);
            oracle.collect(i as u64, rep);
        }
        oracle.finalize();
        oracle
    }

    fn planted_data(n: usize, domain: u64, heavy: &[(u64, f64)], seed: u64) -> Vec<u64> {
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                for &(x, frac) in heavy {
                    acc += frac;
                    if u < acc {
                        return x;
                    }
                }
                rng.gen_range(0..domain)
            })
            .collect()
    }

    #[test]
    fn direct_variant_estimates_counts() {
        let n = 20_000usize;
        let domain = 64u64;
        let data = planted_data(n, domain, &[(7, 0.3), (42, 0.1)], 1);
        let true7 = data.iter().filter(|&&x| x == 7).count() as f64;
        let true42 = data.iter().filter(|&&x| x == 42).count() as f64;
        let oracle = run(HashtogramParams::direct(domain, 1.0, 0.05), &data, 2);
        let tol = oracle.params().error_bound(n as u64, 0.01);
        assert!(tol < n as f64 * 0.5, "bound uselessly large: {tol}");
        assert!(
            (oracle.estimate(7) - true7).abs() < tol,
            "est {} vs {true7} (tol {tol})",
            oracle.estimate(7)
        );
        assert!((oracle.estimate(42) - true42).abs() < tol);
        assert!(
            (oracle.estimate(13) - data.iter().filter(|&&x| x == 13).count() as f64).abs() < tol
        );
    }

    #[test]
    fn hashed_variant_estimates_counts_large_domain() {
        let n = 40_000usize;
        let domain = 1u64 << 40;
        let hx = 0x23_4567_89ABu64; // fits in 38 bits
        let data = planted_data(n, domain, &[(hx, 0.25)], 3);
        let truth = data.iter().filter(|&&x| x == hx).count() as f64;
        let oracle = run(
            HashtogramParams::hashed(n as u64, domain, 1.0, 0.05),
            &data,
            4,
        );
        let tol = oracle.params().error_bound(n as u64, 0.01);
        let est = oracle.estimate(hx);
        assert!(
            (est - truth).abs() < tol,
            "est {est} vs {truth} (tol {tol})"
        );
        // A random absent element estimates near zero.
        let est0 = oracle.estimate(999_999_999);
        assert!(est0.abs() < tol, "absent element estimate {est0}");
    }

    #[test]
    fn estimates_are_not_systematically_biased() {
        // Average the estimator over protocol randomness: should approach
        // the true count (sign hashes cancel collision mass).
        let n = 4_000usize;
        let domain = 1u64 << 20;
        let data = planted_data(n, domain, &[(77, 0.2)], 5);
        let truth = data.iter().filter(|&&x| x == 77).count() as f64;
        let trials = 30;
        let mut sum = 0.0;
        for t in 0..trials {
            let oracle = run(
                HashtogramParams::hashed(n as u64, domain, 1.0, 0.1),
                &data,
                100 + t,
            );
            sum += oracle.estimate(77);
        }
        let mean = sum / trials as f64;
        // Medians are only approximately unbiased; allow a generous band.
        assert!(
            (mean - truth).abs() < 0.25 * truth,
            "mean estimate {mean} vs truth {truth}"
        );
    }

    #[test]
    fn error_scales_like_sqrt_n() {
        // Measure the median (over seeds) of the max query error at two
        // values of n; the ratio should be ~sqrt(4) = 2, certainly below 4
        // (a single run is too noisy — heavy-element bucket collisions in
        // a minority of groups fatten the max).
        let domain = 1u64 << 16;
        let mut errs = Vec::new();
        for &n in &[4_000usize, 16_000] {
            let mut trial_errs = Vec::new();
            for t in 0..5u64 {
                let data = planted_data(n, domain, &[(5, 0.2), (9, 0.1)], 7 + t);
                let oracle = run(
                    HashtogramParams::hashed(n as u64, domain, 1.0, 0.05),
                    &data,
                    8 + 31 * t,
                );
                let mut max_err = 0.0f64;
                for q in [5u64, 9, 100, 2000] {
                    let truth = data.iter().filter(|&&x| x == q).count() as f64;
                    max_err = max_err.max((oracle.estimate(q) - truth).abs());
                }
                trial_errs.push(max_err.max(1.0));
            }
            errs.push(hh_math::stats::median(&trial_errs));
        }
        assert!(
            errs[1] / errs[0] < 4.0,
            "error grew faster than sqrt(n): {errs:?}"
        );
    }

    #[test]
    fn report_fits_claimed_bits() {
        let oracle = Hashtogram::new(HashtogramParams::direct(64, 1.0, 0.1), 9);
        let mut rng = seeded_rng(10);
        let rep = oracle.respond(0, 5, &mut rng);
        assert!(rep.ell < 64);
        assert!(rep.bit == 1 || rep.bit == -1);
        assert_eq!(oracle.report_bits(), 1 + 6);
        // The wire encoding honors the claim up to byte alignment.
        assert!(rep.encoded_len() <= oracle.report_bits().div_ceil(8));
        assert_eq!(HashtogramReport::decode(&rep.encode()), Ok(rep));
    }

    #[test]
    fn shard_path_matches_serial_collect() {
        let n = 4_000u64;
        let params = HashtogramParams::hashed(n, 1 << 20, 1.0, 0.1);
        let oracle = Hashtogram::new(params.clone(), 21);
        let reports = oracle.respond_batch(0, &(0..n).map(|i| i % 97).collect::<Vec<_>>(), 22);

        let mut serial = Hashtogram::new(params.clone(), 21);
        for (i, &rep) in reports.iter().enumerate() {
            serial.collect(i as u64, rep);
        }

        // Split in three ragged ranges, absorb out of order, merge.
        let mut sharded = Hashtogram::new(params, 21);
        let (a, rest) = reports.split_at(700);
        let (b, c) = rest.split_at(1_999);
        let mut sh_a = sharded.new_shard();
        sharded.absorb(&mut sh_a, 0, a);
        let mut sh_b = sharded.new_shard();
        sharded.absorb(&mut sh_b, 700, b);
        let mut sh_c = sharded.new_shard();
        sharded.absorb(&mut sh_c, 700 + 1_999, c);
        let merged = sharded.merge(sh_c, sharded.merge(sh_a, sh_b));
        sharded.finish_shard(merged);

        serial.finalize();
        sharded.finalize();
        for q in [0u64, 5, 96, 1 << 19] {
            assert_eq!(serial.estimate(q).to_bits(), sharded.estimate(q).to_bits());
        }
    }

    #[test]
    fn group_assignment_is_balanced() {
        let oracle = Hashtogram::new(HashtogramParams::hashed(10_000, 1 << 20, 1.0, 0.05), 11);
        let r = oracle.params().groups;
        let mut counts = vec![0u64; r];
        for i in 0..10_000u64 {
            counts[oracle.group_of(i) as usize] += 1;
        }
        let expect = 10_000.0 / r as f64;
        for (g, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "group {g}: {c} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "estimate before finalize")]
    fn estimate_requires_finalize() {
        let oracle = Hashtogram::new(HashtogramParams::direct(16, 1.0, 0.1), 12);
        let _ = oracle.estimate(3);
    }

    #[test]
    #[should_panic(expected = "collect after finalize")]
    fn collect_after_finalize_panics() {
        let mut oracle = Hashtogram::new(HashtogramParams::direct(16, 1.0, 0.1), 13);
        let mut rng = seeded_rng(14);
        let rep = oracle.respond(0, 3, &mut rng);
        oracle.finalize();
        oracle.collect(0, rep);
    }

    #[test]
    fn memory_matches_promise() {
        // Theorem 3.7: O~(sqrt(n)) memory.
        let n = 1u64 << 20;
        let oracle = Hashtogram::new(HashtogramParams::hashed(n, 1 << 40, 1.0, 0.01), 15);
        let mem = oracle.memory_bytes();
        // R * W * 8 with W = 1024 = sqrt(n), R ~ 10: far below n bytes.
        assert!(mem < (n as usize) / 8, "memory {mem} too large");
    }
}
