//! Property tests for the frequency-oracle layer: estimator consistency
//! and report-space invariants under randomized parameters.

use hh_freq::hashtogram::{Hashtogram, HashtogramParams, HashtogramReport};
use hh_freq::krr::KrrOracle;
use hh_freq::traits::FrequencyOracle;
use hh_freq::wire::WireReport;
use hh_math::rng::seeded_rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hashtogram_reports_stay_in_range(
        logw in 3u32..10,
        eps in 0.2f64..3.0,
        seed in 0u64..1000,
    ) {
        let params = HashtogramParams {
            domain: 1 << logw,
            eps,
            groups: 3,
            buckets: 1 << logw,
            hashed: false,
        };
        let oracle = Hashtogram::new(params, seed);
        let mut rng = seeded_rng(seed ^ 0xAB);
        for i in 0..200u64 {
            let rep = oracle.respond(i, i % (1 << logw), &mut rng);
            prop_assert!(rep.ell < 1 << logw);
            prop_assert!(rep.bit == 1 || rep.bit == -1);
            prop_assert!((oracle.group_of(i) as usize) < 3);
            // Wire round trip is exact and within the claimed size.
            let bytes = rep.encode();
            prop_assert_eq!(bytes.len(), rep.encoded_len());
            prop_assert_eq!(HashtogramReport::decode(&bytes), Ok(rep));
            prop_assert!(8 * rep.encoded_len() <= oracle.report_bits().next_multiple_of(8));
        }
    }

    #[test]
    fn hashtogram_estimates_sum_near_n_direct(
        seed in 0u64..200,
        logd in 2u32..6,
    ) {
        // In the direct variant the per-group bucket estimates sum to the
        // group's debiased report mass; totals over the domain track n.
        let domain = 1u64 << logd;
        let n = 4_000u64;
        let mut oracle = Hashtogram::new(HashtogramParams::direct(domain, 1.0, 0.2), seed);
        let mut rng = seeded_rng(seed + 1);
        for i in 0..n {
            let rep = oracle.respond(i, i % domain, &mut rng);
            oracle.collect(i, rep);
        }
        oracle.finalize();
        let total: f64 = (0..domain).map(|x| oracle.estimate(x)).sum();
        // Total is an unbiased estimate of n with noise ~ c_eps sqrt(nW).
        let slack = 6.0 * 2.2 * ((n * domain) as f64).sqrt() + 100.0;
        prop_assert!((total - n as f64).abs() < slack, "total {total} vs n {n}");
    }

    #[test]
    fn krr_estimates_sum_exactly_to_n(
        k in 2u64..24,
        eps in 0.2f64..3.0,
        seed in 0u64..500,
    ) {
        let n = 1_000u64;
        let mut oracle = KrrOracle::new(k, eps);
        let mut rng = seeded_rng(seed);
        for i in 0..n {
            let rep = oracle.respond(i, i % k, &mut rng);
            oracle.collect(i, rep);
        }
        oracle.finalize();
        let total: f64 = (0..k).map(|x| oracle.estimate(x)).sum();
        // GRR debiasing is linear: estimates sum to exactly n.
        prop_assert!((total - n as f64).abs() < 1e-6 * n as f64, "total {total}");
    }

    #[test]
    fn report_bits_accounting_is_consistent(logw in 3u32..12) {
        let oracle = Hashtogram::new(
            HashtogramParams {
                domain: 1 << logw,
                eps: 1.0,
                groups: 5,
                buckets: 1 << logw,
                hashed: false,
            },
            1,
        );
        prop_assert_eq!(oracle.report_bits(), 1 + logw as usize);
    }
}
