//! Lower bounds via anti-concentration (paper §7 and Appendix A).
//!
//! Theorem 7.2: every non-interactive `(ε, δ)`-LDP frequency protocol has
//! worst-case error `Ω((1/ε)·sqrt(n·log(|X|/β)))` at failure probability
//! β — matching the upper bound of `PrivateExpanderSketch` in **all**
//! parameters, including β.
//!
//! The proof engine is constructive and fully simulable:
//!
//! 1. draw `m = Cε²n` uniform secret bits and duplicate each across
//!    `n/m` users ([`experiment`]);
//! 2. each secret bit's duplicated reports carry `O(1/C)` bits of mutual
//!    information (Theorem 7.4; exact in [`mutual_info`]), so most
//!    secrets stay near-uniform conditioned on the transcript;
//! 3. a sum of near-uniform independent bits *anti-concentrates*
//!    (Theorem A.5 / Corollary 7.6; exact in [`anticoncentration`]), so
//!    no estimate can be within `c·sqrt(m·log(1/β))` of the truth with
//!    probability `1 − β`.
//!
//! Each module pairs the paper's bound with an exact or Monte-Carlo
//! measured counterpart; the `exp_lower_bound` bench prints them side by
//! side.

pub mod anticoncentration;
pub mod experiment;
pub mod mutual_info;
