//! The Theorem 7.2 experiment: the duplicated-bits construction run
//! against a real ε-LDP counting protocol.
//!
//! Setup (following the proof): draw `m = C·ε²·n` uniform secret bits,
//! duplicate each across `n/m` users, and run the standard
//! randomized-response counting protocol. The theorem says *any*
//! `(ε, δ)`-LDP protocol must have
//! `Pr[|Est − Σ| > c·(1/ε)·sqrt(n·ln(1/β))] > β`; the experiment measures
//! the error tail of the concrete protocol and plots it against the
//! theorem's envelope — the tail hugs the envelope, demonstrating that
//! the bound is tight and that no tuning escapes it.

use hh_freq::randomizers::BinaryRandomizedResponse;
use hh_freq::traits::{LocalRandomizer, RandomizerInput};
use hh_math::rng::{derive_seed, seeded_rng};
use rand::Rng;

/// Configuration of the duplicated-bits counting experiment.
#[derive(Debug, Clone)]
pub struct LowerBoundExperiment {
    /// Number of users `n`.
    pub n: u64,
    /// Privacy parameter ε of each user's report.
    pub eps: f64,
    /// The constant `C` in `m = C·ε²·n` (the proof takes it large).
    pub c: f64,
}

/// One trial's outcome.
#[derive(Debug, Clone, Copy)]
pub struct TrialOutcome {
    /// True number of ones among the `n` duplicated bits.
    pub truth: f64,
    /// The protocol's debiased estimate.
    pub estimate: f64,
}

impl TrialOutcome {
    /// Absolute estimation error.
    pub fn error(&self) -> f64 {
        (self.estimate - self.truth).abs()
    }
}

impl LowerBoundExperiment {
    /// Standard profile.
    pub fn new(n: u64, eps: f64, c: f64) -> Self {
        assert!(n >= 16 && eps > 0.0 && c > 0.0);
        Self { n, eps, c }
    }

    /// Number of secret bits `m = max(1, C·ε²·n)` (capped at `n`).
    pub fn num_secrets(&self) -> u64 {
        ((self.c * self.eps * self.eps * self.n as f64).round() as u64).clamp(1, self.n)
    }

    /// Users per secret `n/m` (the grouposition group size).
    pub fn duplication(&self) -> u64 {
        (self.n / self.num_secrets()).max(1)
    }

    /// Run one trial: sample secrets, duplicate, run ε-RR counting.
    pub fn run_trial(&self, seed: u64) -> TrialOutcome {
        let mut rng = seeded_rng(seed);
        let m = self.num_secrets();
        let dup = self.duplication();
        let rr = BinaryRandomizedResponse::new(self.eps);
        let c_eps = rr.debias_factor();
        let mut truth = 0.0f64;
        let mut estimate = 0.0f64;
        let mut users = 0u64;
        for _ in 0..m {
            let secret: u64 = rng.gen_range(0..2);
            for _ in 0..dup {
                if users >= self.n {
                    break;
                }
                truth += secret as f64;
                let y = rr.sample(RandomizerInput::Value(secret), &mut rng);
                let pm = if y == 1 { 1.0 } else { -1.0 };
                // Unbiased per-user estimate of the bit: (c_ε·±1 + 1)/2.
                estimate += 0.5 * (c_eps * pm + 1.0);
                users += 1;
            }
        }
        // Remaining users (rounding slack) hold fresh secrets.
        while users < self.n {
            let secret: u64 = rng.gen_range(0..2);
            truth += secret as f64;
            let y = rr.sample(RandomizerInput::Value(secret), &mut rng);
            let pm = if y == 1 { 1.0 } else { -1.0 };
            estimate += 0.5 * (c_eps * pm + 1.0);
            users += 1;
        }
        TrialOutcome { truth, estimate }
    }

    /// Empirical tail: fraction of trials with error exceeding `t`.
    pub fn error_tail(&self, t: f64, trials: u64, seed: u64) -> f64 {
        let mut exceed = 0u64;
        for i in 0..trials {
            if self.run_trial(derive_seed(seed, i)).error() > t {
                exceed += 1;
            }
        }
        exceed as f64 / trials as f64
    }

    /// The Theorem 7.2 envelope: the error level
    /// `t(β) = (c_env/ε)·sqrt(n·ln(1/β))` that must be exceeded with
    /// probability > β by *every* protocol (`c_env` is the theorem's
    /// unspecified constant; the experiment reports measured tails against
    /// a grid of `c_env`).
    pub fn envelope(&self, beta: f64, c_env: f64) -> f64 {
        c_env / self.eps * (self.n as f64 * (1.0 / beta).ln()).sqrt()
    }

    /// The protocol's own error *upper* envelope, for sanity: Hoeffding on
    /// the debiased sum at confidence β.
    pub fn protocol_upper(&self, beta: f64) -> f64 {
        let c_eps = (self.eps.exp() + 1.0) / (self.eps.exp() - 1.0);
        0.5 * c_eps * (2.0 * self.n as f64 * (2.0 / beta).ln()).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_accounting() {
        let e = LowerBoundExperiment::new(1 << 14, 0.1, 10.0);
        assert_eq!(e.num_secrets(), (10.0 * 0.01 * 16384.0f64).round() as u64);
        assert_eq!(e.duplication(), 16384 / e.num_secrets());
        // m is capped at n (no duplication) when C·ε² >= 1.
        let f = LowerBoundExperiment::new(1 << 14, 0.5, 10.0);
        assert_eq!(f.num_secrets(), 1 << 14);
        assert_eq!(f.duplication(), 1);
    }

    #[test]
    fn estimator_is_unbiased() {
        let e = LowerBoundExperiment::new(1 << 12, 1.0, 10.0);
        let trials = 400u64;
        let mut sum = 0.0;
        for i in 0..trials {
            let t = e.run_trial(derive_seed(1, i));
            sum += t.estimate - t.truth;
        }
        let mean = sum / trials as f64;
        // Mean error ~ N(0, c_eps²n/4/trials): 6σ band.
        let sigma = 0.5 * 2.16 * (4096.0f64).sqrt() / (trials as f64).sqrt();
        assert!(mean.abs() < 6.0 * sigma, "bias {mean} (σ={sigma})");
    }

    #[test]
    fn error_tail_is_nontrivial_at_theorem_scale() {
        // At t = envelope(β, c) with a small constant, the measured tail
        // must exceed β — the lower bound in action.
        let e = LowerBoundExperiment::new(1 << 12, 1.0, 10.0);
        let beta = 0.1;
        let t = e.envelope(beta, 0.2);
        let tail = e.error_tail(t, 400, 7);
        assert!(
            tail > beta,
            "tail {tail} at envelope {t} should exceed beta {beta}"
        );
    }

    #[test]
    fn error_tail_vanishes_above_protocol_upper() {
        let e = LowerBoundExperiment::new(1 << 12, 1.0, 10.0);
        let t = e.protocol_upper(0.01);
        let tail = e.error_tail(t, 300, 9);
        assert!(tail <= 0.05, "tail {tail} above the Hoeffding envelope");
    }

    #[test]
    fn smaller_eps_means_larger_error() {
        let trials = 300u64;
        let errs = |eps: f64| -> f64 {
            let e = LowerBoundExperiment::new(1 << 12, eps, 10.0);
            let mut total = 0.0;
            for i in 0..trials {
                total += e.run_trial(derive_seed(11, i)).error();
            }
            total / trials as f64
        };
        let e_low = errs(0.25);
        let e_high = errs(1.0);
        // c_eps scales ~2/eps: expect roughly 4x ratio; demand > 2x.
        assert!(
            e_low > 2.0 * e_high,
            "eps=0.25 err {e_low} vs eps=1 err {e_high}"
        );
    }
}
