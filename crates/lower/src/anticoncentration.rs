//! Anti-concentration of Poisson-binomial sums (Theorem A.5 and
//! Corollary 7.6), with exact distribution computations.
//!
//! Appendix A proves: for independent bits with means in `[1/10, 9/10]`,
//! every interval of length `c·sqrt(n·log(1/β))` is escaped with
//! probability at least β. Because the sum's exact distribution is
//! computable by dynamic programming, this module verifies the claim
//! *exactly*: [`min_escape_probability`] finds the best possible interval
//! (the adversary's optimal estimate) and still shows mass ≥ β outside.

/// Exact pmf of a Poisson-binomial sum `Σ Bernoulli(p_i)` by dynamic
/// programming (O(n²), exact to f64).
pub fn poisson_binomial_pmf(ps: &[f64]) -> Vec<f64> {
    let n = ps.len();
    let mut pmf = vec![0.0f64; n + 1];
    pmf[0] = 1.0;
    for (len, &p) in (1usize..).zip(ps.iter()) {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        for k in (0..len).rev() {
            let v = pmf[k];
            pmf[k] = v * (1.0 - p);
            pmf[k + 1] += v * p;
        }
    }
    pmf
}

/// Exact escape probability `Pr[X ∉ [lo, hi]]` for a Poisson-binomial.
pub fn escape_probability(pmf: &[f64], lo: usize, hi: usize) -> f64 {
    let inside: f64 = pmf
        .iter()
        .enumerate()
        .filter(|&(k, _)| k >= lo && k <= hi)
        .map(|(_, &p)| p)
        .sum();
    (1.0 - inside).max(0.0)
}

/// The adversary's best interval of a given width: minimize the escape
/// probability over all placements (sliding window), returning
/// `(lo, escape)`.
pub fn min_escape_probability(pmf: &[f64], width: usize) -> (usize, f64) {
    let n = pmf.len();
    if width + 1 >= n {
        return (0, 0.0);
    }
    let mut window: f64 = pmf.iter().take(width + 1).sum();
    let mut best = (0usize, window);
    for lo in 1..n - width {
        window += pmf[lo + width] - pmf[lo - 1];
        if window > best.1 {
            best = (lo, window);
        }
    }
    (best.0, (1.0 - best.1).max(0.0))
}

/// Theorem A.5's guaranteed escape: for means in `[1/10, 9/10]` and an
/// interval of length `c·sqrt(n·ln(1/β))`, escape probability ≥ β (for
/// `a ≥ β ≥ 2^{−bn}`). Returns the β certified for a given width, using
/// the constructive constants from the appendix's proof chain
/// (Corollary A.3 + Theorem A.4): the interval reduces to a binomial
/// `Bin(n/2, p̂)` window and the binomial tail bound
/// `Pr[Bin ≤ np−t] ≥ exp(−9t²/(np))` applies with `t ≈ width`.
pub fn certified_escape_beta(n: u64, width: f64) -> Option<f64> {
    // Follow Corollary A.3: half the variables, worst-case type
    // p̂ = 1/2 − c with c = 2/5 (means in [1/10, 9/10]).
    let half = n as f64 / 2.0;
    let p_hat = 0.1;
    let np = half * p_hat;
    // Validity window of Theorem A.4: sqrt(3np) <= t <= np/2; the
    // effective displacement is the interval width plus the shift slack
    // (2·width in the appendix's argument).
    let t = 2.0 * width.max((3.0 * np).sqrt());
    if t > np / 2.0 {
        return None;
    }
    Some((-9.0 * t * t / np).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_math::binomial;
    use hh_math::rng::seeded_rng;
    use rand::Rng;

    #[test]
    fn pmf_matches_binomial_for_equal_ps() {
        let n = 60u64;
        let p = 0.3;
        let pmf = poisson_binomial_pmf(&vec![p; n as usize]);
        for k in 0..=n {
            let want = binomial::pmf(n, p, k);
            assert!(
                (pmf[k as usize] - want).abs() < 1e-12,
                "k={k}: {} vs {want}",
                pmf[k as usize]
            );
        }
    }

    #[test]
    fn pmf_normalizes_for_heterogeneous_ps() {
        let mut rng = seeded_rng(1);
        let ps: Vec<f64> = (0..200).map(|_| rng.gen_range(0.1..0.9)).collect();
        let pmf = poisson_binomial_pmf(&ps);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        let mean: f64 = pmf.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
        let want: f64 = ps.iter().sum();
        assert!((mean - want).abs() < 1e-8);
    }

    #[test]
    fn sliding_window_finds_true_optimum() {
        let pmf = poisson_binomial_pmf(&vec![0.5; 30]);
        let width = 4usize;
        let (_, best) = min_escape_probability(&pmf, width);
        // Brute force.
        let brute = (0..pmf.len() - width)
            .map(|lo| escape_probability(&pmf, lo, lo + width))
            .fold(f64::INFINITY, f64::min);
        assert!((best - brute).abs() < 1e-12);
    }

    #[test]
    fn theorem_a5_exact_verification() {
        // For heterogeneous means in [0.1, 0.9], every interval of width
        // c·sqrt(n·ln(1/β)) keeps at least β of the mass outside — checked
        // against the exact distribution with the adversary's best
        // interval. We verify the *shape*: measured escape at the
        // prescribed width stays above the certified β.
        let mut rng = seeded_rng(7);
        for &n in &[256usize, 1024] {
            let ps: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..0.9)).collect();
            let pmf = poisson_binomial_pmf(&ps);
            for &beta in &[0.2f64, 0.05, 0.01] {
                // Constant c = 1/4 — comfortably within the theorem's c.
                let width = (0.25 * (n as f64 * (1.0 / beta).ln()).sqrt()) as usize;
                let (_, escape) = min_escape_probability(&pmf, width);
                assert!(
                    escape >= beta,
                    "n={n} beta={beta} width={width}: escape {escape}"
                );
            }
        }
    }

    #[test]
    fn escape_decays_as_width_grows() {
        let pmf = poisson_binomial_pmf(&vec![0.5; 400]);
        let e1 = min_escape_probability(&pmf, 10).1;
        let e2 = min_escape_probability(&pmf, 40).1;
        let e3 = min_escape_probability(&pmf, 120).1;
        assert!(e1 > e2 && e2 > e3);
        assert!(e3 < 0.01, "wide interval still escapes: {e3}");
    }

    #[test]
    fn certified_beta_is_dominated_by_exact_escape() {
        // The constructive certificate must lower-bound the exact escape.
        let n = 2048u64;
        let pmf = poisson_binomial_pmf(&vec![0.5; n as usize]);
        for &width in &[30.0f64, 60.0, 100.0] {
            if let Some(beta) = certified_escape_beta(n, width) {
                let (_, exact) = min_escape_probability(&pmf, width as usize);
                assert!(
                    exact >= beta,
                    "width={width}: exact {exact} < certified {beta}"
                );
            }
        }
    }

    #[test]
    fn certified_beta_window() {
        // Far-too-wide intervals leave the theorem's validity window.
        assert!(certified_escape_beta(100, 1e6).is_none());
    }
}
