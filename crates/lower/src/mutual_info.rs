//! The information step of the Theorem 7.2 proof (via Theorem 7.4):
//! a uniform secret bit duplicated across `d = n/m` ε-LDP reports stays
//! nearly uniform when `d·ε² = O(1)`.
//!
//! Everything here is exact: `d` randomized-response reports of the same
//! bit have the count of 1s as a sufficient statistic, so the joint
//! distribution of (secret, transcript) collapses to a `2 × (d+1)` table.

use hh_math::binomial;
use hh_math::info::{conditional_entropy_bits, mutual_information_bits};

/// Exact joint distribution of (uniform secret bit `X`, count of 1s among
/// `d` ε-RR reports of `X`): `joint[x][count]`.
pub fn duplicated_bit_joint(d: u64, eps: f64) -> Vec<Vec<f64>> {
    let keep = eps.exp() / (eps.exp() + 1.0);
    let row =
        |p_one: f64| -> Vec<f64> { (0..=d).map(|k| 0.5 * binomial::pmf(d, p_one, k)).collect() };
    // X = 0: each report is 1 w.p. (1 − keep); X = 1: w.p. keep.
    vec![row(1.0 - keep), row(keep)]
}

/// Exact mutual information `I(X; B(X))` in bits for a duplicated bit.
pub fn duplicated_bit_information(d: u64, eps: f64) -> f64 {
    mutual_information_bits(&duplicated_bit_joint(d, eps))
}

/// Exact conditional entropy `H(X | transcript)` in bits.
pub fn duplicated_bit_conditional_entropy(d: u64, eps: f64) -> f64 {
    conditional_entropy_bits(&duplicated_bit_joint(d, eps))
}

/// Theorem 7.4's bound shape for a pure ε-DP view of a uniform bit:
/// `I(V; Z) = O(ε²)` nats; after composing `d` reports the effective ε
/// is `≈ ε√d` (advanced composition), so the bound is `O(d·ε²)`.
/// Returned in bits with the conventional constant 1 for comparison
/// plots (the paper leaves the constant unspecified).
pub fn information_bound_bits(d: u64, eps: f64) -> f64 {
    d as f64 * eps * eps / std::f64::consts::LN_2
}

/// The duplication factor `n/m` from the proof's setup `m = C·ε²·n`:
/// `d = 1/(C·ε²)`, at least 1.
pub fn duplication_factor(c: f64, eps: f64) -> u64 {
    ((1.0 / (c * eps * eps)).round() as u64).max(1)
}

/// The fraction of "good" secrets the proof needs: indices with
/// `H(X_j | transcript) ≥ 1/2` bit. Exactly computable here; the proof
/// shows it exceeds 2/5 when `I ≤ 1/10` nats.
pub fn good_index_probability(d: u64, eps: f64) -> f64 {
    let joint = duplicated_bit_joint(d, eps);
    // Pr over transcripts with H(X | B = b) >= 1/2.
    let mut good = 0.0;
    for (&p0, &p1) in joint[0].iter().zip(&joint[1]) {
        let pb = p0 + p1;
        if pb == 0.0 {
            continue;
        }
        let q = p0 / pb;
        let h = if q <= 0.0 || q >= 1.0 {
            0.0
        } else {
            -(q * q.log2() + (1.0 - q) * (1.0 - q).log2())
        };
        if h >= 0.5 {
            good += pb;
        }
    }
    good
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_normalizes() {
        let j = duplicated_bit_joint(16, 0.5);
        let total: f64 = j.iter().flat_map(|r| r.iter()).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn information_grows_with_duplication_and_eps() {
        let base = duplicated_bit_information(4, 0.25);
        assert!(duplicated_bit_information(16, 0.25) > base);
        assert!(duplicated_bit_information(4, 1.0) > base);
        // And is capped by the 1-bit secret.
        assert!(duplicated_bit_information(1 << 12, 4.0) <= 1.0 + 1e-9);
    }

    #[test]
    fn information_below_bound_shape() {
        for &eps in &[0.1f64, 0.25, 0.5] {
            for &d in &[1u64, 4, 16, 64] {
                let exact = duplicated_bit_information(d, eps);
                let bound = information_bound_bits(d, eps);
                assert!(
                    exact <= bound + 1e-9,
                    "d={d} eps={eps}: exact {exact} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn proof_constants_check_out() {
        // The proof sets m = C·ε²·n with C a large constant, so each
        // secret bit is duplicated d = 1/(C·ε²) times and its transcript
        // information is O(d·ε²) = O(1/C). With C = 10, every secret
        // keeps H(X|B) >= 9/10 bit and the 'good index' mass (the exact
        // quantity behind event E1 of the Theorem 7.2 proof) exceeds 2/5.
        // The proof's ε = O(1) hides a constant: a single ε-report can
        // reveal up to 1 − H(e^ε/(e^ε+1)) bits, which crosses 1/10 around
        // ε ≈ 0.7 — so the exact check runs below that.
        for &eps in &[0.1f64, 0.25, 0.5] {
            let d = duplication_factor(10.0, eps);
            let h = duplicated_bit_conditional_entropy(d, eps);
            assert!(h >= 0.9, "eps={eps} d={d}: H(X|B) = {h}");
            assert!(good_index_probability(d, eps) >= 0.4);
        }
    }

    #[test]
    fn entropy_chain_rule_holds() {
        let (d, eps) = (8u64, 0.5);
        let mi = duplicated_bit_information(d, eps);
        let h_cond = duplicated_bit_conditional_entropy(d, eps);
        assert!((1.0 - mi - h_cond).abs() < 1e-9, "H(X)=1 = I + H(X|B)");
    }

    #[test]
    fn duplication_factor_rounding() {
        assert_eq!(duplication_factor(10.0, 1.0), 1);
        assert_eq!(duplication_factor(0.1, 1.0), 10);
        assert_eq!(duplication_factor(0.1, 0.5), 40);
    }
}
