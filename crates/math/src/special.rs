//! Special functions in log space.
//!
//! Everything here is deterministic and allocation-free; accuracy targets
//! are ~1e-12 relative error, far below the statistical noise of any
//! experiment in the workspace.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients).
///
/// Accurate to ~1e-13 for `x > 0`. Panics on non-positive input (the
/// workspace only ever evaluates at positive reals).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n!)`, exact for `n <= 20`, Lanczos beyond.
pub fn ln_factorial(n: u64) -> f64 {
    // Factorials up to 20! fit in u64; precomputed logs avoid gamma noise
    // in exact combinatorial identities used by tests.
    const SMALL: [u64; 21] = [
        1,
        1,
        2,
        6,
        24,
        120,
        720,
        5_040,
        40_320,
        362_880,
        3_628_800,
        39_916_800,
        479_001_600,
        6_227_020_800,
        87_178_291_200,
        1_307_674_368_000,
        20_922_789_888_000,
        355_687_428_096_000,
        6_402_373_705_728_000,
        121_645_100_408_832_000,
        2_432_902_008_176_640_000,
    ];
    if n <= 20 {
        (SMALL[n as usize] as f64).ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`; returns `f64::NEG_INFINITY` when `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Numerically stable `ln(Σ exp(x_i))`.
///
/// Returns `NEG_INFINITY` on an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// Stable `ln(e^a + e^b)`.
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Stable `ln(e^a − e^b)` for `a >= b`; returns `NEG_INFINITY` when equal.
pub fn log_sub_exp(a: f64, b: f64) -> f64 {
    assert!(
        a >= b - 1e-12,
        "log_sub_exp requires a >= b (a = {a}, b = {b})"
    );
    if a <= b {
        return f64::NEG_INFINITY;
    }
    a + (-(b - a).exp()).ln_1p()
}

/// Binary entropy `H(p) = −p log2 p − (1−p) log2 (1−p)` in bits.
///
/// `H(0) = H(1) = 0` by continuity. Appendix A of the paper uses the bound
/// `H(1/2 − η) >= 1 − 4η²`, which tests validate against this function.
pub fn binary_entropy(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "entropy argument out of [0,1]: {p}"
    );
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Binary entropy in nats.
pub fn binary_entropy_nats(p: f64) -> f64 {
    binary_entropy(p) * std::f64::consts::LN_2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..25 {
            let expect = ln_factorial(n - 1);
            let got = ln_gamma(n as f64);
            assert!(
                (got - expect).abs() < 1e-9,
                "ln_gamma({n}) = {got}, want {expect}"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π).
        let got = ln_gamma(0.5);
        let want = 0.5 * std::f64::consts::PI.ln();
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn ln_binomial_small_exact() {
        assert!((ln_binomial(5, 2) - (10f64).ln()).abs() < 1e-12);
        assert!((ln_binomial(10, 5) - (252f64).ln()).abs() < 1e-12);
        assert_eq!(ln_binomial(3, 4), f64::NEG_INFINITY);
        assert!((ln_binomial(60, 30) - 118264581564861424.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn binomial_symmetry_large() {
        for n in [100u64, 1000, 10000] {
            for k in [0u64, 1, 7, n / 3, n / 2] {
                let a = ln_binomial(n, k);
                let b = ln_binomial(n, n - k);
                assert!((a - b).abs() < 1e-7, "C({n},{k}) asymmetric: {a} vs {b}");
            }
        }
    }

    #[test]
    fn log_sum_exp_basics() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        let xs = [0.0, 0.0];
        assert!((log_sum_exp(&xs) - 2f64.ln()).abs() < 1e-12);
        // Huge offsets must not overflow.
        let xs = [1000.0, 1000.0];
        assert!((log_sum_exp(&xs) - (1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_add_sub_roundtrip() {
        let a = -3.0;
        let b = -5.0;
        let s = log_add_exp(a, b);
        let back = log_sub_exp(s, b);
        assert!((back - a).abs() < 1e-10);
    }

    #[test]
    fn entropy_bound_from_appendix_a() {
        // H(1/2 − η) >= 1 − 4η² (used in the proof of Lemma 5.5).
        let mut eta = 0.0;
        while eta < 0.5 {
            let h = binary_entropy(0.5 - eta);
            assert!(
                h >= 1.0 - 4.0 * eta * eta - 1e-12,
                "entropy bound violated at eta = {eta}: H = {h}"
            );
            eta += 0.01;
        }
    }

    #[test]
    fn entropy_endpoints() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn pascal_recurrence_holds_in_log_space() {
        // C(n,k) = C(n-1,k-1) + C(n-1,k) exercised through log_add_exp.
        for n in 2u64..40 {
            for k in 1..n {
                let lhs = ln_binomial(n, k);
                let rhs = log_add_exp(ln_binomial(n - 1, k - 1), ln_binomial(n - 1, k));
                assert!((lhs - rhs).abs() < 1e-8);
            }
        }
    }
}
