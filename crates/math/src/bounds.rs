//! Concentration and anti-concentration bound calculators.
//!
//! Each function returns the *value of the bound* from the corresponding
//! theorem in the paper, so callers can (a) calibrate protocol thresholds
//! from the same inequalities the proofs use and (b) assert that empirical
//! tails are dominated by the theoretical envelopes.

/// Theorem 3.11, item 1 (Schmidt–Siegel–Srinivasan): for `ceil(mu*alpha)`-wise
/// independent indicator variables,
/// `Pr[X >= mu(1+alpha)] <= exp(−alpha² mu / 3)` for `0 <= alpha <= 1`.
pub fn chernoff_upper_limited_independence(mu: f64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha));
    (-alpha * alpha * mu / 3.0).exp()
}

/// Theorem 3.11, item 2 (full independence, lower tail):
/// `Pr[X <= mu(1−alpha)] <= exp(−alpha² mu / 2)`.
pub fn chernoff_lower(mu: f64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha));
    (-alpha * alpha * mu / 2.0).exp()
}

/// Independence level required by Theorem 3.11 item 1: `ceil(mu * alpha)`.
pub fn chernoff_independence_required(mu: f64, alpha: f64) -> u64 {
    (mu * alpha).ceil() as u64
}

/// Two-sided Hoeffding bound for a sum of `n` independent variables each in
/// `[lo, hi]`: `Pr[|X − E X| >= t] <= 2 exp(−2t² / (n (hi−lo)²))`.
pub fn hoeffding_two_sided(n: u64, lo: f64, hi: f64, t: f64) -> f64 {
    assert!(hi > lo);
    (2.0 * (-2.0 * t * t / (n as f64 * (hi - lo) * (hi - lo))).exp()).min(1.0)
}

/// One-sided Hoeffding bound.
pub fn hoeffding_one_sided(n: u64, lo: f64, hi: f64, t: f64) -> f64 {
    assert!(hi > lo);
    (-2.0 * t * t / (n as f64 * (hi - lo) * (hi - lo)))
        .exp()
        .min(1.0)
}

/// Theorem 3.12 (Kane–Nelson–Porat–Woodruff, Lemma 2): for `k`-wise
/// independent variables (k even) bounded by `T` with total variance
/// `sigma²`:
/// `Pr[|X − mu| > lambda] <= C^k ((sigma sqrt(k)/lambda)^k + (T k/lambda)^k)`.
///
/// `c` is the absolute constant; the paper leaves it unspecified, tests use
/// the conventional `c = 2` and only assert shape, not tight constants.
pub fn bernstein_kwise(k: u32, sigma: f64, t_bound: f64, lambda: f64, c: f64) -> f64 {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "k must be an even integer >= 2"
    );
    assert!(lambda > 0.0);
    let kf = f64::from(k);
    let term1 = (sigma * kf.sqrt() / lambda).powi(k as i32);
    let term2 = (t_bound * kf / lambda).powi(k as i32);
    (c.powi(k as i32) * (term1 + term2)).min(1.0)
}

/// Theorem A.4 ([21, Lemma 5.2]) binomial anti-concentration: for
/// `0 < p <= 1/2` and `sqrt(3np) <= t <= np/2`,
/// `Pr[Bin(n,p) <= np − t] >= exp(−9t²/(np))` (same for the upper side).
///
/// Returns `None` when `t` is outside the theorem's validity window.
pub fn binomial_anticoncentration_lower(n: u64, p: f64, t: f64) -> Option<f64> {
    assert!(p > 0.0 && p <= 0.5, "requires 0 < p <= 1/2, got {p}");
    let np = n as f64 * p;
    if t < (3.0 * np).sqrt() || t > np / 2.0 {
        return None;
    }
    Some((-9.0 * t * t / np).exp())
}

/// Lemma 5.5 of the paper: for uniform `U` on `{0,1}^k` and
/// `0 <= t <= sqrt(k)/2`, `Pr[|U| >= k/2 + t sqrt(k)] >= exp(−3t²)/(k+1)`.
pub fn uniform_anticoncentration(k: u64, t: f64) -> Option<f64> {
    if t < 0.0 || t > (k as f64).sqrt() / 2.0 {
        return None;
    }
    Some((-3.0 * t * t).exp() / (k as f64 + 1.0))
}

/// The advanced-composition / advanced-grouposition epsilon:
/// `eps' = k eps²/2 + eps sqrt(2 k ln(1/delta))` (Theorems 4.2/4.3).
pub fn advanced_epsilon(k: u64, eps: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0);
    let kf = k as f64;
    kf * eps * eps / 2.0 + eps * (2.0 * kf * (1.0 / delta).ln()).sqrt()
}

/// Naive ("basic") group privacy in the central model: `k * eps`.
pub fn basic_group_epsilon(k: u64, eps: f64) -> f64 {
    k as f64 * eps
}

/// Theorem 4.5 max-information bound for an `eps`-LDP protocol on `n` users:
/// `I^beta_inf <= n eps²/2 + eps sqrt(2 n ln(1/beta))` (nats).
pub fn max_information_bound(n: u64, eps: f64, beta: f64) -> f64 {
    advanced_epsilon(n, eps, beta)
}

/// The group size at which advanced grouposition beats basic `k·eps`
/// grouposition (useful for plotting the crossover the paper highlights).
pub fn grouposition_crossover(eps: f64, delta: f64) -> u64 {
    // Smallest k with advanced_epsilon(k) < k * eps.
    let mut k = 1u64;
    while k < u64::MAX / 2 {
        if advanced_epsilon(k, eps, delta) < basic_group_epsilon(k, eps) {
            return k;
        }
        k += 1;
        if k > 1_000_000 {
            break;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial;

    #[test]
    fn chernoff_dominates_exact_binomial_tail() {
        // Binomial(n, 1/2) is a sum of fully independent indicators; the
        // exact upper tail must be below the Theorem 3.11 bound.
        let n = 400u64;
        let p = 0.5;
        let mu = n as f64 * p;
        for &alpha in &[0.1f64, 0.2, 0.5, 1.0] {
            let k = (mu * (1.0 + alpha)).ceil() as u64;
            let exact = binomial::ln_sf(n, p, k).exp();
            let bound = chernoff_upper_limited_independence(mu, alpha);
            assert!(exact <= bound + 1e-12, "alpha={alpha}: {exact} > {bound}");

            let k_lo = (mu * (1.0 - alpha)).floor() as u64;
            let exact_lo = binomial::ln_cdf(n, p, k_lo).exp();
            let bound_lo = chernoff_lower(mu, alpha);
            assert!(exact_lo <= bound_lo + 1e-12);
        }
    }

    #[test]
    fn hoeffding_dominates_exact() {
        let n = 256u64;
        // Sum of n uniform bits: range [0,1] per variable, E = n/2.
        for &t in &[8.0f64, 16.0, 32.0] {
            let exact = 2.0 * binomial::ln_sf(n, 0.5, (n as f64 / 2.0 + t).ceil() as u64).exp();
            let bound = hoeffding_two_sided(n, 0.0, 1.0, t);
            assert!(exact <= bound + 1e-12, "t={t}: {exact} > {bound}");
        }
    }

    #[test]
    fn anticoncentration_below_exact_tail() {
        // Theorem A.4's lower bound must lie below the exact tail.
        let n = 10_000u64;
        let p = 0.5;
        let np = n as f64 * p;
        for &t in &[(3.0 * np).sqrt(), 150.0, np / 2.0] {
            if let Some(lb) = binomial_anticoncentration_lower(n, p, t) {
                let k = (np - t).floor() as u64;
                let exact = binomial::ln_cdf(n, p, k).exp();
                assert!(
                    lb <= exact + 1e-12,
                    "t={t}: anti-concentration {lb} exceeds exact {exact}"
                );
            }
        }
    }

    #[test]
    fn anticoncentration_window() {
        assert!(binomial_anticoncentration_lower(100, 0.5, 1.0).is_none());
        assert!(binomial_anticoncentration_lower(100, 0.5, 1000.0).is_none());
    }

    #[test]
    fn lemma_5_5_below_exact() {
        for &k in &[16u64, 64, 256] {
            for &t in &[0.0f64, 0.5, 1.0, 2.0] {
                if let Some(lb) = uniform_anticoncentration(k, t) {
                    let threshold = (k as f64 / 2.0 + t * (k as f64).sqrt()).ceil() as u64;
                    let exact = binomial::ln_sf(k, 0.5, threshold).exp();
                    assert!(lb <= exact + 1e-12, "k={k} t={t}: {lb} > exact {exact}");
                }
            }
        }
    }

    #[test]
    fn advanced_epsilon_sqrt_k_shape() {
        let eps = 0.1;
        let delta = 1e-6;
        // In the sqrt-dominated regime, quadrupling k should roughly double
        // eps' (up to the k eps²/2 term).
        let e1 = advanced_epsilon(100, eps, delta);
        let e4 = advanced_epsilon(400, eps, delta);
        assert!(e4 / e1 < 2.3, "ratio {} not ~2", e4 / e1);
        assert!(e4 / e1 > 1.8);
        // And it must beat the basic bound for large k.
        assert!(advanced_epsilon(10_000, eps, delta) < basic_group_epsilon(10_000, eps));
    }

    #[test]
    fn crossover_monotone_in_eps() {
        // advanced < basic  ⟺  k·eps/2 + sqrt(2k ln(1/δ)) < k, so the
        // crossover k grows with eps (the k·eps²/2 term bites sooner).
        let c_small = grouposition_crossover(0.05, 1e-6);
        let c_large = grouposition_crossover(1.0, 1e-6);
        assert!(
            c_small <= c_large,
            "crossover should grow with eps: {c_small} vs {c_large}"
        );
        // And the advanced bound genuinely wins past its crossover.
        let k = c_large;
        assert!(advanced_epsilon(k, 1.0, 1e-6) < basic_group_epsilon(k, 1.0));
    }

    #[test]
    fn bernstein_kwise_shrinks_with_lambda() {
        let b1 = bernstein_kwise(4, 10.0, 1.0, 100.0, 2.0);
        let b2 = bernstein_kwise(4, 10.0, 1.0, 1000.0, 2.0);
        assert!(b2 < b1);
        assert!(b2 <= 1.0 && b1 <= 1.0);
    }

    #[test]
    #[should_panic]
    fn bernstein_rejects_odd_k() {
        let _ = bernstein_kwise(3, 1.0, 1.0, 1.0, 2.0);
    }
}
