//! Fast Walsh–Hadamard transform.
//!
//! The Hashtogram frequency oracle (Theorems 3.7/3.8) has each user report
//! a single randomized Hadamard coefficient of their bucket's indicator
//! vector; the server inverts all coefficients at once with one fast
//! transform. `H` here is the ±1 (non-normalized) Hadamard matrix of order
//! `2^k` with `H[i][j] = (−1)^{popcount(i & j)}`.

/// Single entry of the Hadamard matrix: `(−1)^{popcount(i & j)}`.
///
/// `i, j` must be below the matrix order; the function itself is total on
/// u64 so callers enforce the range.
#[inline]
pub fn hadamard_entry(i: u64, j: u64) -> i8 {
    if (i & j).count_ones().is_multiple_of(2) {
        1
    } else {
        -1
    }
}

/// In-place fast Walsh–Hadamard transform (unnormalized).
///
/// `data.len()` must be a power of two. Applying the transform twice
/// multiplies by `len`: `WHT(WHT(x)) = len · x`.
pub fn fwht(data: &mut [f64]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "WHT length must be a power of two: {n}"
    );
    let mut h = 1;
    while h < n {
        let mut i = 0;
        while i < n {
            for j in i..i + h {
                let x = data[j];
                let y = data[j + h];
                data[j] = x + y;
                data[j + h] = x - y;
            }
            i += h * 2;
        }
        h *= 2;
    }
}

/// In-place fast Walsh–Hadamard transform, blocked across worker
/// threads — bit-for-bit equal to [`fwht`] for every `threads`
/// (`0` = the available hardware parallelism).
///
/// At butterfly level `h` the transform touches disjoint `2h`-blocks:
/// `data[0..2h]`, `data[2h..4h]`, … — each block's butterflies read and
/// write only that block, so whole blocks can run on different workers
/// with no shared state, and every element sees the *identical*
/// floating-point operation sequence as the serial loop. Small
/// transforms (or `threads <= 1`) fall straight through to the serial
/// kernel — blocking only pays when the per-level work dwarfs a scope
/// spawn.
pub fn fwht_threaded(data: &mut [f64], threads: usize) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "WHT length must be a power of two: {n}"
    );
    let threads = hh_par_threads(threads, n);
    if threads <= 1 || n < (1 << 12) {
        fwht(data);
        return;
    }
    let mut h = 1;
    while h < n {
        let num_blocks = n / (h * 2);
        if num_blocks <= 1 {
            // One block left (the last levels): butterflies of the block
            // are themselves independent — split the `j` range.
            let (lo, hi) = data.split_at_mut(h);
            let per = h.div_ceil(threads).max(1);
            rayon::scope(|s| {
                for (a, b) in lo.chunks_mut(per).zip(hi.chunks_mut(per)) {
                    s.spawn(move |_| {
                        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
                            let (u, v) = (*x, *y);
                            *x = u + v;
                            *y = u - v;
                        }
                    });
                }
            });
        } else {
            // Distribute contiguous runs of 2h-blocks over the workers.
            let per = num_blocks.div_ceil(threads).max(1) * (h * 2);
            rayon::scope(|s| {
                for run in data.chunks_mut(per) {
                    s.spawn(move |_| {
                        for block in run.chunks_mut(h * 2) {
                            let (lo, hi) = block.split_at_mut(h);
                            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                                let (u, v) = (*x, *y);
                                *x = u + v;
                                *y = u - v;
                            }
                        }
                    });
                }
            });
        }
        h *= 2;
    }
}

/// The effective worker count (`0` = hardware), local so `wht` does not
/// depend on `par`'s scheduling helpers.
fn hh_par_threads(threads: usize, n: usize) -> usize {
    let hw = if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    };
    hw.min(n).max(1)
}

/// Inverse transform: `fwht` followed by division by `len`.
pub fn ifwht(data: &mut [f64]) {
    let n = data.len() as f64;
    fwht(data);
    for v in data.iter_mut() {
        *v /= n;
    }
}

/// Naive O(n²) transform used as a test oracle.
pub fn wht_naive(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    assert!(n.is_power_of_two());
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| f64::from(hadamard_entry(i as u64, j as u64)) * data[j])
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn entries_are_symmetric() {
        for i in 0..32u64 {
            for j in 0..32u64 {
                assert_eq!(hadamard_entry(i, j), hadamard_entry(j, i));
            }
        }
    }

    #[test]
    fn rows_are_orthogonal() {
        let n = 64u64;
        for a in 0..n {
            for b in 0..n {
                let dot: i64 = (0..n)
                    .map(|j| i64::from(hadamard_entry(a, j)) * i64::from(hadamard_entry(b, j)))
                    .sum();
                if a == b {
                    assert_eq!(dot, n as i64);
                } else {
                    assert_eq!(dot, 0);
                }
            }
        }
    }

    #[test]
    fn fast_matches_naive() {
        let mut rng = SmallRng::seed_from_u64(3);
        for k in 0..8u32 {
            let n = 1usize << k;
            let data: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let want = wht_naive(&data);
            let mut got = data;
            fwht(&mut got);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn double_transform_is_scaling() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 256usize;
        let data: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut x = data.clone();
        fwht(&mut x);
        ifwht(&mut x);
        for (a, b) in x.iter().zip(&data) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn indicator_transform_is_row() {
        // WHT(e_b)[l] = H[l][b].
        let n = 128usize;
        let b = 77usize;
        let mut x = vec![0.0; n];
        x[b] = 1.0;
        fwht(&mut x);
        for (l, &v) in x.iter().enumerate() {
            assert_eq!(v as i8, hadamard_entry(l as u64, b as u64));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut x = vec![0.0; 3];
        fwht(&mut x);
    }

    #[test]
    fn threaded_is_bit_identical_to_serial() {
        let mut rng = SmallRng::seed_from_u64(23);
        // Cover both the small fall-through and the blocked path (the
        // blocked kernel engages at 2^12).
        for k in [0u32, 3, 8, 13] {
            let n = 1usize << k;
            let data: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let mut want = data.clone();
            fwht(&mut want);
            for threads in [0, 1, 2, 3, 7] {
                let mut got = data.clone();
                fwht_threaded(&mut got, threads);
                assert!(
                    got.iter()
                        .zip(&want)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "k = {k}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn threaded_rejects_non_power_of_two() {
        let mut x = vec![0.0; 6];
        fwht_threaded(&mut x, 2);
    }
}
