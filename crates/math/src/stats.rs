//! Summary statistics and Monte-Carlo confidence machinery for the
//! experiment harness.

/// Median of a slice (average of middle two for even length).
///
/// Sorts a copy; inputs in this workspace are small (per-group estimates,
/// trial summaries).
pub fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    median_in_place(&mut v)
}

/// [`median`] over a caller-owned buffer, sorting it in place — the
/// allocation-free twin the finish path's buffered estimate sweeps use
/// (bit-for-bit the same result).
pub fn median_in_place(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty slice");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Empirical quantile with linear interpolation, `q` in `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator); 0 for singleton input.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Maximum absolute value.
pub fn max_abs(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, &x| acc.max(x.abs()))
}

/// Wilson score interval for a binomial proportion: returns `(lo, hi)` at
/// `z` standard deviations (z = 1.96 for 95%).
///
/// Used by Monte-Carlo failure-probability measurements so experiment
/// output reports honest uncertainty rather than point estimates.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "Wilson interval needs at least one trial");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((centre - half) / denom).max(0.0),
        ((centre + half) / denom).min(1.0),
    )
}

/// Ordinary least squares slope of `log y` vs `log x` — the growth
/// exponent of a measured series, used to compare against theoretical
/// exponents (e.g. the 0.5 of `sqrt(n)` error growth).
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points for a slope");
    let lx: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "loglog_slope needs positive x, got {x}");
            x.ln()
        })
        .collect();
    let ly: Vec<f64> = ys
        .iter()
        .map(|&y| {
            assert!(y > 0.0, "loglog_slope needs positive y, got {y}");
            y.ln()
        })
        .collect();
    let mx = mean(&lx);
    let my = mean(&ly);
    let cov: f64 = lx.iter().zip(&ly).map(|(&a, &b)| (a - mx) * (b - my)).sum();
    let var: f64 = lx.iter().map(|&a| (a - mx) * (a - mx)).sum();
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }

    #[test]
    fn variance_constant_is_zero() {
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wilson_contains_truth_mostly() {
        // For p = 0.3, n = 1000, the 95% interval should contain 0.3 when
        // successes = 300.
        let (lo, hi) = wilson_interval(300, 1000, 1.96);
        assert!(lo < 0.3 && 0.3 < hi);
        assert!(lo > 0.25 && hi < 0.35);
        // Degenerate extremes stay in [0,1].
        let (lo, hi) = wilson_interval(0, 10, 1.96);
        assert!(lo == 0.0 && hi < 0.5);
        let (lo, hi) = wilson_interval(10, 10, 1.96);
        assert!(hi == 1.0 && lo > 0.5);
    }

    #[test]
    fn loglog_slope_recovers_exponent() {
        let xs: Vec<f64> = (1..=10).map(|i| (i * i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.powf(0.5)).collect();
        assert!((loglog_slope(&xs, &ys) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn max_abs_mixed_signs() {
        assert_eq!(max_abs(&[-3.0, 2.0, 1.0]), 3.0);
        assert_eq!(max_abs(&[]), 0.0);
    }
}
