//! Word-level client sampling kernels — the single canonical coin path
//! of every protocol's client algorithm.
//!
//! The client side of an LDP protocol is pure coin flipping: biased bits
//! (randomized response), uniform indices (row/bucket picks), and a
//! categorical keep-vs-lie draw (generalized randomized response). Before
//! these kernels, each coin cost one `f64` conversion and compare, or a
//! 128-bit modulo, per flip. The kernels below work directly on the raw
//! `u64` words of the underlying generator:
//!
//! * [`Bernoulli`] — a fixed-point threshold compare for single biased
//!   bits, and [`Bernoulli::sample_word`], which produces **64
//!   independent biased bits from a handful of words** by lazily
//!   combining fair-coin words against the binary expansion of `p`;
//! * [`GrrSampler`] — one word decides *both* keep-vs-lie and the lie
//!   value for generalized randomized response;
//! * [`Uniform64`] — exactly uniform range reduction with a
//!   widening multiply (Lemire) whose hot path has no divide;
//! * [`ClientCoins`] / [`ClientRng`] — the per-user coin streams of the
//!   batch execution contract, derived in bulk with SplitMix64 hops
//!   instead of a full xoshiro256++ construction per user.
//!
//! # One draw per 64 bits
//!
//! [`Bernoulli::sample_word`] compares 64 uniform reals against `p` in
//! parallel, bit-plane by bit-plane. Round `r` draws one fair word `w`
//! whose lane `j` is the `r`-th most significant bit of lane `j`'s
//! uniform `u_j`; a lane is decided the first time its bit differs from
//! the matching bit of `p`'s binary expansion (`u_j < p` iff the first
//! differing bit has `u_j = 0`, `p = 1`). Each round decides half the
//! remaining lanes in expectation, so all 64 lanes finish after
//! `log2(64) + O(1) ≈ 8` words — one word of randomness per ~8 biased
//! bits, versus one word *per bit* for the scalar `f64` path — and the
//! result is exact: lane `j` is 1 with probability exactly
//! `⌊p·2^64⌉ / 2^64`.
//!
//! # Stream contract
//!
//! Every kernel consumes whole words via [`RngCore::next_u64`] and
//! nothing else, so the serial per-user path (`respond` with
//! [`crate::rng::client_rng`]) and the fused batch path
//! (`respond_encode_batch`) run the *same* kernel over the *same* words —
//! one implementation, bit-for-bit equal outputs. The number of words a
//! kernel consumes is a deterministic function of the stream values, so
//! equivalence holds across chunking, threading, and merge order.

use crate::rng::{splitmix64, LABEL_MUL, SPLITMIX_GAMMA};
use rand::RngCore;

/// A Bernoulli sampler with fixed-point parameter `⌊p·2^64⌉ / 2^64`.
///
/// Probabilities are quantized to multiples of `2^-64` (so `p = 1.0` is
/// realized as `1 - 2^-64`); every workspace probability is an `f64` with
/// at most 53 significant bits, so the quantization error is below any
/// statistical resolution and the realized probability is *exact* — the
/// `sampler_statistics` integration tests pin protocol marginals against
/// [`Bernoulli::p`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bernoulli {
    threshold: u64,
}

impl Bernoulli {
    /// Sampler with `P(true) = ⌊p·2^64⌉ / 2^64`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability: {p}");
        let scaled = (p * 2f64.powi(64)).round();
        let threshold = if scaled >= 2f64.powi(64) {
            u64::MAX
        } else {
            scaled as u64
        };
        Self { threshold }
    }

    /// The exact realized probability, `threshold / 2^64`.
    pub fn p(&self) -> f64 {
        self.threshold as f64 * 2f64.powi(-64)
    }

    /// The fixed-point threshold (`P(true) = threshold / 2^64`).
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// One biased bit: a single word compared against the threshold.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() < self.threshold
    }

    /// 64 independent biased bits in one word (see the module docs for
    /// the bit-plane construction and its ~8-words-per-call cost).
    ///
    /// Consumes one word per round; rounds stop as soon as every lane is
    /// decided or the remaining bits of the threshold's binary expansion
    /// are all zero (undecided lanes then resolve to 0, since their
    /// uniform is `>= p`). The consumption count is a deterministic
    /// function of the drawn words, preserving the stream contract.
    #[inline]
    pub fn sample_word<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut result = 0u64;
        let mut undecided = !0u64;
        let mut t = self.threshold;
        while undecided != 0 && t != 0 {
            let w = rng.next_u64();
            if t >> 63 != 0 {
                // Expansion bit 1: lanes with a 0 bit are decided true.
                result |= undecided & !w;
                undecided &= w;
            } else {
                // Expansion bit 0: lanes with a 1 bit are decided false.
                undecided &= !w;
            }
            t <<= 1;
        }
        result
    }
}

/// Exactly uniform draws from `[0, span)` — Lemire's widening-multiply
/// reduction with the `2^64 mod span` rejection bound hoisted to
/// construction, so the per-draw hot path is one 64×64→128 multiply and
/// one compare (no divide of any width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uniform64 {
    span: u64,
    reject_below: u64,
}

impl Uniform64 {
    /// Sampler over `[0, span)`.
    ///
    /// # Panics
    /// If `span == 0`.
    pub fn new(span: u64) -> Self {
        assert!(span > 0, "cannot sample an empty range");
        Self {
            span,
            // 2^64 mod span: a word whose widening product has low half
            // below this lands in the truncated final block and is
            // redrawn (probability at most span / 2^64).
            reject_below: span.wrapping_neg() % span,
        }
    }

    /// The exclusive upper bound.
    pub fn span(&self) -> u64 {
        self.span
    }

    /// One exactly uniform draw.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let m = (rng.next_u64() as u128) * (self.span as u128);
            if (m as u64) >= self.reject_below {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Generalized randomized response in one word: the draw decides
/// keep-vs-lie *and* the lie value.
///
/// The widening product `w · (k-1)` yields the lie candidate in its high
/// half (a uniform index into the `k-1` non-truth values) and a uniform
/// fixed-point fraction in its low half, which is compared against
/// `⌊p_true·2^64⌉` for the keep decision. The two halves are
/// independent up to a total-variation error below `k/2^64` (each lie
/// value's word count is off by at most one), which is beyond any
/// statistical resolution for every feasible `k`; the statistical
/// conformance tests pin the keep/lie split against the analytic
/// probabilities. This replaces an `f64` convert+compare *plus* a
/// 128-bit-modulo `gen_range` per report with one multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrrSampler {
    k: u64,
    keep_threshold: u64,
}

impl GrrSampler {
    /// Sampler over a `k`-value domain keeping the truth with
    /// probability `p_true` (quantized to `2^-64`), lying uniformly
    /// otherwise.
    ///
    /// # Panics
    /// If `k == 0` or `p_true` is not in `[0, 1]`.
    pub fn new(k: u64, p_true: f64) -> Self {
        assert!(k > 0, "domain must be non-empty");
        assert!(
            (0.0..=1.0).contains(&p_true),
            "p_true must be a probability: {p_true}"
        );
        let scaled = (p_true * 2f64.powi(64)).round();
        let keep_threshold = if scaled >= 2f64.powi(64) {
            u64::MAX
        } else {
            scaled as u64
        };
        Self { k, keep_threshold }
    }

    /// Domain size `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The exact realized keep probability.
    pub fn p_keep(&self) -> f64 {
        self.keep_threshold as f64 * 2f64.powi(-64)
    }

    /// One response for a user whose true value is `truth` (`< k`).
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, truth: u64, rng: &mut R) -> u64 {
        debug_assert!(truth < self.k);
        if self.k == 1 {
            return truth;
        }
        let m = (rng.next_u64() as u128) * ((self.k - 1) as u128);
        if (m as u64) < self.keep_threshold {
            truth
        } else {
            // High half: uniform over the k-1 non-truth values, encoded
            // by skipping the truth.
            let r = (m >> 64) as u64;
            if r >= truth {
                r + 1
            } else {
                r
            }
        }
    }
}

/// The canonical per-user client coin stream: SplitMix64 from the
/// derived state `derive_seed(client_seed, user_index)`.
///
/// SplitMix64 is a full-period 64-bit generator (Steele–Lea–Flood) whose
/// construction is two mixes of the seed material — versus four mixes
/// plus 256-bit state setup for the previous xoshiro256++ streams — so
/// batch encoders pay almost nothing per user. Constructed via
/// [`crate::rng::client_rng`] or [`ClientCoins::user`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientRng {
    state: u64,
}

impl ClientRng {
    /// Resume a stream from a raw state word (as produced by
    /// [`ClientCoins::fill_states`]).
    #[inline]
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for ClientRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(SPLITMIX_GAMMA);
        out
    }
}

/// Block deriver for per-user coin streams: turns one `client_seed` into
/// the streams of any contiguous user range without re-deriving shared
/// material per user.
///
/// `ClientCoins::new(seed).user(i)` is *the* definition of user `i`'s
/// coins ([`crate::rng::client_rng`] delegates here), so every execution
/// mode — serial, batched, distributed, pipelined — reads identical
/// words for identical users regardless of chunking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientCoins {
    client_seed: u64,
}

impl ClientCoins {
    /// Deriver for one run's client seed.
    pub fn new(client_seed: u64) -> Self {
        Self { client_seed }
    }

    /// User `user_index`'s coin stream.
    #[inline]
    pub fn user(&self, user_index: u64) -> ClientRng {
        ClientRng {
            state: splitmix64(self.client_seed ^ splitmix64(user_index.wrapping_mul(LABEL_MUL))),
        }
    }

    /// Fill `out[j]` with the initial stream state of user
    /// `start_index + j` — the batched SplitMix hop: the label multiply
    /// is strength-reduced to an addition across the run, and the two
    /// mixes per user are the only remaining per-user work.
    pub fn fill_states(&self, start_index: u64, out: &mut [u64]) {
        let mut label = start_index.wrapping_mul(LABEL_MUL);
        for slot in out {
            *slot = splitmix64(self.client_seed ^ splitmix64(label));
            label = label.wrapping_add(LABEL_MUL);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{client_rng, derive_seed, seeded_rng};
    use rand::Rng;

    #[test]
    fn threshold_sample_matches_probability() {
        let b = Bernoulli::new(0.3);
        let mut rng = seeded_rng(1);
        let n = 200_000;
        let hits = (0..n).filter(|_| b.sample(&mut rng)).count();
        assert!((hits as f64 / n as f64 - 0.3).abs() < 0.01);
    }

    #[test]
    fn word_sampler_matches_probability_per_lane() {
        let b = Bernoulli::new(0.7);
        let mut rng = seeded_rng(2);
        let mut per_lane = [0u64; 64];
        let reps = 20_000;
        for _ in 0..reps {
            let w = b.sample_word(&mut rng);
            for (j, c) in per_lane.iter_mut().enumerate() {
                *c += (w >> j) & 1;
            }
        }
        for (j, &c) in per_lane.iter().enumerate() {
            let f = c as f64 / reps as f64;
            assert!((f - 0.7).abs() < 0.03, "lane {j}: {f}");
        }
    }

    #[test]
    fn word_sampler_degenerate_probabilities() {
        let mut rng = seeded_rng(3);
        assert_eq!(Bernoulli::new(0.0).sample_word(&mut rng), 0);
        // p = 1 quantizes to 1 - 2^-64: all-ones words up to the
        // astronomically unlikely 64-deep tie.
        assert_eq!(Bernoulli::new(1.0).sample_word(&mut rng), !0u64);
        assert!(!Bernoulli::new(0.0).sample(&mut rng));
        assert!(Bernoulli::new(1.0).sample(&mut rng));
    }

    #[test]
    fn word_sampler_uses_few_words() {
        struct Counting<R> {
            inner: R,
            calls: u64,
        }
        impl<R: RngCore> RngCore for Counting<R> {
            fn next_u64(&mut self) -> u64 {
                self.calls += 1;
                self.inner.next_u64()
            }
        }
        let b = Bernoulli::new(0.5f64.exp() / (0.5f64.exp() + 1.0));
        let mut rng = Counting {
            inner: seeded_rng(4),
            calls: 0,
        };
        let reps = 5_000u64;
        for _ in 0..reps {
            let _ = b.sample_word(&mut rng);
        }
        let per_word = rng.calls as f64 / reps as f64;
        // ~8 expected; the bound just pins the order of magnitude.
        assert!(per_word < 16.0, "words per 64-bit sample: {per_word}");
    }

    #[test]
    fn uniform64_is_in_range_and_covers() {
        let u = Uniform64::new(7);
        let mut rng = seeded_rng(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // span 1 never consults the word distribution's value.
        let one = Uniform64::new(1);
        assert_eq!(one.sample(&mut rng), 0);
    }

    #[test]
    fn grr_keeps_and_lies_at_the_right_rates() {
        let k = 16u64;
        let eps = 1.0f64;
        let p_true = eps.exp() / (eps.exp() + (k - 1) as f64);
        let g = GrrSampler::new(k, p_true);
        let mut rng = seeded_rng(6);
        let truth = 5u64;
        let n = 200_000;
        let mut counts = vec![0u64; k as usize];
        for _ in 0..n {
            counts[g.sample(truth, &mut rng) as usize] += 1;
        }
        let kept = counts[truth as usize] as f64 / n as f64;
        assert!((kept - p_true).abs() < 0.01, "keep rate {kept} vs {p_true}");
        let p_other = (1.0 - p_true) / (k - 1) as f64;
        for (v, &c) in counts.iter().enumerate() {
            if v as u64 != truth {
                let f = c as f64 / n as f64;
                assert!((f - p_other).abs() < 0.01, "lie {v}: {f} vs {p_other}");
            }
        }
    }

    #[test]
    fn grr_k1_is_the_identity() {
        let g = GrrSampler::new(1, 0.25);
        let mut rng = seeded_rng(7);
        assert_eq!(g.sample(0, &mut rng), 0);
    }

    #[test]
    fn client_coins_matches_client_rng() {
        let coins = ClientCoins::new(0xABCD);
        for i in [0u64, 1, 2, 1 << 40] {
            let mut a = coins.user(i);
            let mut b = client_rng(0xABCD, i);
            for _ in 0..8 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn fill_states_matches_derive_seed() {
        let coins = ClientCoins::new(97);
        let mut states = [0u64; 33];
        let start = (1u64 << 50) - 3;
        coins.fill_states(start, &mut states);
        for (j, &s) in states.iter().enumerate() {
            assert_eq!(s, derive_seed(97, start + j as u64), "user {j}");
            let mut via_state = ClientRng::from_state(s);
            let mut via_user = coins.user(start + j as u64);
            assert_eq!(via_state.next_u64(), via_user.next_u64());
        }
    }

    #[test]
    fn client_streams_are_well_distributed() {
        // Smoke: per-user SplitMix64 streams should look uniform enough
        // for the f64 path too.
        let mut rng = client_rng(11, 42);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
