//! Numerics substrate for the `ldp-heavy-hitters` workspace.
//!
//! The analysis in Bun–Nelson–Stemmer (PODS 2018) leans on a toolbox of
//! concentration and anti-concentration results (their §3.2.2, §3.2.3,
//! Theorem 7.5 and Appendix A). This crate implements that toolbox as
//! *calculable* quantities so the rest of the workspace can both consume
//! them (parameter calibration) and verify empirical behaviour against the
//! exact inequalities the paper invokes (tests, experiment harness).
//!
//! Modules:
//!
//! * [`special`] — log-gamma, log-binomial, log-sum-exp, binary entropy.
//! * [`binomial`] — exact binomial pmf/cdf in log space, shell-conditional
//!   sampling (used by the Section 5 composed-randomized-response sampler).
//! * [`poisson`] — Poisson tails (Theorem 3.10) and the poissonization
//!   bound of Theorem 3.9.
//! * [`bounds`] — Chernoff/Hoeffding/Bernstein bound calculators
//!   (Theorems 3.11, 3.12) and binomial anti-concentration (Theorem A.4).
//! * [`wht`] — fast Walsh–Hadamard transform (Hashtogram internals).
//! * [`dist`] — discrete distributions: alias sampler, exact binomial and
//!   Poisson samplers, Zipf.
//! * [`info`] — statistical distance, KL divergence, entropy and mutual
//!   information on finite spaces.
//! * [`stats`] — summary statistics and Monte-Carlo confidence intervals.
//! * [`rng`] — deterministic seed derivation for protocol public randomness
//!   and the per-user client coin streams of the batch pipeline.
//! * [`sampler`] — word-level client sampling kernels: bit-parallel
//!   Bernoulli, one-draw generalized randomized response, divide-free
//!   uniform range reduction, and the per-user coin stream deriver.
//! * [`par`] — deterministic parallel chunk mapping (the batched drivers'
//!   execution substrate).

pub mod binomial;
pub mod bounds;
pub mod dist;
pub mod info;
pub mod par;
pub mod poisson;
pub mod rng;
pub mod sampler;
pub mod special;
pub mod stats;
pub mod wht;

pub use par::{par_chunk_map, par_map_indexed, FinishScratch};
pub use rng::{client_rng, derive_seed, seeded_rng};
pub use sampler::{Bernoulli, ClientCoins, ClientRng, GrrSampler, Uniform64};
