//! Poisson distribution: pmf, tails, and the poissonization device.
//!
//! The utility analysis of `PrivateExpanderSketch` (events E3/E4 in the
//! proof of Theorem 3.13) studies balls-in-bins loads through the Poisson
//! approximation: Theorem 3.9 transfers any event bound from the
//! independent-Poisson model back to the exact multinomial model at a cost
//! of `e·sqrt(n)`, and Theorem 3.10 provides the sub-Gaussian Poisson tail
//! used to bound the number of "bad" coordinates.

use crate::special::{ln_factorial, log_sum_exp};

/// `ln Pr[Pois(mu) = k]`.
pub fn ln_pmf(mu: f64, k: u64) -> f64 {
    assert!(mu >= 0.0, "Poisson mean must be nonnegative, got {mu}");
    if mu == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    k as f64 * mu.ln() - mu - ln_factorial(k)
}

/// `Pr[Pois(mu) = k]`.
pub fn pmf(mu: f64, k: u64) -> f64 {
    ln_pmf(mu, k).exp()
}

/// `ln Pr[Pois(mu) <= k]` by log-space summation (O(k)).
pub fn ln_cdf(mu: f64, k: u64) -> f64 {
    let terms: Vec<f64> = (0..=k).map(|j| ln_pmf(mu, j)).collect();
    log_sum_exp(&terms).min(0.0)
}

/// Theorem 3.10 (lower tail): `Pr[X <= mu(1−alpha)] <= exp(−alpha² mu / 2)`.
pub fn lower_tail_bound(mu: f64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha out of [0,1]: {alpha}");
    (-alpha * alpha * mu / 2.0).exp()
}

/// Theorem 3.10 (upper tail) as stated in the paper:
/// `Pr[X >= mu(1+alpha)] <= exp(−alpha² mu / 2)`.
///
/// As stated this constant is only valid for `alpha` bounded away from 1
/// (the proofs in the paper apply it with `alpha = 1/2`); near `alpha = 1`
/// the exact tail can exceed it by a constant factor. Use
/// [`upper_tail_bound`] for a form valid on all of `[0, 1]`.
pub fn upper_tail_bound_paper_form(mu: f64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha out of [0,1]: {alpha}");
    (-alpha * alpha * mu / 2.0).exp()
}

/// Chernoff–Poisson upper tail, valid for all `alpha >= 0`:
/// `Pr[X >= mu(1+alpha)] <= exp(−mu((1+alpha)ln(1+alpha) − alpha))`.
pub fn upper_tail_bound(mu: f64, alpha: f64) -> f64 {
    assert!(alpha >= 0.0, "alpha must be nonnegative: {alpha}");
    if alpha == 0.0 {
        return 1.0;
    }
    (-mu * ((1.0 + alpha) * (1.0 + alpha).ln() - alpha)).exp()
}

/// Theorem 3.9 transfer factor: an event with Poisson-model probability `p`
/// has exact balls-in-bins probability at most `e·sqrt(n)·p`.
pub fn poissonization_factor(n: u64) -> f64 {
    std::f64::consts::E * (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_normalizes() {
        for &mu in &[0.5f64, 3.0, 17.5] {
            // Sum far enough into the tail that the remainder is negligible.
            let hi = (mu + 30.0 * mu.sqrt() + 30.0) as u64;
            let total: f64 = (0..=hi).map(|k| pmf(mu, k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "mu={mu}: total={total}");
        }
    }

    #[test]
    fn pmf_zero_mean() {
        assert_eq!(pmf(0.0, 0), 1.0);
        assert_eq!(pmf(0.0, 3), 0.0);
    }

    #[test]
    fn mean_and_variance_match() {
        let mu = 9.0;
        let hi = 200u64;
        let mean: f64 = (0..=hi).map(|k| k as f64 * pmf(mu, k)).sum();
        let var: f64 = (0..=hi).map(|k| (k as f64 - mu).powi(2) * pmf(mu, k)).sum();
        assert!((mean - mu).abs() < 1e-8);
        assert!((var - mu).abs() < 1e-6);
    }

    #[test]
    fn theorem_3_10_bounds_hold_exactly() {
        // The tail bounds must dominate the exact tails (the paper-form
        // upper bound only in its small-alpha validity range).
        for &mu in &[4.0f64, 25.0, 100.0] {
            for &alpha in &[0.1f64, 0.3, 0.5, 0.9, 1.0] {
                let k_lo = (mu * (1.0 - alpha)).floor() as u64;
                let exact_lower = ln_cdf(mu, k_lo).exp();
                assert!(
                    exact_lower <= lower_tail_bound(mu, alpha) + 1e-12,
                    "lower tail violated: mu={mu} alpha={alpha}: {exact_lower}"
                );

                let k_hi = (mu * (1.0 + alpha)).ceil() as u64;
                let hi_lim = (mu + 60.0 * mu.sqrt() + 60.0) as u64;
                let exact_upper: f64 = (k_hi..=hi_lim).map(|k| pmf(mu, k)).sum();
                assert!(
                    exact_upper <= upper_tail_bound(mu, alpha) + 1e-12,
                    "upper tail violated: mu={mu} alpha={alpha}: {exact_upper}"
                );
                if alpha <= 0.5 {
                    assert!(
                        exact_upper <= upper_tail_bound_paper_form(mu, alpha) + 1e-12,
                        "paper-form upper tail violated in validity range: \
                         mu={mu} alpha={alpha}: {exact_upper}"
                    );
                }
            }
        }
    }

    #[test]
    fn chernoff_form_weaker_than_paper_form_at_small_alpha() {
        // The two forms agree to second order as alpha -> 0; the paper form
        // must be the smaller (stronger) one there.
        let mu = 50.0;
        for &alpha in &[0.05f64, 0.1, 0.2] {
            assert!(upper_tail_bound_paper_form(mu, alpha) <= upper_tail_bound(mu, alpha));
        }
    }

    #[test]
    fn poissonization_factor_value() {
        assert!((poissonization_factor(4) - std::f64::consts::E * 2.0).abs() < 1e-12);
    }
}
