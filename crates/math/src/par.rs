//! Deterministic parallel chunk mapping — the substrate of the batched
//! execution pipeline.
//!
//! [`par_chunk_map`] partitions a slice into fixed-size chunks and maps a
//! function over them on a small pool of scoped worker threads, returning
//! the results **in chunk order**. Chunks are claimed dynamically (an
//! atomic cursor), but because each chunk's result depends only on the
//! chunk's own contents and index, the output is identical for every
//! thread count — determinism lives in the chunking, not the scheduling.
//!
//! Protocol code layers exact reproducibility on top of this in two ways:
//!
//! * client side: user `i`'s coins come from [`crate::rng::client_rng`],
//!   a pure function of `(seed, i)`, so chunk boundaries cannot perturb
//!   reports;
//! * server side: accumulators ingest reports as *integer* tallies, so
//!   merge order cannot perturb sums (no floating-point reassociation).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The worker count [`par_chunk_map`] will use for `num_items` items in
/// chunks of `chunk_size` when asked for `threads` workers (`0` = the
/// available hardware parallelism). Exposed so callers that *report*
/// parallelism (the sim drivers' resource accounting) cannot drift from
/// the scheduling policy actually used.
pub fn planned_threads(threads: usize, num_items: usize, chunk_size: usize) -> usize {
    let hw = if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    };
    hw.min(num_items.div_ceil(chunk_size.max(1))).max(1)
}

/// Map `f` over `items` in chunks of `chunk_size`, in parallel, returning
/// one result per chunk in chunk order. `f` receives `(chunk_index,
/// chunk)`; chunk `c` covers `items[c * chunk_size ..]`.
///
/// `threads == 0` means "use the available hardware parallelism". The
/// result is independent of `threads`.
pub fn par_chunk_map<T, U, F>(items: &[T], chunk_size: usize, threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let num_chunks = items.len().div_ceil(chunk_size);
    let threads = planned_threads(threads, items.len(), chunk_size);

    if threads <= 1 {
        return items
            .chunks(chunk_size)
            .enumerate()
            .map(|(c, chunk)| f(c, chunk))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    rayon::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            s.spawn(move |_| loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks {
                    break;
                }
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(items.len());
                let out = f(c, &items[lo..hi]);
                if tx.send((c, out)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<U>> = (0..num_chunks).map(|_| None).collect();
    for (c, out) in rx {
        slots[c] = Some(out);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(c, s)| s.unwrap_or_else(|| panic!("chunk {c} produced no result")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_chunk_order() {
        let items: Vec<u64> = (0..1000).collect();
        let sums = par_chunk_map(&items, 64, 0, |c, chunk| (c, chunk.iter().sum::<u64>()));
        assert_eq!(sums.len(), 1000usize.div_ceil(64));
        for (i, &(c, _)) in sums.iter().enumerate() {
            assert_eq!(c, i);
        }
        let total: u64 = sums.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn independent_of_thread_count() {
        let items: Vec<u64> = (0..777).collect();
        let expect: Vec<u64> = par_chunk_map(&items, 10, 1, |c, chunk| {
            chunk.iter().sum::<u64>() + c as u64
        });
        for threads in [2, 3, 8] {
            let got = par_chunk_map(&items, 10, threads, |c, chunk| {
                chunk.iter().sum::<u64>() + c as u64
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let out = par_chunk_map(&[] as &[u64], 8, 0, |_, chunk| chunk.len());
        assert!(out.is_empty());
    }

    #[test]
    fn single_oversized_chunk() {
        let items = [1u64, 2, 3];
        let out = par_chunk_map(&items, 100, 4, |c, chunk| (c, chunk.to_vec()));
        assert_eq!(out, vec![(0, vec![1, 2, 3])]);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn rejects_zero_chunk() {
        let _ = par_chunk_map(&[1u64], 0, 0, |_, _| ());
    }
}
