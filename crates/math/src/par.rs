//! Deterministic parallel chunk mapping — the substrate of the batched
//! execution pipeline.
//!
//! [`par_chunk_map`] partitions a slice into fixed-size chunks and maps a
//! function over them on a small pool of scoped worker threads, returning
//! the results **in chunk order**. Chunks are claimed dynamically (an
//! atomic cursor), but because each chunk's result depends only on the
//! chunk's own contents and index, the output is identical for every
//! thread count — determinism lives in the chunking, not the scheduling.
//!
//! Protocol code layers exact reproducibility on top of this in two ways:
//!
//! * client side: user `i`'s coins come from [`crate::rng::client_rng`],
//!   a pure function of `(seed, i)`, so chunk boundaries cannot perturb
//!   reports;
//! * server side: accumulators ingest reports as *integer* tallies, so
//!   merge order cannot perturb sums (no floating-point reassociation).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A recycling pool of byte buffers: [`BufferPool::take`] hands out a
/// cleared buffer (reusing returned capacity when available),
/// [`BufferPool::put`] reclaims one. This is the allocation backbone of
/// the streaming engines' wire-chunk cycle (pool → respond → spool →
/// checkpoint → pool): after warm-up, steady-state ingest reuses
/// capacity instead of allocating per chunk.
#[derive(Debug, Default)]
pub struct BufferPool {
    bufs: Vec<Vec<u8>>,
    /// Buffers handed out that had recycled capacity.
    reused: u64,
    /// Buffers handed out freshly allocated (pool was empty).
    fresh: u64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cleared buffer — recycled capacity if the pool has any,
    /// freshly allocated otherwise.
    pub fn take(&mut self) -> Vec<u8> {
        match self.bufs.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty(), "pooled buffer not cleared");
                self.reused += 1;
                buf
            }
            None => {
                self.fresh += 1;
                Vec::new()
            }
        }
    }

    /// Return a buffer to the pool (cleared, capacity kept).
    pub fn put(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        self.bufs.push(buf);
    }

    /// Return every buffer of an iterator to the pool.
    pub fn put_all(&mut self, bufs: impl IntoIterator<Item = Vec<u8>>) {
        for buf in bufs {
            self.put(buf);
        }
    }

    /// Buffers currently parked in the pool.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// `(reused, fresh)` counts of buffers handed out so far — the
    /// recycling hit rate.
    pub fn handout_counts(&self) -> (u64, u64) {
        (self.reused, self.fresh)
    }
}

/// Reusable workspace for the server-side finish/decode phase: pooled
/// numeric buffers plus the worker-thread knob the parallel finish
/// sweeps run under.
///
/// The finish path (`HeavyHitterProtocol::finish_with`,
/// `FrequencyOracle::finalize_with`, the engines' `finish_at_epoch`)
/// threads one of these through every decode sweep so repeated
/// mid-stream queries reuse capacity instead of allocating per call.
/// The scratch **never changes results**: every protocol's
/// `finish_with` is bit-for-bit equal to `finish()` for any scratch
/// state and any thread count (pinned by the `finish_equivalence`
/// proptests) — only the schedule and the allocation profile move.
#[derive(Debug, Default)]
pub struct FinishScratch {
    /// Worker threads for the parallel finish sweeps (`0` = the
    /// available hardware parallelism, `1` = serial). Does not affect
    /// output.
    pub threads: usize,
    f64_bufs: Vec<Vec<f64>>,
    est_bufs: Vec<Vec<(u64, f64)>>,
    /// Buffers handed out that had recycled capacity.
    reused: u64,
    /// Buffers handed out freshly allocated (pool was empty).
    fresh: u64,
}

impl FinishScratch {
    /// A fresh scratch running sweeps at the available hardware
    /// parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch that keeps every finish sweep serial — the reference
    /// schedule the parallel one is pinned against.
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// A scratch with an explicit worker count (`0` = hardware).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// A cleared `f64` buffer — recycled capacity if available.
    pub fn take_f64(&mut self) -> Vec<f64> {
        match self.f64_bufs.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty(), "pooled buffer not cleared");
                self.reused += 1;
                buf
            }
            None => {
                self.fresh += 1;
                Vec::new()
            }
        }
    }

    /// Return an `f64` buffer (cleared, capacity kept).
    pub fn put_f64(&mut self, mut buf: Vec<f64>) {
        buf.clear();
        self.f64_bufs.push(buf);
    }

    /// A cleared `(value, estimate)` buffer — recycled capacity if
    /// available.
    pub fn take_est(&mut self) -> Vec<(u64, f64)> {
        match self.est_bufs.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty(), "pooled buffer not cleared");
                self.reused += 1;
                buf
            }
            None => {
                self.fresh += 1;
                Vec::new()
            }
        }
    }

    /// Return a `(value, estimate)` buffer (cleared, capacity kept).
    pub fn put_est(&mut self, mut buf: Vec<(u64, f64)>) {
        buf.clear();
        self.est_bufs.push(buf);
    }

    /// `(reused, fresh)` counts of buffers handed out so far — the
    /// scratch-pool hit rate the bench paths surface.
    pub fn handout_counts(&self) -> (u64, u64) {
        (self.reused, self.fresh)
    }
}

/// Smallest per-shard chunk the shared sharding path will create:
/// shard setup/merge is O(state size), so tiny chunks would be all
/// overhead.
pub const MIN_SHARD_CHUNK: usize = 4096;

/// The chunk size the shared sharding path uses for `n` reports (one
/// chunk per available worker, floored at [`MIN_SHARD_CHUNK`]). This is
/// the one definition both `HeavyHitterProtocol::collect_batch` and
/// `FrequencyOracle::collect_batch` shard with, so the trait defaults
/// cannot drift apart.
pub fn shard_chunk_size(n: usize) -> usize {
    n.div_ceil(planned_threads(0, n, 1)).max(MIN_SHARD_CHUNK)
}

/// Fold shards pairwise, level by level (`(s0⊕s1) ⊕ (s2⊕s3) ⊕ …`) —
/// the one tree reduction the trait defaults, the distributed driver
/// and the streaming engine all go through. `None` for an empty input.
pub fn merge_tree<S>(mut shards: Vec<S>, mut merge: impl FnMut(S, S) -> S) -> Option<S> {
    while shards.len() > 1 {
        let mut next = Vec::with_capacity(shards.len().div_ceil(2));
        let mut it = shards.into_iter();
        while let Some(a) = it.next() {
            next.push(match it.next() {
                Some(b) => merge(a, b),
                None => a,
            });
        }
        shards = next;
    }
    shards.pop()
}

/// The worker count [`par_chunk_map`] will use for `num_items` items in
/// chunks of `chunk_size` when asked for `threads` workers (`0` = the
/// available hardware parallelism). Exposed so callers that *report*
/// parallelism (the sim drivers' resource accounting) cannot drift from
/// the scheduling policy actually used.
pub fn planned_threads(threads: usize, num_items: usize, chunk_size: usize) -> usize {
    let hw = if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    };
    hw.min(num_items.div_ceil(chunk_size.max(1))).max(1)
}

/// Map `f` over `items` in chunks of `chunk_size`, in parallel, returning
/// one result per chunk in chunk order. `f` receives `(chunk_index,
/// chunk)`; chunk `c` covers `items[c * chunk_size ..]`.
///
/// `threads == 0` means "use the available hardware parallelism". The
/// result is independent of `threads`.
pub fn par_chunk_map<T, U, F>(items: &[T], chunk_size: usize, threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let num_chunks = items.len().div_ceil(chunk_size);
    let threads = planned_threads(threads, items.len(), chunk_size);

    if threads <= 1 {
        return items
            .chunks(chunk_size)
            .enumerate()
            .map(|(c, chunk)| f(c, chunk))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    rayon::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            s.spawn(move |_| loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks {
                    break;
                }
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(items.len());
                let out = f(c, &items[lo..hi]);
                if tx.send((c, out)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<U>> = (0..num_chunks).map(|_| None).collect();
    for (c, out) in rx {
        slots[c] = Some(out);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(c, s)| s.unwrap_or_else(|| panic!("chunk {c} produced no result")))
        .collect()
}

/// Parallel for: map `f` over the indices `0 .. num_items`, returning
/// one result per index in index order — the finish path's sweep
/// primitive (domain-scan chunks, per-coordinate oracle decodes,
/// per-bucket list decodes), where the work units are index ranges
/// rather than slice chunks.
///
/// Indices are claimed dynamically, but each result depends only on its
/// own index, so the output is identical for every `threads`
/// (`0` = the available hardware parallelism). Keep the work per index
/// coarse — one index is one scheduling unit.
pub fn par_map_indexed<U, F>(num_items: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = planned_threads(threads, num_items, 1);
    if threads <= 1 {
        return (0..num_items).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    rayon::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            s.spawn(move |_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= num_items {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<U>> = (0..num_items).map(|_| None).collect();
    for (i, out) in rx {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("index {i} produced no result")))
        .collect()
}

/// Map `f` over the chunks of a slice, each chunk paired with one owned
/// seed value, in parallel — the substrate of the fused respond+encode
/// phase, where each chunk writes into a pooled wire buffer moved in as
/// its seed. `seeds` must hold exactly one value per chunk
/// (`items.len().div_ceil(chunk_size)`); `f` receives
/// `(chunk_index, chunk, seed)` and results come back in chunk order,
/// independent of `threads`.
pub fn par_chunk_zip_map<T, S, U, F>(
    items: &[T],
    chunk_size: usize,
    threads: usize,
    seeds: Vec<S>,
    f: F,
) -> Vec<U>
where
    T: Sync,
    S: Send,
    U: Send,
    F: Fn(usize, &[T], S) -> U + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let num_chunks = items.len().div_ceil(chunk_size);
    assert_eq!(
        seeds.len(),
        num_chunks,
        "need one seed per chunk ({num_chunks} chunks)"
    );
    let work: Vec<(&[T], S)> = items.chunks(chunk_size).zip(seeds).collect();
    par_map_owned(work, threads, |c, (chunk, seed)| f(c, chunk, seed))
}

/// Map `f` over owned `items` in parallel, returning one result per
/// item in item order. `f` receives `(item_index, item)` by value — the
/// owned-item counterpart of [`par_chunk_map`] for work units that must
/// be moved into the worker (e.g. a collector's shard plus its chunk
/// queue). `threads == 0` means "use the available hardware
/// parallelism"; the result is independent of `threads`.
pub fn par_map_owned<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    let threads = planned_threads(threads, n, 1);
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let source = std::sync::Mutex::new(items.into_iter().enumerate());
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    rayon::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let source = &source;
            let f = &f;
            s.spawn(move |_| loop {
                let next = source
                    .lock()
                    .expect("worker panicked with the queue")
                    .next();
                let Some((i, item)) = next else { break };
                if tx.send((i, f(i, item))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, out) in rx {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("item {i} produced no result")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_pool_recycles_capacity() {
        let mut pool = BufferPool::new();
        let mut a = pool.take();
        a.extend_from_slice(&[1, 2, 3, 4]);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.len(), 1);
        let b = pool.take();
        assert!(b.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(b.capacity(), cap, "recycled buffer must keep capacity");
        assert!(pool.is_empty());
        assert_eq!(pool.handout_counts(), (1, 1));
        pool.put_all([b, Vec::new()]);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn finish_scratch_recycles_buffers() {
        let mut scratch = FinishScratch::new();
        assert_eq!(scratch.threads, 0);
        assert_eq!(FinishScratch::serial().threads, 1);
        let mut est = scratch.take_est();
        est.push((7, 1.5));
        let cap = est.capacity();
        scratch.put_est(est);
        let est = scratch.take_est();
        assert!(est.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(est.capacity(), cap, "recycled buffer must keep capacity");
        let mut f = scratch.take_f64();
        f.push(1.0);
        scratch.put_f64(f);
        let f = scratch.take_f64();
        assert!(f.is_empty());
        // est: fresh then reused; f64: fresh then reused.
        assert_eq!(scratch.handout_counts(), (2, 2));
    }

    #[test]
    fn indexed_map_is_ordered_and_thread_independent() {
        let expect: Vec<usize> = (0..137).map(|i| i * i).collect();
        for threads in [0, 1, 2, 5] {
            let got = par_map_indexed(137, threads, |i| i * i);
            assert_eq!(got, expect, "threads = {threads}");
        }
        assert!(par_map_indexed(0, 0, |i| i).is_empty());
    }

    #[test]
    fn maps_in_chunk_order() {
        let items: Vec<u64> = (0..1000).collect();
        let sums = par_chunk_map(&items, 64, 0, |c, chunk| (c, chunk.iter().sum::<u64>()));
        assert_eq!(sums.len(), 1000usize.div_ceil(64));
        for (i, &(c, _)) in sums.iter().enumerate() {
            assert_eq!(c, i);
        }
        let total: u64 = sums.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn independent_of_thread_count() {
        let items: Vec<u64> = (0..777).collect();
        let expect: Vec<u64> = par_chunk_map(&items, 10, 1, |c, chunk| {
            chunk.iter().sum::<u64>() + c as u64
        });
        for threads in [2, 3, 8] {
            let got = par_chunk_map(&items, 10, threads, |c, chunk| {
                chunk.iter().sum::<u64>() + c as u64
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let out = par_chunk_map(&[] as &[u64], 8, 0, |_, chunk| chunk.len());
        assert!(out.is_empty());
    }

    #[test]
    fn single_oversized_chunk() {
        let items = [1u64, 2, 3];
        let out = par_chunk_map(&items, 100, 4, |c, chunk| (c, chunk.to_vec()));
        assert_eq!(out, vec![(0, vec![1, 2, 3])]);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn rejects_zero_chunk() {
        let _ = par_chunk_map(&[1u64], 0, 0, |_, _| ());
    }

    #[test]
    fn owned_map_preserves_order_and_moves_items() {
        let items: Vec<Vec<u64>> = (0..9).map(|i| vec![i; i as usize + 1]).collect();
        let expect: Vec<u64> = items.iter().map(|v| v.iter().sum()).collect();
        for threads in [1, 2, 4] {
            let got = par_map_owned(items.clone(), threads, |i, v: Vec<u64>| {
                assert_eq!(v[0], i as u64);
                v.into_iter().sum::<u64>()
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
        assert!(par_map_owned(Vec::<u8>::new(), 0, |_, x| x).is_empty());
    }

    #[test]
    fn zip_map_pairs_chunks_with_seeds() {
        let items: Vec<u64> = (0..95).collect();
        let seeds: Vec<u64> = (0..10).map(|c| c * 1000).collect();
        for threads in [1, 3] {
            let got = par_chunk_zip_map(&items, 10, threads, seeds.clone(), |c, chunk, seed| {
                assert_eq!(seed, c as u64 * 1000);
                chunk.iter().sum::<u64>() + seed
            });
            assert_eq!(got.len(), 10);
            assert_eq!(got[0], (0..10).sum::<u64>());
            assert_eq!(got[9], (90..95).sum::<u64>() + 9000);
        }
    }

    #[test]
    #[should_panic(expected = "one seed per chunk")]
    fn zip_map_rejects_mismatched_seed_count() {
        let _ = par_chunk_zip_map(&[1u64, 2, 3], 2, 1, vec![0u8], |_, _, _| ());
    }

    #[test]
    fn shard_chunks_cover_hardware() {
        let n = 1usize << 20;
        let chunk = shard_chunk_size(n);
        assert!(chunk >= MIN_SHARD_CHUNK);
        assert!(chunk * planned_threads(0, n, 1) >= n);
    }

    #[test]
    fn merge_tree_folds_pairwise() {
        // Strings make the tree shape observable: 5 leaves fold as
        // ((01)(23))(4).
        let leaves: Vec<String> = (0..5).map(|i| i.to_string()).collect();
        let folded = merge_tree(leaves, |a, b| format!("({a}{b})")).unwrap();
        assert_eq!(folded, "(((01)(23))4)");
        assert_eq!(merge_tree(Vec::<u32>::new(), |a, b| a + b), None);
        assert_eq!(merge_tree(vec![7u32], |a, b| a + b), Some(7));
    }
}
