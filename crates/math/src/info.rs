//! Information-theoretic measures on finite spaces.
//!
//! Used by the Section 7 lower-bound experiment (mutual information between
//! a uniform bit and its privatized reports, Theorem 7.4), by the GenProt
//! utility theorem (total variation distance, Theorem 6.1), and by the
//! max-information machinery of Section 4.

/// Total variation (statistical) distance between two distributions given
/// as probability vectors over the same indexed space.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution supports differ");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// KL divergence `D(p || q)` in nats; `inf` if `p` has mass where `q` has
/// none.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    let mut d = 0.0;
    for (&a, &b) in p.iter().zip(q) {
        if a > 0.0 {
            if b == 0.0 {
                return f64::INFINITY;
            }
            d += a * (a / b).ln();
        }
    }
    d.max(0.0)
}

/// Shannon entropy in bits.
pub fn entropy_bits(p: &[f64]) -> f64 {
    -p.iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| x * x.log2())
        .sum::<f64>()
}

/// Mutual information `I(X; Y)` in bits from a joint probability table
/// `joint[x][y]` (need not be exactly normalized; it is renormalized).
pub fn mutual_information_bits(joint: &[Vec<f64>]) -> f64 {
    let total: f64 = joint.iter().flat_map(|r| r.iter()).sum();
    assert!(total > 0.0, "empty joint distribution");
    let ny = joint[0].len();
    let px: Vec<f64> = joint
        .iter()
        .map(|r| r.iter().sum::<f64>() / total)
        .collect();
    let mut py = vec![0.0; ny];
    for row in joint {
        assert_eq!(row.len(), ny, "ragged joint table");
        for (j, &v) in row.iter().enumerate() {
            py[j] += v / total;
        }
    }
    let mut mi = 0.0;
    for (row, &pxi) in joint.iter().zip(&px) {
        for (j, &v) in row.iter().enumerate() {
            let pxy = v / total;
            if pxy > 0.0 {
                mi += pxy * (pxy / (pxi * py[j])).log2();
            }
        }
    }
    mi.max(0.0)
}

/// Conditional entropy `H(X | Y)` in bits from a joint table `joint[x][y]`.
pub fn conditional_entropy_bits(joint: &[Vec<f64>]) -> f64 {
    let total: f64 = joint.iter().flat_map(|r| r.iter()).sum();
    assert!(total > 0.0);
    let ny = joint[0].len();
    let mut py = vec![0.0; ny];
    for row in joint {
        for (j, &v) in row.iter().enumerate() {
            py[j] += v / total;
        }
    }
    let mut h = 0.0;
    for j in 0..ny {
        if py[j] == 0.0 {
            continue;
        }
        for row in joint {
            let pxy = row[j] / total;
            if pxy > 0.0 {
                h -= pxy * (pxy / py[j]).log2();
            }
        }
    }
    h.max(0.0)
}

/// Empirical distribution over `{0, …, k−1}` from integer samples.
pub fn empirical_distribution(samples: &[usize], k: usize) -> Vec<f64> {
    let mut p = vec![0.0; k];
    for &s in samples {
        assert!(s < k, "sample {s} out of range {k}");
        p[s] += 1.0;
    }
    let n = samples.len() as f64;
    if n > 0.0 {
        for v in &mut p {
            *v /= n;
        }
    }
    p
}

/// Hockey-stick divergence `sup_T (P(T) − e^eps · Q(T))` for discrete
/// distributions — the exact `delta` for which `(eps, delta)`-closeness
/// holds. Symmetrize externally if needed.
pub fn hockey_stick(p: &[f64], q: &[f64], eps: f64) -> f64 {
    assert_eq!(p.len(), q.len());
    let e = eps.exp();
    p.iter().zip(q).map(|(&a, &b)| (a - e * b).max(0.0)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_basics() {
        assert_eq!(tv_distance(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(tv_distance(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((tv_distance(&[0.5, 0.5], &[0.75, 0.25]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn kl_nonnegative_and_zero_iff_equal() {
        let p = [0.2, 0.3, 0.5];
        let q = [0.3, 0.3, 0.4];
        assert!(kl_divergence(&p, &q) > 0.0);
        assert_eq!(kl_divergence(&p, &p), 0.0);
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn pinsker_inequality_spot_check() {
        // TV <= sqrt(KL/2).
        let p = [0.1, 0.2, 0.3, 0.4];
        let q = [0.25, 0.25, 0.25, 0.25];
        let tv = tv_distance(&p, &q);
        let kl = kl_divergence(&p, &q);
        assert!(tv <= (kl / 2.0).sqrt() + 1e-12);
    }

    #[test]
    fn entropy_uniform_is_log() {
        let p = vec![0.25; 4];
        assert!((entropy_bits(&p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mi_independent_is_zero() {
        // X uniform bit, Y uniform bit, independent.
        let joint = vec![vec![0.25, 0.25], vec![0.25, 0.25]];
        assert!(mutual_information_bits(&joint) < 1e-12);
    }

    #[test]
    fn mi_identity_is_entropy() {
        let joint = vec![vec![0.5, 0.0], vec![0.0, 0.5]];
        assert!((mutual_information_bits(&joint) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mi_of_randomized_response() {
        // Binary RR with flip prob q: I(X;Y) = 1 - H(q) for uniform X.
        let eps = 1.0f64;
        let keep = eps.exp() / (eps.exp() + 1.0);
        let joint = vec![
            vec![0.5 * keep, 0.5 * (1.0 - keep)],
            vec![0.5 * (1.0 - keep), 0.5 * keep],
        ];
        let want = 1.0 - crate::special::binary_entropy(keep);
        assert!((mutual_information_bits(&joint) - want).abs() < 1e-10);
    }

    #[test]
    fn chain_rule_h_given_y_plus_mi() {
        // H(X) = I(X;Y) + H(X|Y).
        let joint = vec![vec![0.3, 0.1], vec![0.2, 0.4]];
        let px = [0.4, 0.6];
        let hx = entropy_bits(&px);
        let mi = mutual_information_bits(&joint);
        let hxy = conditional_entropy_bits(&joint);
        assert!((hx - mi - hxy).abs() < 1e-10);
    }

    #[test]
    fn hockey_stick_zero_for_close_pairs() {
        let eps = 0.5f64;
        // q and p within e^eps pointwise => delta 0.
        let q = [0.5, 0.5];
        let p = [0.6, 0.4];
        assert_eq!(hockey_stick(&p, &q, eps), 0.0);
        // Disjoint supports => delta = 1 at eps = 0... (p mass where q none)
        assert!((hockey_stick(&[1.0, 0.0], &[0.0, 1.0], 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_distribution_counts() {
        let p = empirical_distribution(&[0, 1, 1, 3], 4);
        assert_eq!(p, vec![0.25, 0.5, 0.0, 0.25]);
    }
}
