//! Deterministic seed derivation.
//!
//! Protocols in this workspace publish their entire public randomness as a
//! single `u64` seed (matching the `O~(1)` public-randomness row of the
//! paper's Table 1). Every component derives its own independent stream
//! from that seed with a SplitMix64 hop, so adding components never
//! perturbs existing streams and all runs are exactly reproducible.

use crate::sampler::{ClientCoins, ClientRng};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The SplitMix64 sequence increment (Weyl constant).
pub(crate) const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The label pre-multiplier of [`derive_seed`] (an odd constant so the
/// multiply is a bijection on labels).
pub(crate) const LABEL_MUL: u64 = 0xA24B_AED4_963E_E407;

/// SplitMix64 finalizer — a high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(SPLITMIX_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from a parent seed and a component label.
///
/// Labels are small integers or hashed strings; derivation is collision
/// resistant enough for distinct small labels (full 64-bit mixing).
pub fn derive_seed(parent: u64, label: u64) -> u64 {
    splitmix64(parent ^ splitmix64(label.wrapping_mul(LABEL_MUL)))
}

/// A fast, seedable RNG for simulations (not cryptographic — the privacy
/// *analysis* treats randomizer coins as perfect; see README caveats).
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// The per-user client coin stream of the batch execution contract.
///
/// Every driver (serial or batched) gives user `i` the stream
/// `client_rng(client_seed, i)`, so a user's coins depend only on the run
/// seed and her own index — never on chunk boundaries, thread count, or
/// the order other users are processed. This is what makes
/// `run_heavy_hitter_batched` bit-for-bit equivalent to the serial runner
/// at any parallelism.
///
/// The stream is SplitMix64 from `derive_seed(client_seed, user_index)`
/// (see [`crate::sampler::ClientRng`]); batch encoders amortize the
/// derivation over user runs with [`crate::sampler::ClientCoins`], of
/// which this function is the single-user entry point.
pub fn client_rng(client_seed: u64, user_index: u64) -> ClientRng {
    ClientCoins::new(client_seed).user(user_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
    }

    #[test]
    fn distinct_labels_distinct_seeds() {
        let parent = 0xDEAD_BEEF;
        let mut seen = std::collections::HashSet::new();
        for label in 0..10_000u64 {
            assert!(
                seen.insert(derive_seed(parent, label)),
                "collision at {label}"
            );
        }
    }

    #[test]
    fn distinct_parents_distinct_streams() {
        let a: Vec<u64> = {
            let mut r = seeded_rng(derive_seed(1, 7));
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = seeded_rng(derive_seed(2, 7));
            (0..8).map(|_| r.gen()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_avalanche_sanity() {
        // One-bit input flips should change ~half the output bits.
        let x = splitmix64(0x1234_5678);
        let y = splitmix64(0x1234_5679);
        let diff = (x ^ y).count_ones();
        assert!((16..=48).contains(&diff), "poor avalanche: {diff} bits");
    }
}
