//! Exact binomial distribution computations in log space.
//!
//! Section 5 of the paper partitions the output space of k-fold randomized
//! response into Hamming shells around the input (`G_x`, `B`, `R` in
//! Theorem 5.1). Sampling uniformly from the *complement* of a shell and
//! evaluating exact shell probabilities are the workhorses of the
//! [`hh_structure`](../hh_structure) implementation; both reduce to exact
//! binomial tail computations, implemented here without any sampling loops
//! whose running time would depend on the (possibly tiny) shell mass.

use crate::special::{ln_binomial, log_sum_exp};
use rand::Rng;

/// `ln Pr[Bin(n, p) = k]`.
pub fn ln_pmf(n: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
    if k > n {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p == 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    ln_binomial(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln_1p_adjusted()
}

// (1-p).ln() computed as ln_1p(-p) for accuracy near p = 0.
trait Ln1pAdjusted {
    fn ln_1p_adjusted(self) -> f64;
}
impl Ln1pAdjusted for f64 {
    #[inline]
    fn ln_1p_adjusted(self) -> f64 {
        // self is (1 - p); recover -p to use ln_1p.
        (self - 1.0).ln_1p()
    }
}

/// `Pr[Bin(n, p) = k]`.
pub fn pmf(n: u64, p: f64, k: u64) -> f64 {
    ln_pmf(n, p, k).exp()
}

/// `ln Pr[Bin(n, p) <= k]` by direct log-space summation.
///
/// O(k) time; every use in the workspace has `n` at most a few thousand.
pub fn ln_cdf(n: u64, p: f64, k: u64) -> f64 {
    if k >= n {
        return 0.0;
    }
    let terms: Vec<f64> = (0..=k).map(|j| ln_pmf(n, p, j)).collect();
    log_sum_exp(&terms).min(0.0)
}

/// `ln Pr[Bin(n, p) >= k]`.
pub fn ln_sf(n: u64, p: f64, k: u64) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let terms: Vec<f64> = (k..=n).map(|j| ln_pmf(n, p, j)).collect();
    log_sum_exp(&terms).min(0.0)
}

/// `ln Pr[lo <= Bin(n, p) <= hi]` (inclusive interval).
pub fn ln_interval(n: u64, p: f64, lo: u64, hi: u64) -> f64 {
    if lo > hi || lo > n {
        return f64::NEG_INFINITY;
    }
    let hi = hi.min(n);
    let terms: Vec<f64> = (lo..=hi).map(|j| ln_pmf(n, p, j)).collect();
    log_sum_exp(&terms).min(0.0)
}

/// Exact sampler for `Bin(n, p)` restricted to a set of allowed outcomes.
///
/// Builds the conditional distribution over `allowed` values once and
/// samples by inverse transform on the normalized weights. This is the
/// primitive behind the Theorem 5.1 algorithm's "uniform element outside
/// `G_x`" branch: conditioning a binomial weight profile on the complement
/// of a Hamming shell. Exact — no rejection, so the cost is independent of
/// the conditional mass.
#[derive(Debug, Clone)]
pub struct ConditionalBinomial {
    values: Vec<u64>,
    /// Cumulative probabilities over `values`, normalized to end at 1.
    cum: Vec<f64>,
}

impl ConditionalBinomial {
    /// Condition `Bin(n, p)` on the outcome lying in `allowed`.
    ///
    /// Panics if the allowed set has zero probability.
    pub fn new(n: u64, p: f64, allowed: impl IntoIterator<Item = u64>) -> Self {
        let values: Vec<u64> = allowed.into_iter().filter(|&v| v <= n).collect();
        assert!(!values.is_empty(), "conditioning on empty support");
        let lw: Vec<f64> = values.iter().map(|&v| ln_pmf(n, p, v)).collect();
        let total = log_sum_exp(&lw);
        assert!(
            total > f64::NEG_INFINITY,
            "conditioning on a zero-probability set"
        );
        let mut cum = Vec::with_capacity(values.len());
        let mut acc = 0.0;
        for &l in &lw {
            acc += (l - total).exp();
            cum.push(acc);
        }
        // Guard against rounding: force the last entry to cover 1.0.
        *cum.last_mut().expect("nonempty") = 1.0;
        Self { values, cum }
    }

    /// Draw one conditioned outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let idx = self.cum.partition_point(|&c| c < u);
        self.values[idx.min(self.values.len() - 1)]
    }

    /// Exact conditional probability of a value (0 if not in the support).
    pub fn prob(&self, v: u64) -> f64 {
        match self.values.binary_search(&v) {
            Ok(i) => {
                let lo = if i == 0 { 0.0 } else { self.cum[i - 1] };
                self.cum[i] - lo
            }
            Err(_) => 0.0,
        }
    }

    /// The support (sorted if constructed from a sorted iterator).
    pub fn support(&self) -> &[u64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3f64), (57, 0.5), (200, 0.01), (31, 0.999)] {
            let total: f64 = (0..=n).map(|k| pmf(n, p, k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p}: total={total}");
        }
    }

    #[test]
    fn pmf_degenerate_endpoints() {
        assert_eq!(pmf(10, 0.0, 0), 1.0);
        assert_eq!(pmf(10, 0.0, 1), 0.0);
        assert_eq!(pmf(10, 1.0, 10), 1.0);
        assert_eq!(pmf(10, 1.0, 9), 0.0);
    }

    #[test]
    fn cdf_plus_sf_consistent() {
        let (n, p) = (40u64, 0.37);
        for k in 1..=n {
            let below = ln_cdf(n, p, k - 1).exp();
            let above = ln_sf(n, p, k).exp();
            assert!(
                (below + above - 1.0).abs() < 1e-10,
                "k={k}: {below} + {above}"
            );
        }
    }

    #[test]
    fn interval_matches_sum() {
        let (n, p) = (25u64, 0.6);
        let direct: f64 = (5..=12).map(|k| pmf(n, p, k)).sum();
        assert!((ln_interval(n, p, 5, 12).exp() - direct).abs() < 1e-12);
    }

    #[test]
    fn interval_empty_is_zero() {
        assert_eq!(ln_interval(10, 0.5, 7, 3), f64::NEG_INFINITY);
        assert_eq!(ln_interval(10, 0.5, 11, 20), f64::NEG_INFINITY);
    }

    #[test]
    fn conditional_probabilities_renormalize() {
        let n = 30u64;
        let p = 0.4;
        // Condition on the complement of [8, 16].
        let allowed: Vec<u64> = (0..=n).filter(|&k| !(8..=16).contains(&k)).collect();
        let cond = ConditionalBinomial::new(n, p, allowed.iter().copied());
        let mass_allowed: f64 = allowed.iter().map(|&k| pmf(n, p, k)).sum();
        for &k in &allowed {
            let expect = pmf(n, p, k) / mass_allowed;
            assert!(
                (cond.prob(k) - expect).abs() < 1e-9,
                "k={k}: {} vs {expect}",
                cond.prob(k)
            );
        }
        assert_eq!(cond.prob(10), 0.0);
    }

    #[test]
    fn conditional_sampler_hits_only_support() {
        let mut rng = SmallRng::seed_from_u64(7);
        let cond = ConditionalBinomial::new(20, 0.5, [0u64, 1, 19, 20]);
        for _ in 0..2000 {
            let v = cond.sample(&mut rng);
            assert!([0u64, 1, 19, 20].contains(&v));
        }
    }

    #[test]
    fn conditional_sampler_frequencies_match() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 12u64;
        let allowed: Vec<u64> = (0..=n).collect();
        let cond = ConditionalBinomial::new(n, 0.5, allowed);
        let trials = 200_000;
        let mut counts = vec![0u64; (n + 1) as usize];
        for _ in 0..trials {
            counts[cond.sample(&mut rng) as usize] += 1;
        }
        for k in 0..=n {
            let emp = counts[k as usize] as f64 / trials as f64;
            let exact = pmf(n, 0.5, k);
            // 5-sigma binomial tolerance.
            let tol = 5.0 * (exact * (1.0 - exact) / trials as f64).sqrt() + 1e-4;
            assert!(
                (emp - exact).abs() < tol,
                "k={k}: empirical {emp} vs exact {exact}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn conditional_empty_support_panics() {
        let _ = ConditionalBinomial::new(10, 0.5, std::iter::empty());
    }
}
