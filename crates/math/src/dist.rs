//! Discrete distribution samplers.
//!
//! Exact samplers with no external distribution crates: Walker alias
//! method for arbitrary finite pmfs, exact binomial/Poisson samplers, and
//! a rejection-based Zipf sampler for (possibly huge) power-law domains.

use rand::Rng;

/// Walker alias method: O(n) construction, O(1) sampling from an arbitrary
/// finite distribution.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from (not necessarily normalized) nonnegative weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table supports up to 2^32 outcomes"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite value"
        );
        let n = weights.len();
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0, "negative weight {w}");
                w * n as f64 / total
            })
            .collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut prob = vec![1.0f64; n];
        let mut alias = vec![0u32; n];
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (either list) get probability 1 (numerical safety).
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// Exact binomial sampler.
///
/// Uses inverse-transform from the mode-centred pmf for small `n·min(p,1−p)`
/// and falls back to summing Bernoulli draws otherwise. Exact (up to f64
/// pmf evaluation), no normal approximation — important for the
/// statistical tests that compare against exact binomial tails.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p));
    if p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if n <= 4096 {
        // Direct Bernoulli counting: exact and fast enough at this size.
        let mut c = 0u64;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                c += 1;
            }
        }
        return c;
    }
    // Inverse transform walking outward from the mode. The pmf recurrence
    // pmf(k+1)/pmf(k) = (n-k)/(k+1) * p/(1-p) keeps this O(sqrt(n p (1-p)))
    // expected steps.
    let mode = ((n as f64 + 1.0) * p).floor().min(n as f64) as u64;
    let ln_pmf_mode = crate::binomial::ln_pmf(n, p, mode);
    let pm = ln_pmf_mode.exp();
    let ratio = p / (1.0 - p);
    let mut u = rng.gen::<f64>();
    // Walk out symmetrically: k = mode, mode±1, mode±2, ...
    let mut lo_k = mode;
    let mut hi_k = mode;
    let mut lo_p = pm;
    let mut hi_p = pm;
    u -= pm;
    if u <= 0.0 {
        return mode;
    }
    loop {
        let can_hi = hi_k < n;
        let can_lo = lo_k > 0;
        if can_hi {
            hi_p *= (n - hi_k) as f64 / (hi_k + 1) as f64 * ratio;
            hi_k += 1;
            u -= hi_p;
            if u <= 0.0 {
                return hi_k;
            }
        }
        if can_lo {
            lo_p *= lo_k as f64 / ((n - lo_k + 1) as f64) / ratio;
            lo_k -= 1;
            u -= lo_p;
            if u <= 0.0 {
                return lo_k;
            }
        }
        if !can_hi && !can_lo {
            // Numerical leftover mass; return the mode.
            return mode;
        }
    }
}

/// Exact Poisson sampler (Knuth for small mu, mode-centred inversion above).
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mu: f64) -> u64 {
    assert!(mu >= 0.0);
    if mu == 0.0 {
        return 0;
    }
    if mu < 30.0 {
        // Knuth's product-of-uniforms method.
        let l = (-mu).exp();
        let mut k = 0u64;
        let mut prod = rng.gen::<f64>();
        while prod > l {
            k += 1;
            prod *= rng.gen::<f64>();
        }
        return k;
    }
    // Mode-centred inversion, mirroring sample_binomial.
    let mode = mu.floor() as u64;
    let pm = crate::poisson::ln_pmf(mu, mode).exp();
    let mut u = rng.gen::<f64>() - pm;
    if u <= 0.0 {
        return mode;
    }
    let mut lo_k = mode;
    let mut hi_k = mode;
    let mut lo_p = pm;
    let mut hi_p = pm;
    loop {
        hi_p *= mu / (hi_k + 1) as f64;
        hi_k += 1;
        u -= hi_p;
        if u <= 0.0 {
            return hi_k;
        }
        if lo_k > 0 {
            lo_p *= lo_k as f64 / mu;
            lo_k -= 1;
            u -= lo_p;
            if u <= 0.0 {
                return lo_k;
            }
        }
        if hi_p < 1e-300 && lo_k == 0 {
            return mode;
        }
    }
}

/// Zipf(s) sampler over `{0, 1, …, n−1}` (rank 1 is the heaviest element,
/// returned as index 0).
///
/// Uses the standard rejection method from a Pareto envelope, so it works
/// for domains far too large for an alias table (e.g. 2^40 "URLs").
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// Precomputed constants of the rejection sampler.
    t: f64,
}

impl Zipf {
    /// `n` outcomes with exponent `s > 0`, `s != 1` handled uniformly well.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1);
        assert!(s > 0.0, "Zipf exponent must be positive");
        // t = integral envelope constant (see Devroye, "Non-Uniform Random
        // Variate Generation", ch. X.6).
        let t = if (s - 1.0).abs() < 1e-12 {
            1.0 + (n as f64).ln()
        } else {
            ((n as f64).powf(1.0 - s) - s) / (1.0 - s)
        };
        Self { n, s, t }
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// The exponent `s` (for tabulated fast paths that rebuild the pmf).
    pub fn exponent(&self) -> f64 {
        self.s
    }

    fn inv_envelope_cdf(&self, u: f64) -> f64 {
        // Inverse of the envelope cdf built from the density 1 on [0,1] and
        // x^{-s} on [1, n].
        let ut = u * self.t;
        if ut <= 1.0 {
            ut
        } else if (self.s - 1.0).abs() < 1e-12 {
            (ut - 1.0 + 1.0f64.ln()).exp().min(self.n as f64)
        } else {
            (1.0 + (1.0 - self.s) * (ut - 1.0)).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draw a sample in `[0, n)`; ranks are zero-based.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = rng.gen::<f64>();
            let x = self.inv_envelope_cdf(u);
            let k = x.ceil().max(1.0).min(self.n as f64);
            // Acceptance ratio for the discrete pmf under the envelope.
            let ratio = (k.powf(-self.s)) / (x.max(1.0).powf(-self.s));
            if rng.gen::<f64>() <= ratio {
                return k as u64 - 1;
            }
        }
    }

    /// Exact normalized pmf of rank `k` (zero-based), O(n) normalization —
    /// only intended for test assertions on small domains.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k < self.n);
        let z: f64 = (1..=self.n).map(|j| (j as f64).powf(-self.s)).sum();
        ((k + 1) as f64).powf(-self.s) / z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn alias_matches_weights() {
        let mut rng = SmallRng::seed_from_u64(42);
        let weights = [1.0, 3.0, 6.0, 0.0, 10.0];
        let table = AliasTable::new(&weights);
        let trials = 400_000usize;
        let mut counts = [0u64; 5];
        for _ in 0..trials {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let emp = counts[i] as f64 / trials as f64;
            let tol = 5.0 * (expect * (1.0 - expect) / trials as f64).sqrt() + 1e-4;
            assert!((emp - expect).abs() < tol, "i={i}: {emp} vs {expect}");
        }
        assert_eq!(counts[3], 0, "zero-weight outcome was sampled");
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn alias_rejects_negative() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    fn binomial_sampler_moments() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &(n, p) in &[(100u64, 0.3f64), (20_000, 0.01), (50_000, 0.5)] {
            let trials = 2_000;
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..trials {
                let x = sample_binomial(&mut rng, n, p) as f64;
                sum += x;
                sumsq += x * x;
            }
            let mean = sum / trials as f64;
            let var = sumsq / trials as f64 - mean * mean;
            let (em, ev) = (n as f64 * p, n as f64 * p * (1.0 - p));
            assert!(
                (mean - em).abs() < 6.0 * (ev / trials as f64).sqrt() + 0.5,
                "n={n} p={p}: mean {mean} vs {em}"
            );
            assert!(
                (var - ev).abs() < 0.25 * ev + 1.0,
                "n={n} p={p}: var {var} vs {ev}"
            );
        }
    }

    #[test]
    fn binomial_sampler_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
    }

    #[test]
    fn poisson_sampler_moments() {
        let mut rng = SmallRng::seed_from_u64(2);
        for &mu in &[0.5f64, 7.0, 120.0] {
            let trials = 4_000;
            let mut sum = 0.0;
            for _ in 0..trials {
                sum += sample_poisson(&mut rng, mu) as f64;
            }
            let mean = sum / trials as f64;
            assert!(
                (mean - mu).abs() < 6.0 * (mu / trials as f64).sqrt() + 0.05,
                "mu={mu}: mean {mean}"
            );
        }
    }

    #[test]
    fn zipf_pmf_shape() {
        let mut rng = SmallRng::seed_from_u64(3);
        let z = Zipf::new(50, 1.2);
        let trials = 300_000usize;
        let mut counts = vec![0u64; 50];
        for _ in 0..trials {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for k in [0u64, 1, 5, 20, 49] {
            let expect = z.pmf(k);
            let emp = counts[k as usize] as f64 / trials as f64;
            let tol = 6.0 * (expect / trials as f64).sqrt() + 2e-3;
            assert!(
                (emp - expect).abs() < tol,
                "rank {k}: {emp} vs {expect} (tol {tol})"
            );
        }
    }

    #[test]
    fn zipf_huge_domain_is_cheap() {
        // Rejection sampling must not depend on domain size.
        let mut rng = SmallRng::seed_from_u64(4);
        let z = Zipf::new(1 << 40, 1.05);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!(v < 1 << 40);
        }
    }

    #[test]
    fn zipf_s_equal_one() {
        let mut rng = SmallRng::seed_from_u64(6);
        let z = Zipf::new(100, 1.0);
        let trials = 200_000usize;
        let mut counts = vec![0u64; 100];
        for _ in 0..trials {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let expect0 = z.pmf(0);
        let emp0 = counts[0] as f64 / trials as f64;
        assert!((emp0 - expect0).abs() < 6.0 * (expect0 / trials as f64).sqrt() + 2e-3);
    }
}
