//! Arithmetic modulo the Mersenne prime `p = 2^61 − 1`.
//!
//! Mersenne structure makes reduction branch-light: a 122-bit product
//! reduces with two shifts and one conditional subtraction. Elements are
//! canonical `u64` values in `[0, p)`.

/// The Mersenne prime `2^61 − 1`.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// Thin namespace for field operations (all associated functions; the
/// field has no per-instance state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimeField;

impl PrimeField {
    /// Reduce an arbitrary u64 into `[0, p)`.
    #[inline]
    pub fn reduce64(x: u64) -> u64 {
        let r = (x & MERSENNE_P) + (x >> 61);
        if r >= MERSENNE_P {
            r - MERSENNE_P
        } else {
            r
        }
    }

    /// Reduce a u128 (e.g. a product of two field elements) into `[0, p)`.
    #[inline]
    pub fn reduce128(x: u128) -> u64 {
        // x = hi·2^61 + lo with lo < 2^61; since 2^61 ≡ 1 (mod p),
        // x ≡ hi + lo. hi < 2^67 here so one more folding pass suffices.
        let lo = (x as u64) & MERSENNE_P;
        let hi = (x >> 61) as u64;
        Self::reduce64(Self::reduce64(hi).wrapping_add(lo))
    }

    /// Addition mod p.
    #[inline]
    pub fn add(a: u64, b: u64) -> u64 {
        debug_assert!(a < MERSENNE_P && b < MERSENNE_P);
        let s = a + b; // < 2^62, no overflow
        if s >= MERSENNE_P {
            s - MERSENNE_P
        } else {
            s
        }
    }

    /// Subtraction mod p.
    #[inline]
    pub fn sub(a: u64, b: u64) -> u64 {
        debug_assert!(a < MERSENNE_P && b < MERSENNE_P);
        if a >= b {
            a - b
        } else {
            a + MERSENNE_P - b
        }
    }

    /// Multiplication mod p.
    #[inline]
    pub fn mul(a: u64, b: u64) -> u64 {
        debug_assert!(a < MERSENNE_P && b < MERSENNE_P);
        Self::reduce128(u128::from(a) * u128::from(b))
    }

    /// Exponentiation by squaring.
    pub fn pow(mut base: u64, mut exp: u64) -> u64 {
        base = Self::reduce64(base);
        let mut acc = 1u64;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = Self::mul(acc, base);
            }
            base = Self::mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat (`a^{p−2}`); panics on zero.
    pub fn inv(a: u64) -> u64 {
        assert!(a != 0, "zero has no inverse");
        Self::pow(a, MERSENNE_P - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_elem(rng: &mut SmallRng) -> u64 {
        rng.gen_range(0..MERSENNE_P)
    }

    #[test]
    fn reduce64_identities() {
        assert_eq!(PrimeField::reduce64(0), 0);
        assert_eq!(PrimeField::reduce64(MERSENNE_P), 0);
        assert_eq!(PrimeField::reduce64(MERSENNE_P + 5), 5);
        assert_eq!(PrimeField::reduce64(u64::MAX), u64::MAX % MERSENNE_P);
    }

    #[test]
    fn reduce128_matches_naive() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u128 = (u128::from(rng.gen::<u64>()) << 40) ^ u128::from(rng.gen::<u64>());
            let want = (x % u128::from(MERSENNE_P)) as u64;
            assert_eq!(PrimeField::reduce128(x), want);
        }
    }

    #[test]
    fn field_axioms_randomized() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..2_000 {
            let (a, b, c) = (
                rand_elem(&mut rng),
                rand_elem(&mut rng),
                rand_elem(&mut rng),
            );
            // Commutativity / associativity / distributivity.
            assert_eq!(PrimeField::add(a, b), PrimeField::add(b, a));
            assert_eq!(PrimeField::mul(a, b), PrimeField::mul(b, a));
            assert_eq!(
                PrimeField::add(PrimeField::add(a, b), c),
                PrimeField::add(a, PrimeField::add(b, c))
            );
            assert_eq!(
                PrimeField::mul(PrimeField::mul(a, b), c),
                PrimeField::mul(a, PrimeField::mul(b, c))
            );
            assert_eq!(
                PrimeField::mul(a, PrimeField::add(b, c)),
                PrimeField::add(PrimeField::mul(a, b), PrimeField::mul(a, c))
            );
            // Subtraction inverts addition.
            assert_eq!(PrimeField::sub(PrimeField::add(a, b), b), a);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let a = rng.gen_range(1..MERSENNE_P);
            assert_eq!(PrimeField::mul(a, PrimeField::inv(a)), 1);
        }
    }

    #[test]
    fn fermat_little_theorem() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..50 {
            let a = rng.gen_range(1..MERSENNE_P);
            assert_eq!(PrimeField::pow(a, MERSENNE_P - 1), 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn zero_inverse_panics() {
        let _ = PrimeField::inv(0);
    }
}
