//! `k`-wise independent hashing via random polynomials over `F_p`.

use crate::field::{PrimeField, MERSENNE_P};
use hh_math::rng::{derive_seed, seeded_rng};
use rand::Rng;

/// A `k`-wise independent hash function `F_p → [range]`.
///
/// Realized as a uniformly random polynomial of degree `k − 1` over
/// `F_p = GF(2^61 − 1)`; over the field this family is *exactly* `k`-wise
/// independent, and the final `mod range` step introduces at most `range/p`
/// pointwise bias.
///
/// Inputs must be below `p = 2^61 − 1` (asserted); every domain in the
/// workspace satisfies this.
#[derive(Debug, Clone)]
pub struct KWiseHash {
    /// Polynomial coefficients, constant term first.
    coeffs: Vec<u64>,
    range: u64,
}

impl KWiseHash {
    /// Sample a fresh `k`-wise independent function into `[range]`.
    pub fn new(seed: u64, k: usize, range: u64) -> Self {
        assert!(k >= 1, "independence level must be >= 1");
        assert!(range >= 1, "range must be nonempty");
        assert!(
            range <= 1 << 48,
            "range {range} too large for negligible modular bias"
        );
        let mut rng = seeded_rng(derive_seed(seed, 0x6B77_6973_6531)); // "kwise1"
        let coeffs = (0..k).map(|_| rng.gen_range(0..MERSENNE_P)).collect();
        Self { coeffs, range }
    }

    /// Independence level `k`.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Output range size.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Raw polynomial evaluation in `F_p` (before range reduction).
    #[inline]
    pub fn eval_field(&self, x: u64) -> u64 {
        assert!(x < MERSENNE_P, "input {x} outside F_p domain");
        // Horner's rule, highest coefficient first.
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = PrimeField::add(PrimeField::mul(acc, x), c);
        }
        acc
    }

    /// Hash into `[0, range)`.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        self.eval_field(x) % self.range
    }
}

/// Pairwise independent hash (`k = 2`), the `h_m` functions of the paper.
#[derive(Debug, Clone)]
pub struct PairwiseHash {
    inner: KWiseHash,
}

impl PairwiseHash {
    /// Sample a pairwise independent function into `[range]`.
    pub fn new(seed: u64, range: u64) -> Self {
        Self {
            inner: KWiseHash::new(seed, 2, range),
        }
    }

    /// Output range size.
    pub fn range(&self) -> u64 {
        self.inner.range()
    }

    /// Hash into `[0, range)`.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        self.inner.hash(x)
    }
}

/// Pairwise independent ±1 sign hash (used by count-sketch style oracles).
#[derive(Debug, Clone)]
pub struct SignHash {
    inner: KWiseHash,
}

impl SignHash {
    /// Sample a fresh sign hash.
    pub fn new(seed: u64) -> Self {
        Self {
            // Range 2^32 then take a bit: avoids the tiny parity bias of
            // `mod 2` on a field of odd order.
            inner: KWiseHash::new(seed, 2, 1 << 32),
        }
    }

    /// Returns −1 or +1.
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        if self.inner.hash(x) & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let h1 = KWiseHash::new(7, 4, 1000);
        let h2 = KWiseHash::new(7, 4, 1000);
        for x in 0..100u64 {
            assert_eq!(h1.hash(x), h2.hash(x));
        }
        let h3 = KWiseHash::new(8, 4, 1000);
        assert!((0..100u64).any(|x| h1.hash(x) != h3.hash(x)));
    }

    #[test]
    fn outputs_in_range() {
        let h = KWiseHash::new(3, 5, 17);
        for x in 0..10_000u64 {
            assert!(h.hash(x) < 17);
        }
    }

    #[test]
    fn marginal_uniformity() {
        // For a fixed input x, the hash value over random seeds should be
        // ~uniform on the range.
        let range = 8u64;
        let x = 123_456u64;
        let mut counts = vec![0u64; range as usize];
        let trials = 40_000u64;
        for seed in 0..trials {
            counts[KWiseHash::new(seed, 2, range).hash(x) as usize] += 1;
        }
        let expect = trials as f64 / range as f64;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs();
            assert!(
                dev < 6.0 * expect.sqrt(),
                "value {v}: count {c}, expect {expect}"
            );
        }
    }

    #[test]
    fn pairwise_collision_rate() {
        // Pr[h(x) = h(y)] ≈ 1/range for x != y, averaged over seeds.
        let range = 64u64;
        let trials = 30_000u64;
        let mut coll = 0u64;
        for seed in 0..trials {
            let h = PairwiseHash::new(seed, range);
            if h.hash(10) == h.hash(999) {
                coll += 1;
            }
        }
        let rate = coll as f64 / trials as f64;
        let expect = 1.0 / range as f64;
        assert!(
            (rate - expect).abs() < 6.0 * (expect / trials as f64).sqrt() + 1e-3,
            "collision rate {rate} vs {expect}"
        );
    }

    #[test]
    fn pairwise_joint_uniformity() {
        // (h(x), h(y)) jointly uniform on [r]×[r] over seeds: the defining
        // property of pairwise independence.
        let r = 4u64;
        let trials = 64_000u64;
        let mut joint = vec![0u64; (r * r) as usize];
        for seed in 0..trials {
            let h = PairwiseHash::new(seed, r);
            joint[(h.hash(5) * r + h.hash(77)) as usize] += 1;
        }
        let expect = trials as f64 / (r * r) as f64;
        for (cell, &c) in joint.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "cell {cell}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn four_wise_third_moment_vanishes() {
        // For 4-wise independent ±1 signs s(x), E[s(a)s(b)s(c)] = 0 for
        // distinct a, b, c. Estimate over seeds.
        let trials = 60_000u64;
        let mut sum: i64 = 0;
        for seed in 0..trials {
            let h = KWiseHash::new(seed, 4, 1 << 32);
            let s = |x: u64| if h.hash(x) & 1 == 0 { 1i64 } else { -1 };
            sum += s(1) * s(2) * s(3);
        }
        let m = sum as f64 / trials as f64;
        assert!(
            m.abs() < 6.0 / (trials as f64).sqrt() + 0.01,
            "third moment {m}"
        );
    }

    #[test]
    fn sign_hash_balanced() {
        let trials = 40_000u64;
        let mut sum = 0i64;
        for seed in 0..trials {
            sum += SignHash::new(seed).sign(42);
        }
        assert!((sum as f64 / trials as f64).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "outside F_p domain")]
    fn rejects_out_of_field_inputs() {
        let h = KWiseHash::new(1, 2, 10);
        let _ = h.hash(u64::MAX);
    }
}
