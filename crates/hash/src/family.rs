//! Seeded factories for indexed collections of hash functions.
//!
//! A protocol's public randomness is a single `u64`; each named component
//! (the `M` pairwise functions `h_m`, the group hash `g`, per-group oracle
//! hashes, …) derives an independent stream from it. The derivation is
//! stable: component `i` of family `label` is the same function regardless
//! of which other components were instantiated.

use crate::kwise::{KWiseHash, PairwiseHash, SignHash};
use hh_math::rng::derive_seed;

/// Factory deriving independent hash functions from one master seed.
#[derive(Debug, Clone, Copy)]
pub struct HashFamily {
    master: u64,
}

impl HashFamily {
    /// Wrap a master public-randomness seed.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed (for re-publication to users).
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Seed of component `index` of the family labelled `label`.
    pub fn component_seed(&self, label: u64, index: u64) -> u64 {
        derive_seed(derive_seed(self.master, label), index)
    }

    /// The `index`-th pairwise independent hash into `[range]` under
    /// `label`.
    pub fn pairwise(&self, label: u64, index: u64, range: u64) -> PairwiseHash {
        PairwiseHash::new(self.component_seed(label, index), range)
    }

    /// The `index`-th `k`-wise independent hash into `[range]`.
    pub fn kwise(&self, label: u64, index: u64, k: usize, range: u64) -> KWiseHash {
        KWiseHash::new(self.component_seed(label, index), k, range)
    }

    /// The `index`-th ±1 sign hash.
    pub fn sign(&self, label: u64, index: u64) -> SignHash {
        SignHash::new(self.component_seed(label, index))
    }
}

/// Component labels used across the workspace (kept in one place so crates
/// can never collide on derivation streams).
pub mod labels {
    /// Per-coordinate pairwise hashes `h_m` of PrivateExpanderSketch.
    pub const SKETCH_COORD_HASH: u64 = 1;
    /// The `(C_g log|X|)`-wise group hash `g`.
    pub const SKETCH_GROUP_HASH: u64 = 2;
    /// User partition into `I_1..I_M`.
    pub const SKETCH_PARTITION: u64 = 3;
    /// Hashtogram per-group bucket hashes.
    pub const HASHTOGRAM_BUCKET: u64 = 4;
    /// Hashtogram user-group assignment.
    pub const HASHTOGRAM_ASSIGN: u64 = 5;
    /// Bassily–Smith projection rows.
    pub const BS_PROJECTION: u64 = 6;
    /// Bitstogram repetitions.
    pub const BITSTOGRAM_REP: u64 = 7;
    /// GenProt public samples `y_{i,t}`.
    pub const GENPROT_PUBLIC: u64 = 8;
    /// Expander construction attempts.
    pub const EXPANDER: u64 = 9;
    /// Inner-oracle randomizer streams.
    pub const ORACLE_REPORT: u64 = 10;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_are_stable() {
        let f = HashFamily::new(99);
        let a1 = f.pairwise(labels::SKETCH_COORD_HASH, 3, 64);
        let a2 = f.pairwise(labels::SKETCH_COORD_HASH, 3, 64);
        for x in 0..50u64 {
            assert_eq!(a1.hash(x), a2.hash(x));
        }
    }

    #[test]
    fn different_indices_differ() {
        let f = HashFamily::new(99);
        let a = f.pairwise(labels::SKETCH_COORD_HASH, 0, 1 << 20);
        let b = f.pairwise(labels::SKETCH_COORD_HASH, 1, 1 << 20);
        assert!((0..200u64).any(|x| a.hash(x) != b.hash(x)));
    }

    #[test]
    fn different_labels_differ() {
        let f = HashFamily::new(99);
        let a = f.pairwise(labels::SKETCH_COORD_HASH, 0, 1 << 20);
        let b = f.pairwise(labels::SKETCH_GROUP_HASH, 0, 1 << 20);
        assert!((0..200u64).any(|x| a.hash(x) != b.hash(x)));
    }

    #[test]
    fn kwise_independence_level_respected() {
        let f = HashFamily::new(5);
        let h = f.kwise(labels::SKETCH_GROUP_HASH, 0, 24, 256);
        assert_eq!(h.independence(), 24);
        assert_eq!(h.range(), 256);
    }
}
