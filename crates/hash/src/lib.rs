//! Limited-independence hash families over the Mersenne prime field
//! `F_p`, `p = 2^61 − 1`.
//!
//! The public randomness of `PrivateExpanderSketch` (paper §3.3) consists
//! of *pairwise* independent hash functions `h_1, …, h_M : X → [Y]` and one
//! `(C_g · log|X|)`-wise independent `g : X → [B]`. Both are realized here
//! as random polynomials over `F_p` (the classical Wegman–Carter
//! construction): a uniformly random polynomial of degree `k − 1` evaluated
//! at the input is exactly `k`-wise independent over the field, and the
//! final reduction to a range `[R]` with `R ≪ p` adds a bias of at most
//! `R/p ≤ 2^{-13}` for every range used in this workspace.
//!
//! All functions are deterministic given a `u64` seed, so an entire
//! protocol's public randomness is one word (Table 1's `O~(1)` row).

pub mod family;
pub mod field;
pub mod kwise;

pub use family::HashFamily;
pub use field::{PrimeField, MERSENNE_P};
pub use kwise::{KWiseHash, PairwiseHash, SignHash};
