//! The structure of local privacy — Sections 4, 5 and 6 of the paper.
//!
//! * [`loss`] — the privacy-loss random variable (Definition 4.1), exact
//!   for discrete randomizers.
//! * [`grouposition`] — **advanced grouposition** (Theorems 4.2/4.3):
//!   in the local model, group privacy for `k` users degrades like
//!   `kε²/2 + ε√(2k ln(1/δ))` ≈ `√k·ε`, not `kε`. Includes an *exact*
//!   verifier for randomized-response protocols (the loss is a shifted
//!   binomial) and Monte-Carlo verifiers for arbitrary randomizers.
//! * [`max_info`] — **Theorem 4.5**: the max-information of ε-LDP
//!   protocols is `O(nε² + ε√(n log(1/β)))` even for non-product input
//!   distributions; with exact small-space computation.
//! * [`rr_compose`] — **Theorem 5.1**: an ε̃ = 6ε√(k ln(1/β))-pure-LDP
//!   algorithm whose output is, with probability 1 − β, *identical* to
//!   the k-fold composition of ε-randomized response — pure LDP enjoying
//!   approximate-DP composition rates.
//! * [`genprot`] — **Algorithm GenProt / Theorem 6.1**: the generic
//!   transformation from any non-interactive `(ε, δ)`-LDP protocol to a
//!   pure `10ε`-LDP protocol with `O(log log n)`-bit reports, including an
//!   exact per-fixing privacy certificate.
//! * [`audit`] — exact pure/approximate LDP auditing for any finite
//!   randomizer (used throughout the workspace's tests: privacy claims
//!   here are *checked*, not assumed).

pub mod audit;
pub mod genprot;
pub mod grouposition;
pub mod loss;
pub mod max_info;
pub mod rr_compose;

pub use genprot::GenProt;
pub use rr_compose::{ApproxComposedRr, ComposedRr};
