//! Advanced grouposition (Section 4, Theorems 4.2 and 4.3).
//!
//! In the central model, ε-DP gives groups of `k` users only `kε`-DP. In
//! the **local** model every user's randomizer fires independently, so the
//! cumulative privacy loss of changing `k` inputs concentrates around its
//! mean `kε²/2` — yielding `(kε²/2 + ε√(2k ln(1/δ)), δ)`-indistinguishability
//! (Theorem 4.2): a `√k` growth instead of `k`.
//!
//! This module provides the bounds, an **exact** verifier for randomized
//! response (where the summed loss is a shifted binomial and every
//! quantity is computable in closed form), and a Monte-Carlo verifier for
//! arbitrary product randomizers.

use hh_freq::traits::{LocalRandomizer, RandomizerInput};
use hh_math::binomial;
pub use hh_math::bounds::{advanced_epsilon, basic_group_epsilon};
use rand::Rng;

/// Theorem 4.2's `ε′` for a group of size `k` at slack `δ`.
pub fn grouposition_epsilon(k: u64, eps: f64, delta: f64) -> f64 {
    advanced_epsilon(k, eps, delta)
}

/// Theorem 4.3: `(ε, δ)`-LDP protocols give groups of `k`
/// `(ε′, δ + kδ′)` with `ε′ = kε²/2 + ε√(2k ln(1/δ′))`.
pub fn grouposition_epsilon_approx(k: u64, eps: f64, delta: f64, delta_prime: f64) -> (f64, f64) {
    (
        advanced_epsilon(k, eps, delta_prime),
        delta + k as f64 * delta_prime,
    )
}

/// Exact tail of the summed privacy loss for `k` users running binary
/// ε-randomized response whose inputs all flip between `x` and `x′`:
/// each user's loss is `±ε` with `Pr[+ε] = e^ε/(e^ε+1)`, so
/// `Pr[Σ L_i > t] = Pr[Bin(k, keep) > (t/ε + k)/2]` — computable in
/// closed form and compared directly against Theorem 4.2's `δ`.
pub fn rr_group_loss_tail_exact(k: u64, eps: f64, t: f64) -> f64 {
    let keep = eps.exp() / (eps.exp() + 1.0);
    // Σ L = ε(2·S − k) with S ~ Bin(k, keep); Σ L > t ⟺ S > (t/ε + k)/2.
    let threshold = (t / eps + k as f64) / 2.0;
    if threshold >= k as f64 {
        return 0.0;
    }
    if threshold < 0.0 {
        return 1.0;
    }
    let s_min = threshold.floor() as u64 + 1;
    binomial::ln_sf(k, keep, s_min).exp()
}

/// Monte-Carlo estimate of the group privacy loss tail
/// `Pr_{y←A(x)}[ln(Pr[A(x)=y]/Pr[A(x′)=y]) > t]` for a product of `k`
/// copies of an arbitrary randomizer with inputs `x_i → x′_i`.
pub fn group_loss_tail_monte_carlo<A: LocalRandomizer, R: Rng + ?Sized>(
    a: &A,
    pairs: &[(u64, u64)],
    t: f64,
    trials: u64,
    rng: &mut R,
) -> f64 {
    let mut exceed = 0u64;
    for _ in 0..trials {
        let mut total = 0.0;
        for &(x, xp) in pairs {
            let y = a.sample(RandomizerInput::Value(x), rng);
            total += a.log_density(RandomizerInput::Value(x), y)
                - a.log_density(RandomizerInput::Value(xp), y);
        }
        if total > t {
            exceed += 1;
        }
    }
    exceed as f64 / trials as f64
}

/// The smallest `ε′` that the *exact* randomized-response group loss
/// satisfies at slack `δ` (for plotting measured-vs-bound curves): the
/// `δ`-quantile of the shifted-binomial loss.
pub fn rr_group_epsilon_exact(k: u64, eps: f64, delta: f64) -> f64 {
    // Binary search over t in [−kε, kε].
    let (mut lo, mut hi) = (-(k as f64) * eps, k as f64 * eps);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if rr_group_loss_tail_exact(k, eps, mid) > delta {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi.max(0.0)
}

/// Sanity helper: the central-model comparator for the same group (`kε`).
pub fn central_model_epsilon(k: u64, eps: f64) -> f64 {
    basic_group_epsilon(k, eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_freq::randomizers::{BinaryRandomizedResponse, GeneralizedRandomizedResponse};
    use hh_math::rng::seeded_rng;

    #[test]
    fn theorem_4_2_dominates_exact_rr_tail() {
        // The theorem's (ε′, δ) pair must be an upper bound on the exact
        // loss tail of randomized response, for every k and δ tested.
        for &eps in &[0.1f64, 0.3, 1.0] {
            for &k in &[1u64, 4, 16, 64, 256, 1024] {
                for &delta in &[0.1f64, 0.01, 1e-4] {
                    let eps_prime = grouposition_epsilon(k, eps, delta);
                    let tail = rr_group_loss_tail_exact(k, eps, eps_prime);
                    assert!(
                        tail <= delta + 1e-12,
                        "violated at eps={eps} k={k} delta={delta}: tail {tail}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_rr_epsilon_shows_sqrt_k_growth() {
        // The measured (exact) group epsilon at fixed δ grows like √k in
        // the advanced regime — quadrupling k roughly doubles ε′.
        let eps = 0.1;
        let delta = 1e-3;
        let e64 = rr_group_epsilon_exact(64, eps, delta);
        let e256 = rr_group_epsilon_exact(256, eps, delta);
        let e1024 = rr_group_epsilon_exact(1024, eps, delta);
        let r1 = e256 / e64;
        let r2 = e1024 / e256;
        assert!((1.6..2.6).contains(&r1), "ratio {r1}");
        assert!((1.6..2.6).contains(&r2), "ratio {r2}");
        // And far below the central-model kε at these sizes.
        assert!(e1024 < 0.25 * central_model_epsilon(1024, eps));
    }

    #[test]
    fn exact_rr_epsilon_below_theorem_bound() {
        for &k in &[16u64, 128, 512] {
            let eps = 0.2;
            let delta = 1e-3;
            let exact = rr_group_epsilon_exact(k, eps, delta);
            let bound = grouposition_epsilon(k, eps, delta);
            assert!(
                exact <= bound + 1e-9,
                "k={k}: exact {exact} > bound {bound}"
            );
        }
    }

    #[test]
    fn monte_carlo_matches_exact_for_rr() {
        let (k, eps) = (64u64, 0.25);
        let rr = BinaryRandomizedResponse::new(eps);
        let pairs: Vec<(u64, u64)> = (0..k).map(|_| (0u64, 1u64)).collect();
        let t = grouposition_epsilon(k, eps, 0.05);
        let mut rng = seeded_rng(11);
        let mc = group_loss_tail_monte_carlo(&rr, &pairs, t, 40_000, &mut rng);
        let exact = rr_group_loss_tail_exact(k, eps, t);
        assert!(
            (mc - exact).abs() < 6.0 * (exact.max(1e-4) / 40_000f64).sqrt() + 2e-3,
            "MC {mc} vs exact {exact}"
        );
    }

    #[test]
    fn grouposition_holds_for_grr_monte_carlo() {
        // Theorem 4.2 is randomizer-agnostic; check a non-binary one.
        let (k, eps) = (128u64, 0.2);
        let grr = GeneralizedRandomizedResponse::new(5, eps);
        let pairs: Vec<(u64, u64)> = (0..k).map(|i| (i % 5, (i + 2) % 5)).collect();
        let delta = 0.01;
        let t = grouposition_epsilon(k, eps, delta);
        let mut rng = seeded_rng(13);
        let tail = group_loss_tail_monte_carlo(&grr, &pairs, t, 60_000, &mut rng);
        // 6-sigma MC slack on top of delta.
        assert!(
            tail <= delta + 6.0 * (delta / 60_000f64).sqrt() + 1e-3,
            "tail {tail} vs delta {delta}"
        );
    }

    #[test]
    fn approx_variant_accounting() {
        let (e, d) = grouposition_epsilon_approx(100, 0.1, 1e-6, 1e-8);
        assert!((e - grouposition_epsilon(100, 0.1, 1e-8)).abs() < 1e-12);
        assert!((d - (1e-6 + 100.0 * 1e-8)).abs() < 1e-18);
    }

    #[test]
    fn tail_edge_cases() {
        assert_eq!(rr_group_loss_tail_exact(8, 0.5, 8.0 * 0.5 + 0.1), 0.0);
        let all = rr_group_loss_tail_exact(8, 0.5, -8.0 * 0.5 - 0.1);
        assert!((all - 1.0).abs() < 1e-12);
    }
}
