//! The privacy-loss random variable (Definition 4.1).
//!
//! For discrete distributions `A = A(x)`, `B = A(x′)`, the loss is
//! `L_{A,B} = ln(Pr[A = y]/Pr[B = y])` for `y ← A`. Its expectation is at
//! most `ε²/2` for ε-DP pairs ([5, Prop. 3.3]) while its worst case is ε —
//! the gap that advanced grouposition (and advanced composition) exploit.

use hh_freq::traits::{LocalRandomizer, RandomizerInput};

/// The exact distribution of the privacy loss between `A(x)` and `A(x′)`:
/// pairs `(loss value, probability)` for every output with positive
/// `A(x)`-probability.
pub fn loss_distribution<A: LocalRandomizer>(a: &A, x: u64, x_prime: u64) -> Vec<(f64, f64)> {
    (0..a.output_cardinality())
        .filter_map(|y| {
            let lp = a.log_density(RandomizerInput::Value(x), y);
            if lp == f64::NEG_INFINITY {
                return None;
            }
            let lq = a.log_density(RandomizerInput::Value(x_prime), y);
            Some((lp - lq, lp.exp()))
        })
        .collect()
}

/// Exact expected privacy loss `E[L_{A(x),A(x′)}]` (the KL divergence).
pub fn expected_loss<A: LocalRandomizer>(a: &A, x: u64, x_prime: u64) -> f64 {
    loss_distribution(a, x, x_prime)
        .into_iter()
        .map(|(l, p)| if p > 0.0 { l * p } else { 0.0 })
        .sum()
}

/// Exact worst-case loss `max_y |ln(Pr[A(x)=y]/Pr[A(x′)=y])|`.
pub fn worst_case_loss<A: LocalRandomizer>(a: &A, x: u64, x_prime: u64) -> f64 {
    (0..a.output_cardinality())
        .map(|y| {
            let lp = a.log_density(RandomizerInput::Value(x), y);
            let lq = a.log_density(RandomizerInput::Value(x_prime), y);
            match (lp == f64::NEG_INFINITY, lq == f64::NEG_INFINITY) {
                (true, true) => 0.0,
                (false, false) => (lp - lq).abs(),
                _ => f64::INFINITY,
            }
        })
        .fold(0.0, f64::max)
}

/// Exact tail `Pr_{y←A(x)}[L_{A(x),A(x′)} > t]`.
pub fn loss_tail<A: LocalRandomizer>(a: &A, x: u64, x_prime: u64, t: f64) -> f64 {
    loss_distribution(a, x, x_prime)
        .into_iter()
        .filter(|&(l, _)| l > t)
        .map(|(_, p)| p)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_freq::randomizers::{BinaryRandomizedResponse, GeneralizedRandomizedResponse};

    #[test]
    fn rr_loss_values_are_plus_minus_eps() {
        let eps = 0.7;
        let rr = BinaryRandomizedResponse::new(eps);
        let dist = loss_distribution(&rr, 0, 1);
        for (l, _) in dist {
            assert!((l.abs() - eps).abs() < 1e-12, "loss {l}");
        }
    }

    #[test]
    fn prop_3_3_expected_loss_below_half_eps_squared() {
        // [5, Prop 3.3]: E[L] <= eps²/2 for eps-DP pairs. Check the
        // workhorse randomizers across a range of eps.
        for &eps in &[0.05f64, 0.1, 0.25, 0.5, 1.0] {
            let rr = BinaryRandomizedResponse::new(eps);
            let el = expected_loss(&rr, 0, 1);
            assert!(
                el <= eps * eps / 2.0 + 1e-12,
                "RR eps={eps}: E[L] = {el} > {}",
                eps * eps / 2.0
            );
            assert!(el >= 0.0, "KL must be nonnegative");

            let grr = GeneralizedRandomizedResponse::new(6, eps);
            let el = expected_loss(&grr, 0, 5);
            assert!(el <= eps * eps / 2.0 + 1e-12, "GRR eps={eps}: E[L] = {el}");
        }
    }

    #[test]
    fn worst_case_matches_claimed_epsilon() {
        let rr = BinaryRandomizedResponse::new(1.3);
        assert!((worst_case_loss(&rr, 0, 1) - 1.3).abs() < 1e-12);
        let grr = GeneralizedRandomizedResponse::new(4, 0.9);
        assert!((worst_case_loss(&grr, 1, 2) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn tail_is_monotone_and_bounded() {
        let rr = BinaryRandomizedResponse::new(1.0);
        let t0 = loss_tail(&rr, 0, 1, -2.0);
        let t1 = loss_tail(&rr, 0, 1, 0.0);
        let t2 = loss_tail(&rr, 0, 1, 2.0);
        assert!((t0 - 1.0).abs() < 1e-12);
        assert!(t1 > 0.0 && t1 < 1.0);
        assert_eq!(t2, 0.0);
        // At threshold just below eps the tail equals the keep probability.
        let keep = 1.0f64.exp() / (1.0f64.exp() + 1.0);
        assert!((loss_tail(&rr, 0, 1, 0.99) - keep).abs() < 1e-12);
    }
}
