//! Composition for randomized response (Section 5, Theorem 5.1).
//!
//! `M(x)` runs `k` independent ε-randomized responses on the bits of `x`.
//! By basic composition it is only `kε`-DP — but the paper exhibits
//! `M̃(x)`, a **pure** `ε̃ = 6ε√(k ln(1/β))`-DP algorithm whose output
//! conditioned on a probability-`(1−β)` event is *identical* to `M(x)`.
//! Pure local privacy thus enjoys the √k rates of advanced composition,
//! the first step of the paper's "approximate LDP is never more useful
//! than pure LDP" program.
//!
//! `M̃` works by snapping the output into a "good" Hamming shell
//! `G_x = {y : d_H(x,y) ∈ k/(e^ε+1) ± sqrt(k·ln(2/β)/2)}` around the
//! expected flip count: run `M(x)`; if the output lands in `G_x`, emit
//! it; otherwise emit a *uniform* element outside `G_x`. All densities
//! depend only on Hamming distances, so everything here — sampling,
//! densities, the privacy ratio, the total-variation gap — is exact.

use hh_freq::traits::{LocalRandomizer, RandomizerInput};
use hh_math::binomial::{self, ConditionalBinomial};
use hh_math::special::ln_binomial;
use rand::Rng;

/// The k-fold composition `M(x) = (M_1(x), …, M_k(x))` of binary
/// ε-randomized response over the low `k` bits of the input.
#[derive(Debug, Clone)]
pub struct ComposedRr {
    k: u32,
    eps: f64,
    /// Per-bit flip probability `q = 1/(e^ε+1)`.
    q: f64,
}

impl ComposedRr {
    /// `k`-bit composition at per-bit privacy ε.
    pub fn new(k: u32, eps: f64) -> Self {
        assert!((1..=63).contains(&k), "k in 1..=63");
        assert!(eps > 0.0);
        Self {
            k,
            eps,
            q: 1.0 / (eps.exp() + 1.0),
        }
    }

    /// Bits per message `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Per-bit flip probability.
    pub fn flip_probability(&self) -> f64 {
        self.q
    }

    fn mask(&self) -> u64 {
        if self.k == 64 {
            u64::MAX
        } else {
            (1u64 << self.k) - 1
        }
    }

    /// Hamming distance within the k-bit window.
    pub fn distance(&self, x: u64, y: u64) -> u32 {
        ((x ^ y) & self.mask()).count_ones()
    }
}

impl LocalRandomizer for ComposedRr {
    fn output_cardinality(&self) -> u64 {
        1u64 << self.k
    }

    fn sample<R: Rng + ?Sized>(&self, x: RandomizerInput, rng: &mut R) -> u64 {
        let x = match x {
            RandomizerInput::Value(v) => v & self.mask(),
            RandomizerInput::Null => 0,
        };
        let mut flips = 0u64;
        for i in 0..self.k {
            if rng.gen::<f64>() < self.q {
                flips |= 1 << i;
            }
        }
        x ^ flips
    }

    fn log_density(&self, x: RandomizerInput, y: u64) -> f64 {
        assert!(y < self.output_cardinality());
        match x {
            RandomizerInput::Value(v) => {
                let d = self.distance(v, y);
                f64::from(d) * self.q.ln() + f64::from(self.k - d) * (1.0 - self.q).ln()
            }
            RandomizerInput::Null => {
                // ⊥ = input 0 by convention for the composed mechanism.
                self.log_density(RandomizerInput::Value(0), y)
            }
        }
    }

    fn claimed_epsilon(&self) -> f64 {
        // Basic composition: the true worst-case pure-DP level of M.
        f64::from(self.k) * self.eps
    }
}

/// The approximately-composed algorithm `M̃` of Theorem 5.1.
#[derive(Debug, Clone)]
pub struct ApproxComposedRr {
    m: ComposedRr,
    beta: f64,
    /// Inclusive Hamming-distance shell `[lo, hi]` defining `G_x`.
    shell_lo: u64,
    shell_hi: u64,
    /// Sampler for the distance of a uniform point *outside* the shell.
    outside_distance: ConditionalBinomial,
    /// `ln |{0,1}^k \ G_x|` (depends only on the shell, not on x).
    ln_outside_count: f64,
    /// Exact `ln Pr[M(x) ∉ G_x]` (same for all x by symmetry).
    ln_escape: f64,
}

impl ApproxComposedRr {
    /// Build `M̃` for `k` bits at per-bit ε and failure bound β.
    ///
    /// Panics when the shell swallows the whole cube (then the
    /// construction degenerates to `M` — the theorem's preconditions
    /// exclude this regime).
    pub fn new(k: u32, eps: f64, beta: f64) -> Self {
        assert!(beta > 0.0 && beta < 1.0);
        let m = ComposedRr::new(k, eps);
        let kf = f64::from(k);
        let centre = kf / (eps.exp() + 1.0);
        let width = (kf * (2.0 / beta).ln() / 2.0).sqrt();
        let shell_lo = (centre - width).ceil().max(0.0) as u64;
        let shell_hi = (centre + width).floor().min(kf) as u64;
        assert!(
            shell_lo > 0 || shell_hi < u64::from(k),
            "shell covers every distance; decrease beta or increase k"
        );
        let outside: Vec<u64> = (0..=u64::from(k))
            .filter(|&d| d < shell_lo || d > shell_hi)
            .collect();
        let outside_distance = ConditionalBinomial::new(u64::from(k), 0.5, outside.iter().copied());
        // |outside| = Σ_{d outside} C(k, d).
        let lw: Vec<f64> = outside
            .iter()
            .map(|&d| ln_binomial(u64::from(k), d))
            .collect();
        let ln_outside_count = hh_math::special::log_sum_exp(&lw);
        // Pr[M(x) ∉ G_x]: binomial(k, q) mass outside [lo, hi].
        let ln_inside = binomial::ln_interval(u64::from(k), m.q, shell_lo, shell_hi);
        let escape = (1.0 - ln_inside.exp()).max(0.0);
        Self {
            m,
            beta,
            shell_lo,
            shell_hi,
            outside_distance,
            ln_outside_count,
            ln_escape: if escape > 0.0 {
                escape.ln()
            } else {
                f64::NEG_INFINITY
            },
        }
    }

    /// The inner composed mechanism `M`.
    pub fn inner(&self) -> &ComposedRr {
        &self.m
    }

    /// The Hamming-distance shell `[lo, hi]` of `G_x`.
    pub fn shell(&self) -> (u64, u64) {
        (self.shell_lo, self.shell_hi)
    }

    /// Theorem 5.1's pure-DP level `ε̃ = 6ε√(k ln(1/β))`.
    pub fn epsilon_tilde(&self) -> f64 {
        6.0 * self.m.eps * (f64::from(self.m.k) * (1.0 / self.beta).ln()).sqrt()
    }

    /// Exact `Pr[M(x) ∉ G_x]` — both the TV distance to `M(x)` and the
    /// failure mass of the conditioning event `E`.
    pub fn escape_probability(&self) -> f64 {
        self.ln_escape.exp()
    }

    /// Is `y` in the good set `G_x`?
    pub fn in_good_set(&self, x: u64, y: u64) -> bool {
        let d = u64::from(self.m.distance(x, y));
        (self.shell_lo..=self.shell_hi).contains(&d)
    }
}

impl LocalRandomizer for ApproxComposedRr {
    fn output_cardinality(&self) -> u64 {
        self.m.output_cardinality()
    }

    fn sample<R: Rng + ?Sized>(&self, x: RandomizerInput, rng: &mut R) -> u64 {
        let xv = match x {
            RandomizerInput::Value(v) => v & self.m.mask(),
            RandomizerInput::Null => 0,
        };
        let y = self.m.sample(RandomizerInput::Value(xv), rng);
        if self.in_good_set(xv, y) {
            return y;
        }
        // Uniform outside G_x: draw the distance from the conditional
        // binomial(k, 1/2), then flip a uniformly random subset of that
        // size — exact, no rejection loop.
        let d = self.outside_distance.sample(rng);
        let k = self.m.k as usize;
        // Sample d distinct positions via partial Fisher–Yates.
        let mut idx: Vec<u32> = (0..k as u32).collect();
        let mut flips = 0u64;
        for i in 0..d as usize {
            let j = rng.gen_range(i..k);
            idx.swap(i, j);
            flips |= 1 << idx[i];
        }
        xv ^ flips
    }

    fn log_density(&self, x: RandomizerInput, y: u64) -> f64 {
        let xv = match x {
            RandomizerInput::Value(v) => v & self.m.mask(),
            RandomizerInput::Null => 0,
        };
        if self.in_good_set(xv, y) {
            self.m.log_density(RandomizerInput::Value(xv), y)
        } else {
            // Pr[M(x) ∉ G_x] / |complement|.
            self.ln_escape - self.ln_outside_count
        }
    }

    fn claimed_epsilon(&self) -> f64 {
        self.epsilon_tilde()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_math::rng::seeded_rng;

    fn densities_normalize(a: &impl LocalRandomizer, x: u64) {
        let total: f64 = a.distribution(RandomizerInput::Value(x)).iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn composed_density_normalizes_and_matches_sampling() {
        let m = ComposedRr::new(8, 0.7);
        densities_normalize(&m, 0b1011_0010);
        let mut rng = seeded_rng(1);
        let x = 0b1100_0101u64;
        let trials = 150_000u64;
        let mut counts = vec![0u64; 256];
        for _ in 0..trials {
            counts[m.sample(RandomizerInput::Value(x), &mut rng) as usize] += 1;
        }
        for y in (0..256u64).step_by(17) {
            let want = m.log_density(RandomizerInput::Value(x), y).exp();
            let got = counts[y as usize] as f64 / trials as f64;
            let tol = 6.0 * (want / trials as f64).sqrt() + 1e-3;
            assert!((got - want).abs() < tol, "y={y}: {got} vs {want}");
        }
    }

    #[test]
    fn approx_density_normalizes() {
        let mt = ApproxComposedRr::new(10, 0.3, 0.2);
        densities_normalize(&mt, 0);
        densities_normalize(&mt, 0b11_1111_1111);
        densities_normalize(&mt, 0b10_0101_0110);
    }

    #[test]
    fn conditional_equality_on_good_event() {
        // Theorem 5.1 item 2: within G_x the densities of M̃ and M agree
        // exactly, and G_x has mass >= 1 − β under M(x).
        let (k, eps, beta) = (12u32, 0.25, 0.1);
        let mt = ApproxComposedRr::new(k, eps, beta);
        let x = 0b1010_1100_0011u64;
        for y in 0..(1u64 << k) {
            if mt.in_good_set(x, y) {
                let a = mt.log_density(RandomizerInput::Value(x), y);
                let b = mt.inner().log_density(RandomizerInput::Value(x), y);
                assert!((a - b).abs() < 1e-12);
            }
        }
        assert!(
            mt.escape_probability() <= beta,
            "escape {} > beta {beta}",
            mt.escape_probability()
        );
    }

    #[test]
    fn tv_distance_is_exactly_escape_mass() {
        // TV(M̃(x), M(x)) <= Pr[M(x) ∉ G_x]: they agree inside the shell.
        let mt = ApproxComposedRr::new(10, 0.3, 0.15);
        let x = 0b01_0110_1001u64;
        let p: Vec<f64> = mt.distribution(RandomizerInput::Value(x));
        let q: Vec<f64> = mt.inner().distribution(RandomizerInput::Value(x));
        let tv = hh_math::info::tv_distance(&p, &q);
        assert!(tv <= mt.escape_probability() + 1e-12);
    }

    #[test]
    fn theorem_5_1_pure_dp_exact_enumeration() {
        // Exhaustively verify the ε̃ pure-DP ratio for parameter settings
        // satisfying the theorem's preconditions
        // (β < (ε√k/2(k+1))^{2/3}, ε̃ <= 1).
        for &(k, eps) in &[(36u32, 0.02f64), (49, 0.02)] {
            let precondition = (eps * f64::from(k).sqrt()
                / (2.0 * f64::from(k + 1.0 as u32 - 1) + 2.0))
                .powf(2.0 / 3.0);
            let beta = (0.8 * precondition).min(0.2);
            let mt = ApproxComposedRr::new(k, eps, beta);
            let eps_tilde = mt.epsilon_tilde();
            if eps_tilde > 1.0 {
                continue;
            }
            // By bit symmetry the ratio depends only on the distance
            // profile; checking the all-zeros vs all-ones inputs at every
            // distance pair covers the extremal cases. Enumerate distance
            // classes instead of all 2^k outputs.
            let x0 = 0u64;
            let x1 = (1u64 << k) - 1;
            let mut worst: f64 = 0.0;
            // y with d(x0,y)=d has d(x1,y)=k−d; enumerate d.
            for d in 0..=k {
                let y = (1u64 << d) - 1; // any representative with weight d
                let l0 = mt.log_density(RandomizerInput::Value(x0), y);
                let l1 = mt.log_density(RandomizerInput::Value(x1), y);
                worst = worst.max((l0 - l1).abs());
            }
            assert!(
                worst <= eps_tilde + 1e-9,
                "k={k} eps={eps} beta={beta}: ratio {worst} > eps_tilde {eps_tilde}"
            );
            // And M̃ must be far better than basic composition here.
            assert!(eps_tilde < mt.inner().claimed_epsilon());
        }
    }

    #[test]
    fn sampler_respects_good_set_complement() {
        // Force escapes by conditioning: with a tiny shell, samples
        // outside G_x must be uniform over the complement (check distance
        // distribution).
        let (k, eps, beta) = (16u32, 0.1, 0.5);
        let mt = ApproxComposedRr::new(k, eps, beta);
        let x = 0xDEADu64 & ((1 << 16) - 1);
        let mut rng = seeded_rng(3);
        let mut outside = 0u64;
        let trials = 60_000u64;
        for _ in 0..trials {
            let y = mt.sample(RandomizerInput::Value(x), &mut rng);
            if !mt.in_good_set(x, y) {
                outside += 1;
            }
        }
        let frac = outside as f64 / trials as f64;
        let expect = mt.escape_probability();
        assert!(
            (frac - expect).abs() < 6.0 * (expect / trials as f64).sqrt() + 2e-3,
            "outside fraction {frac} vs escape {expect}"
        );
    }

    #[test]
    fn epsilon_tilde_beats_basic_composition_at_scale() {
        // The paper's point: ε̃ = 6ε√(k ln 1/β) << kε for large k.
        let (eps, beta): (f64, f64) = (0.05, 0.01);
        for &k in &[512u32, 2048] {
            // Construction beyond u64 width is irrelevant here; use the
            // formula directly.
            let eps_tilde = 6.0 * eps * (f64::from(k) * (1.0 / beta).ln()).sqrt();
            // ε̃ < kε once k > 36·ln(1/β) ≈ 166 here.
            assert!(eps_tilde < f64::from(k) * eps, "k={k}: {eps_tilde}");
        }
    }

    #[test]
    #[should_panic(expected = "shell covers every distance")]
    fn rejects_degenerate_shell() {
        // Tiny k with a wide shell: centre 2/(e+1) ≈ 0.54, width
        // sqrt(2·ln(10)/2) ≈ 1.52 covers distances {0, 1, 2} entirely.
        let _ = ApproxComposedRr::new(2, 1.0, 0.2);
    }
}
