//! Algorithm `GenProt` (Section 6, Theorem 6.1): the generic
//! transformation from any non-interactive `(ε, δ)`-LDP protocol into a
//! **pure** `10ε`-LDP protocol with `O(log log n)`-bit reports.
//!
//! Mechanics (rejection sampling over public candidates): the public
//! randomness contains, for every user `i`, `T` samples
//! `y_{i,1}, …, y_{i,T} ← A_i(⊥)`. The user computes clipped acceptance
//! probabilities
//! `p_{i,t} = ½·Pr[A_i(x_i)=y_{i,t}]/Pr[A_i(⊥)=y_{i,t}]` (snapped to ½
//! when outside `[e^{−2ε}/2, e^{2ε}/2]` — the only place the `(ε, δ)`
//! guarantee is consulted, via Observation 6.5), draws Bernoulli bits
//! `b_{i,t}`, and announces a uniform index `g_i` among the accepted ones
//! (or among all `T` if none accepted). The server *reconstructs*
//! `y_{i,g_i}` and feeds it to the original protocol's aggregation.
//!
//! The report is `⌈log₂ T⌉` bits with `T = Θ(log(n/β))` — the
//! `O(log log n)` of the theorem — and the output distribution is within
//! total variation `n((½+ε)^T + 6Tδe^ε/(1−e^{−ε}))` of the original
//! protocol's.
//!
//! Because the clipped probabilities are exactly computable, this module
//! also *certifies* the pure-privacy claim per fixing of the public
//! randomness: the report distribution `Pr[Q_i(x) = g]` is a closed-form
//! Poisson-binomial functional, evaluated exactly in
//! [`GenProt::report_distribution`].

use hh_freq::traits::{LocalRandomizer, RandomizerInput};
use hh_math::rng::{derive_seed, seeded_rng};
use rand::Rng;

/// The GenProt wrapper around a base randomizer `A`.
#[derive(Debug, Clone)]
pub struct GenProt<A: LocalRandomizer> {
    inner: A,
    /// Number of public candidates `T` per user.
    t: usize,
    /// The ε used for clipping (the base protocol's ε).
    eps: f64,
    /// Seed for the public candidate samples.
    seed: u64,
    /// `T` copies of `⊥`, cached so the per-user `public_samples` bulk
    /// draw allocates no input buffer.
    null_inputs: Vec<RandomizerInput>,
}

impl<A: LocalRandomizer> GenProt<A> {
    /// Wrap `inner` with `T` public candidates at clipping level ε.
    pub fn new(inner: A, eps: f64, t: usize, seed: u64) -> Self {
        assert!(t >= 1, "need at least one public candidate");
        assert!(eps > 0.0);
        Self {
            inner,
            t,
            eps,
            seed,
            null_inputs: vec![RandomizerInput::Null; t],
        }
    }

    /// Theorem 6.1's recommended `T = 2·ln(2n/β)` for `n` users at total
    /// variation target β.
    pub fn recommended_t(n: u64, beta: f64) -> usize {
        assert!(beta > 0.0 && beta < 1.0);
        (2.0 * (2.0 * n as f64 / beta).ln()).ceil() as usize
    }

    /// The wrapped randomizer.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Number of public candidates `T`.
    pub fn candidates(&self) -> usize {
        self.t
    }

    /// Bits per report: `⌈log₂ T⌉`.
    pub fn report_bits(&self) -> usize {
        usize::BITS as usize - (self.t - 1).leading_zeros() as usize
    }

    /// The public candidate list `y_{i,1..T}` of a user (deterministic in
    /// the seed — genuinely public randomness). Drawn through the
    /// randomizer's bulk path; `sample_batch` is draw-order identical to
    /// repeated `sample` calls, so the list is unchanged either way.
    pub fn public_samples(&self, user_index: u64) -> Vec<u64> {
        let mut rng = seeded_rng(derive_seed(derive_seed(self.seed, 0x6E_9607), user_index));
        self.inner.sample_batch(&self.null_inputs, &mut rng)
    }

    /// The clipped acceptance probabilities `p_{i,t}` for input `x`
    /// against a candidate list.
    pub fn acceptance_probs(&self, x: u64, ys: &[u64]) -> Vec<f64> {
        let lo = (-2.0 * self.eps).exp() / 2.0;
        let hi = (2.0 * self.eps).exp() / 2.0;
        ys.iter()
            .map(|&y| {
                let ln_ratio = self.inner.log_density(RandomizerInput::Value(x), y)
                    - self.inner.log_density(RandomizerInput::Null, y);
                let p = 0.5 * ln_ratio.exp();
                if (lo..=hi).contains(&p) {
                    p
                } else {
                    0.5
                }
            })
            .collect()
    }

    /// Client: user `i` holding `x` announces her index `g ∈ [T]`.
    pub fn respond<R: Rng + ?Sized>(&self, user_index: u64, x: u64, rng: &mut R) -> u32 {
        let ys = self.public_samples(user_index);
        let ps = self.acceptance_probs(x, &ys);
        let mut accepted: Vec<u32> = Vec::new();
        for (t, &p) in ps.iter().enumerate() {
            if rng.gen::<f64>() < p {
                accepted.push(t as u32);
            }
        }
        if accepted.is_empty() {
            rng.gen_range(0..self.t as u32)
        } else {
            accepted[rng.gen_range(0..accepted.len())]
        }
    }

    /// Server: reconstruct the effective report `y_{i, g_i}`.
    pub fn reconstruct(&self, user_index: u64, g: u32) -> u64 {
        assert!((g as usize) < self.t, "index out of range");
        self.public_samples(user_index)[g as usize]
    }

    /// Exact output distribution of the user's announcement for input `x`
    /// against a fixed candidate list:
    /// `Pr[g] = p_g·E[1/(1+W_g)] + (1−p_g)·Π_{t≠g}(1−p_t)/T`,
    /// with `W_g` the Poisson-binomial count of other acceptances
    /// (computed by exact dynamic programming).
    pub fn report_distribution(&self, x: u64, ys: &[u64]) -> Vec<f64> {
        let ps = self.acceptance_probs(x, ys);
        let t = self.t;
        let mut out = vec![0.0; t];
        for g in 0..t {
            // Distribution of W_g = Σ_{t≠g} b_t via DP.
            let mut w = vec![0.0f64; t];
            w[0] = 1.0;
            let mut len = 1usize;
            for (j, &p) in ps.iter().enumerate() {
                if j == g {
                    continue;
                }
                // Convolve with Bernoulli(p), in place from the top.
                for idx in (0..len).rev() {
                    let v = w[idx];
                    w[idx] = v * (1.0 - p);
                    w[idx + 1] += v * p;
                }
                len += 1;
            }
            let e_inv: f64 = w
                .iter()
                .take(len)
                .enumerate()
                .map(|(wv, &pr)| pr / (wv as f64 + 1.0))
                .sum();
            let none_other: f64 = w[0];
            out[g] = ps[g] * e_inv + (1.0 - ps[g]) * none_other / t as f64;
        }
        out
    }

    /// Exact pure-DP level of one user's announcement, for a fixed public
    /// candidate list, maximized over the provided inputs — the quantity
    /// Lemma 6.2 bounds by `10ε`.
    pub fn exact_epsilon(&self, user_index: u64, inputs: &[u64]) -> f64 {
        let ys = self.public_samples(user_index);
        let dists: Vec<Vec<f64>> = inputs
            .iter()
            .map(|&x| self.report_distribution(x, &ys))
            .collect();
        let mut worst: f64 = 0.0;
        for a in 0..dists.len() {
            for b in 0..dists.len() {
                if a == b {
                    continue;
                }
                for (&pa, &pb) in dists[a].iter().zip(&dists[b]) {
                    let ratio = (pa / pb).ln();
                    worst = worst.max(ratio);
                }
            }
        }
        worst
    }

    /// Theorem 6.1's total-variation bound between the transformed and
    /// original protocols for `n` users, given the base protocol's δ:
    /// `n((½+ε)^T + 6Tδe^ε/(1−e^{−ε}))`.
    pub fn tv_bound(&self, n: u64, delta: f64) -> f64 {
        let e = self.eps;
        let term1 = (0.5 + e).powi(self.t as i32);
        let term2 = 6.0 * self.t as f64 * delta * e.exp() / (1.0 - (-e).exp());
        (n as f64 * (term1 + term2)).min(1.0)
    }

    /// The Theorem 6.1 upper limit on `T` for the privacy argument:
    /// `T <= (1−e^{−ε})/(4δe^ε n)`; `None` when δ = 0 (no limit).
    pub fn t_upper_limit(eps: f64, delta: f64, n: u64) -> Option<f64> {
        if delta == 0.0 {
            return None;
        }
        Some((1.0 - (-eps).exp()) / (4.0 * delta * eps.exp() * n as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_freq::randomizers::{
        DiscreteGaussianRandomizer, GeneralizedRandomizedResponse, RevealingRandomizer,
    };
    use hh_math::rng::seeded_rng;

    #[test]
    fn report_distribution_is_exact() {
        // Monte-Carlo the client against the closed-form distribution.
        let base = GeneralizedRandomizedResponse::new(6, 0.4);
        let gp = GenProt::new(base, 0.4, 12, 7);
        let x = 3u64;
        let exact = gp.report_distribution(x, &gp.public_samples(5));
        let mut rng = seeded_rng(8);
        let trials = 200_000u64;
        let mut counts = [0u64; 12];
        for _ in 0..trials {
            counts[gp.respond(5, x, &mut rng) as usize] += 1;
        }
        for g in 0..12 {
            let got = counts[g] as f64 / trials as f64;
            let want = exact[g];
            let tol = 6.0 * (want / trials as f64).sqrt() + 1e-3;
            assert!((got - want).abs() < tol, "g={g}: {got} vs {want}");
        }
        let total: f64 = exact.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "distribution sums to {total}");
    }

    #[test]
    fn lemma_6_2_certificate_for_pure_base() {
        // Wrapping a pure randomizer: the announcement must be 10ε-DP for
        // every fixing of the public randomness.
        let eps = 0.2;
        let base = GeneralizedRandomizedResponse::new(8, eps);
        let t = (5.0 * (1.0 / eps).ln()).ceil() as usize;
        let gp = GenProt::new(base, eps, t, 21);
        let inputs: Vec<u64> = (0..8).collect();
        for user in 0..20u64 {
            let got = gp.exact_epsilon(user, &inputs);
            assert!(
                got <= 10.0 * eps + 1e-9,
                "user {user}: exact eps {got} > {}",
                10.0 * eps
            );
        }
    }

    #[test]
    fn certificate_for_approximate_base() {
        // The headline: an (ε, δ) randomizer whose pure level is INFINITE
        // becomes pure 10ε after GenProt — for every public fixing.
        let (eps, delta) = (0.25, 1e-3);
        let base = RevealingRandomizer::new(6, eps, delta);
        assert_eq!(base.claimed_epsilon(), f64::INFINITY);
        let t = 8usize;
        let gp = GenProt::new(base, eps, t, 33);
        let inputs: Vec<u64> = (0..6).collect();
        for user in 0..20u64 {
            let got = gp.exact_epsilon(user, &inputs);
            assert!(got <= 10.0 * eps + 1e-9, "user {user}: exact eps {got}");
        }
    }

    #[test]
    fn certificate_for_gaussian_base() {
        let base = DiscreteGaussianRandomizer::new(3.0, 1, 24);
        let eps = 0.3;
        let gp = GenProt::new(base, eps, 10, 55);
        for user in 0..10u64 {
            let got = gp.exact_epsilon(user, &[0, 1]);
            assert!(got <= 10.0 * eps + 1e-9, "user {user}: {got}");
        }
    }

    #[test]
    fn reconstruction_distribution_approaches_base() {
        // Utility: the reconstructed report's distribution (averaged over
        // public randomness) should be close to A(x)'s distribution.
        let eps = 0.5;
        let base = GeneralizedRandomizedResponse::new(4, eps);
        let t = GenProt::<GeneralizedRandomizedResponse>::recommended_t(1, 0.02);
        let gp = GenProt::new(base.clone(), eps, t, 99);
        let x = 2u64;
        let mut rng = seeded_rng(100);
        let trials = 120_000u64;
        let mut counts = [0u64; 4];
        for trial in 0..trials {
            // Fresh public randomness per trial: vary the user index.
            let g = gp.respond(trial, x, &mut rng);
            counts[gp.reconstruct(trial, g) as usize] += 1;
        }
        let emp: Vec<f64> = counts.iter().map(|&c| c as f64 / trials as f64).collect();
        let want = base.distribution(RandomizerInput::Value(x));
        let tv = hh_math::info::tv_distance(&emp, &want);
        let bound = gp.tv_bound(1, 0.0) + 0.01; // + MC slack
        assert!(tv <= bound, "TV {tv} > bound {bound}");
    }

    #[test]
    fn tv_bound_shrinks_with_t_for_pure_base() {
        let base = GeneralizedRandomizedResponse::new(4, 0.1);
        let small = GenProt::new(base.clone(), 0.1, 4, 1).tv_bound(100, 0.0);
        let large = GenProt::new(base, 0.1, 30, 1).tv_bound(100, 0.0);
        assert!(large < small);
        // (1/2 + 0.1)^30 · 100 ≈ 2e-5.
        assert!(large < 1e-3, "bound {large}");
    }

    #[test]
    fn report_bits_are_loglog() {
        // T = Θ(log(n/β)) ⇒ report = ⌈log T⌉ = O(log log n).
        let t = GenProt::<GeneralizedRandomizedResponse>::recommended_t(1 << 30, 0.01);
        let base = GeneralizedRandomizedResponse::new(4, 0.25);
        let gp = GenProt::new(base, 0.25, t, 1);
        assert!(gp.report_bits() <= 7, "bits = {}", gp.report_bits());
    }

    #[test]
    fn t_upper_limit_accounting() {
        assert!(GenProt::<GeneralizedRandomizedResponse>::t_upper_limit(0.25, 0.0, 100).is_none());
        let lim =
            GenProt::<GeneralizedRandomizedResponse>::t_upper_limit(0.25, 1e-6, 1000).unwrap();
        assert!(lim > 1.0, "limit {lim}");
    }

    #[test]
    fn public_samples_are_deterministic_and_per_user() {
        let base = GeneralizedRandomizedResponse::new(4, 0.3);
        let gp = GenProt::new(base, 0.3, 6, 5);
        assert_eq!(gp.public_samples(3), gp.public_samples(3));
        assert_ne!(gp.public_samples(3), gp.public_samples(4));
    }
}
