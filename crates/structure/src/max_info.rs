//! Max-information of LDP protocols (Section 4, Theorem 4.5).
//!
//! `I^β_∞(Z; W) ≤ k` iff for every event `T`,
//! `Pr[(Z,W) ∈ T] − β ≤ e^k · Pr[Z⊗W ∈ T]`. Theorem 4.5: an ε-LDP
//! protocol on `n` users has `I^β_∞ ≤ nε²/2 + ε√(2n ln(1/β))` — crucially,
//! for **arbitrary** (non-product!) input distributions, unlike the
//! central-model results of Dwork et al. and Rogers et al. that the paper
//! discusses.
//!
//! For small `n` everything is exactly computable: this module enumerates
//! the joint distribution of `(D, A(D))` for product-of-randomizers
//! protocols and computes the exact β-approximate max-information.

use hh_freq::traits::{LocalRandomizer, RandomizerInput};
pub use hh_math::bounds::max_information_bound;

/// The exact joint distribution of `(x, y)` where `x ~ input_dist` over
/// `X^n` (given as (probability, inputs) pairs) and `y = (A(x_1), …,
/// A(x_n))` for a shared per-user randomizer.
///
/// Output: `joint[i][j]` over input index `i` and flattened output `j`
/// (base `output_cardinality`). Only feasible for tiny `n` / output
/// spaces — which is the point: exactness.
pub fn exact_joint<A: LocalRandomizer>(a: &A, input_dist: &[(f64, Vec<u64>)]) -> Vec<Vec<f64>> {
    let card = a.output_cardinality();
    let n = input_dist
        .first()
        .map(|(_, xs)| xs.len())
        .expect("nonempty input distribution");
    let out_count = card
        .checked_pow(n as u32)
        .expect("output space too large for exact computation");
    assert!(out_count <= 1 << 22, "output space too large: {out_count}");
    let mut joint = vec![vec![0.0; out_count as usize]; input_dist.len()];
    for (i, (px, xs)) in input_dist.iter().enumerate() {
        assert_eq!(xs.len(), n, "ragged input vectors");
        // Enumerate outputs via mixed-radix counting.
        for flat in 0..out_count {
            let mut rest = flat;
            let mut lp = 0.0;
            for &x in xs {
                let y = rest % card;
                rest /= card;
                lp += a.log_density(RandomizerInput::Value(x), y);
            }
            joint[i][flat as usize] = px * lp.exp();
        }
    }
    joint
}

/// The exact β-approximate max-information of a joint distribution
/// `joint[i][j]` (nats): the smallest `k` with
/// `Σ_{(i,j)} max(joint − e^k·marginal_product, 0) ≤ β`.
pub fn exact_max_information(joint: &[Vec<f64>], beta: f64) -> f64 {
    assert!((0.0..1.0).contains(&beta));
    let ni = joint.len();
    let nj = joint[0].len();
    let pi: Vec<f64> = joint.iter().map(|r| r.iter().sum()).collect();
    let mut pj = vec![0.0; nj];
    for row in joint {
        for (j, &v) in row.iter().enumerate() {
            pj[j] += v;
        }
    }
    let excess = |k: f64| -> f64 {
        let ek = k.exp();
        let mut e = 0.0;
        for i in 0..ni {
            for j in 0..nj {
                e += (joint[i][j] - ek * pi[i] * pj[j]).max(0.0);
            }
        }
        e
    };
    // Binary search for the smallest k with excess(k) <= beta.
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    while excess(hi) > beta {
        hi *= 2.0;
        assert!(hi < 1e6, "max-information did not converge");
    }
    if excess(lo) <= beta {
        return 0.0;
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if excess(mid) > beta {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_freq::randomizers::BinaryRandomizedResponse;

    /// A maximally correlated (non-product!) input distribution: all
    /// users hold the same uniform bit.
    fn correlated_inputs(n: usize) -> Vec<(f64, Vec<u64>)> {
        vec![(0.5, vec![0; n]), (0.5, vec![1; n])]
    }

    /// Independent uniform bits.
    fn product_inputs(n: usize) -> Vec<(f64, Vec<u64>)> {
        let count = 1usize << n;
        (0..count)
            .map(|mask| {
                let xs = (0..n).map(|i| (mask >> i) as u64 & 1).collect();
                (1.0 / count as f64, xs)
            })
            .collect()
    }

    #[test]
    fn theorem_4_5_bound_holds_for_correlated_inputs() {
        // The paper's point: the bound holds even when D is far from
        // product. Exact check for n up to 8.
        let eps = 0.4;
        let beta = 0.05;
        for n in [1usize, 2, 4, 8] {
            let rr = BinaryRandomizedResponse::new(eps);
            let joint = exact_joint(&rr, &correlated_inputs(n));
            let mi = exact_max_information(&joint, beta);
            let bound = max_information_bound(n as u64, eps, beta);
            assert!(
                mi <= bound + 1e-9,
                "n={n}: exact I^β = {mi} > bound {bound}"
            );
        }
    }

    #[test]
    fn bound_holds_for_product_inputs_too() {
        let eps = 0.5;
        let beta = 0.02;
        for n in [1usize, 2, 4] {
            let rr = BinaryRandomizedResponse::new(eps);
            let joint = exact_joint(&rr, &product_inputs(n));
            let mi = exact_max_information(&joint, beta);
            let bound = max_information_bound(n as u64, eps, beta);
            assert!(mi <= bound + 1e-9, "n={n}: {mi} > {bound}");
        }
    }

    #[test]
    fn max_information_structure_at_beta_zero() {
        // At β = 0: with product inputs the worst-case information adds
        // up across coordinates (n × the single-user level), while with a
        // perfectly correlated one-bit secret it is capped by the secret's
        // entropy ln 2 — the joint can never outweigh the marginal by
        // more than the inverse prior.
        let eps = 1.0;
        let rr = BinaryRandomizedResponse::new(eps);
        let n = 4;
        let j_corr = exact_joint(&rr, &correlated_inputs(n));
        let j_prod = exact_joint(&rr, &product_inputs(n));
        let mi_corr = exact_max_information(&j_corr, 0.0);
        let mi_prod = exact_max_information(&j_prod, 0.0);
        let single = {
            let j1 = exact_joint(&rr, &product_inputs(1));
            exact_max_information(&j1, 0.0)
        };
        assert!(
            (mi_prod - n as f64 * single).abs() < 1e-6,
            "product: {mi_prod} vs {n}×{single}"
        );
        assert!(
            mi_corr <= 2.0f64.ln() + 1e-9,
            "correlated one-bit secret: {mi_corr} > ln 2"
        );
        assert!(mi_corr > 0.1, "correlated info should be non-trivial");
    }

    #[test]
    fn zero_information_for_independent_output() {
        // A randomizer that ignores its input (eps arbitrarily large but
        // keep = 0.5 means output independent): use eps tiny instead.
        let rr = BinaryRandomizedResponse::new(1e-9);
        let joint = exact_joint(&rr, &correlated_inputs(2));
        let mi = exact_max_information(&joint, 0.0);
        assert!(mi < 1e-6, "got {mi}");
    }

    #[test]
    fn max_information_decreases_in_beta() {
        let rr = BinaryRandomizedResponse::new(0.8);
        let joint = exact_joint(&rr, &correlated_inputs(6));
        let m0 = exact_max_information(&joint, 0.0);
        let m1 = exact_max_information(&joint, 0.05);
        let m2 = exact_max_information(&joint, 0.2);
        assert!(m0 >= m1 && m1 >= m2, "{m0} {m1} {m2}");
        assert!(m2 >= 0.0);
    }
}
