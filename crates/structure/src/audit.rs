//! Exact privacy auditing for finite-output local randomizers.
//!
//! Definition 1.1 quantifies over all outputs and input pairs; for the
//! discrete randomizers in this workspace that's a finite check, so the
//! test suite *proves* privacy claims by enumeration instead of trusting
//! them. (The δ audit computes the exact hockey-stick divergence.)

use hh_freq::traits::{LocalRandomizer, RandomizerInput};
use hh_math::info::hockey_stick;

/// Exact pure-DP level over the given inputs:
/// `max_{x,x',y} ln(Pr[A(x)=y]/Pr[A(x')=y])` (`INFINITY` when a support
/// mismatch exists).
pub fn exact_pure_epsilon<A: LocalRandomizer>(a: &A, inputs: &[u64]) -> f64 {
    let mut worst: f64 = 0.0;
    for &x in inputs {
        for &xp in inputs {
            if x == xp {
                continue;
            }
            for y in 0..a.output_cardinality() {
                let lp = a.log_density(RandomizerInput::Value(x), y);
                let lq = a.log_density(RandomizerInput::Value(xp), y);
                match (lp == f64::NEG_INFINITY, lq == f64::NEG_INFINITY) {
                    (true, _) => {}
                    (false, true) => return f64::INFINITY,
                    (false, false) => worst = worst.max(lp - lq),
                }
            }
        }
    }
    worst
}

/// Exact δ at a target ε over the given inputs: the worst pairwise
/// hockey-stick divergence `max_{x,x'} Σ_y max(Pr[A(x)=y] − e^ε·Pr[A(x')=y], 0)`.
pub fn exact_delta<A: LocalRandomizer>(a: &A, eps: f64, inputs: &[u64]) -> f64 {
    let dists: Vec<Vec<f64>> = inputs
        .iter()
        .map(|&x| a.distribution(RandomizerInput::Value(x)))
        .collect();
    let mut worst: f64 = 0.0;
    for p in &dists {
        for q in &dists {
            worst = worst.max(hockey_stick(p, q, eps));
        }
    }
    worst
}

/// Assert that `a` is `eps`-pure-LDP over `inputs` (with numerical slack).
///
/// Panics with a diagnostic otherwise — the workhorse assertion of the
/// workspace's privacy tests.
pub fn assert_pure_ldp<A: LocalRandomizer>(a: &A, inputs: &[u64], eps: f64) {
    let got = exact_pure_epsilon(a, inputs);
    assert!(
        got <= eps + 1e-9,
        "pure-LDP audit failed: measured eps {got} > claimed {eps}"
    );
}

/// Assert `(eps, delta)`-LDP over `inputs`.
pub fn assert_approx_ldp<A: LocalRandomizer>(a: &A, inputs: &[u64], eps: f64, delta: f64) {
    let got = exact_delta(a, eps, inputs);
    assert!(
        got <= delta + 1e-9,
        "approx-LDP audit failed: measured delta {got} > claimed {delta} at eps {eps}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_freq::randomizers::{
        BinaryRandomizedResponse, GeneralizedRandomizedResponse, HadamardResponse,
        RevealingRandomizer,
    };

    #[test]
    fn audits_every_pure_randomizer_in_the_workspace() {
        assert_pure_ldp(&BinaryRandomizedResponse::new(0.7), &[0, 1], 0.7);
        assert_pure_ldp(
            &GeneralizedRandomizedResponse::new(9, 1.2),
            &(0..9).collect::<Vec<_>>(),
            1.2,
        );
        assert_pure_ldp(
            &HadamardResponse::new(32, 0.9),
            &(0..32).collect::<Vec<_>>(),
            0.9,
        );
    }

    #[test]
    fn audit_is_tight_not_just_an_upper_bound() {
        let rr = BinaryRandomizedResponse::new(0.7);
        let got = exact_pure_epsilon(&rr, &[0, 1]);
        assert!((got - 0.7).abs() < 1e-12, "audit should be exact: {got}");
    }

    #[test]
    fn detects_privacy_violations() {
        // Claiming a smaller eps than the truth must fail the audit.
        let rr = BinaryRandomizedResponse::new(1.0);
        let got = exact_pure_epsilon(&rr, &[0, 1]);
        assert!(got > 0.5);
    }

    #[test]
    fn revealing_randomizer_fails_pure_passes_approx() {
        let (eps, delta) = (0.5, 0.01);
        let rv = RevealingRandomizer::new(5, eps, delta);
        assert_eq!(
            exact_pure_epsilon(&rv, &(0..5).collect::<Vec<_>>()),
            f64::INFINITY
        );
        assert_approx_ldp(&rv, &(0..5).collect::<Vec<_>>(), eps, delta);
        // And the delta is exactly the reveal mass.
        let d = exact_delta(&rv, eps, &(0..5).collect::<Vec<_>>());
        assert!((d - delta).abs() < 1e-10);
    }

    #[test]
    fn delta_decreases_with_eps() {
        let rv = RevealingRandomizer::new(4, 0.5, 0.02);
        let inputs: Vec<u64> = (0..4).collect();
        let d_small = exact_delta(&rv, 0.1, &inputs);
        let d_large = exact_delta(&rv, 1.0, &inputs);
        assert!(d_small >= d_large);
    }
}
