//! Property tests: privacy claims audited under randomized parameters.
//!
//! These are the "no cherry-picked constants" checks — every randomizer
//! and transformation must satisfy its claimed privacy level for
//! arbitrary parameters in its admissible range, verified by exact
//! enumeration (no sampling noise).

use hh_freq::randomizers::{
    BinaryRandomizedResponse, GeneralizedRandomizedResponse, HadamardResponse, RevealingRandomizer,
};
use hh_freq::traits::{LocalRandomizer, RandomizerInput};
use hh_structure::audit::{exact_delta, exact_pure_epsilon};
use hh_structure::rr_compose::ApproxComposedRr;
use hh_structure::GenProt;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binary_rr_always_exactly_eps(eps in 0.01f64..4.0) {
        let rr = BinaryRandomizedResponse::new(eps);
        let got = exact_pure_epsilon(&rr, &[0, 1]);
        prop_assert!((got - eps).abs() < 1e-9);
    }

    #[test]
    fn grr_always_exactly_eps(k in 2u64..32, eps in 0.05f64..3.0) {
        let g = GeneralizedRandomizedResponse::new(k, eps);
        let inputs: Vec<u64> = (0..k).collect();
        let got = exact_pure_epsilon(&g, &inputs);
        prop_assert!((got - eps).abs() < 1e-9, "got {got} want {eps}");
    }

    #[test]
    fn hadamard_response_never_exceeds_eps(logw in 2u32..7, eps in 0.1f64..2.0) {
        let h = HadamardResponse::new(1 << logw, eps);
        let inputs: Vec<u64> = (0..(1u64 << logw)).collect();
        let got = exact_pure_epsilon(&h, &inputs);
        prop_assert!(got <= eps + 1e-9);
    }

    #[test]
    fn revealing_randomizer_delta_is_exact(
        k in 2u64..16,
        eps in 0.1f64..1.5,
        delta in 1e-4f64..0.2,
    ) {
        let rv = RevealingRandomizer::new(k, eps, delta);
        let inputs: Vec<u64> = (0..k).collect();
        prop_assert_eq!(exact_pure_epsilon(&rv, &inputs), f64::INFINITY);
        let d = exact_delta(&rv, eps, &inputs);
        prop_assert!((d - delta).abs() < 1e-9, "delta {d} want {delta}");
    }

    #[test]
    fn approx_composed_rr_distributions_normalize(
        k in 6u32..14,
        eps in 0.05f64..0.5,
        beta in 0.02f64..0.3,
    ) {
        // Skip parameterizations where the shell degenerates.
        let kf = f64::from(k);
        let centre = kf / (eps.exp() + 1.0);
        let width = (kf * (2.0 / beta).ln() / 2.0).sqrt();
        prop_assume!(centre - width > 0.0 || centre + width < kf);
        let mt = ApproxComposedRr::new(k, eps, beta);
        for &x in &[0u64, (1 << k) - 1, 0x5A5A & ((1 << k) - 1)] {
            let total: f64 = mt.distribution(RandomizerInput::Value(x)).iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-8, "x={x}: total {total}");
        }
        // The conditioning event keeps its promised mass.
        prop_assert!(mt.escape_probability() <= beta + 1e-12);
    }

    #[test]
    fn genprot_report_distribution_normalizes_and_certifies(
        k in 2u64..8,
        eps in 0.1f64..0.5,
        t in 4usize..24,
        seed in 0u64..1000,
    ) {
        let base = GeneralizedRandomizedResponse::new(k, eps);
        let gp = GenProt::new(base, eps, t, seed);
        let ys = gp.public_samples(0);
        for x in 0..k {
            let dist = gp.report_distribution(x, &ys);
            let total: f64 = dist.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-8, "x={x}: {total}");
        }
        let inputs: Vec<u64> = (0..k).collect();
        let got = gp.exact_epsilon(0, &inputs);
        prop_assert!(got <= 10.0 * eps + 1e-9, "certified {got} > 10eps");
    }

    #[test]
    fn genprot_certificate_holds_for_approximate_bases(
        eps in 0.1f64..0.4,
        delta in 1e-6f64..1e-2,
        t in 6usize..20,
        seed in 0u64..500,
    ) {
        let base = RevealingRandomizer::new(5, eps, delta);
        let gp = GenProt::new(base, eps, t, seed);
        let inputs: Vec<u64> = (0..5).collect();
        let got = gp.exact_epsilon(0, &inputs);
        prop_assert!(got <= 10.0 * eps + 1e-9, "certified {got}");
    }
}
