//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this workspace
//! carries a minimal, dependency-free implementation of the criterion
//! API its benches use. Measurement is a warmup pass to calibrate the
//! per-iteration cost followed by timed batches — no outlier rejection
//! or bootstrap statistics — and results print one line per benchmark:
//!
//! ```text
//! substrate/wht/65536        time: 312.44 us/iter (64 iters)
//! ```
//!
//! Point the workspace `criterion` dependency back at crates.io to swap
//! in the real crate unchanged.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark. Kept short: the shim favors
/// fast full-suite runs over tight confidence intervals.
const TARGET_MEASURE: Duration = Duration::from_millis(300);
const TARGET_WARMUP: Duration = Duration::from_millis(100);

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated calls of `f` (warmup, then measured batches).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < TARGET_WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((TARGET_MEASURE.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters;
    }
}

/// A parameterized benchmark label, e.g. `kwise_eval/32`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion for the flexible `bench_function` id argument.
pub trait IntoBenchmarkLabel {
    /// The printed label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for criterion compatibility; the shim's fixed time budget
    /// ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; ignored by the shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters_done > 0 {
            b.elapsed.as_secs_f64() / b.iters_done as f64
        } else {
            0.0
        };
        println!(
            "{}/{:<40} time: {} ({} iters)",
            self.name,
            label,
            fmt_secs(per_iter),
            b.iters_done
        );
    }

    /// Benchmark a closure under the given id.
    pub fn bench_function<L: IntoBenchmarkLabel, F: FnMut(&mut Bencher)>(
        &mut self,
        id: L,
        f: F,
    ) -> &mut Self {
        self.run(id.into_label(), f);
        self
    }

    /// Benchmark a closure that receives an input by reference.
    pub fn bench_with_input<L, I, F>(&mut self, id: L, input: &I, mut f: F) -> &mut Self
    where
        L: IntoBenchmarkLabel,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_label(), |b| f(b, input));
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<L: IntoBenchmarkLabel, F: FnMut(&mut Bencher)>(
        &mut self,
        id: L,
        f: F,
    ) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        self
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s/iter")
    } else if s >= 1e-3 {
        format!("{:.2} ms/iter", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} us/iter", s * 1e6)
    } else {
        format!("{:.0} ns/iter", s * 1e9)
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-test");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 32).into_label(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).into_label(), "7");
    }
}
