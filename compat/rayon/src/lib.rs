//! Vendored stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this workspace
//! carries the structured-concurrency subset of rayon's API it uses,
//! implemented over [`std::thread::scope`]: [`scope`] / [`Scope::spawn`],
//! [`join`], and [`current_num_threads`]. Unlike real rayon there is no
//! work-stealing pool — each `spawn` is an OS thread — so callers should
//! spawn O(`current_num_threads()`) coarse tasks, not one task per item
//! (which is exactly how the `hh-sim` batch driver uses it). Point the
//! workspace `rayon` dependency back at crates.io to swap in the real
//! crate unchanged.

/// Number of hardware threads available (rayon's default pool size).
///
/// Cached after the first call: real rayon reads the pool's fixed size,
/// whereas `available_parallelism` is a syscall — hot decode loops that
/// resolve `threads == 0` per work item must not pay it every time.
pub fn current_num_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// A scope in which borrowed-data tasks can be spawned (rayon's `Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that may borrow from outside the scope. The closure
    /// receives the scope again so it can spawn nested tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let s = Scope { inner };
            f(&s);
        });
    }
}

/// Run `f` with a [`Scope`]; returns once every spawned task finished.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| {
        let sc = Scope { inner: s };
        f(&sc)
    })
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawns_work() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn at_least_one_thread() {
        assert!(current_num_threads() >= 1);
    }
}
