//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace carries a minimal, dependency-free implementation of the
//! `rand` 0.8 API surface it actually uses:
//!
//! * [`Rng`] with `gen::<f64/u64/bool>()` and `gen_range` over integer
//!   and float ranges (half-open and inclusive),
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::SmallRng`] — xoshiro256++ seeded through SplitMix64 (the
//!   same construction the real `SmallRng` uses on 64-bit targets),
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! The streams are *not* bit-identical to the real crate's (the
//! workspace only relies on self-consistent determinism, never on
//! specific values), but every algorithm is the standard published one.
//! Point the workspace `rand` dependency back at crates.io to swap in
//! the real thing.

/// A source of random 64-bit words. The base trait object-safe subset.
pub trait RngCore {
    /// Next uniformly random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly random `u32` (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling of a value of type `Self` from the "standard" distribution:
/// `f64`/`f32` uniform in `[0, 1)`, integers uniform over the full range,
/// `bool` a fair coin.
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits: [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Exactly uniform draw from `[0, span)` via Lemire's widening-multiply
/// reduction (Lemire 2019, "Fast Random Integer Generation in an
/// Interval").
///
/// The fast path is a single 64×64→128 multiply whose high half is the
/// result — no 128-bit divide, unlike the modulo reduction this replaced,
/// which also systematically over-weighted the first `2^64 mod span`
/// values. The low half of the product detects draws that land in the
/// truncated final block; only then is `2^64 mod span` computed and the
/// word redrawn (probability `span / 2^64` at worst), making the output
/// exactly uniform.
#[inline]
fn lemire_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "cannot sample empty range");
    let mut m = (rng.next_u64() as u128) * (span as u128);
    if (m as u64) < span {
        // 2^64 mod span, computed lazily: `span.wrapping_neg()` is
        // `2^64 - span`, and `(2^64 - span) mod span == 2^64 mod span`.
        let t = span.wrapping_neg() % span;
        while (m as u64) < t {
            m = (rng.next_u64() as u128) * (span as u128);
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = lemire_below(rng, span as u64);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = if span > u64::MAX as u128 {
                    // Full 64-bit range: every word is already uniform.
                    rng.next_u64()
                } else {
                    lemire_below(rng, span as u64)
                };
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// The user-facing random-value interface (blanket-implemented for every
/// [`RngCore`], matching `rand` 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform draw from a range (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (the `seed_from_u64` subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Deterministically construct from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    #[inline]
    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// A small, fast, non-cryptographic generator: xoshiro256++ with
    /// SplitMix64 seed expansion (Blackman–Vigna).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut z = state;
            let s = [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            let v = r.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&w));
            let z = r.gen_range(0..=3usize);
            assert!(z <= 3);
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tight_non_power_of_two_range_is_uniform() {
        // A span of 7 does not divide 2^64, so the old modulo reduction
        // (and a rejection-less multiply) would over-weight low values by
        // a (here immeasurable) 2^-61 — but the chi-square statistic
        // documents the uniformity contract: 70_000 draws over 7 cells,
        // df = 6, critical value 22.46 at p = 0.001.
        let mut r = SmallRng::seed_from_u64(9);
        let mut counts = [0u64; 7];
        let n = 70_000u64;
        for _ in 0..n {
            counts[r.gen_range(0u64..7) as usize] += 1;
        }
        let expect = n as f64 / 7.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 22.46, "chi-square {chi2} over bound: {counts:?}");
    }

    #[test]
    fn huge_span_exercises_the_rejection_path() {
        // span = 2^64 - 5 forces the slow branch (the product's low half
        // is below span for almost every word), where 2^64 mod span = 5
        // rejects only a 5/2^64 sliver. All draws must stay in range, and
        // the full-span inclusive cases must take the no-reduction path.
        let mut r = SmallRng::seed_from_u64(10);
        let hi = u64::MAX - 5;
        for _ in 0..1_000 {
            assert!(r.gen_range(0u64..hi) < hi);
            let _ = r.gen_range(0u64..=u64::MAX);
            let v = r.gen_range(i64::MIN..=i64::MAX);
            let _ = v;
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
