//! Vendored stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no registry access, so this workspace
//! carries a minimal implementation of the subset its property tests
//! use: the [`proptest!`] macro over numeric *range strategies*
//! (`lo..hi`, `lo..=hi` for the integer types and `f64`), configured
//! case counts via [`ProptestConfig::with_cases`], and the
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! Differences from the real crate: inputs are sampled from a fixed
//! deterministic seed (per test name) rather than an entropy source, and
//! failing cases are reported but **not shrunk**. Point the workspace
//! `proptest` dependency back at crates.io to swap in the real crate.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property for `cases` accepted inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; draw another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with a message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A source of random values for one parameter position.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn pick(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Deterministic per-test RNG (FNV-1a over the test name, then the case
/// index), so failures reproduce run to run.
pub fn case_rng(test_name: &str, case: u64) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Everything a property-test module imports.
pub mod prelude {
    pub use crate::{
        case_rng, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Assert inside a property; failure reports the offending inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($lhs),
            stringify!($rhs),
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Reject the current input (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                $crate::__proptest_body! {
                    ($cfg) fn $name( $($arg in $strat),+ ) $body
                }
            }
        )*
    };
}

/// The case-running loop of one property (an expression, so the failure
/// path is testable without generating nested `#[test]` items).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block ) => {{
        let __cfg: $crate::ProptestConfig = $cfg;
        let mut __accepted: u32 = 0;
        let mut __attempt: u64 = 0;
        let __max_attempts: u64 = u64::from(__cfg.cases) * 16 + 64;
        while __accepted < __cfg.cases {
            assert!(
                __attempt < __max_attempts,
                "proptest: too many rejected inputs ({} attempts, {} accepted)",
                __attempt,
                __accepted
            );
            let mut __rng = $crate::case_rng(stringify!($name), __attempt);
            __attempt += 1;
            $(let $arg = $crate::Strategy::pick(&($strat), &mut __rng);)+
            let __result = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                $body
                ::core::result::Result::Ok(())
            })();
            match __result {
                ::core::result::Result::Ok(()) => __accepted += 1,
                ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                    panic!(
                        "proptest case failed (attempt {}): {}\n  inputs: {}",
                        __attempt - 1,
                        __msg,
                        format!(concat!($(stringify!($arg), " = {:?}; "),+), $($arg),+)
                    );
                }
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(a in 3u64..10, b in 0.5f64..1.5, c in 2u32..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.5..1.5).contains(&b), "b = {b}");
            prop_assert!((2..=4).contains(&c));
            prop_assert_eq!(a, a);
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_inputs() {
        crate::__proptest_body! {
            (ProptestConfig::with_cases(4))
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
    }
}
