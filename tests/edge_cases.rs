//! Failure injection and degenerate-input behavior: protocols must
//! degrade cleanly (empty outputs, clean errors) rather than panic or
//! fabricate results.

use ldp_heavy_hitters::codes::ReedSolomon;
use ldp_heavy_hitters::core::baselines::{Bitstogram, BitstogramParams};
use ldp_heavy_hitters::freq::krr::KrrOracle;
use ldp_heavy_hitters::prelude::*;
use ldp_heavy_hitters::structure::GenProt;

#[test]
fn sketch_with_zero_users_finishes_empty() {
    let params = SketchParams::optimal(1 << 12, 16, 2.0, 0.1);
    let mut server = ExpanderSketch::new(params, 1);
    let est = server.finish();
    assert!(est.is_empty());
}

#[test]
fn sketch_with_one_user_does_not_panic() {
    let params = SketchParams::optimal(1 << 12, 16, 2.0, 0.1);
    let mut server = ExpanderSketch::new(params, 2);
    let mut rng = seeded_rng(3);
    let rep = server.respond(0, 7, &mut rng);
    server.collect(0, rep);
    let est = server.finish();
    // One user is far below any threshold.
    assert!(est.is_empty(), "{est:?}");
}

#[test]
fn bitstogram_with_zero_users_finishes_empty() {
    let params = BitstogramParams::optimal(1 << 12, 12, 2.0, 0.5);
    let mut server = Bitstogram::new(params, 4);
    assert!(server.finish().is_empty());
}

#[test]
fn hashtogram_with_zero_reports_estimates_zero() {
    let mut oracle = Hashtogram::new(HashtogramParams::direct(32, 1.0, 0.2), 5);
    oracle.finalize();
    for x in 0..32 {
        assert_eq!(oracle.estimate(x), 0.0);
    }
}

#[test]
fn reed_solomon_all_erasures_fails_cleanly() {
    let rs = ReedSolomon::new(4, 12, 4);
    let received = vec![None; 12];
    assert_eq!(rs.decode(&received), None);
}

#[test]
fn reed_solomon_zero_message_roundtrip() {
    let rs = ReedSolomon::new(4, 12, 4);
    let msg = vec![0u16; 4];
    let cw = rs.encode(&msg);
    assert!(cw.iter().all(|&c| c == 0));
    let received: Vec<Option<u16>> = cw.iter().map(|&c| Some(c)).collect();
    assert_eq!(rs.decode(&received), Some(msg));
}

#[test]
fn genprot_with_single_candidate_is_total() {
    // T = 1: the announcement is forced; privacy is trivially perfect for
    // the announcement itself (it is constant).
    let base = KrrOracle::new(4, 0.5);
    let gp = GenProt::new(base.randomizer().clone(), 0.5, 1, 6);
    let mut rng = seeded_rng(7);
    for i in 0..20u64 {
        let g = gp.respond(i, i % 4, &mut rng);
        assert_eq!(g, 0);
        let _ = gp.reconstruct(i, g);
    }
    let eps = gp.exact_epsilon(0, &[0, 1, 2, 3]);
    assert!(eps < 1e-9, "constant output must leak nothing: {eps}");
}

#[test]
fn workload_with_no_heavies_generates_uniform() {
    let w = Workload::planted(1 << 10, vec![]);
    let data = w.generate(5_000, 8);
    assert_eq!(data.len(), 5_000);
    assert!(data.iter().all(|&x| x < 1 << 10));
}

#[test]
fn scan_on_domain_of_two() {
    let params = ScanParams::new(20_000, 2, 2.0, 0.1);
    let mut server = ScanHeavyHitters::new(params, 9);
    let mut rng = seeded_rng(10);
    for i in 0..20_000u64 {
        let rep = server.respond(i, i % 2, &mut rng);
        server.collect(i, rep);
    }
    let est = server.finish();
    assert_eq!(est.len(), 2, "{est:?}");
}

#[test]
fn duplicate_user_reports_are_absorbed_not_fatal() {
    // A malicious user replaying reports shifts counts but must not break
    // the server (LDP servers cannot authenticate content anyway).
    let mut oracle = Hashtogram::new(HashtogramParams::direct(16, 1.0, 0.2), 11);
    let mut rng = seeded_rng(12);
    let rep = oracle.respond(0, 3, &mut rng);
    for _ in 0..100 {
        oracle.collect(0, rep);
    }
    oracle.finalize();
    let est = oracle.estimate(3);
    assert!(est.is_finite());
}
