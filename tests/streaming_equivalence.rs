//! Streaming-vs-serial equivalence: for every heavy-hitter protocol and
//! frequency oracle, the streaming epoch engine — which wire-encodes
//! every report, routes it to one of `k` collectors, snapshots every
//! collector's shard to bytes at checkpoint boundaries, and recovers
//! killed collectors by decoding their last snapshot and replaying the
//! spooled reports since — must produce final output bit-for-bit
//! identical to the serial one-shot reference run for the same seed, at
//! **any** epoch size, collector count, checkpoint cadence, kill
//! schedule, and merge order.
//!
//! This is the acceptance gate of the durable-shard refactor: epochs,
//! snapshots, crashes and replays are pure schedule/durability events,
//! never result changes.

use ldp_heavy_hitters::core::baselines::{
    BassilySmithHeavyHitters, Bitstogram, BitstogramParams, BsHhParams, ScanHeavyHitters,
    ScanParams,
};
use ldp_heavy_hitters::freq::bassily_smith::BassilySmithOracle;
use ldp_heavy_hitters::freq::krr::KrrOracle;
use ldp_heavy_hitters::freq::rappor::Rappor;
use ldp_heavy_hitters::prelude::*;
use ldp_heavy_hitters::sim::{HhStream, OracleStream, StreamEngine, StreamPlan};

/// A crash in the schedule: kill `node` after `kill_after` epochs, and
/// (optionally) recover it explicitly after `recover_after` epochs —
/// otherwise it stays dead until the engine's final recovery sweep.
#[derive(Clone, Copy)]
struct Crash {
    node: usize,
    kill_after: u64,
    recover_after: Option<u64>,
}

/// The stream shapes every protocol/oracle is exercised through: epoch
/// count ~ n/epoch_size, collector counts straddling the chunk count,
/// every merge order, checkpoint cadences including "never", and crash
/// schedules with and without explicit recovery.
fn stream_grid(n: usize) -> Vec<(StreamPlan, Vec<Crash>)> {
    let dist = |collectors: usize, merge: MergeOrder| DistPlan {
        collectors,
        chunk_size: n / 6 + 1,
        threads: 2,
        merge,
    };
    let plan =
        |epoch_size: usize, checkpoint_every: usize, collectors: usize, m: MergeOrder| StreamPlan {
            epoch_size,
            checkpoint_every,
            dist: dist(collectors, m),
        };
    vec![
        // One epoch, one collector: the degenerate serial-like shape.
        (plan(n, 1, 1, MergeOrder::Tree), vec![]),
        // Many ragged epochs, per-epoch checkpoints.
        (plan(n / 5 + 3, 1, 3, MergeOrder::Sequential), vec![]),
        // Checkpoint every 2 epochs; a crash between checkpoints forces
        // a snapshot decode + partial spool replay.
        (
            plan(n / 5 + 3, 2, 3, MergeOrder::Tree),
            vec![Crash {
                node: 1,
                kill_after: 3,
                recover_after: Some(4),
            }],
        ),
        // Never checkpoint; the crash replays the whole spool from an
        // empty shard, and a second node dies until the final sweep.
        (
            plan(n / 4 + 1, 0, 4, MergeOrder::ReverseSequential),
            vec![
                Crash {
                    node: 0,
                    kill_after: 1,
                    recover_after: Some(3),
                },
                Crash {
                    node: 3,
                    kill_after: 2,
                    recover_after: None,
                },
            ],
        ),
        // Tiny epochs (many boundaries), crash recovered right away.
        (
            plan(n / 9 + 1, 1, 2, MergeOrder::Tree),
            vec![Crash {
                node: 0,
                kill_after: 2,
                recover_after: Some(5),
            }],
        ),
    ]
}

/// Stream `input` through the engine in `epoch_size` slices, applying
/// the crash schedule at epoch boundaries.
fn drive<I>(engine: &mut StreamEngine<I>, input: &[u64], epoch_size: usize, crashes: &[Crash])
where
    I: ldp_heavy_hitters::sim::StreamIngest + Sync,
{
    let mut off = 0;
    while off < input.len() {
        let hi = off.saturating_add(epoch_size).min(input.len());
        engine.ingest_epoch(&input[off..hi]);
        off = hi;
        let epoch = engine.epoch();
        for crash in crashes {
            if crash.kill_after == epoch && engine.is_alive(crash.node) {
                engine.kill_collector(crash.node);
            }
            if crash.recover_after == Some(epoch) && !engine.is_alive(crash.node) {
                engine.recover_collector(crash.node);
            }
        }
    }
}

fn assert_stream_equivalent<P, F>(make: F, input: &[u64], seed: u64, protocol: &str)
where
    P: HeavyHitterProtocol + Sync,
    P::Report: Send + Sync,
    F: Fn() -> P,
{
    let serial = {
        let mut server = make();
        run_heavy_hitter(&mut server, input, seed).estimates
    };
    assert!(
        !serial.is_empty(),
        "{protocol}: serial run found nothing — test is vacuous"
    );
    for (i, (plan, crashes)) in stream_grid(input.len()).into_iter().enumerate() {
        let epoch_size = plan.epoch_size;
        let server = make();
        let (shard, stats) = {
            let mut engine = StreamEngine::new(HhStream(&server), plan, seed);
            drive(&mut engine, input, epoch_size, &crashes);
            engine.into_live_shard()
        };
        let mut server = server;
        server.finish_shard(shard);
        assert_eq!(
            server.finish(),
            serial,
            "{protocol}: stream output diverged at grid shape {i}"
        );
        assert_eq!(stats.users as usize, input.len());
        assert!(stats.wire_bytes > 0, "{protocol}: nothing crossed the wire");
        if !crashes.is_empty() {
            assert!(
                stats.recoveries as usize >= crashes.len(),
                "{protocol}: expected every crash recovered at shape {i}"
            );
        }
    }
}

fn assert_oracle_stream_equivalent<O, F>(
    make: F,
    input: &[u64],
    queries: &[u64],
    seed: u64,
    oracle_name: &str,
) where
    O: FrequencyOracle + Sync,
    O::Report: Send + Sync,
    F: Fn() -> O,
{
    let serial = {
        let mut oracle = make();
        run_oracle(&mut oracle, input, queries, seed).answers
    };
    for (i, (plan, crashes)) in stream_grid(input.len()).into_iter().enumerate() {
        let epoch_size = plan.epoch_size;
        let oracle = make();
        let (shard, _) = {
            let mut engine = StreamEngine::new(OracleStream(&oracle), plan, seed);
            drive(&mut engine, input, epoch_size, &crashes);
            engine.into_live_shard()
        };
        let mut oracle = oracle;
        oracle.finish_shard(shard);
        oracle.finalize();
        let answers: Vec<f64> = queries.iter().map(|&q| oracle.estimate(q)).collect();
        assert_eq!(
            answers, serial,
            "{oracle_name}: answers diverged at grid shape {i}"
        );
    }
}

#[test]
fn expander_sketch_streams_equal_serial() {
    let n = 1usize << 15;
    let input = Workload::planted(1 << 16, vec![(0xBEE, 0.45)]).generate(n, 91);
    let params = SketchParams::optimal(n as u64, 16, 4.0, 0.1);
    assert_stream_equivalent(
        || ExpanderSketch::new(params.clone(), 301),
        &input,
        302,
        "expander_sketch",
    );
}

#[test]
fn bitstogram_streams_equal_serial() {
    let n = 1usize << 15;
    let input = Workload::planted(1 << 16, vec![(0xBEE, 0.45)]).generate(n, 92);
    let mut params = BitstogramParams::optimal(n as u64, 16, 4.0, 0.5);
    params.repetitions = 1; // high-eps single-repetition profile, as in its unit tests
    assert_stream_equivalent(
        || Bitstogram::new(params.clone(), 303),
        &input,
        304,
        "bitstogram",
    );
}

#[test]
fn scan_streams_equal_serial() {
    let n = 1usize << 14;
    let input = Workload::planted(512, vec![(9, 0.3), (100, 0.2)]).generate(n, 93);
    let params = ScanParams::new(n as u64, 512, 4.0, 0.1);
    assert_stream_equivalent(
        || ScanHeavyHitters::new(params.clone(), 305),
        &input,
        306,
        "scan",
    );
}

#[test]
fn bassily_smith_streams_equal_serial() {
    let n = 1usize << 13;
    let input = Workload::planted(1 << 10, vec![(0x321, 0.5)]).generate(n, 94);
    let params = BsHhParams::optimal(n as u64, 1 << 10, 4.0, 0.2);
    assert_stream_equivalent(
        || BassilySmithHeavyHitters::new(params.clone(), 307),
        &input,
        308,
        "bassily_smith",
    );
}

#[test]
fn hashtogram_oracle_streams_equal_serial() {
    let n = 1usize << 14;
    let input = Workload::planted(1 << 16, vec![(0xBEE, 0.25)]).generate(n, 95);
    assert_oracle_stream_equivalent(
        || Hashtogram::new(HashtogramParams::hashed(n as u64, 1 << 16, 1.0, 0.05), 309),
        &input,
        &[0xBEEu64, 7, 60_000],
        310,
        "hashtogram",
    );
}

#[test]
fn bassily_smith_oracle_streams_equal_serial() {
    let n = 1usize << 13;
    let input = Workload::planted(1 << 16, vec![(0x44, 0.3)]).generate(n, 96);
    assert_oracle_stream_equivalent(
        || BassilySmithOracle::new(1 << 16, 1.0, n as u64 / 4, 311),
        &input,
        &[0x44u64, 5],
        312,
        "bassily_smith_oracle",
    );
}

#[test]
fn krr_oracle_streams_equal_serial() {
    let n = 1usize << 13;
    let input: Vec<u64> = Workload::planted(24, vec![(3, 0.4)]).generate(n, 97);
    assert_oracle_stream_equivalent(|| KrrOracle::new(24, 1.0), &input, &[3u64, 9], 313, "krr");
}

#[test]
fn rappor_streams_equal_serial() {
    let n = 1usize << 11;
    let input: Vec<u64> = Workload::planted(100, vec![(42, 0.4)]).generate(n, 98);
    assert_oracle_stream_equivalent(
        || Rappor::new(100, 1.0),
        &input,
        &[42u64, 17],
        314,
        "rappor",
    );
}

#[test]
fn fused_ingest_crash_grid_matches_serial() {
    // The engine's whole ingest path is now fused and zero-copy:
    // `respond_encode_batch` writes each chunk straight into a pooled
    // wire buffer and collectors fold the borrowed frames via
    // `absorb_wire` — including recovery replay from the spool. This
    // grid leans on exactly the parts that path changed: a chunk size
    // far below the epoch (many pooled buffers cycling per epoch), more
    // collectors than chunks in the last ragged epoch, a sparse
    // checkpoint cadence, and the same node crashing twice (the second
    // recovery replays spooled chunks through `absorb_wire` on top of a
    // decoded snapshot).
    let n = 1usize << 14;
    let input = Workload::planted(512, vec![(9, 0.3), (100, 0.2)]).generate(n, 103);
    let params = ScanParams::new(n as u64, 512, 4.0, 0.1);
    let make = || ScanHeavyHitters::new(params.clone(), 323);
    let seed = 324;
    let serial = {
        let mut s = make();
        run_heavy_hitter(&mut s, &input, seed).estimates
    };
    assert!(!serial.is_empty(), "serial run found nothing — vacuous");

    let plan = StreamPlan {
        epoch_size: n / 7 + 1,
        checkpoint_every: 3,
        dist: DistPlan {
            collectors: 5,
            chunk_size: n / 40 + 1,
            threads: 2,
            merge: MergeOrder::Sequential,
        },
    };
    let crashes = vec![
        Crash {
            node: 2,
            kill_after: 2,
            recover_after: Some(4),
        },
        Crash {
            node: 2,
            kill_after: 5,
            recover_after: Some(6),
        },
        Crash {
            node: 4,
            kill_after: 3,
            recover_after: None,
        },
    ];
    let server = make();
    let (shard, stats) = {
        let mut engine = StreamEngine::new(HhStream(&server), plan.clone(), seed);
        drive(&mut engine, &input, plan.epoch_size, &crashes);
        engine.into_live_shard()
    };
    let mut server = server;
    server.finish_shard(shard);
    assert_eq!(server.finish(), serial, "fused crash grid diverged");
    assert_eq!(stats.users as usize, n);
    assert!(
        stats.recoveries >= 3,
        "expected all three crashes recovered"
    );
    assert!(stats.replayed_reports > 0, "recovery replayed nothing");
}

#[test]
fn mid_stream_queries_match_prefix_runs() {
    // `finish_at_epoch` answers from the merged decoded snapshots
    // without consuming live shards: right after each checkpoint it must
    // equal the serial one-shot run over exactly the ingested prefix —
    // and the stream must keep running unperturbed afterwards.
    let n = 1usize << 14;
    let epoch_size = n / 4;
    let input = Workload::planted(512, vec![(9, 0.3), (100, 0.2)]).generate(n, 99);
    let params = ScanParams::new(n as u64, 512, 4.0, 0.1);
    let make = || ScanHeavyHitters::new(params.clone(), 315);
    let seed = 316;

    let server = make();
    let plan = StreamPlan {
        epoch_size,
        checkpoint_every: 1,
        dist: DistPlan {
            collectors: 3,
            chunk_size: 1000,
            threads: 2,
            merge: MergeOrder::Tree,
        },
    };
    let mut engine = StreamEngine::new(HhStream(&server), plan, seed);
    for e in 0..4usize {
        engine.ingest_epoch(&input[e * epoch_size..(e + 1) * epoch_size]);
        let mid = engine.finish_at_epoch(&mut make());
        let prefix = {
            let mut s = make();
            run_heavy_hitter(&mut s, &input[..(e + 1) * epoch_size], seed).estimates
        };
        assert_eq!(mid, prefix, "mid-stream query diverged after epoch {e}");
        assert!(!mid.is_empty() || e == 0, "vacuous mid-stream query");
    }
    // The mid-stream queries did not perturb the live stream.
    let (shard, _) = engine.into_live_shard();
    let mut server = server;
    server.finish_shard(shard);
    let serial = {
        let mut s = make();
        run_heavy_hitter(&mut s, &input, seed).estimates
    };
    assert_eq!(server.finish(), serial);
}

#[test]
fn oracle_mid_stream_queries_match_prefix_runs() {
    let n = 1usize << 13;
    let epoch_size = n / 4;
    let input = Workload::planted(1 << 12, vec![(0xAB, 0.3)]).generate(n, 100);
    let params = || HashtogramParams::hashed(n as u64, 1 << 12, 1.0, 0.1);
    let make = || Hashtogram::new(params(), 317);
    let seed = 318;
    let queries = [0xABu64, 5, 999];

    let oracle = make();
    let plan = StreamPlan {
        epoch_size,
        checkpoint_every: 1,
        dist: DistPlan::with_collectors(2),
    };
    let mut engine = StreamEngine::new(OracleStream(&oracle), plan, seed);
    for e in 0..4usize {
        engine.ingest_epoch(&input[e * epoch_size..(e + 1) * epoch_size]);
        let mut mid = make();
        engine.finish_at_epoch(&mut mid);
        let mid_answers: Vec<f64> = queries.iter().map(|&q| mid.estimate(q)).collect();
        let prefix = {
            let mut o = make();
            run_oracle(&mut o, &input[..(e + 1) * epoch_size], &queries, seed).answers
        };
        assert_eq!(
            mid_answers, prefix,
            "oracle mid-stream query diverged after epoch {e}"
        );
    }
}

#[test]
#[should_panic(expected = "DistPlan.collectors must be >= 1")]
fn zero_collectors_is_rejected_up_front() {
    let mut params = ScanHeavyHitters::new(ScanParams::new(100, 64, 2.0, 0.1), 1);
    let plan = DistPlan {
        collectors: 0,
        ..DistPlan::default()
    };
    let _ = run_heavy_hitter_distributed(&mut params, &[1, 2, 3], 2, &plan);
}

#[test]
#[should_panic(expected = "DistPlan.chunk_size must be >= 1")]
fn zero_dist_chunk_size_is_rejected_up_front() {
    let mut params = ScanHeavyHitters::new(ScanParams::new(100, 64, 2.0, 0.1), 1);
    let plan = DistPlan {
        chunk_size: 0,
        ..DistPlan::default()
    };
    let _ = run_heavy_hitter_distributed(&mut params, &[1, 2, 3], 2, &plan);
}

#[test]
#[should_panic(expected = "BatchPlan.chunk_size must be >= 1")]
fn zero_batch_chunk_size_is_rejected_up_front() {
    let mut params = ScanHeavyHitters::new(ScanParams::new(100, 64, 2.0, 0.1), 1);
    let plan = BatchPlan {
        chunk_size: 0,
        threads: 2,
    };
    let _ = run_heavy_hitter_batched(&mut params, &[1, 2, 3], 2, &plan);
}

#[test]
#[should_panic(expected = "no checkpoint to answer from")]
fn mid_stream_query_without_checkpoint_panics() {
    // With checkpointing disabled, an "empty" mid-stream answer would be
    // indistinguishable from an empty stream — the engine refuses.
    let n = 4_000usize;
    let input = Workload::planted(256, vec![(9, 0.35)]).generate(n, 101);
    let params = ScanParams::new(n as u64, 256, 4.0, 0.1);
    let make = || ScanHeavyHitters::new(params.clone(), 319);
    let server = make();
    let plan = StreamPlan {
        epoch_size: n,
        checkpoint_every: 0,
        ..StreamPlan::default()
    };
    let mut engine = StreamEngine::new(HhStream(&server), plan, 320);
    engine.ingest_epoch(&input);
    let _ = engine.finish_at_epoch(&mut make());
}

#[test]
fn snapshot_epochs_expose_ragged_views() {
    // A crashed node misses a checkpoint: its snapshot epoch lags its
    // peers' — the signal callers use to detect a degraded durable view.
    let n = 4_000usize;
    let input = Workload::planted(256, vec![(9, 0.35)]).generate(n, 102);
    let params = ScanParams::new(n as u64, 256, 4.0, 0.1);
    let server = ScanHeavyHitters::new(params, 321);
    let plan = StreamPlan {
        epoch_size: n / 4,
        checkpoint_every: 1,
        dist: DistPlan {
            collectors: 2,
            chunk_size: 500,
            threads: 1,
            merge: MergeOrder::Tree,
        },
    };
    let mut engine = StreamEngine::new(HhStream(&server), plan, 322);
    engine.ingest_epoch(&input[..n / 4]);
    engine.ingest_epoch(&input[n / 4..n / 2]);
    assert_eq!(engine.snapshot_epochs(), vec![Some(2), Some(2)]);
    engine.kill_collector(1);
    engine.ingest_epoch(&input[n / 2..3 * n / 4]);
    // The dead node's snapshot stayed behind.
    assert_eq!(engine.snapshot_epochs(), vec![Some(3), Some(2)]);
    engine.recover_collector(1);
    engine.ingest_epoch(&input[3 * n / 4..]);
    assert_eq!(engine.snapshot_epochs(), vec![Some(4), Some(4)]);
}

#[test]
#[should_panic(expected = "StreamPlan.epoch_size must be >= 1")]
fn zero_epoch_size_is_rejected_up_front() {
    let server = ScanHeavyHitters::new(ScanParams::new(100, 64, 2.0, 0.1), 1);
    let plan = StreamPlan {
        epoch_size: 0,
        ..StreamPlan::default()
    };
    let _ = StreamEngine::new(HhStream(&server), plan, 2);
}

/// The pipelined collector runtime must be bit-for-bit the lock-step
/// engine under every schedule: same chunks, same per-collector order
/// (sequence numbers), same checkpoint boundaries, same crashes.
mod pipelined {
    use super::*;
    use ldp_heavy_hitters::sim::registry::{
        build_hh, build_oracle, hh_names, oracle_names, ProtocolSpec,
    };
    use ldp_heavy_hitters::sim::{
        run_pipelined, DynHhStream, DynOracleStream, PipelineConfig, StreamIngest,
    };
    use proptest::prelude::*;

    /// Drive the lock-step engine through `input` with the crash
    /// schedule, returning the final merged shard and stats.
    fn run_lockstep<I: StreamIngest + Sync>(
        ingest: I,
        plan: &StreamPlan,
        seed: u64,
        input: &[u64],
        crashes: &[Crash],
    ) -> (I::Shard, ldp_heavy_hitters::sim::StreamStats) {
        let mut engine = StreamEngine::new(ingest, plan.clone(), seed);
        drive(&mut engine, input, plan.epoch_size, crashes);
        engine.into_live_shard()
    }

    /// Drive the pipelined runtime through the *same* schedule.
    fn run_pipe<I: StreamIngest + Sync>(
        ingest: &I,
        plan: &StreamPlan,
        config: &PipelineConfig,
        seed: u64,
        input: &[u64],
        crashes: &[Crash],
    ) -> (I::Shard, ldp_heavy_hitters::sim::StreamStats) {
        let (shard, stats, ()) = run_pipelined(ingest, plan, config, seed, |session| {
            let mut off = 0;
            while off < input.len() {
                let hi = off.saturating_add(plan.epoch_size).min(input.len());
                session.ingest_epoch(&input[off..hi]);
                off = hi;
                let epoch = session.epoch();
                for crash in crashes {
                    if crash.kill_after == epoch && session.is_alive(crash.node) {
                        session.kill_collector(crash.node);
                    }
                    if crash.recover_after == Some(epoch) && !session.is_alive(crash.node) {
                        session.recover_collector(crash.node);
                    }
                }
            }
        });
        (shard, stats)
    }

    /// The crash schedule of one property case, clamped to the fleet.
    fn crash_schedule(case: u64, collectors: usize) -> Vec<Crash> {
        let node = |n: usize| n.min(collectors - 1);
        match case {
            0 => vec![],
            1 => vec![Crash {
                node: node(0),
                kill_after: 1,
                recover_after: Some(2),
            }],
            2 => vec![Crash {
                node: node(1),
                kill_after: 1,
                recover_after: None,
            }],
            _ => vec![
                Crash {
                    node: node(0),
                    kill_after: 1,
                    recover_after: Some(3),
                },
                Crash {
                    node: node(0),
                    kill_after: 4,
                    recover_after: Some(5),
                },
                Crash {
                    node: node(2),
                    kill_after: 2,
                    recover_after: None,
                },
            ],
        }
    }

    // Random registry protocol x collector count x queue depth x
    // encoder workers x epoch shape x checkpoint cadence x kill/recover
    // schedule: the pipelined runtime's final shard must encode to the
    // very bytes the lock-step engine's does, its durable snapshots
    // must be byte-equal, and the finished output must match.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn pipelined_runtime_matches_lockstep_bit_for_bit(
            proto in 0usize..8,
            collectors in 1usize..5,
            queue_depth in 1usize..5,
            workers in 1usize..4,
            epoch_div in 1usize..7,
            cadence in 0usize..3,
            crash_case in 0u64..4,
            data_seed in 0u64..1_000,
        ) {
            let n = 1_400usize;
            let spec = ProtocolSpec {
                n: n as u64,
                domain: 256,
                eps: 4.0,
                beta: 0.2,
                seed: 900 + proto as u64,
            };
            let input = Workload::planted(spec.domain, vec![(17, 0.4)])
                .generate(n, 901 ^ data_seed);
            let plan = StreamPlan {
                epoch_size: n / epoch_div + 1,
                checkpoint_every: cadence,
                dist: DistPlan {
                    collectors,
                    chunk_size: n / 11 + 1,
                    threads: 2,
                    merge: MergeOrder::Tree,
                },
            };
            let config = PipelineConfig {
                queue_depth,
                workers,
            };
            let crashes = crash_schedule(crash_case, collectors);
            let seed = 902;

            let hh = hh_names();
            let oracles = oracle_names();
            if proto < hh.len() {
                let name = hh[proto];
                let lock_server = build_hh(name, &spec).expect("registered");
                let (lock_shard, lock_stats) = run_lockstep(
                    DynHhStream(lock_server.as_ref()), &plan, seed, &input, &crashes,
                );
                let pipe_server = build_hh(name, &spec).expect("registered");
                let (pipe_shard, pipe_stats) = run_pipe(
                    &DynHhStream(pipe_server.as_ref()), &plan, &config, seed, &input, &crashes,
                );
                prop_assert_eq!(
                    DynHhStream(lock_server.as_ref()).encode_shard(&lock_shard),
                    DynHhStream(pipe_server.as_ref()).encode_shard(&pipe_shard),
                    "{}: final shard bytes diverged", name
                );
                prop_assert_eq!(
                    lock_stats.snapshot_bytes_last, pipe_stats.snapshot_bytes_last,
                    "{}: durable snapshot sizes diverged", name
                );
                prop_assert_eq!(lock_stats.users, pipe_stats.users);
                prop_assert_eq!(lock_stats.epochs, pipe_stats.epochs);
                let mut lock_server = lock_server;
                lock_server.finish_shard(lock_shard);
                let mut pipe_server = pipe_server;
                pipe_server.finish_shard(pipe_shard);
                prop_assert_eq!(
                    lock_server.finish(), pipe_server.finish(),
                    "{}: estimates diverged", name
                );
            } else {
                let name = oracles[proto - hh.len()];
                let lock_oracle = build_oracle(name, &spec).expect("registered");
                let (lock_shard, lock_stats) = run_lockstep(
                    DynOracleStream(lock_oracle.as_ref()), &plan, seed, &input, &crashes,
                );
                let pipe_oracle = build_oracle(name, &spec).expect("registered");
                let (pipe_shard, pipe_stats) = run_pipe(
                    &DynOracleStream(pipe_oracle.as_ref()), &plan, &config, seed, &input, &crashes,
                );
                prop_assert_eq!(
                    DynOracleStream(lock_oracle.as_ref()).encode_shard(&lock_shard),
                    DynOracleStream(pipe_oracle.as_ref()).encode_shard(&pipe_shard),
                    "{}: final shard bytes diverged", name
                );
                prop_assert_eq!(
                    lock_stats.snapshot_bytes_last, pipe_stats.snapshot_bytes_last,
                    "{}: durable snapshot sizes diverged", name
                );
                let mut lock_oracle = lock_oracle;
                lock_oracle.finish_shard(lock_shard);
                lock_oracle.finalize();
                let mut pipe_oracle = pipe_oracle;
                pipe_oracle.finish_shard(pipe_shard);
                pipe_oracle.finalize();
                for q in [17u64, 3, 250] {
                    prop_assert_eq!(
                        lock_oracle.estimate(q), pipe_oracle.estimate(q),
                        "{}: estimate({}) diverged", name, q
                    );
                }
            }
        }
    }

    /// The typed pipelined session under the fused crash grid: the same
    /// schedule as `fused_ingest_crash_grid_matches_serial`, driven
    /// through collector actors, must still match the serial one-shot
    /// run — and its backpressure stats must be populated.
    #[test]
    fn pipelined_crash_grid_matches_serial() {
        let n = 1usize << 14;
        let input = Workload::planted(512, vec![(9, 0.3), (100, 0.2)]).generate(n, 103);
        let params = ScanParams::new(n as u64, 512, 4.0, 0.1);
        let make = || ScanHeavyHitters::new(params.clone(), 323);
        let seed = 324;
        let serial = {
            let mut s = make();
            run_heavy_hitter(&mut s, &input, seed).estimates
        };
        assert!(!serial.is_empty(), "serial run found nothing — vacuous");

        let plan = StreamPlan {
            epoch_size: n / 7 + 1,
            checkpoint_every: 3,
            dist: DistPlan {
                collectors: 5,
                chunk_size: n / 40 + 1,
                threads: 2,
                merge: MergeOrder::Sequential,
            },
        };
        let config = PipelineConfig {
            queue_depth: 2,
            workers: 2,
        };
        let crashes = vec![
            Crash {
                node: 2,
                kill_after: 2,
                recover_after: Some(4),
            },
            Crash {
                node: 2,
                kill_after: 5,
                recover_after: Some(6),
            },
            Crash {
                node: 4,
                kill_after: 3,
                recover_after: None,
            },
        ];
        let server = make();
        let (shard, stats) = run_pipe(&HhStream(&server), &plan, &config, seed, &input, &crashes);
        let mut server = server;
        server.finish_shard(shard);
        assert_eq!(server.finish(), serial, "pipelined crash grid diverged");
        assert_eq!(stats.users as usize, n);
        assert!(
            stats.recoveries >= 3,
            "expected all three crashes recovered"
        );
        assert!(stats.replayed_reports > 0, "recovery replayed nothing");
        assert!(
            stats.max_queue_occupancy >= 1,
            "chunks crossed queues — occupancy high-water mark must show it"
        );
        assert_eq!(stats.threads, config.workers + plan.dist.collectors);
    }

    /// Mid-stream `finish_at_epoch` on the pipelined session: right
    /// after each checkpoint it must equal the serial run over exactly
    /// the ingested prefix (queries are answered from pooled snapshot
    /// buffers and must not perturb the live stream).
    #[test]
    fn pipelined_mid_stream_queries_match_prefix_runs() {
        let n = 1usize << 13;
        let epoch_size = n / 4;
        let input = Workload::planted(512, vec![(9, 0.3), (100, 0.2)]).generate(n, 99);
        let params = ScanParams::new(n as u64, 512, 4.0, 0.1);
        let make = || ScanHeavyHitters::new(params.clone(), 315);
        let seed = 316;

        let server = make();
        let plan = StreamPlan {
            epoch_size,
            checkpoint_every: 1,
            dist: DistPlan {
                collectors: 3,
                chunk_size: 700,
                threads: 2,
                merge: MergeOrder::Tree,
            },
        };
        let config = PipelineConfig {
            queue_depth: 2,
            workers: 1,
        };
        let (shard, _, ()) = run_pipelined(&HhStream(&server), &plan, &config, seed, |session| {
            for e in 0..4usize {
                session.ingest_epoch(&input[e * epoch_size..(e + 1) * epoch_size]);
                let mid = session.finish_at_epoch(&mut make());
                let prefix = {
                    let mut s = make();
                    run_heavy_hitter(&mut s, &input[..(e + 1) * epoch_size], seed).estimates
                };
                assert_eq!(mid, prefix, "mid-stream query diverged after epoch {e}");
            }
        });
        let mut server = server;
        server.finish_shard(shard);
        let serial = {
            let mut s = make();
            run_heavy_hitter(&mut s, &input, seed).estimates
        };
        assert_eq!(server.finish(), serial);
    }

    #[test]
    #[should_panic(expected = "PipelineConfig.queue_depth must be >= 1")]
    fn zero_queue_depth_is_rejected_up_front() {
        let server = ScanHeavyHitters::new(ScanParams::new(100, 64, 2.0, 0.1), 1);
        let config = PipelineConfig {
            queue_depth: 0,
            workers: 1,
        };
        run_pipelined(
            &HhStream(&server),
            &StreamPlan::default(),
            &config,
            2,
            |_| {},
        );
    }

    #[test]
    #[should_panic(expected = "PipelineConfig.workers must be >= 1")]
    fn zero_workers_is_rejected_up_front() {
        let server = ScanHeavyHitters::new(ScanParams::new(100, 64, 2.0, 0.1), 1);
        let config = PipelineConfig {
            queue_depth: 4,
            workers: 0,
        };
        run_pipelined(
            &HhStream(&server),
            &StreamPlan::default(),
            &config,
            2,
            |_| {},
        );
    }
}
