//! End-to-end integration tests of `PrivateExpanderSketch` against the
//! Definition 3.1 contract, across seeds and workload shapes.

use ldp_heavy_hitters::core::verify;
use ldp_heavy_hitters::prelude::*;

fn run_once(params: SketchParams, data: &[u64], seed: u64) -> Vec<(u64, f64)> {
    let mut server = ExpanderSketch::new(params, seed);
    run_heavy_hitter(&mut server, data, derive_seed(seed, 1)).estimates
}

#[test]
fn definition_3_1_contract_across_seeds() {
    let n = 1usize << 17;
    let params = SketchParams::optimal(n as u64, 16, 4.0, 0.1);
    let delta = params.detection_threshold();
    assert!(delta < 0.45 * n as f64, "sizing: delta = {delta}");
    let frac = 1.5 * delta / n as f64;
    let workload = Workload::planted(1 << 16, vec![(0xACE5, frac), (0x1DEA, frac)]);
    let mut failures = 0;
    let trials = 3u64;
    for t in 0..trials {
        let data = workload.generate(n, 100 + t);
        let est = run_once(params.clone(), &data, 200 + t);
        let report = verify::check_contract(&data, &est, delta);
        if !report.missed_heavy.is_empty() {
            failures += 1;
        }
        // Estimation accuracy must hold whenever elements are reported.
        assert!(
            report.max_estimation_error <= params.estimation_error_bound(),
            "trial {t}: error {} > bound {}",
            report.max_estimation_error,
            params.estimation_error_bound()
        );
        // List length stays within the O(n/Δ)-flavored budget.
        assert!(
            report.list_len <= 4 * (report.list_budget.ceil() as usize).max(2),
            "trial {t}: list {} vs budget {}",
            report.list_len,
            report.list_budget
        );
    }
    // beta = 0.1 advertised; 3 trials all succeeding is the expected
    // outcome (P[>=1 failure] < 0.28 even at the advertised rate, and the
    // protocol is calibrated conservatively).
    assert_eq!(
        failures, 0,
        "{failures}/{trials} trials missed a heavy element"
    );
}

#[test]
fn zipf_head_is_found() {
    let n = 1usize << 17;
    let params = SketchParams::optimal(n as u64, 20, 4.0, 0.1);
    let delta = params.detection_threshold();
    // Zipf with a very heavy head: rank 0 holds ~ frac of the mass.
    let workload = Workload::zipf(1 << 20, 1.6);
    let data = workload.generate(n, 5);
    let head_count = data.iter().filter(|&&x| x == 0).count() as f64;
    if head_count < 1.2 * delta {
        // Sizing assumption failed — make the failure loud rather than
        // silently passing a vacuous test.
        panic!("workload sizing broke: head {head_count} vs delta {delta}");
    }
    let est = run_once(params, &data, 6);
    assert!(
        est.iter().any(|&(x, _)| x == 0),
        "Zipf head not recovered: {est:?}"
    );
}

#[test]
fn empty_output_on_uniform_data() {
    let n = 1usize << 15;
    let params = SketchParams::optimal(n as u64, 20, 4.0, 0.1);
    let workload = Workload::uniform(1 << 20);
    let data = workload.generate(n, 9);
    let est = run_once(params, &data, 10);
    assert!(
        est.len() <= 1,
        "uniform data should produce no heavy hitters: {est:?}"
    );
}

#[test]
fn estimates_are_sorted_descending() {
    let n = 1usize << 16;
    let params = SketchParams::optimal(n as u64, 16, 4.0, 0.2);
    let frac = (1.5 * params.detection_threshold() / n as f64).min(0.4);
    let workload = Workload::planted(1 << 16, vec![(1, frac), (2, frac * 0.9)]);
    let data = workload.generate(n, 11);
    let est = run_once(params, &data, 12);
    for w in est.windows(2) {
        assert!(w[0].1 >= w[1].1, "not sorted: {est:?}");
    }
}
