//! Cross-crate integration: GenProt wrapped around the *actual*
//! Hashtogram report randomizer, exact privacy audits of protocol atoms,
//! and the advanced-grouposition bound applied to real protocol reports.

use ldp_heavy_hitters::freq::hashtogram::HashtogramReport;
use ldp_heavy_hitters::freq::randomizers::HadamardResponse;
use ldp_heavy_hitters::prelude::*;
use ldp_heavy_hitters::structure::{audit, grouposition, GenProt};

/// The Hashtogram user message is exactly a HadamardResponse sample; its
/// privacy must audit to the protocol's claimed ε — not approximately,
/// exactly.
#[test]
fn hashtogram_report_audits_exactly() {
    let params = HashtogramParams::direct(64, 0.8, 0.1);
    let oracle = Hashtogram::new(params, 3);
    let atom = oracle.randomizer();
    let inputs: Vec<u64> = (0..64).collect();
    audit::assert_pure_ldp(&atom, &inputs, 0.8);
    let measured = audit::exact_pure_epsilon(&atom, &inputs);
    assert!(
        (measured - 0.8).abs() < 1e-9,
        "audit should be tight: {measured}"
    );
}

/// GenProt ∘ Hashtogram: wrap the report randomizer, reconstruct reports
/// server-side, and check the full pipeline still estimates frequencies.
#[test]
fn genprot_wrapped_hashtogram_still_estimates() {
    let n = 30_000u64;
    let domain = 64u64;
    let eps = 1.0;
    let params = HashtogramParams::direct(domain, eps, 0.1);
    let mut oracle = Hashtogram::new(params.clone(), 7);
    let atom = HadamardResponse::new(params.buckets, eps);
    let t = GenProt::<HadamardResponse>::recommended_t(n, 0.05).max(48);
    let gp = GenProt::new(atom, eps, t, 8);

    // Every user: encode her bucket (= her value in the direct variant),
    // run the *transformed* protocol, and let the server reconstruct.
    let mut rng = seeded_rng(9);
    for i in 0..n {
        let x = if i % 4 == 0 { 17 } else { i % domain };
        let g = gp.respond(i, x, &mut rng);
        let y = gp.reconstruct(i, g);
        let (ell, bit) = gp.inner().split(y);
        let report = HashtogramReport {
            ell,
            bit: if bit == 1 { 1 } else { -1 },
        };
        oracle.collect(i, report);
    }
    oracle.finalize();
    // Element 17 holds 1/4 + (1/64)(3/4) of the data.
    let truth = n as f64 * (0.25 + 0.75 / domain as f64);
    let est = oracle.estimate(17);
    // The transformed protocol's reports are within TV n·(½+ε)^T of the
    // originals; at these parameters the residual noise inflation is
    // small, but allow a loose band — this is a pipeline test, not a
    // precision test.
    assert!(
        (est - truth).abs() < 0.5 * truth,
        "estimate {est} vs truth {truth}"
    );
    // And the announcement is certifiably pure-DP.
    let sample_inputs: Vec<u64> = (0..domain.min(16)).collect();
    for user in [0u64, 1, 2] {
        let exact = gp.exact_epsilon(user, &sample_inputs);
        assert!(exact <= 10.0 * eps + 1e-9, "user {user}: {exact}");
    }
}

/// Advanced grouposition applied to the real Hashtogram atom: the
/// Theorem 4.2 bound must dominate Monte-Carlo group-loss tails of the
/// actual protocol randomizer.
#[test]
fn grouposition_holds_for_hashtogram_atom() {
    let eps = 0.4;
    let atom = HadamardResponse::new(32, eps);
    let k = 64u64;
    let delta = 0.02;
    let eps_prime = grouposition::grouposition_epsilon(k, eps, delta);
    let pairs: Vec<(u64, u64)> = (0..k).map(|i| (i % 32, (i + 7) % 32)).collect();
    let mut rng = seeded_rng(21);
    let tail =
        grouposition::group_loss_tail_monte_carlo(&atom, &pairs, eps_prime, 50_000, &mut rng);
    assert!(
        tail <= delta + 6.0 * (delta / 50_000f64).sqrt() + 1e-3,
        "tail {tail} vs delta {delta}"
    );
}

/// The composed-RR transformation produces a *pure* randomizer whose
/// audited epsilon is its ε̃ — wired through the generic auditor.
#[test]
fn approx_composed_rr_audits_below_epsilon_tilde() {
    let (k, eps) = (25u32, 0.04);
    let beta = 0.05;
    let mt = ApproxComposedRr::new(k, eps, beta);
    let eps_tilde = mt.epsilon_tilde();
    // Exact audit over a representative input set (full enumeration over
    // 2^25 inputs is overkill; distance symmetry makes these extremal).
    let inputs = [0u64, (1 << k) - 1, 0b101_0101_0101_0101_0101_0101];
    let measured = audit::exact_pure_epsilon(&mt, &inputs);
    assert!(
        measured <= eps_tilde + 1e-9,
        "measured {measured} > eps_tilde {eps_tilde}"
    );
    // And far better than the basic-composition level of the inner M.
    assert!(measured < mt.inner().claimed_epsilon());
}
