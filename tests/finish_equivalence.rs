//! Finish-path equivalence: the parallel, scratch-threaded decode
//! (`finish_with` / `finalize_with`) is bit-for-bit the serial decode,
//! for every registry protocol, across thread counts and shard splits —
//! and the engines' *incremental* `finish_at_epoch` (fold cache +
//! memoized answers) equals a from-scratch finish over the same durable
//! view, across random crash/checkpoint schedules.
//!
//! This is the contract that makes the parallel finish path safe to use
//! everywhere by default: performance knobs (threads, scratch reuse,
//! incremental folding) can never change results.

use ldp_heavy_hitters::core::baselines::{ScanHeavyHitters, ScanParams};
use ldp_heavy_hitters::prelude::*;
use ldp_heavy_hitters::sim::registry::{hh_names, oracle_names};
use ldp_heavy_hitters::sim::{HhStream, StreamEngine, StreamPlan};

const N: usize = 1_500;
const DOMAIN: u64 = 256;

fn spec(seed: u64) -> ProtocolSpec {
    ProtocolSpec {
        n: N as u64,
        domain: DOMAIN,
        eps: 4.0,
        beta: 0.1,
        seed,
    }
}

fn inputs(seed: u64) -> Vec<u64> {
    Workload::planted(DOMAIN, vec![(9, 0.3), (100, 0.2)]).generate(N, seed)
}

/// Ingest `input` through the wire path in `splits` independent shards
/// (the same fan-out a collector fleet produces), then fold them in.
fn ingest_split_hh(server: &mut dyn DynHhProtocol, input: &[u64], splits: usize, seed: u64) {
    let chunk = input.len().div_ceil(splits).max(1);
    let mut shards = Vec::new();
    let mut buf = Vec::new();
    for (c, slice) in input.chunks(chunk).enumerate() {
        buf.clear();
        let start = (c * chunk) as u64;
        let lens = server.respond_encode_batch(start, slice, seed, &mut buf);
        let frames = WireFrames::new(&buf, &lens).expect("well-framed");
        let mut shard = server.new_shard();
        server
            .absorb_wire(&mut shard, start, &frames)
            .expect("absorb");
        shards.push(shard);
    }
    for shard in shards {
        server.finish_shard(shard);
    }
}

fn ingest_split_oracle(oracle: &mut dyn DynOracle, input: &[u64], splits: usize, seed: u64) {
    let chunk = input.len().div_ceil(splits).max(1);
    let mut shards = Vec::new();
    let mut buf = Vec::new();
    for (c, slice) in input.chunks(chunk).enumerate() {
        buf.clear();
        let start = (c * chunk) as u64;
        let lens = oracle.respond_encode_batch(start, slice, seed, &mut buf);
        let frames = WireFrames::new(&buf, &lens).expect("well-framed");
        let mut shard = oracle.new_shard();
        oracle
            .absorb_wire(&mut shard, start, &frames)
            .expect("absorb");
        shards.push(shard);
    }
    for shard in shards {
        oracle.finish_shard(shard);
    }
}

mod parallel_equals_serial {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        // Every registry heavy-hitter protocol: parallel `finish_with`
        // at an arbitrary thread count over an arbitrary shard split
        // equals the forced-serial finish bit-for-bit. A second warm
        // pass through the *same* scratch must agree too (buffer reuse
        // cannot leak state between runs).
        #[test]
        fn hh_parallel_finish_matches_serial(
            seed in 0u64..500,
            threads in 0usize..5,
            splits in 1usize..5,
        ) {
            let input = inputs(seed ^ 0x51);
            let mut scratch = FinishScratch::with_threads(threads);
            for name in hh_names() {
                let serial = {
                    let mut server = build_hh(name, &spec(seed)).expect("registry name");
                    ingest_split_hh(server.as_mut(), &input, 1, seed ^ 0xF1);
                    server.finish_with(&mut FinishScratch::serial())
                };
                let mut server = build_hh(name, &spec(seed)).expect("registry name");
                ingest_split_hh(server.as_mut(), &input, splits, seed ^ 0xF1);
                let parallel = server.finish_with(&mut scratch);
                prop_assert_eq!(&parallel, &serial, "{}: parallel finish diverged", name);
                // Estimates sorted by (estimate desc, value asc).
                for w in parallel.windows(2) {
                    prop_assert!(
                        w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                        "{}: tie-break order violated: {:?}", name, w
                    );
                }
            }
        }

        // Every registry frequency oracle: `finalize_with` at an
        // arbitrary thread count over an arbitrary shard split yields
        // bit-identical estimates to the forced-serial finalize.
        #[test]
        fn oracle_parallel_finalize_matches_serial(
            seed in 0u64..500,
            threads in 0usize..5,
            splits in 1usize..5,
        ) {
            let input = inputs(seed ^ 0x52);
            let queries = [0u64, 9, 100, DOMAIN / 2, DOMAIN - 1];
            let mut scratch = FinishScratch::with_threads(threads);
            for name in oracle_names() {
                let serial: Vec<f64> = {
                    let mut oracle = build_oracle(name, &spec(seed)).expect("registry name");
                    ingest_split_oracle(oracle.as_mut(), &input, 1, seed ^ 0xF2);
                    oracle.finalize_with(&mut FinishScratch::serial());
                    queries.iter().map(|&q| oracle.estimate(q)).collect()
                };
                let mut oracle = build_oracle(name, &spec(seed)).expect("registry name");
                ingest_split_oracle(oracle.as_mut(), &input, splits, seed ^ 0xF2);
                oracle.finalize_with(&mut scratch);
                let parallel: Vec<f64> = queries.iter().map(|&q| oracle.estimate(q)).collect();
                prop_assert_eq!(&parallel, &serial, "{}: parallel finalize diverged", name);
            }
        }
    }
}

mod incremental_equals_from_scratch {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        // Under a random epoch size, checkpoint cadence, and
        // crash/recover schedule, the engine's incremental
        // `finish_at_epoch` — including warm repeat queries answered
        // from the memoized fold — equals a from-scratch finish over
        // the uncached durable view at every query point.
        #[test]
        fn incremental_queries_match_from_scratch(
            seed in 0u64..500,
            epoch_size in 300usize..900,
            checkpoint_every in 1usize..3,
            kill_epoch in 1u64..4,
            node in 0usize..3,
            recover_gap in 0u64..2,
        ) {
            let input = inputs(seed ^ 0x53);
            let params = ScanParams::new(N as u64, DOMAIN, 4.0, 0.1);
            let make = || ScanHeavyHitters::new(params.clone(), seed ^ 0x61);
            let server = make();
            let plan = StreamPlan {
                epoch_size,
                checkpoint_every,
                dist: DistPlan {
                    collectors: 3,
                    chunk_size: 200,
                    threads: 2,
                    merge: MergeOrder::Tree,
                },
            };
            let mut engine = StreamEngine::new(HhStream(&server), plan, seed ^ 0x62);
            let mut off = 0;
            while off < N {
                let hi = (off + epoch_size).min(N);
                engine.ingest_epoch(&input[off..hi]);
                off = hi;
                if engine.epoch() == kill_epoch && engine.is_alive(node) {
                    engine.kill_collector(node);
                }
                if engine.epoch() == kill_epoch + 1 + recover_gap && !engine.is_alive(node) {
                    engine.recover_collector(node);
                }
                // From-scratch reference: the pure, uncached durable view.
                let reference = {
                    let mut fresh = make();
                    match engine.snapshot_shard() {
                        Some(shard) => fresh.finish_shard(shard),
                        None => continue, // nothing durable yet this epoch
                    }
                    fresh.finish()
                };
                // Cold incremental query, then a warm repeat (memoized).
                let cold = engine.finish_at_epoch(&mut make());
                prop_assert_eq!(&cold, &reference, "cold incremental query diverged");
                let warm = engine.finish_at_epoch(&mut make());
                prop_assert_eq!(&warm, &reference, "warm incremental query diverged");
            }
            let stats = engine.stats().clone();
            prop_assert!(
                stats.finish_cache_hits > 0,
                "warm queries never hit the fold cache"
            );
        }
    }
}
